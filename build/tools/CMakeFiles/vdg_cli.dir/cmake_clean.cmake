file(REMOVE_RECURSE
  "CMakeFiles/vdg_cli.dir/vdg_cli.cc.o"
  "CMakeFiles/vdg_cli.dir/vdg_cli.cc.o.d"
  "vdg"
  "vdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
