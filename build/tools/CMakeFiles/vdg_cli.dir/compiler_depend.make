# Empty compiler generated dependencies file for vdg_cli.
# This may be replaced when dependencies are built.
