file(REMOVE_RECURSE
  "CMakeFiles/vdg_security.dir/access.cc.o"
  "CMakeFiles/vdg_security.dir/access.cc.o.d"
  "CMakeFiles/vdg_security.dir/crypto.cc.o"
  "CMakeFiles/vdg_security.dir/crypto.cc.o.d"
  "CMakeFiles/vdg_security.dir/signed_entry.cc.o"
  "CMakeFiles/vdg_security.dir/signed_entry.cc.o.d"
  "CMakeFiles/vdg_security.dir/trust.cc.o"
  "CMakeFiles/vdg_security.dir/trust.cc.o.d"
  "libvdg_security.a"
  "libvdg_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
