file(REMOVE_RECURSE
  "libvdg_security.a"
)
