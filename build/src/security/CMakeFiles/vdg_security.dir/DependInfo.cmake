
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/security/access.cc" "src/security/CMakeFiles/vdg_security.dir/access.cc.o" "gcc" "src/security/CMakeFiles/vdg_security.dir/access.cc.o.d"
  "/root/repo/src/security/crypto.cc" "src/security/CMakeFiles/vdg_security.dir/crypto.cc.o" "gcc" "src/security/CMakeFiles/vdg_security.dir/crypto.cc.o.d"
  "/root/repo/src/security/signed_entry.cc" "src/security/CMakeFiles/vdg_security.dir/signed_entry.cc.o" "gcc" "src/security/CMakeFiles/vdg_security.dir/signed_entry.cc.o.d"
  "/root/repo/src/security/trust.cc" "src/security/CMakeFiles/vdg_security.dir/trust.cc.o" "gcc" "src/security/CMakeFiles/vdg_security.dir/trust.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
