# Empty dependencies file for vdg_security.
# This may be replaced when dependencies are built.
