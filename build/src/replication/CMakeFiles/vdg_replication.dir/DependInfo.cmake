
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replication/manager.cc" "src/replication/CMakeFiles/vdg_replication.dir/manager.cc.o" "gcc" "src/replication/CMakeFiles/vdg_replication.dir/manager.cc.o.d"
  "/root/repo/src/replication/policy.cc" "src/replication/CMakeFiles/vdg_replication.dir/policy.cc.o" "gcc" "src/replication/CMakeFiles/vdg_replication.dir/policy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/vdg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
