file(REMOVE_RECURSE
  "CMakeFiles/vdg_replication.dir/manager.cc.o"
  "CMakeFiles/vdg_replication.dir/manager.cc.o.d"
  "CMakeFiles/vdg_replication.dir/policy.cc.o"
  "CMakeFiles/vdg_replication.dir/policy.cc.o.d"
  "libvdg_replication.a"
  "libvdg_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
