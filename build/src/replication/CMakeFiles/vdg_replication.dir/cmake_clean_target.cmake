file(REMOVE_RECURSE
  "libvdg_replication.a"
)
