# Empty dependencies file for vdg_replication.
# This may be replaced when dependencies are built.
