# Empty compiler generated dependencies file for vdg_common.
# This may be replaced when dependencies are built.
