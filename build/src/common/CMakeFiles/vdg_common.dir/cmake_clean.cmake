file(REMOVE_RECURSE
  "CMakeFiles/vdg_common.dir/hash.cc.o"
  "CMakeFiles/vdg_common.dir/hash.cc.o.d"
  "CMakeFiles/vdg_common.dir/logging.cc.o"
  "CMakeFiles/vdg_common.dir/logging.cc.o.d"
  "CMakeFiles/vdg_common.dir/rng.cc.o"
  "CMakeFiles/vdg_common.dir/rng.cc.o.d"
  "CMakeFiles/vdg_common.dir/status.cc.o"
  "CMakeFiles/vdg_common.dir/status.cc.o.d"
  "CMakeFiles/vdg_common.dir/strings.cc.o"
  "CMakeFiles/vdg_common.dir/strings.cc.o.d"
  "CMakeFiles/vdg_common.dir/uri.cc.o"
  "CMakeFiles/vdg_common.dir/uri.cc.o.d"
  "libvdg_common.a"
  "libvdg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
