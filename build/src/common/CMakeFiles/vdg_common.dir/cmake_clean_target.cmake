file(REMOVE_RECURSE
  "libvdg_common.a"
)
