
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/federation/annotation_overlay.cc" "src/federation/CMakeFiles/vdg_federation.dir/annotation_overlay.cc.o" "gcc" "src/federation/CMakeFiles/vdg_federation.dir/annotation_overlay.cc.o.d"
  "/root/repo/src/federation/fed_provenance.cc" "src/federation/CMakeFiles/vdg_federation.dir/fed_provenance.cc.o" "gcc" "src/federation/CMakeFiles/vdg_federation.dir/fed_provenance.cc.o.d"
  "/root/repo/src/federation/index.cc" "src/federation/CMakeFiles/vdg_federation.dir/index.cc.o" "gcc" "src/federation/CMakeFiles/vdg_federation.dir/index.cc.o.d"
  "/root/repo/src/federation/promotion.cc" "src/federation/CMakeFiles/vdg_federation.dir/promotion.cc.o" "gcc" "src/federation/CMakeFiles/vdg_federation.dir/promotion.cc.o.d"
  "/root/repo/src/federation/registry.cc" "src/federation/CMakeFiles/vdg_federation.dir/registry.cc.o" "gcc" "src/federation/CMakeFiles/vdg_federation.dir/registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/provenance/CMakeFiles/vdg_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/vdg_security.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vdl/CMakeFiles/vdg_vdl.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/vdg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/vdg_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
