file(REMOVE_RECURSE
  "libvdg_federation.a"
)
