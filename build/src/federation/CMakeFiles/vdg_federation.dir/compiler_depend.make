# Empty compiler generated dependencies file for vdg_federation.
# This may be replaced when dependencies are built.
