file(REMOVE_RECURSE
  "CMakeFiles/vdg_federation.dir/annotation_overlay.cc.o"
  "CMakeFiles/vdg_federation.dir/annotation_overlay.cc.o.d"
  "CMakeFiles/vdg_federation.dir/fed_provenance.cc.o"
  "CMakeFiles/vdg_federation.dir/fed_provenance.cc.o.d"
  "CMakeFiles/vdg_federation.dir/index.cc.o"
  "CMakeFiles/vdg_federation.dir/index.cc.o.d"
  "CMakeFiles/vdg_federation.dir/promotion.cc.o"
  "CMakeFiles/vdg_federation.dir/promotion.cc.o.d"
  "CMakeFiles/vdg_federation.dir/registry.cc.o"
  "CMakeFiles/vdg_federation.dir/registry.cc.o.d"
  "libvdg_federation.a"
  "libvdg_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
