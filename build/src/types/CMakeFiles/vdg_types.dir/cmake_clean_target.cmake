file(REMOVE_RECURSE
  "libvdg_types.a"
)
