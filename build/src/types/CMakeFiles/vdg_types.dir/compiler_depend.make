# Empty compiler generated dependencies file for vdg_types.
# This may be replaced when dependencies are built.
