file(REMOVE_RECURSE
  "CMakeFiles/vdg_types.dir/type_system.cc.o"
  "CMakeFiles/vdg_types.dir/type_system.cc.o.d"
  "libvdg_types.a"
  "libvdg_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
