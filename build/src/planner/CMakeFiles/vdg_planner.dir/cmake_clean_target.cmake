file(REMOVE_RECURSE
  "libvdg_planner.a"
)
