# Empty dependencies file for vdg_planner.
# This may be replaced when dependencies are built.
