file(REMOVE_RECURSE
  "CMakeFiles/vdg_planner.dir/dax.cc.o"
  "CMakeFiles/vdg_planner.dir/dax.cc.o.d"
  "CMakeFiles/vdg_planner.dir/expansion.cc.o"
  "CMakeFiles/vdg_planner.dir/expansion.cc.o.d"
  "CMakeFiles/vdg_planner.dir/plan.cc.o"
  "CMakeFiles/vdg_planner.dir/plan.cc.o.d"
  "CMakeFiles/vdg_planner.dir/planner.cc.o"
  "CMakeFiles/vdg_planner.dir/planner.cc.o.d"
  "libvdg_planner.a"
  "libvdg_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
