file(REMOVE_RECURSE
  "CMakeFiles/vdg_provenance.dir/provenance.cc.o"
  "CMakeFiles/vdg_provenance.dir/provenance.cc.o.d"
  "libvdg_provenance.a"
  "libvdg_provenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
