# Empty compiler generated dependencies file for vdg_provenance.
# This may be replaced when dependencies are built.
