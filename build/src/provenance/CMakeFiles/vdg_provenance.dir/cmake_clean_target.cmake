file(REMOVE_RECURSE
  "libvdg_provenance.a"
)
