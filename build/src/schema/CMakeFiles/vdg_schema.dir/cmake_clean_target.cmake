file(REMOVE_RECURSE
  "libvdg_schema.a"
)
