file(REMOVE_RECURSE
  "CMakeFiles/vdg_schema.dir/attribute.cc.o"
  "CMakeFiles/vdg_schema.dir/attribute.cc.o.d"
  "CMakeFiles/vdg_schema.dir/dataset.cc.o"
  "CMakeFiles/vdg_schema.dir/dataset.cc.o.d"
  "CMakeFiles/vdg_schema.dir/derivation.cc.o"
  "CMakeFiles/vdg_schema.dir/derivation.cc.o.d"
  "CMakeFiles/vdg_schema.dir/transformation.cc.o"
  "CMakeFiles/vdg_schema.dir/transformation.cc.o.d"
  "CMakeFiles/vdg_schema.dir/validation.cc.o"
  "CMakeFiles/vdg_schema.dir/validation.cc.o.d"
  "libvdg_schema.a"
  "libvdg_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
