
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schema/attribute.cc" "src/schema/CMakeFiles/vdg_schema.dir/attribute.cc.o" "gcc" "src/schema/CMakeFiles/vdg_schema.dir/attribute.cc.o.d"
  "/root/repo/src/schema/dataset.cc" "src/schema/CMakeFiles/vdg_schema.dir/dataset.cc.o" "gcc" "src/schema/CMakeFiles/vdg_schema.dir/dataset.cc.o.d"
  "/root/repo/src/schema/derivation.cc" "src/schema/CMakeFiles/vdg_schema.dir/derivation.cc.o" "gcc" "src/schema/CMakeFiles/vdg_schema.dir/derivation.cc.o.d"
  "/root/repo/src/schema/transformation.cc" "src/schema/CMakeFiles/vdg_schema.dir/transformation.cc.o" "gcc" "src/schema/CMakeFiles/vdg_schema.dir/transformation.cc.o.d"
  "/root/repo/src/schema/validation.cc" "src/schema/CMakeFiles/vdg_schema.dir/validation.cc.o" "gcc" "src/schema/CMakeFiles/vdg_schema.dir/validation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/types/CMakeFiles/vdg_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
