# Empty dependencies file for vdg_schema.
# This may be replaced when dependencies are built.
