file(REMOVE_RECURSE
  "libvdg_grid.a"
)
