
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/event_queue.cc" "src/grid/CMakeFiles/vdg_grid.dir/event_queue.cc.o" "gcc" "src/grid/CMakeFiles/vdg_grid.dir/event_queue.cc.o.d"
  "/root/repo/src/grid/overlay.cc" "src/grid/CMakeFiles/vdg_grid.dir/overlay.cc.o" "gcc" "src/grid/CMakeFiles/vdg_grid.dir/overlay.cc.o.d"
  "/root/repo/src/grid/rls.cc" "src/grid/CMakeFiles/vdg_grid.dir/rls.cc.o" "gcc" "src/grid/CMakeFiles/vdg_grid.dir/rls.cc.o.d"
  "/root/repo/src/grid/simulator.cc" "src/grid/CMakeFiles/vdg_grid.dir/simulator.cc.o" "gcc" "src/grid/CMakeFiles/vdg_grid.dir/simulator.cc.o.d"
  "/root/repo/src/grid/storage.cc" "src/grid/CMakeFiles/vdg_grid.dir/storage.cc.o" "gcc" "src/grid/CMakeFiles/vdg_grid.dir/storage.cc.o.d"
  "/root/repo/src/grid/topology.cc" "src/grid/CMakeFiles/vdg_grid.dir/topology.cc.o" "gcc" "src/grid/CMakeFiles/vdg_grid.dir/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vdg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
