# Empty compiler generated dependencies file for vdg_grid.
# This may be replaced when dependencies are built.
