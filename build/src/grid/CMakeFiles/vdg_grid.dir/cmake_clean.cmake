file(REMOVE_RECURSE
  "CMakeFiles/vdg_grid.dir/event_queue.cc.o"
  "CMakeFiles/vdg_grid.dir/event_queue.cc.o.d"
  "CMakeFiles/vdg_grid.dir/overlay.cc.o"
  "CMakeFiles/vdg_grid.dir/overlay.cc.o.d"
  "CMakeFiles/vdg_grid.dir/rls.cc.o"
  "CMakeFiles/vdg_grid.dir/rls.cc.o.d"
  "CMakeFiles/vdg_grid.dir/simulator.cc.o"
  "CMakeFiles/vdg_grid.dir/simulator.cc.o.d"
  "CMakeFiles/vdg_grid.dir/storage.cc.o"
  "CMakeFiles/vdg_grid.dir/storage.cc.o.d"
  "CMakeFiles/vdg_grid.dir/topology.cc.o"
  "CMakeFiles/vdg_grid.dir/topology.cc.o.d"
  "libvdg_grid.a"
  "libvdg_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
