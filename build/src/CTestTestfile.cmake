# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("types")
subdirs("schema")
subdirs("vdl")
subdirs("catalog")
subdirs("security")
subdirs("provenance")
subdirs("grid")
subdirs("estimator")
subdirs("replication")
subdirs("versioning")
subdirs("planner")
subdirs("executor")
subdirs("federation")
subdirs("workload")
