file(REMOVE_RECURSE
  "CMakeFiles/vdg_executor.dir/executor.cc.o"
  "CMakeFiles/vdg_executor.dir/executor.cc.o.d"
  "libvdg_executor.a"
  "libvdg_executor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_executor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
