# Empty dependencies file for vdg_executor.
# This may be replaced when dependencies are built.
