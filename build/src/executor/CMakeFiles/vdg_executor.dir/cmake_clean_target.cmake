file(REMOVE_RECURSE
  "libvdg_executor.a"
)
