file(REMOVE_RECURSE
  "libvdg_catalog.a"
)
