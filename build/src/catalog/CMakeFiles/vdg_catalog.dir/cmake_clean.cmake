file(REMOVE_RECURSE
  "CMakeFiles/vdg_catalog.dir/catalog.cc.o"
  "CMakeFiles/vdg_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/vdg_catalog.dir/codec.cc.o"
  "CMakeFiles/vdg_catalog.dir/codec.cc.o.d"
  "CMakeFiles/vdg_catalog.dir/journal.cc.o"
  "CMakeFiles/vdg_catalog.dir/journal.cc.o.d"
  "libvdg_catalog.a"
  "libvdg_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
