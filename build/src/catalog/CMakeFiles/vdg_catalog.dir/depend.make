# Empty dependencies file for vdg_catalog.
# This may be replaced when dependencies are built.
