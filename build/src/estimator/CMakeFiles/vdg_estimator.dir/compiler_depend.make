# Empty compiler generated dependencies file for vdg_estimator.
# This may be replaced when dependencies are built.
