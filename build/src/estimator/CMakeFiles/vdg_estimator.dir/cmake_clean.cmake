file(REMOVE_RECURSE
  "CMakeFiles/vdg_estimator.dir/estimator.cc.o"
  "CMakeFiles/vdg_estimator.dir/estimator.cc.o.d"
  "libvdg_estimator.a"
  "libvdg_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
