file(REMOVE_RECURSE
  "libvdg_estimator.a"
)
