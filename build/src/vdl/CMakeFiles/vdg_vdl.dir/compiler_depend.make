# Empty compiler generated dependencies file for vdg_vdl.
# This may be replaced when dependencies are built.
