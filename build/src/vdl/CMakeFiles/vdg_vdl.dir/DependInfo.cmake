
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vdl/lexer.cc" "src/vdl/CMakeFiles/vdg_vdl.dir/lexer.cc.o" "gcc" "src/vdl/CMakeFiles/vdg_vdl.dir/lexer.cc.o.d"
  "/root/repo/src/vdl/parser.cc" "src/vdl/CMakeFiles/vdg_vdl.dir/parser.cc.o" "gcc" "src/vdl/CMakeFiles/vdg_vdl.dir/parser.cc.o.d"
  "/root/repo/src/vdl/printer.cc" "src/vdl/CMakeFiles/vdg_vdl.dir/printer.cc.o" "gcc" "src/vdl/CMakeFiles/vdg_vdl.dir/printer.cc.o.d"
  "/root/repo/src/vdl/xml.cc" "src/vdl/CMakeFiles/vdg_vdl.dir/xml.cc.o" "gcc" "src/vdl/CMakeFiles/vdg_vdl.dir/xml.cc.o.d"
  "/root/repo/src/vdl/xml_parse.cc" "src/vdl/CMakeFiles/vdg_vdl.dir/xml_parse.cc.o" "gcc" "src/vdl/CMakeFiles/vdg_vdl.dir/xml_parse.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/vdg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/vdg_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
