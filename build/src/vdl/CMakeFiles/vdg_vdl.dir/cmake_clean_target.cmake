file(REMOVE_RECURSE
  "libvdg_vdl.a"
)
