file(REMOVE_RECURSE
  "CMakeFiles/vdg_vdl.dir/lexer.cc.o"
  "CMakeFiles/vdg_vdl.dir/lexer.cc.o.d"
  "CMakeFiles/vdg_vdl.dir/parser.cc.o"
  "CMakeFiles/vdg_vdl.dir/parser.cc.o.d"
  "CMakeFiles/vdg_vdl.dir/printer.cc.o"
  "CMakeFiles/vdg_vdl.dir/printer.cc.o.d"
  "CMakeFiles/vdg_vdl.dir/xml.cc.o"
  "CMakeFiles/vdg_vdl.dir/xml.cc.o.d"
  "CMakeFiles/vdg_vdl.dir/xml_parse.cc.o"
  "CMakeFiles/vdg_vdl.dir/xml_parse.cc.o.d"
  "libvdg_vdl.a"
  "libvdg_vdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_vdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
