file(REMOVE_RECURSE
  "CMakeFiles/vdg_workload.dir/canonical.cc.o"
  "CMakeFiles/vdg_workload.dir/canonical.cc.o.d"
  "CMakeFiles/vdg_workload.dir/hep.cc.o"
  "CMakeFiles/vdg_workload.dir/hep.cc.o.d"
  "CMakeFiles/vdg_workload.dir/interactive.cc.o"
  "CMakeFiles/vdg_workload.dir/interactive.cc.o.d"
  "CMakeFiles/vdg_workload.dir/sdss.cc.o"
  "CMakeFiles/vdg_workload.dir/sdss.cc.o.d"
  "CMakeFiles/vdg_workload.dir/testbed.cc.o"
  "CMakeFiles/vdg_workload.dir/testbed.cc.o.d"
  "libvdg_workload.a"
  "libvdg_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
