
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/canonical.cc" "src/workload/CMakeFiles/vdg_workload.dir/canonical.cc.o" "gcc" "src/workload/CMakeFiles/vdg_workload.dir/canonical.cc.o.d"
  "/root/repo/src/workload/hep.cc" "src/workload/CMakeFiles/vdg_workload.dir/hep.cc.o" "gcc" "src/workload/CMakeFiles/vdg_workload.dir/hep.cc.o.d"
  "/root/repo/src/workload/interactive.cc" "src/workload/CMakeFiles/vdg_workload.dir/interactive.cc.o" "gcc" "src/workload/CMakeFiles/vdg_workload.dir/interactive.cc.o.d"
  "/root/repo/src/workload/sdss.cc" "src/workload/CMakeFiles/vdg_workload.dir/sdss.cc.o" "gcc" "src/workload/CMakeFiles/vdg_workload.dir/sdss.cc.o.d"
  "/root/repo/src/workload/testbed.cc" "src/workload/CMakeFiles/vdg_workload.dir/testbed.cc.o" "gcc" "src/workload/CMakeFiles/vdg_workload.dir/testbed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/vdg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/vdg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/vdg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vdl/CMakeFiles/vdg_vdl.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/vdg_types.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
