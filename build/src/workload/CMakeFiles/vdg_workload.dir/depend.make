# Empty dependencies file for vdg_workload.
# This may be replaced when dependencies are built.
