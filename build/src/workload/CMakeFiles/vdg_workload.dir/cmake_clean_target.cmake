file(REMOVE_RECURSE
  "libvdg_workload.a"
)
