file(REMOVE_RECURSE
  "libvdg_versioning.a"
)
