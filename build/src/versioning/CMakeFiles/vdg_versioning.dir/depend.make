# Empty dependencies file for vdg_versioning.
# This may be replaced when dependencies are built.
