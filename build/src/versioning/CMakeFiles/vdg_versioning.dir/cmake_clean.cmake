file(REMOVE_RECURSE
  "CMakeFiles/vdg_versioning.dir/versions.cc.o"
  "CMakeFiles/vdg_versioning.dir/versions.cc.o.d"
  "libvdg_versioning.a"
  "libvdg_versioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdg_versioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
