
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/vdg_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/federation/CMakeFiles/vdg_federation.dir/DependInfo.cmake"
  "/root/repo/build/src/executor/CMakeFiles/vdg_executor.dir/DependInfo.cmake"
  "/root/repo/build/src/versioning/CMakeFiles/vdg_versioning.dir/DependInfo.cmake"
  "/root/repo/build/src/planner/CMakeFiles/vdg_planner.dir/DependInfo.cmake"
  "/root/repo/build/src/replication/CMakeFiles/vdg_replication.dir/DependInfo.cmake"
  "/root/repo/build/src/estimator/CMakeFiles/vdg_estimator.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/vdg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/provenance/CMakeFiles/vdg_provenance.dir/DependInfo.cmake"
  "/root/repo/build/src/security/CMakeFiles/vdg_security.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/vdg_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/vdl/CMakeFiles/vdg_vdl.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/vdg_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/vdg_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vdg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
