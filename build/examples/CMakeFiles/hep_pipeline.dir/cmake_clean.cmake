file(REMOVE_RECURSE
  "CMakeFiles/hep_pipeline.dir/hep_pipeline.cpp.o"
  "CMakeFiles/hep_pipeline.dir/hep_pipeline.cpp.o.d"
  "hep_pipeline"
  "hep_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hep_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
