# Empty compiler generated dependencies file for hep_pipeline.
# This may be replaced when dependencies are built.
