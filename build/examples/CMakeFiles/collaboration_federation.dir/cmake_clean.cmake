file(REMOVE_RECURSE
  "CMakeFiles/collaboration_federation.dir/collaboration_federation.cpp.o"
  "CMakeFiles/collaboration_federation.dir/collaboration_federation.cpp.o.d"
  "collaboration_federation"
  "collaboration_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collaboration_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
