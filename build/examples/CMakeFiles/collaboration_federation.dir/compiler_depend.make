# Empty compiler generated dependencies file for collaboration_federation.
# This may be replaced when dependencies are built.
