file(REMOVE_RECURSE
  "CMakeFiles/evolving_analysis.dir/evolving_analysis.cpp.o"
  "CMakeFiles/evolving_analysis.dir/evolving_analysis.cpp.o.d"
  "evolving_analysis"
  "evolving_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evolving_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
