# Empty dependencies file for evolving_analysis.
# This may be replaced when dependencies are built.
