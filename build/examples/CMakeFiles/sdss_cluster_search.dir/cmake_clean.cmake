file(REMOVE_RECURSE
  "CMakeFiles/sdss_cluster_search.dir/sdss_cluster_search.cpp.o"
  "CMakeFiles/sdss_cluster_search.dir/sdss_cluster_search.cpp.o.d"
  "sdss_cluster_search"
  "sdss_cluster_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sdss_cluster_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
