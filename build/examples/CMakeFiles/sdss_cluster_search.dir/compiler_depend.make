# Empty compiler generated dependencies file for sdss_cluster_search.
# This may be replaced when dependencies are built.
