file(REMOVE_RECURSE
  "CMakeFiles/test_attribute.dir/test_attribute.cc.o"
  "CMakeFiles/test_attribute.dir/test_attribute.cc.o.d"
  "test_attribute"
  "test_attribute.pdb"
  "test_attribute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
