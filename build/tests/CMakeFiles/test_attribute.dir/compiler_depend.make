# Empty compiler generated dependencies file for test_attribute.
# This may be replaced when dependencies are built.
