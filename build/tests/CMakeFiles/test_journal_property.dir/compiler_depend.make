# Empty compiler generated dependencies file for test_journal_property.
# This may be replaced when dependencies are built.
