file(REMOVE_RECURSE
  "CMakeFiles/test_journal_property.dir/test_journal_property.cc.o"
  "CMakeFiles/test_journal_property.dir/test_journal_property.cc.o.d"
  "test_journal_property"
  "test_journal_property.pdb"
  "test_journal_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_journal_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
