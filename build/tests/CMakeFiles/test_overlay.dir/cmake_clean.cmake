file(REMOVE_RECURSE
  "CMakeFiles/test_overlay.dir/test_overlay.cc.o"
  "CMakeFiles/test_overlay.dir/test_overlay.cc.o.d"
  "test_overlay"
  "test_overlay.pdb"
  "test_overlay[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
