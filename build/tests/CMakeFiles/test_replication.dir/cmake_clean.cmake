file(REMOVE_RECURSE
  "CMakeFiles/test_replication.dir/test_replication.cc.o"
  "CMakeFiles/test_replication.dir/test_replication.cc.o.d"
  "test_replication"
  "test_replication.pdb"
  "test_replication[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
