# Empty compiler generated dependencies file for test_uri.
# This may be replaced when dependencies are built.
