file(REMOVE_RECURSE
  "CMakeFiles/test_uri.dir/test_uri.cc.o"
  "CMakeFiles/test_uri.dir/test_uri.cc.o.d"
  "test_uri"
  "test_uri.pdb"
  "test_uri[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_uri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
