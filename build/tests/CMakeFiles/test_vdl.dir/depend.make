# Empty dependencies file for test_vdl.
# This may be replaced when dependencies are built.
