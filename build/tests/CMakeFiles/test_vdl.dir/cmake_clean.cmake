file(REMOVE_RECURSE
  "CMakeFiles/test_vdl.dir/test_vdl.cc.o"
  "CMakeFiles/test_vdl.dir/test_vdl.cc.o.d"
  "test_vdl"
  "test_vdl.pdb"
  "test_vdl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
