file(REMOVE_RECURSE
  "CMakeFiles/test_planner.dir/test_planner.cc.o"
  "CMakeFiles/test_planner.dir/test_planner.cc.o.d"
  "test_planner"
  "test_planner.pdb"
  "test_planner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
