# Empty dependencies file for test_planner.
# This may be replaced when dependencies are built.
