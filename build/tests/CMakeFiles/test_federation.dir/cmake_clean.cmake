file(REMOVE_RECURSE
  "CMakeFiles/test_federation.dir/test_federation.cc.o"
  "CMakeFiles/test_federation.dir/test_federation.cc.o.d"
  "test_federation"
  "test_federation.pdb"
  "test_federation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
