# Empty dependencies file for test_federation.
# This may be replaced when dependencies are built.
