# Empty compiler generated dependencies file for test_vdl_xml.
# This may be replaced when dependencies are built.
