file(REMOVE_RECURSE
  "CMakeFiles/test_vdl_xml.dir/test_vdl_xml.cc.o"
  "CMakeFiles/test_vdl_xml.dir/test_vdl_xml.cc.o.d"
  "test_vdl_xml"
  "test_vdl_xml.pdb"
  "test_vdl_xml[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vdl_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
