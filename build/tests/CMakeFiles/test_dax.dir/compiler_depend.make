# Empty compiler generated dependencies file for test_dax.
# This may be replaced when dependencies are built.
