file(REMOVE_RECURSE
  "CMakeFiles/test_dax.dir/test_dax.cc.o"
  "CMakeFiles/test_dax.dir/test_dax.cc.o.d"
  "test_dax"
  "test_dax.pdb"
  "test_dax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
