file(REMOVE_RECURSE
  "CMakeFiles/test_schema.dir/test_schema.cc.o"
  "CMakeFiles/test_schema.dir/test_schema.cc.o.d"
  "test_schema"
  "test_schema.pdb"
  "test_schema[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
