# Empty compiler generated dependencies file for test_schema.
# This may be replaced when dependencies are built.
