file(REMOVE_RECURSE
  "CMakeFiles/test_grid.dir/test_grid.cc.o"
  "CMakeFiles/test_grid.dir/test_grid.cc.o.d"
  "test_grid"
  "test_grid.pdb"
  "test_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
