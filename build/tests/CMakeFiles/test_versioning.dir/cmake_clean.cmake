file(REMOVE_RECURSE
  "CMakeFiles/test_versioning.dir/test_versioning.cc.o"
  "CMakeFiles/test_versioning.dir/test_versioning.cc.o.d"
  "test_versioning"
  "test_versioning.pdb"
  "test_versioning[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_versioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
