file(REMOVE_RECURSE
  "CMakeFiles/test_vdl_fuzz.dir/test_vdl_fuzz.cc.o"
  "CMakeFiles/test_vdl_fuzz.dir/test_vdl_fuzz.cc.o.d"
  "test_vdl_fuzz"
  "test_vdl_fuzz.pdb"
  "test_vdl_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vdl_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
