# Empty compiler generated dependencies file for test_vdl_fuzz.
# This may be replaced when dependencies are built.
