file(REMOVE_RECURSE
  "CMakeFiles/test_security.dir/test_security.cc.o"
  "CMakeFiles/test_security.dir/test_security.cc.o.d"
  "test_security"
  "test_security.pdb"
  "test_security[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
