# Empty dependencies file for test_security.
# This may be replaced when dependencies are built.
