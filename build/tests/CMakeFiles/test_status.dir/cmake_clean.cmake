file(REMOVE_RECURSE
  "CMakeFiles/test_status.dir/test_status.cc.o"
  "CMakeFiles/test_status.dir/test_status.cc.o.d"
  "test_status"
  "test_status.pdb"
  "test_status[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_status.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
