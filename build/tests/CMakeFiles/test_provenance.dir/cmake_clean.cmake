file(REMOVE_RECURSE
  "CMakeFiles/test_provenance.dir/test_provenance.cc.o"
  "CMakeFiles/test_provenance.dir/test_provenance.cc.o.d"
  "test_provenance"
  "test_provenance.pdb"
  "test_provenance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_provenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
