# Empty dependencies file for test_provenance.
# This may be replaced when dependencies are built.
