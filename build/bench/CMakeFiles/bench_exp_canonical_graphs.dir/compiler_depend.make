# Empty compiler generated dependencies file for bench_exp_canonical_graphs.
# This may be replaced when dependencies are built.
