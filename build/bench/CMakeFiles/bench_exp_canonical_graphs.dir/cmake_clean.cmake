file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_canonical_graphs.dir/bench_exp_canonical_graphs.cc.o"
  "CMakeFiles/bench_exp_canonical_graphs.dir/bench_exp_canonical_graphs.cc.o.d"
  "bench_exp_canonical_graphs"
  "bench_exp_canonical_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_canonical_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
