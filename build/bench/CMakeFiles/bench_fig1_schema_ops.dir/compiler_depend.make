# Empty compiler generated dependencies file for bench_fig1_schema_ops.
# This may be replaced when dependencies are built.
