file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_schema_ops.dir/bench_fig1_schema_ops.cc.o"
  "CMakeFiles/bench_fig1_schema_ops.dir/bench_fig1_schema_ops.cc.o.d"
  "bench_fig1_schema_ops"
  "bench_fig1_schema_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_schema_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
