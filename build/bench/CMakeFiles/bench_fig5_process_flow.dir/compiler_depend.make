# Empty compiler generated dependencies file for bench_fig5_process_flow.
# This may be replaced when dependencies are built.
