file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_process_flow.dir/bench_fig5_process_flow.cc.o"
  "CMakeFiles/bench_fig5_process_flow.dir/bench_fig5_process_flow.cc.o.d"
  "bench_fig5_process_flow"
  "bench_fig5_process_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_process_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
