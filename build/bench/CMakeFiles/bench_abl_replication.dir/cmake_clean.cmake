file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_replication.dir/bench_abl_replication.cc.o"
  "CMakeFiles/bench_abl_replication.dir/bench_abl_replication.cc.o.d"
  "bench_abl_replication"
  "bench_abl_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
