# Empty dependencies file for bench_abl_replication.
# This may be replaced when dependencies are built.
