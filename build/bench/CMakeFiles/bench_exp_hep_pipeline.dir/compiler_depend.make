# Empty compiler generated dependencies file for bench_exp_hep_pipeline.
# This may be replaced when dependencies are built.
