file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_hep_pipeline.dir/bench_exp_hep_pipeline.cc.o"
  "CMakeFiles/bench_exp_hep_pipeline.dir/bench_exp_hep_pipeline.cc.o.d"
  "bench_exp_hep_pipeline"
  "bench_exp_hep_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_hep_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
