# Empty compiler generated dependencies file for bench_abl_rerun_vs_fetch.
# This may be replaced when dependencies are built.
