file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_rerun_vs_fetch.dir/bench_abl_rerun_vs_fetch.cc.o"
  "CMakeFiles/bench_abl_rerun_vs_fetch.dir/bench_abl_rerun_vs_fetch.cc.o.d"
  "bench_abl_rerun_vs_fetch"
  "bench_abl_rerun_vs_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_rerun_vs_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
