# Empty compiler generated dependencies file for bench_exp_interactive_analysis.
# This may be replaced when dependencies are built.
