file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_interactive_analysis.dir/bench_exp_interactive_analysis.cc.o"
  "CMakeFiles/bench_exp_interactive_analysis.dir/bench_exp_interactive_analysis.cc.o.d"
  "bench_exp_interactive_analysis"
  "bench_exp_interactive_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_interactive_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
