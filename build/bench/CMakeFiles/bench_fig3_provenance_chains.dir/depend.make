# Empty dependencies file for bench_fig3_provenance_chains.
# This may be replaced when dependencies are built.
