file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_provenance_chains.dir/bench_fig3_provenance_chains.cc.o"
  "CMakeFiles/bench_fig3_provenance_chains.dir/bench_fig3_provenance_chains.cc.o.d"
  "bench_fig3_provenance_chains"
  "bench_fig3_provenance_chains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_provenance_chains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
