file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dedup.dir/bench_abl_dedup.cc.o"
  "CMakeFiles/bench_abl_dedup.dir/bench_abl_dedup.cc.o.d"
  "bench_abl_dedup"
  "bench_abl_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
