# Empty compiler generated dependencies file for bench_abl_dedup.
# This may be replaced when dependencies are built.
