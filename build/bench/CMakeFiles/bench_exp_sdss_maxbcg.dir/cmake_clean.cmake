file(REMOVE_RECURSE
  "CMakeFiles/bench_exp_sdss_maxbcg.dir/bench_exp_sdss_maxbcg.cc.o"
  "CMakeFiles/bench_exp_sdss_maxbcg.dir/bench_exp_sdss_maxbcg.cc.o.d"
  "bench_exp_sdss_maxbcg"
  "bench_exp_sdss_maxbcg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp_sdss_maxbcg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
