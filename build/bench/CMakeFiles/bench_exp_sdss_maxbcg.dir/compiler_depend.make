# Empty compiler generated dependencies file for bench_exp_sdss_maxbcg.
# This may be replaced when dependencies are built.
