file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_federated_index.dir/bench_fig4_federated_index.cc.o"
  "CMakeFiles/bench_fig4_federated_index.dir/bench_fig4_federated_index.cc.o.d"
  "bench_fig4_federated_index"
  "bench_fig4_federated_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_federated_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
