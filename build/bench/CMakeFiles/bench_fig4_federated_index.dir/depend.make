# Empty dependencies file for bench_fig4_federated_index.
# This may be replaced when dependencies are built.
