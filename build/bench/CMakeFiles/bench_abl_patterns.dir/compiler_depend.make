# Empty compiler generated dependencies file for bench_abl_patterns.
# This may be replaced when dependencies are built.
