file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_patterns.dir/bench_abl_patterns.cc.o"
  "CMakeFiles/bench_abl_patterns.dir/bench_abl_patterns.cc.o.d"
  "bench_abl_patterns"
  "bench_abl_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
