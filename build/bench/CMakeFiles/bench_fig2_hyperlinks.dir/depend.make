# Empty dependencies file for bench_fig2_hyperlinks.
# This may be replaced when dependencies are built.
