file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_hyperlinks.dir/bench_fig2_hyperlinks.cc.o"
  "CMakeFiles/bench_fig2_hyperlinks.dir/bench_fig2_hyperlinks.cc.o.d"
  "bench_fig2_hyperlinks"
  "bench_fig2_hyperlinks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_hyperlinks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
