#include "common/logging.h"

#include <cstdio>

namespace vdg {

namespace {
LogLevel g_threshold = LogLevel::kWarning;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel Logger::threshold() { return g_threshold; }

void Logger::set_threshold(LogLevel level) { g_threshold = level; }

void Logger::Log(LogLevel level, const std::string& message) {
  if (level < g_threshold) return;
  std::fprintf(stderr, "[vdg %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace vdg
