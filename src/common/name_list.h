#ifndef VDG_COMMON_NAME_LIST_H_
#define VDG_COMMON_NAME_LIST_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vdg {

/// The result-plane list type: an immutable, shareable sequence of
/// names that never copies the underlying bytes between producer and
/// consumer.
///
/// A NameList is a shared_ptr to one frozen representation holding
///  - a *pin*: an opaque shared owner (a CatalogSnapshot, a decoded
///    wire arena, or the list's own string storage) that keeps every
///    viewed byte alive for at least the list's lifetime,
///  - the element views (`std::string_view`s into pinned storage), and
///  - optionally the producer's 32-bit symbol ids, parallel to the
///    views, so federation-internal consumers can stay in interned
///    space.
///
/// Ownership and lifetime rules (DESIGN.md §15):
///  - Copying a NameList copies one shared_ptr; all copies alias one
///    immutable rep, so pointer identity (`identity()`) tells whether
///    two lists share storage.
///  - Views stay byte-stable for the life of any copy of the list:
///    snapshot-backed lists pin their CatalogSnapshot (concurrent
///    catalog mutation, snapshot republication, and journal compaction
///    never touch a published snapshot), arena-backed lists pin their
///    decode buffer, owned lists pin their own strings.
///  - Conversion to owned strings is lazy and explicit: ToStrings()
///    materializes a fresh vector<string> only when a caller truly
///    needs ownership (the compatibility path, not the hot path).
class NameList {
 public:
  /// Matches SymbolTable::Id without dragging in the interner header.
  using Id = uint32_t;

  /// The empty list (no rep allocated at all).
  NameList() = default;

  /// A list of views into storage owned by `pin`. `ids`, when
  /// non-empty, must be parallel to `views` (producer symbol ids).
  static NameList FromViews(std::shared_ptr<const void> pin,
                            std::vector<std::string_view> views,
                            std::vector<Id> ids = {});

  /// A self-owning list: adopts the strings and views into them. The
  /// compatibility constructor for producers that only have owned
  /// strings (type hierarchies, tests).
  static NameList FromStrings(std::vector<std::string> names);

  /// Builds a list over one contiguous arena buffer: the wire decoder
  /// appends every name into a single allocation and the finished list
  /// views into it. One heap buffer per response instead of one string
  /// per name.
  class ArenaBuilder {
   public:
    ArenaBuilder() = default;
    /// Pre-sizes for `names` elements totalling `bytes` of name data.
    void Reserve(size_t names, size_t bytes);
    void Append(std::string_view name);
    size_t size() const { return spans_.size(); }
    /// Freezes the arena into a NameList. The builder is left empty.
    NameList Build() &&;

   private:
    std::string arena_;
    std::vector<std::pair<uint32_t, uint32_t>> spans_;  // (offset, length)
  };

  size_t size() const { return rep_ ? rep_->views.size() : 0; }
  bool empty() const { return size() == 0; }
  std::string_view operator[](size_t i) const { return rep_->views[i]; }
  std::string_view front() const { return rep_->views.front(); }
  std::string_view back() const { return rep_->views.back(); }

  using const_iterator = const std::string_view*;
  const_iterator begin() const {
    return rep_ ? rep_->views.data() : nullptr;
  }
  const_iterator end() const {
    return rep_ ? rep_->views.data() + rep_->views.size() : nullptr;
  }

  /// True when the producer attached its interned symbol ids.
  bool has_ids() const { return rep_ && !rep_->ids.empty(); }
  /// Producer symbol ids parallel to the views; empty when the
  /// producer had none (owned/arena lists). Ids are meaningful only to
  /// the catalog generation that produced them.
  const std::vector<Id>& ids() const {
    static const std::vector<Id> kEmpty;
    return rep_ ? rep_->ids : kEmpty;
  }

  /// Owned-string conversion: the explicit compatibility copy.
  std::vector<std::string> ToStrings() const;

  /// Identity of the shared rep: equal for lists that alias the same
  /// storage (e.g. repeated cache hits), nullptr for the empty list.
  const void* identity() const { return rep_.get(); }

  friend bool operator==(const NameList& a, const NameList& b);
  friend bool operator==(const NameList& a,
                         const std::vector<std::string>& b);
  friend bool operator==(const std::vector<std::string>& a,
                         const NameList& b) {
    return b == a;
  }
  friend bool operator!=(const NameList& a, const NameList& b) {
    return !(a == b);
  }
  friend bool operator!=(const NameList& a,
                         const std::vector<std::string>& b) {
    return !(a == b);
  }
  friend bool operator!=(const std::vector<std::string>& a,
                         const NameList& b) {
    return !(b == a);
  }

  /// Readable gtest/failure rendering: ["a", "b", ...].
  friend std::ostream& operator<<(std::ostream& os, const NameList& list);

 private:
  struct Rep {
    std::shared_ptr<const void> pin;      // keeps viewed bytes alive
    std::vector<std::string> owned;       // self-owning lists only
    std::vector<std::string_view> views;  // into pin/owned storage
    std::vector<Id> ids;                  // parallel to views, or empty
  };

  explicit NameList(std::shared_ptr<const Rep> rep) : rep_(std::move(rep)) {}

  std::shared_ptr<const Rep> rep_;
};

}  // namespace vdg

#endif  // VDG_COMMON_NAME_LIST_H_
