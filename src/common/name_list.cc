#include "common/name_list.h"

namespace vdg {

NameList NameList::FromViews(std::shared_ptr<const void> pin,
                             std::vector<std::string_view> views,
                             std::vector<Id> ids) {
  if (views.empty()) return NameList();
  auto rep = std::make_shared<Rep>();
  rep->pin = std::move(pin);
  rep->views = std::move(views);
  rep->ids = std::move(ids);
  return NameList(std::move(rep));
}

NameList NameList::FromStrings(std::vector<std::string> names) {
  if (names.empty()) return NameList();
  auto rep = std::make_shared<Rep>();
  rep->owned = std::move(names);
  // Views are taken only after the strings reach their final slots:
  // the vector is never touched again, so neither its element array
  // nor any string's character buffer (heap or SSO, inside the
  // element) can move for the rep's lifetime.
  rep->views.reserve(rep->owned.size());
  for (const std::string& name : rep->owned) rep->views.emplace_back(name);
  return NameList(std::move(rep));
}

void NameList::ArenaBuilder::Reserve(size_t names, size_t bytes) {
  spans_.reserve(names);
  arena_.reserve(bytes);
}

void NameList::ArenaBuilder::Append(std::string_view name) {
  spans_.emplace_back(static_cast<uint32_t>(arena_.size()),
                      static_cast<uint32_t>(name.size()));
  arena_.append(name.data(), name.size());
}

NameList NameList::ArenaBuilder::Build() && {
  if (spans_.empty()) return NameList();
  auto arena = std::make_shared<const std::string>(std::move(arena_));
  std::vector<std::string_view> views;
  views.reserve(spans_.size());
  for (const auto& [offset, length] : spans_) {
    views.push_back(std::string_view(*arena).substr(offset, length));
  }
  spans_.clear();
  return FromViews(std::move(arena), std::move(views));
}

std::vector<std::string> NameList::ToStrings() const {
  std::vector<std::string> out;
  out.reserve(size());
  for (std::string_view name : *this) out.emplace_back(name);
  return out;
}

bool operator==(const NameList& a, const NameList& b) {
  if (a.rep_ == b.rep_) return true;
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

bool operator==(const NameList& a, const std::vector<std::string>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

std::ostream& operator<<(std::ostream& os, const NameList& list) {
  os << '[';
  for (size_t i = 0; i < list.size(); ++i) {
    if (i != 0) os << ", ";
    os << '"' << list[i] << '"';
  }
  return os << ']';
}

}  // namespace vdg
