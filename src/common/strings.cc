#include "common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>

namespace vdg {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> StrSplitTrimmed(std::string_view input, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : StrSplit(input, sep)) {
    std::string_view trimmed = StrTrim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsValidIdentifier(std::string_view s) {
  if (s.empty()) return false;
  unsigned char first = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(first) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && c != '_' && c != '.' && c != '-') return false;
  }
  return true;
}

std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string FormatDoubleRoundTrip(double value) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {  // cannot happen with a 64-byte buffer
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }
  return std::string(buf, ptr);
}

std::string_view SymbolTable::View::NameOf(Id id) const {
  if (id >= count_ || spine_ == nullptr) return {};
  return (*(*spine_)[id / kChunkCapacity])[id % kChunkCapacity];
}

SymbolTable::Id SymbolTable::View::FindId(std::string_view name) const {
  if (by_name_ == nullptr) return kNoSymbol;
  auto it = std::lower_bound(
      by_name_->begin(), by_name_->end(), name,
      [this](Id id, std::string_view target) { return NameOf(id) < target; });
  if (it == by_name_->end() || NameOf(*it) != name) return kNoSymbol;
  return *it;
}

SymbolTable::Id SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const Id id = static_cast<Id>(count_);
  const size_t slot = count_ % kChunkCapacity;
  if (slot == 0) {
    // Pre-size the chunk so the vector's metadata and element array
    // never change after creation: the writer assigns into slots the
    // published count has not reached, readers index below it.
    auto chunk = std::make_shared<Chunk>(kChunkCapacity);
    spine_.push_back(std::move(chunk));
  }
  Chunk& chunk = *spine_.back();
  chunk[slot] = std::string(name);
  ++count_;
  index_.emplace(std::string_view(chunk[slot]), id);
  return id;
}

SymbolTable::Id SymbolTable::Find(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNoSymbol : it->second;
}

std::string_view SymbolTable::NameOf(Id id) const {
  if (id >= count_) return {};
  return (*spine_[id / kChunkCapacity])[id % kChunkCapacity];
}

SymbolTable::View SymbolTable::Publish() {
  if (dirty() || published_spine_ == nullptr) {
    published_spine_ =
        std::make_shared<const std::vector<std::shared_ptr<Chunk>>>(spine_);
    auto by_name = std::make_shared<std::vector<Id>>();
    by_name->reserve(count_);
    // index_ is ordered by name, so one pass yields the sorted ids.
    for (const auto& [name, id] : index_) by_name->push_back(id);
    published_by_name_ = std::move(by_name);
    published_count_ = count_;
  }
  View view;
  view.spine_ = published_spine_;
  view.by_name_ = published_by_name_;
  view.count_ = published_count_;
  return view;
}

}  // namespace vdg
