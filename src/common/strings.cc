#include "common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace vdg {

std::vector<std::string> StrSplit(std::string_view input, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(input.substr(start));
      break;
    }
    out.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> StrSplitTrimmed(std::string_view input, char sep) {
  std::vector<std::string> out;
  for (const std::string& piece : StrSplit(input, sep)) {
    std::string_view trimmed = StrTrim(piece);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view StrTrim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool IsValidIdentifier(std::string_view s) {
  if (s.empty()) return false;
  unsigned char first = static_cast<unsigned char>(s[0]);
  if (!std::isalpha(first) && s[0] != '_') return false;
  for (char c : s.substr(1)) {
    unsigned char uc = static_cast<unsigned char>(c);
    if (!std::isalnum(uc) && c != '_' && c != '.' && c != '-') return false;
  }
  return true;
}

std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      break;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  return out;
}

std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

std::string FormatDoubleRoundTrip(double value) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  if (ec != std::errc()) {  // cannot happen with a 64-byte buffer
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }
  return std::string(buf, ptr);
}

}  // namespace vdg
