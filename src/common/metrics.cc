#include "common/metrics.h"

#include <algorithm>

namespace vdg {

LatencyHistogram::LatencyHistogram() : buckets_(kBucketCount, 0) {}

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  if (value < kLinearMax) return static_cast<size_t>(value);
  const int msb = 63 - __builtin_clzll(value);
  const int shift = msb - static_cast<int>(kSubBits);
  const size_t group = static_cast<size_t>(msb) - (kSubBits + 1);
  const size_t sub = static_cast<size_t>(value >> shift) - kSubCount;
  return kLinearMax + group * kSubCount + sub;
}

uint64_t LatencyHistogram::BucketUpperBound(size_t index) {
  if (index < kLinearMax) return static_cast<uint64_t>(index);
  const size_t group = (index - kLinearMax) / kSubCount;
  const size_t sub = (index - kLinearMax) % kSubCount;
  const int shift = static_cast<int>(group) + 1;
  const uint64_t lower = static_cast<uint64_t>(kSubCount + sub) << shift;
  return lower + ((uint64_t{1} << shift) - 1);
}

void LatencyHistogram::RecordN(uint64_t value, uint64_t count) {
  if (count == 0) return;
  buckets_[BucketIndex(value)] += count;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += count;
  sum_ += static_cast<double>(value) * static_cast<double>(count);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target sample, 1-based; q=0 -> first sample.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) return std::min(BucketUpperBound(i), max_);
  }
  return max_;
}

}  // namespace vdg
