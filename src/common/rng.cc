#include "common/rng.h"

#include <cmath>

namespace vdg {

size_t Rng::Zipf(size_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return Index(n);
  // Inverse-CDF sampling over the (small-n) harmonic weights. The
  // workloads use n up to a few thousand, so the O(n) scan is fine and
  // keeps the draw exactly reproducible across platforms.
  double norm = 0.0;
  for (size_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(double(i), s);
  double u = Uniform(0.0, 1.0) * norm;
  double acc = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(double(i), s);
    if (u <= acc) return i - 1;
  }
  return n - 1;
}

}  // namespace vdg
