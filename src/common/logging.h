#ifndef VDG_COMMON_LOGGING_H_
#define VDG_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace vdg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Benchmarks raise the
/// threshold to kError so simulator chatter does not pollute results.
class Logger {
 public:
  static LogLevel threshold();
  static void set_threshold(LogLevel level);
  static void Log(LogLevel level, const std::string& message);
};

namespace internal_logging {

/// Collects one log statement and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Log(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define VDG_LOG(level) \
  ::vdg::internal_logging::LogMessage(::vdg::LogLevel::k##level)

}  // namespace vdg

#endif  // VDG_COMMON_LOGGING_H_
