#ifndef VDG_COMMON_URI_H_
#define VDG_COMMON_URI_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace vdg {

/// A parsed `vdp://` virtual-data-pointer URI, the inter-catalog
/// hyperlink form shown in Figure 2 of the paper:
///
///   vdp://physics.wisconsin.edu/srch
///   vdp://host[:port]/object-name
///
/// `authority` names the catalog server; `path` names the object within
/// that catalog (a transformation, derivation, or dataset name).
struct VdpUri {
  std::string authority;  // catalog server, e.g. "physics.wisconsin.edu"
  std::string path;       // object name within the catalog, e.g. "srch"

  std::string ToString() const { return "vdp://" + authority + "/" + path; }

  bool operator==(const VdpUri& other) const {
    return authority == other.authority && path == other.path;
  }
};

/// Parses "vdp://authority/path". Fails with ParseError on malformed
/// input (missing scheme, empty authority, or empty path).
Result<VdpUri> ParseVdpUri(std::string_view uri);

/// True when `name` is a vdp:// reference rather than a local name.
bool IsVdpUri(std::string_view name);

/// Renders the canonical vdp:// hyperlink for `name` in the catalog
/// named `authority` — the one spelling every layer agrees on.
std::string MakeVdpRef(std::string_view authority, std::string_view name);

}  // namespace vdg

#endif  // VDG_COMMON_URI_H_
