#include "common/hash.h"

#include <cstring>

namespace vdg {

uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {

constexpr std::array<uint32_t, 256> MakeCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrc32Table();

}  // namespace

uint32_t Crc32(std::string_view data) {
  uint32_t crc = 0xFFFFFFFFu;
  for (char ch : data) {
    crc = kCrc32Table[(crc ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

uint32_t Crc32Extend(uint32_t crc, std::string_view data) {
  // Un-finalize the incoming value, absorb, re-finalize: the running
  // form composes (extending A's CRC with B equals Crc32(A + B)).
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = kCrc32Table[(c ^ static_cast<uint8_t>(ch)) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

namespace {

constexpr uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t Rotr(uint32_t x, int n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
             0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::Update(std::string_view data) {
  Update(reinterpret_cast<const uint8_t*>(data.data()), data.size());
}

void Sha256::Update(const uint8_t* data, size_t len) {
  total_bytes_ += len;
  while (len > 0) {
    size_t take = std::min(len, buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data, take);
    buffer_len_ += take;
    data += take;
    len -= take;
    if (buffer_len_ == buffer_.size()) {
      ProcessBlock(buffer_.data());
      buffer_len_ = 0;
    }
  }
}

void Sha256::ProcessBlock(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<uint32_t>(block[i * 4]) << 24) |
           (static_cast<uint32_t>(block[i * 4 + 1]) << 16) |
           (static_cast<uint32_t>(block[i * 4 + 2]) << 8) |
           static_cast<uint32_t>(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
    uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t temp2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + temp1;
    d = c;
    c = b;
    b = a;
    a = temp1 + temp2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

Sha256::Digest Sha256::Finish() {
  uint64_t bit_len = total_bytes_ * 8;
  // Padding: 0x80, zeros, then the 64-bit big-endian length.
  uint8_t pad = 0x80;
  Update(&pad, 1);
  uint8_t zero = 0;
  while (buffer_len_ != 56) {
    Update(&zero, 1);
    // Update() bumps total_bytes_, but length was already captured.
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(len_bytes, 8);

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[i * 4] = static_cast<uint8_t>(state_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Sha256::Digest Sha256::Hash(std::string_view data) {
  Sha256 hasher;
  hasher.Update(data);
  return hasher.Finish();
}

std::string Sha256::HexDigest(std::string_view data) {
  return ToHex(Hash(data));
}

std::string ToHex(const uint8_t* data, size_t len) {
  static const char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  return out;
}

std::string ToHex(const Sha256::Digest& digest) {
  return ToHex(digest.data(), digest.size());
}

}  // namespace vdg
