#include "common/status.h"

namespace vdg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace vdg
