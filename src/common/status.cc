#include "common/status.h"

namespace vdg {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kPermissionDenied:
      return "PermissionDenied";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

namespace {
// Suffix marker carried in the message of retry-unsafe errors; a
// textual marker (rather than a new frame field) keeps the wire codec
// and its version-1 decoders unchanged.
constexpr const char kRetryUnsafeMarker[] = " [retry-unsafe]";
constexpr size_t kRetryUnsafeMarkerLen = sizeof(kRetryUnsafeMarker) - 1;
}  // namespace

Status Status::MarkRetryUnsafe(Status s) {
  if (s.ok() || !s.retry_safe()) return s;
  return Status(s.code(), s.message() + kRetryUnsafeMarker);
}

bool Status::retry_safe() const {
  if (message_.size() < kRetryUnsafeMarkerLen) return true;
  return message_.compare(message_.size() - kRetryUnsafeMarkerLen,
                          kRetryUnsafeMarkerLen, kRetryUnsafeMarker) != 0;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace vdg
