#ifndef VDG_COMMON_RNG_H_
#define VDG_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace vdg {

/// Deterministic random source. All stochastic behaviour in the grid
/// simulator and the workload generators flows through an explicitly
/// seeded Rng so that tests and benchmarks reproduce bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    std::uniform_real_distribution<double> dist(lo, hi);
    return dist(engine_);
  }

  /// Bernoulli draw with probability p of true.
  bool Chance(double p) {
    std::bernoulli_distribution dist(p);
    return dist(engine_);
  }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    std::exponential_distribution<double> dist(1.0 / mean);
    return dist(engine_);
  }

  /// Normal draw, clamped below at `floor` (simulated runtimes must
  /// stay positive).
  double ClampedNormal(double mean, double stddev, double floor) {
    std::normal_distribution<double> dist(mean, stddev);
    double v = dist(engine_);
    return v < floor ? floor : v;
  }

  /// Zipf-distributed rank in [0, n). Exponent `s` controls skew;
  /// s = 0 degenerates to uniform. Used to model popularity skew in
  /// replication experiments.
  size_t Zipf(size_t n, double s);

  /// Random index in [0, n). Requires n > 0.
  size_t Index(size_t n) {
    return static_cast<size_t>(UniformInt(0, static_cast<int64_t>(n) - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Index(i)]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace vdg

#endif  // VDG_COMMON_RNG_H_
