#ifndef VDG_COMMON_STATUS_H_
#define VDG_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace vdg {

/// Error categories used across the VDG library. Mirrors the
/// Arrow/RocksDB convention: no exceptions cross an API boundary;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTypeError,        // dataset-type conformance violation
  kParseError,       // VDL syntax errors
  kIoError,          // persistent store / log file failures
  kUnavailable,      // simulated resource offline / catalog unreachable
  kPermissionDenied, // trust-chain or policy rejection
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kDeadlineExceeded,  // per-request deadline expired before a response
  kCancelled,         // caller abandoned the call before completion
};

/// Human-readable name of a status code, e.g. "NotFound".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value. Ok statuses carry no
/// allocation; error statuses carry a code and a message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  /// An Unavailable error whose request may already have reached the
  /// server (e.g. a lost reply after a mutation was sent): blindly
  /// re-issuing it could apply the work twice. See MarkRetryUnsafe.
  static Status UnavailableRetryUnsafe(std::string msg) {
    return MarkRetryUnsafe(Unavailable(std::move(msg)));
  }

  /// Stamps `s` with the retry-unsafe hint. The hint rides in the
  /// message (not a separate field) so it survives the wire codec and
  /// old decoders without a frame-format change. Ok statuses are
  /// returned untouched.
  static Status MarkRetryUnsafe(Status s);

  /// True unless the status carries the retry-unsafe marker. A
  /// retry-safe failure means the operation provably never executed
  /// server-side (connect refused, rejected at admission, read-only
  /// call), so a carrier may re-issue it without double-applying work.
  bool retry_safe() const;

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsTypeError() const { return code_ == StatusCode::kTypeError; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsPermissionDenied() const {
    return code_ == StatusCode::kPermissionDenied;
  }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value-or-error holder, the return type of fallible functions that
/// produce a value. Use `VDG_ASSIGN_OR_RETURN` to unwrap.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call
  /// sites terse (`return 42;` / `return Status::NotFound(...)`).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds
};

/// Propagates a non-OK Status out of the current function.
#define VDG_RETURN_IF_ERROR(expr)               \
  do {                                          \
    ::vdg::Status vdg_status__ = (expr);        \
    if (!vdg_status__.ok()) return vdg_status__; \
  } while (false)

#define VDG_CONCAT_IMPL_(a, b) a##b
#define VDG_CONCAT_(a, b) VDG_CONCAT_IMPL_(a, b)

/// Unwraps a Result<T> into `lhs`, propagating the error on failure.
#define VDG_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto VDG_CONCAT_(vdg_result__, __LINE__) = (expr);           \
  if (!VDG_CONCAT_(vdg_result__, __LINE__).ok())               \
    return VDG_CONCAT_(vdg_result__, __LINE__).status();       \
  lhs = std::move(VDG_CONCAT_(vdg_result__, __LINE__)).value()

}  // namespace vdg

#endif  // VDG_COMMON_STATUS_H_
