#ifndef VDG_COMMON_HASH_H_
#define VDG_COMMON_HASH_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace vdg {

/// 64-bit FNV-1a. Used for cheap content fingerprints (derivation
/// signatures, index bucketing); not collision-resistant.
uint64_t Fnv1a64(std::string_view data);

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). Used by the
/// journal for per-record corruption detection; matches zlib's crc32
/// ("123456789" -> 0xCBF43926).
uint32_t Crc32(std::string_view data);

/// Running CRC-32 over a chain of byte strings: feeding pieces one at
/// a time equals one Crc32 over their concatenation —
/// Crc32Extend(Crc32Extend(0, a), b) == Crc32(a + b), and
/// Crc32Extend(0, x) == Crc32(x). Used for journal chain anchors.
uint32_t Crc32Extend(uint32_t crc, std::string_view data);

/// Incremental SHA-256, implemented from scratch (no TLS library is
/// available offline). Used by vdg::security for entry signatures.
class Sha256 {
 public:
  using Digest = std::array<uint8_t, 32>;

  Sha256();

  /// Absorbs `data`; may be called repeatedly.
  void Update(std::string_view data);
  void Update(const uint8_t* data, size_t len);

  /// Finalizes and returns the digest. The object must not be reused
  /// after Finish() without re-construction.
  Digest Finish();

  /// One-shot convenience.
  static Digest Hash(std::string_view data);
  /// One-shot digest rendered as lowercase hex (64 chars).
  static std::string HexDigest(std::string_view data);

 private:
  void ProcessBlock(const uint8_t* block);

  std::array<uint32_t, 8> state_;
  uint64_t total_bytes_ = 0;
  std::array<uint8_t, 64> buffer_;
  size_t buffer_len_ = 0;
};

/// Lowercase-hex encoding of arbitrary bytes.
std::string ToHex(const uint8_t* data, size_t len);
std::string ToHex(const Sha256::Digest& digest);

}  // namespace vdg

#endif  // VDG_COMMON_HASH_H_
