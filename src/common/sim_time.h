#ifndef VDG_COMMON_SIM_TIME_H_
#define VDG_COMMON_SIM_TIME_H_

namespace vdg {

/// Simulated time in seconds since the start of a simulation run.
/// Wall-clock time never leaks into results; everything that needs a
/// timestamp (invocations, replicas, grid events) uses SimTime.
using SimTime = double;

}  // namespace vdg

#endif  // VDG_COMMON_SIM_TIME_H_
