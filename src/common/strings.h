#ifndef VDG_COMMON_STRINGS_H_
#define VDG_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace vdg {

/// Splits `input` on every occurrence of `sep`. Adjacent separators
/// produce empty pieces; an empty input yields one empty piece.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Splits and drops empty pieces and surrounding whitespace.
std::vector<std::string> StrSplitTrimmed(std::string_view input, char sep);

/// Joins `pieces` with `sep` between each pair.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters only.
std::string AsciiToLower(std::string_view s);

/// True when `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_.-]*.
/// This is the lexical rule for VDG object names (transformations,
/// derivations, type names).
bool IsValidIdentifier(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to);

/// Formats a double without trailing zero noise ("3.5", "2", "0.125").
/// Truncates to 6 significant digits — display only, NOT round-trip
/// safe. Persistence paths must use FormatDoubleRoundTrip.
std::string FormatDouble(double value);

/// Shortest decimal form that parses back (strtod) to the exact same
/// bits. Used by every serialization path (journal codec, XML) so
/// double-valued attributes survive write→replay unchanged.
std::string FormatDoubleRoundTrip(double value);

}  // namespace vdg

#endif  // VDG_COMMON_STRINGS_H_
