#ifndef VDG_COMMON_STRINGS_H_
#define VDG_COMMON_STRINGS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace vdg {

/// Splits `input` on every occurrence of `sep`. Adjacent separators
/// produce empty pieces; an empty input yields one empty piece.
std::vector<std::string> StrSplit(std::string_view input, char sep);

/// Splits and drops empty pieces and surrounding whitespace.
std::vector<std::string> StrSplitTrimmed(std::string_view input, char sep);

/// Joins `pieces` with `sep` between each pair.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StrTrim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters only.
std::string AsciiToLower(std::string_view s);

/// True when `s` is a valid identifier: [A-Za-z_][A-Za-z0-9_.-]*.
/// This is the lexical rule for VDG object names (transformations,
/// derivations, type names).
bool IsValidIdentifier(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string StrReplaceAll(std::string_view s, std::string_view from,
                          std::string_view to);

/// Formats a double without trailing zero noise ("3.5", "2", "0.125").
/// Truncates to 6 significant digits — display only, NOT round-trip
/// safe. Persistence paths must use FormatDoubleRoundTrip.
std::string FormatDouble(double value);

/// Shortest decimal form that parses back (strtod) to the exact same
/// bits. Used by every serialization path (journal codec, XML) so
/// double-valued attributes survive write→replay unchanged.
std::string FormatDoubleRoundTrip(double value);

/// Append-only string interner mapping names to dense 32-bit ids.
///
/// Built for a single-writer / many-reader regime: all mutation
/// (Intern) happens under the owner's exclusive lock, while readers
/// work off an immutable View captured at a publication point. Interned
/// strings live in fixed-capacity chunks whose slots are never moved or
/// freed, so a string_view handed out for an id stays valid for the
/// table's lifetime; a View only resolves ids below its published
/// count, so the writer may keep filling later slots concurrently.
///
/// Ids are assigned in interning order, NOT name order. A View carries
/// a by-name index (rebuilt on Publish only when symbols were added)
/// for reverse lookups.
class SymbolTable {
 public:
  using Id = uint32_t;
  static constexpr Id kNoSymbol = 0xffffffffu;

  /// Immutable reader-side handle: resolves ids and names against the
  /// table as of the Publish() that produced it. Copyable, cheap, and
  /// safe to use concurrently with writer-side Intern calls.
  class View {
   public:
    View() = default;

    /// Name for `id`, or empty view when `id` was not yet published.
    std::string_view NameOf(Id id) const;

    /// Id for `name`, or kNoSymbol when it was not yet published.
    Id FindId(std::string_view name) const;

    size_t size() const { return count_; }

   private:
    friend class SymbolTable;
    std::shared_ptr<const std::vector<std::shared_ptr<std::vector<std::string>>>>
        spine_;
    std::shared_ptr<const std::vector<Id>> by_name_;  // ids sorted by name
    size_t count_ = 0;
  };

  SymbolTable() = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id for `name`, interning it if new. Writer-only; the
  /// caller must hold its exclusive lock.
  Id Intern(std::string_view name);

  /// Writer-side lookup without interning; kNoSymbol when absent.
  Id Find(std::string_view name) const;

  /// Writer-side resolve. `id` must be < size().
  std::string_view NameOf(Id id) const;

  size_t size() const { return count_; }

  /// True when symbols were interned since the last Publish().
  bool dirty() const { return count_ != published_count_; }

  /// Captures an immutable View of the table. Cheap when nothing was
  /// interned since the previous Publish (reuses the prior View's
  /// storage); otherwise copies the chunk spine (pointers only) and
  /// rebuilds the by-name index.
  View Publish();

 private:
  using Chunk = std::vector<std::string>;
  static constexpr size_t kChunkCapacity = 1024;

  std::vector<std::shared_ptr<Chunk>> spine_;
  // Keys view into chunk storage (stable for the table's lifetime).
  std::map<std::string_view, Id> index_;
  size_t count_ = 0;

  // Cached most-recent publication.
  std::shared_ptr<const std::vector<std::shared_ptr<Chunk>>> published_spine_;
  std::shared_ptr<const std::vector<Id>> published_by_name_;
  size_t published_count_ = 0;
};

}  // namespace vdg

#endif  // VDG_COMMON_STRINGS_H_
