#ifndef VDG_COMMON_METRICS_H_
#define VDG_COMMON_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vdg {

/// HDR-style log-linear latency histogram: constant-time Record with
/// bounded relative error instead of unbounded per-sample storage.
///
/// Bucketing: values below 64 get one bucket each (exact); above that,
/// each power-of-two range is split into 32 linear sub-buckets, so the
/// recorded value is always within 1/32 (~3.1%) of the reported one.
/// The full uint64 range fits in 64 + 58*32 = 1920 buckets (~15 KiB),
/// cheap enough to keep one histogram per shard / per op class and
/// Merge() them at report time.
///
/// Units are the caller's business — the traffic harness records
/// nanoseconds. Quantiles report the *upper bound* of the owning
/// bucket, so ValueAtQuantile never understates a latency.
///
/// Not thread-safe: writers keep a histogram per thread (or hold their
/// own lock) and Merge into one for reporting.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(uint64_t value) { RecordN(value, 1); }
  void RecordN(uint64_t value, uint64_t count);

  /// Adds every sample of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  void Reset();

  uint64_t count() const { return count_; }
  /// Exact min/max of recorded values (0 when empty).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return count_ == 0 ? 0 : max_; }
  /// Mean of the exact recorded values (not bucket-quantized).
  double mean() const;

  /// Smallest value v such that at least q * count() samples are <= v,
  /// quantized up to the owning bucket's upper bound (and clamped to
  /// the exact max). q is clamped to [0, 1]; 0 when empty.
  uint64_t ValueAtQuantile(double q) const;

  /// Bucket math, exposed for tests.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);
  static size_t bucket_count() { return kBucketCount; }

 private:
  static constexpr size_t kSubBits = 5;               // 32 sub-buckets
  static constexpr size_t kSubCount = size_t{1} << kSubBits;
  static constexpr size_t kLinearMax = kSubCount * 2;  // exact below 64
  static constexpr size_t kBucketCount =
      kLinearMax + (64 - (kSubBits + 1)) * kSubCount;  // 1920

  std::vector<uint64_t> buckets_;
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace vdg

#endif  // VDG_COMMON_METRICS_H_
