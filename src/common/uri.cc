#include "common/uri.h"

#include "common/strings.h"

namespace vdg {

namespace {
constexpr std::string_view kScheme = "vdp://";
}  // namespace

bool IsVdpUri(std::string_view name) {
  return StartsWith(name, kScheme);
}

std::string MakeVdpRef(std::string_view authority, std::string_view name) {
  std::string ref;
  ref.reserve(kScheme.size() + authority.size() + 1 + name.size());
  ref.append(kScheme).append(authority).append("/").append(name);
  return ref;
}

Result<VdpUri> ParseVdpUri(std::string_view uri) {
  if (!IsVdpUri(uri)) {
    return Status::ParseError("not a vdp:// URI: " + std::string(uri));
  }
  std::string_view rest = uri.substr(kScheme.size());
  size_t slash = rest.find('/');
  if (slash == std::string_view::npos) {
    return Status::ParseError("vdp URI missing object path: " +
                              std::string(uri));
  }
  VdpUri out;
  out.authority = std::string(rest.substr(0, slash));
  out.path = std::string(rest.substr(slash + 1));
  if (out.authority.empty()) {
    return Status::ParseError("vdp URI has empty authority: " +
                              std::string(uri));
  }
  if (out.path.empty()) {
    return Status::ParseError("vdp URI has empty object path: " +
                              std::string(uri));
  }
  return out;
}

}  // namespace vdg
