#include "federation/annotation_overlay.h"

#include "common/uri.h"

namespace vdg {

Status AnnotationOverlay::Annotate(std::string_view kind,
                                   std::string_view ref,
                                   std::string_view key,
                                   AttributeValue value) {
  if (!IsVdpUri(ref)) {
    return Status::InvalidArgument(
        "overlay annotations key on fully qualified vdp:// references, "
        "got: " +
        std::string(ref));
  }
  overlays_[Key(kind, ref)].Set(key, std::move(value));
  return Status::OK();
}

Status AnnotationOverlay::Remove(std::string_view kind, std::string_view ref,
                                 std::string_view key) {
  auto it = overlays_.find(Key(kind, ref));
  if (it == overlays_.end() || !it->second.Erase(key)) {
    return Status::NotFound("no overlay annotation " + std::string(key) +
                            " on " + std::string(ref));
  }
  if (it->second.empty()) overlays_.erase(it);
  return Status::OK();
}

AttributeSet AnnotationOverlay::OverlayOf(std::string_view kind,
                                          std::string_view ref) const {
  auto it = overlays_.find(Key(kind, ref));
  return it == overlays_.end() ? AttributeSet() : it->second;
}

Result<AttributeSet> AnnotationOverlay::EffectiveAnnotations(
    const CatalogRegistry& registry, std::string_view kind,
    std::string_view ref) const {
  AttributeSet base;
  if (kind == "dataset") {
    VDG_ASSIGN_OR_RETURN(Dataset ds,
                         registry.FetchDataset(nullptr, ref));
    base = ds.annotations;
  } else if (kind == "transformation") {
    VDG_ASSIGN_OR_RETURN(Transformation tr,
                         registry.FetchTransformation(nullptr, ref));
    base = tr.annotations();
  } else if (kind == "derivation") {
    VDG_ASSIGN_OR_RETURN(Derivation dv,
                         registry.FetchDerivation(nullptr, ref));
    base = dv.annotations();
  } else {
    return Status::InvalidArgument("unknown object kind: " +
                                   std::string(kind));
  }
  for (const auto& [key, value] : OverlayOf(kind, ref)) {
    base.Set(key, value);  // the personal layer wins
  }
  return base;
}

Result<NameList> AnnotationOverlay::FindAnnotated(
    const CatalogRegistry& registry, std::string_view kind,
    const std::vector<AttributePredicate>& conjunction) const {
  std::vector<std::string> out;
  std::string prefix = std::string(kind) + "\x1f";
  for (const auto& [key, overlay] : overlays_) {
    (void)overlay;
    if (key.compare(0, prefix.size(), prefix) != 0) continue;
    std::string ref = key.substr(prefix.size());
    Result<AttributeSet> effective =
        EffectiveAnnotations(registry, kind, ref);
    if (!effective.ok()) continue;  // base object gone: skip
    if (MatchesAll(*effective, conjunction)) out.push_back(ref);
  }
  return NameList::FromStrings(std::move(out));
}

}  // namespace vdg
