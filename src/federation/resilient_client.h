#ifndef VDG_FEDERATION_RESILIENT_CLIENT_H_
#define VDG_FEDERATION_RESILIENT_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "catalog/client.h"
#include "common/rng.h"

namespace vdg {

// -----------------------------------------------------------------------
// ResilientCatalogClient — the availability layer of the wire
// federation path. It owns a list of replica endpoints (each a factory
// that dials one server — typically WireCatalogClient::Connect, or
// ConnectFaulty under test) and turns their transient transport
// failures into, at worst, latency:
//
//  - Reconnect: a broken connection is dropped and re-dialed with
//    exponential backoff + seeded jitter, capped by the per-call
//    retry budget.
//  - Failover: each retry rotates to the next healthy replica, so a
//    draining or dead server only costs one attempt.
//  - Circuit breaking: an endpoint that fails `breaker_threshold`
//    consecutive attempts is OPEN — skipped by rotation — until its
//    cooldown elapses, when one probe (HALF-OPEN) either closes the
//    breaker or re-opens it. Healthy endpoints never pay for a dead
//    peer.
//  - Retry discipline: idempotent reads retry freely inside the
//    budget. Single mutations are issued at most once on an
//    established connection — a transport failure afterwards returns
//    Unavailable marked retry-unsafe (Status::retry_safe() == false)
//    because the server may already have applied the work. ApplyBatch
//    is the exception: the client stamps an idempotency token into
//    BatchOptions so the server-side dedup window makes retries
//    exactly-once, and then retries it like a read.
//
// Thread-safe: calls may be issued concurrently; endpoint state is
// guarded by one mutex that is never held across a blocking call.
// -----------------------------------------------------------------------

/// One replica of the catalog service.
struct ResilientEndpoint {
  std::string name;  // diagnostics only
  /// Dials the endpoint and performs the handshake. Invoked on first
  /// use and after every broken connection.
  std::function<Result<std::shared_ptr<CatalogClient>>()> connect;
};

struct ResilientOptions {
  /// Transport attempts per logical call (connect failures included).
  int max_attempts = 8;
  /// Wall-clock retry budget per logical call; once spent, the last
  /// transport error is returned.
  std::chrono::milliseconds retry_budget{2000};
  /// Backoff before attempt k (0-based): base * multiplier^(k-1),
  /// plus up to jitter_fraction of itself, seeded.
  std::chrono::milliseconds backoff_base{2};
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.5;
  uint64_t seed = 0x5eed;
  /// Consecutive failures that open an endpoint's breaker.
  int breaker_threshold = 3;
  /// How long an open breaker rejects attempts before allowing a
  /// half-open probe.
  std::chrono::milliseconds breaker_cooldown{100};
};

struct ResilientStats {
  uint64_t retries = 0;             // attempts beyond the first, per call
  uint64_t reconnects = 0;          // successful re-dials
  uint64_t failovers = 0;           // attempts served by a different
                                    // endpoint than the previous one
  uint64_t breaker_opens = 0;
  uint64_t breaker_short_circuits = 0;  // attempts skipped on open breakers
  uint64_t exhausted_calls = 0;     // calls that ran out of budget/attempts
  uint64_t mutation_fail_fast = 0;  // mutations surfaced retry-unsafe
};

enum class BreakerState { kClosed, kOpen, kHalfOpen };

class ResilientCatalogClient : public CatalogClient {
 public:
  explicit ResilientCatalogClient(std::vector<ResilientEndpoint> endpoints,
                                  ResilientOptions options = {});

  const std::string& authority() const override;
  bool read_only() const override;

  ResilientStats stats() const;
  BreakerState breaker_state(size_t endpoint_index) const;

  Result<uint64_t> Version() override;
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) override;
  Result<Dataset> GetDataset(std::string_view name) override;
  Result<Transformation> GetTransformation(std::string_view name) override;
  Result<Derivation> GetDerivation(std::string_view name) override;
  Result<bool> HasDataset(std::string_view name) override;
  Result<bool> IsMaterialized(std::string_view dataset) override;
  Result<std::string> ProducerOf(std::string_view dataset) override;
  Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) override;
  Result<NameList> FindDatasets(
      const DatasetQuery& query) override;
  Result<NameList> FindTransformations(
      const TransformationQuery& query) override;
  Result<NameList> FindDerivations(
      const DerivationQuery& query) override;
  Result<NameList> AllNames(std::string_view kind) override;
  Result<bool> TypeConforms(const DatasetType& type,
                            const DatasetType& against) override;
  Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) override;
  Result<ProvenanceStep> GetProvenanceStep(std::string_view dataset) override;

  Status DefineDataset(Dataset dataset) override;
  Status DefineTransformation(Transformation transformation) override;
  Status DefineDerivation(Derivation derivation) override;
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value) override;
  Result<std::string> AddReplica(Replica replica) override;
  Result<std::string> RecordInvocation(Invocation invocation) override;
  Status SetDatasetSize(std::string_view name, int64_t size_bytes) override;
  Status InvalidateReplica(std::string_view id) override;
  /// Stamps an idempotency token (when the caller left it empty) and
  /// retries across reconnect/failover — the server's dedup window
  /// keeps the batch exactly-once.
  Result<BatchResult> ApplyBatch(const std::vector<CatalogMutation>& mutations,
                                 const BatchOptions& options = {}) override;

 private:
  struct Endpoint {
    ResilientEndpoint config;
    std::shared_ptr<CatalogClient> client;  // null until dialed
    bool ever_connected = false;
    int consecutive_failures = 0;
    BreakerState breaker = BreakerState::kClosed;
    std::chrono::steady_clock::time_point open_until{};
  };

  /// True for errors that mean "the transport failed", not "the
  /// catalog answered no": these are the retryable/failover class.
  static bool IsTransportError(const Status& s);

  /// Picks the next endpoint to try, honouring breakers. Returns the
  /// endpoint index, or -1 if every breaker is open and none is due a
  /// half-open probe (the caller then waits for the earliest cooldown).
  int PickEndpointLocked(int avoid);

  /// Ensures endpoints_[i] has a live client, dialing if needed.
  /// Returns the client or the connect error.
  Result<std::shared_ptr<CatalogClient>> EnsureConnected(size_t i);

  void RecordSuccess(size_t i);
  void RecordFailure(size_t i, bool drop_connection);

  /// Runs `fn` with retry/failover/backoff per the options.
  /// `idempotent` calls retry after any transport error; non-
  /// idempotent calls retry only while no attempt has reached an
  /// established connection, and otherwise fail fast retry-unsafe.
  template <typename T>
  Result<T> CallImpl(bool idempotent,
                     const std::function<Result<T>(CatalogClient&)>& fn);

  template <typename T>
  Result<T> ReadCall(const std::function<Result<T>(CatalogClient&)>& fn) {
    return CallImpl<T>(true, fn);
  }
  template <typename T>
  Result<T> MutationCall(const std::function<Result<T>(CatalogClient&)>& fn) {
    return CallImpl<T>(false, fn);
  }

  std::string GenerateToken();

  ResilientOptions options_;
  mutable std::mutex mu_;  // guards endpoints_, stats_, rng_, authority_
  std::vector<Endpoint> endpoints_;
  int last_endpoint_ = -1;  // last endpoint an attempt ran on
  ResilientStats stats_;
  Rng rng_;
  uint64_t token_prefix_ = 0;  // random per-client ApplyBatch token space
  uint64_t next_token_ = 1;
  std::string authority_;  // learned from the first successful connect
  bool read_only_ = false;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_RESILIENT_CLIENT_H_
