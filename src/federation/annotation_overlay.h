#ifndef VDG_FEDERATION_ANNOTATION_OVERLAY_H_
#define VDG_FEDERATION_ANNOTATION_OVERLAY_H_

#include <map>
#include <string>
#include <vector>

#include "common/name_list.h"
#include "federation/registry.h"

namespace vdg {

/// Section 4.1 lists, among the reasons VDC information is
/// distributed, "a desire by subgroups or individuals to maintain
/// independent 'overlay' information that enhances information
/// maintained by other groups." This class is that overlay: a personal
/// (or group) layer of annotations keyed by fully qualified object
/// references, merged over the owning catalog's annotations at read
/// time — the base object is never modified, and the owner never sees
/// the overlay.
class AnnotationOverlay {
 public:
  /// `owner` names whose overlay this is (for display/debug only).
  explicit AnnotationOverlay(std::string owner) : owner_(std::move(owner)) {}

  const std::string& owner() const { return owner_; }

  /// Adds/overwrites one overlay annotation on (kind, vdp-ref).
  /// `ref` must be a fully qualified vdp:// reference.
  Status Annotate(std::string_view kind, std::string_view ref,
                  std::string_view key, AttributeValue value);

  /// Removes one overlay annotation; NotFound when absent.
  Status Remove(std::string_view kind, std::string_view ref,
                std::string_view key);

  /// The overlay-only annotations on an object (empty when none).
  AttributeSet OverlayOf(std::string_view kind, std::string_view ref) const;

  /// The merged view: the owning catalog's annotations with this
  /// overlay applied on top (overlay wins on key collisions). Resolves
  /// `ref` through the registry; supports kind "dataset",
  /// "transformation", and "derivation".
  Result<AttributeSet> EffectiveAnnotations(
      const CatalogRegistry& registry, std::string_view kind,
      std::string_view ref) const;

  /// Objects of `kind` whose *effective* annotations satisfy the
  /// conjunction — discovery over enhanced metadata. Only objects this
  /// overlay has touched are considered (the overlay is the personal
  /// lens, not a full federation scan).
  Result<NameList> FindAnnotated(
      const CatalogRegistry& registry, std::string_view kind,
      const std::vector<AttributePredicate>& conjunction) const;

  size_t size() const { return overlays_.size(); }

 private:
  static std::string Key(std::string_view kind, std::string_view ref) {
    return std::string(kind) + "\x1f" + std::string(ref);
  }

  std::string owner_;
  std::map<std::string, AttributeSet, std::less<>> overlays_;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_ANNOTATION_OVERLAY_H_
