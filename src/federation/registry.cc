#include "federation/registry.h"

#include <utility>

#include "vdl/xml.h"
#include "vdl/xml_parse.h"

namespace vdg {

Status CatalogRegistry::Register(VirtualDataCatalog* catalog) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("null catalog");
  }
  return RegisterClient(std::make_shared<InProcessCatalogClient>(catalog));
}

Status CatalogRegistry::RegisterClient(std::shared_ptr<CatalogClient> client) {
  if (client == nullptr) {
    return Status::InvalidArgument("null catalog client");
  }
  if (catalogs_.count(client->authority()) != 0) {
    return Status::AlreadyExists("catalog already registered: " +
                                 client->authority());
  }
  std::string authority = client->authority();
  catalogs_.emplace(std::move(authority), std::move(client));
  return Status::OK();
}

Result<CatalogClient*> CatalogRegistry::Find(
    std::string_view authority) const {
  auto it = catalogs_.find(authority);
  if (it == catalogs_.end()) {
    return Status::NotFound("no catalog registered for authority " +
                            std::string(authority));
  }
  return it->second.get();
}

bool CatalogRegistry::Has(std::string_view authority) const {
  return catalogs_.find(authority) != catalogs_.end();
}

Result<CatalogClient*> CatalogRegistry::ClientFor(
    VirtualDataCatalog* home) const {
  if (home == nullptr) {
    return Status::InvalidArgument("null home catalog");
  }
  // Pointer identity only: a registered home reuses its registered
  // handle (and transport), an unregistered one gets a cached
  // in-process wrapper.
  for (const auto& [authority, client] : catalogs_) {
    if (client->local_catalog() == home) return client.get();
  }
  auto it = home_wrappers_.find(home);
  if (it == home_wrappers_.end()) {
    it = home_wrappers_
             .emplace(home, std::make_shared<InProcessCatalogClient>(home))
             .first;
  }
  return it->second.get();
}

Result<ResolvedRef> CatalogRegistry::ResolveImpl(CatalogClient* home,
                                                 std::string_view ref) const {
  ResolvedRef out;
  if (IsVdpUri(ref)) {
    VDG_ASSIGN_OR_RETURN(VdpUri uri, ParseVdpUri(ref));
    VDG_ASSIGN_OR_RETURN(out.client, Find(uri.authority));
    out.local_name = uri.path;
    out.remote =
        home == nullptr || out.client->authority() != home->authority();
    if (out.remote) ++remote_lookups_;
    return out;
  }
  size_t pos = ref.find("::");
  if (pos != std::string_view::npos) {
    std::string_view authority = ref.substr(0, pos);
    std::string_view name = ref.substr(pos + 2);
    if (authority.empty()) {
      return Status::InvalidArgument("scoped reference '" + std::string(ref) +
                                     "' has an empty authority");
    }
    if (name.empty()) {
      return Status::InvalidArgument("scoped reference '" + std::string(ref) +
                                     "' has an empty object name");
    }
    VDG_ASSIGN_OR_RETURN(out.client, Find(authority));
    out.local_name = std::string(name);
    out.remote =
        home == nullptr || out.client->authority() != home->authority();
    if (out.remote) ++remote_lookups_;
    return out;
  }
  if (home == nullptr) {
    return Status::InvalidArgument("bare reference '" + std::string(ref) +
                                   "' needs a home catalog");
  }
  out.client = home;
  out.local_name = std::string(ref);
  out.remote = false;
  return out;
}

Result<ResolvedRef> CatalogRegistry::Resolve(VirtualDataCatalog* home,
                                             std::string_view ref) const {
  CatalogClient* home_client = nullptr;
  if (home != nullptr) {
    VDG_ASSIGN_OR_RETURN(home_client, ClientFor(home));
  }
  return ResolveImpl(home_client, ref);
}

Result<ResolvedRef> CatalogRegistry::ResolveFrom(CatalogClient* home,
                                                 std::string_view ref) const {
  return ResolveImpl(home, ref);
}

Result<Transformation> CatalogRegistry::FetchTransformation(
    VirtualDataCatalog* home, std::string_view ref) const {
  VDG_ASSIGN_OR_RETURN(ResolvedRef resolved, Resolve(home, ref));
  return resolved.client->GetTransformation(resolved.local_name);
}

Result<Derivation> CatalogRegistry::FetchDerivation(
    VirtualDataCatalog* home, std::string_view ref) const {
  VDG_ASSIGN_OR_RETURN(ResolvedRef resolved, Resolve(home, ref));
  return resolved.client->GetDerivation(resolved.local_name);
}

Result<Dataset> CatalogRegistry::FetchDataset(VirtualDataCatalog* home,
                                              std::string_view ref) const {
  VDG_ASSIGN_OR_RETURN(ResolvedRef resolved, Resolve(home, ref));
  return resolved.client->GetDataset(resolved.local_name);
}

Result<std::string> ExportTransformationXml(
    const VirtualDataCatalog& catalog, std::string_view name) {
  InProcessCatalogClient client(&catalog);
  VDG_ASSIGN_OR_RETURN(Transformation tr, client.GetTransformation(name));
  return TransformationToXml(tr);
}

Result<std::string> ExportDerivationXml(const VirtualDataCatalog& catalog,
                                        std::string_view name) {
  InProcessCatalogClient client(&catalog);
  VDG_ASSIGN_OR_RETURN(Derivation dv, client.GetDerivation(name));
  return DerivationToXml(dv);
}

Status ImportTransformationXml(std::string_view xml,
                               std::string_view origin,
                               VirtualDataCatalog* destination) {
  if (destination == nullptr) {
    return Status::InvalidArgument("null destination catalog");
  }
  VDG_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> node, ParseXml(xml));
  VDG_ASSIGN_OR_RETURN(Transformation tr, TransformationFromXml(*node));
  if (!origin.empty()) {
    tr.annotations().Set("vdg.origin", std::string(origin));
  }
  InProcessCatalogClient local(destination);
  return local.DefineTransformation(std::move(tr));
}

Status ImportDerivationXml(std::string_view xml, std::string_view origin,
                           VirtualDataCatalog* destination) {
  if (destination == nullptr) {
    return Status::InvalidArgument("null destination catalog");
  }
  VDG_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> node, ParseXml(xml));
  VDG_ASSIGN_OR_RETURN(Derivation dv, DerivationFromXml(*node));
  if (!origin.empty()) {
    dv.annotations().Set("vdg.origin", std::string(origin));
  }
  InProcessCatalogClient local(destination);
  return local.DefineDerivation(std::move(dv));
}

Status CatalogRegistry::ImportTransformation(
    VirtualDataCatalog* home, std::string_view ref,
    CatalogClient* destination) const {
  if (destination == nullptr) {
    return Status::InvalidArgument("null destination catalog");
  }
  VDG_ASSIGN_OR_RETURN(ResolvedRef resolved, Resolve(home, ref));
  if (resolved.client->authority() == destination->authority()) {
    return Status::InvalidArgument(
        "self-import: " + std::string(ref) + " already lives in " +
        destination->authority());
  }
  VDG_ASSIGN_OR_RETURN(
      Transformation tr,
      resolved.client->GetTransformation(resolved.local_name));
  tr.annotations().Set(
      "vdg.origin",
      MakeVdpRef(resolved.client->authority(), resolved.local_name));
  return destination->DefineTransformation(std::move(tr));
}

Status CatalogRegistry::ImportTransformation(
    VirtualDataCatalog* home, std::string_view ref,
    VirtualDataCatalog* destination) const {
  if (destination == nullptr) {
    return Status::InvalidArgument("null destination catalog");
  }
  // The destination may itself be registered (possibly behind a remote
  // transport); route through that handle so the write crosses the
  // same boundary as every other mutation.
  for (const auto& [authority, client] : catalogs_) {
    if (client->local_catalog() == destination) {
      return ImportTransformation(home, ref, client.get());
    }
  }
  InProcessCatalogClient local(destination);
  return ImportTransformation(home, ref, &local);
}

}  // namespace vdg
