#include "federation/registry.h"

#include "vdl/xml.h"
#include "vdl/xml_parse.h"

namespace vdg {

Status CatalogRegistry::Register(VirtualDataCatalog* catalog) {
  if (catalog == nullptr) {
    return Status::InvalidArgument("null catalog");
  }
  if (catalogs_.count(catalog->name()) != 0) {
    return Status::AlreadyExists("catalog already registered: " +
                                 catalog->name());
  }
  catalogs_.emplace(catalog->name(), catalog);
  return Status::OK();
}

Result<VirtualDataCatalog*> CatalogRegistry::Find(
    std::string_view authority) const {
  auto it = catalogs_.find(authority);
  if (it == catalogs_.end()) {
    return Status::NotFound("no catalog registered for authority " +
                            std::string(authority));
  }
  return it->second;
}

bool CatalogRegistry::Has(std::string_view authority) const {
  return catalogs_.find(authority) != catalogs_.end();
}

Result<ResolvedRef> CatalogRegistry::Resolve(VirtualDataCatalog* home,
                                             std::string_view ref) const {
  ResolvedRef out;
  if (IsVdpUri(ref)) {
    VDG_ASSIGN_OR_RETURN(VdpUri uri, ParseVdpUri(ref));
    VDG_ASSIGN_OR_RETURN(out.catalog, Find(uri.authority));
    out.local_name = uri.path;
    out.remote = home == nullptr || out.catalog != home;
    if (out.remote) ++remote_lookups_;
    return out;
  }
  size_t pos = ref.find("::");
  if (pos != std::string_view::npos) {
    std::string_view authority = ref.substr(0, pos);
    VDG_ASSIGN_OR_RETURN(out.catalog, Find(authority));
    out.local_name = std::string(ref.substr(pos + 2));
    out.remote = home == nullptr || out.catalog != home;
    if (out.remote) ++remote_lookups_;
    return out;
  }
  if (home == nullptr) {
    return Status::InvalidArgument("bare reference '" + std::string(ref) +
                                   "' needs a home catalog");
  }
  out.catalog = home;
  out.local_name = std::string(ref);
  out.remote = false;
  return out;
}

Result<Transformation> CatalogRegistry::FetchTransformation(
    VirtualDataCatalog* home, std::string_view ref) const {
  VDG_ASSIGN_OR_RETURN(ResolvedRef resolved, Resolve(home, ref));
  return resolved.catalog->GetTransformation(resolved.local_name);
}

Result<Derivation> CatalogRegistry::FetchDerivation(
    VirtualDataCatalog* home, std::string_view ref) const {
  VDG_ASSIGN_OR_RETURN(ResolvedRef resolved, Resolve(home, ref));
  return resolved.catalog->GetDerivation(resolved.local_name);
}

Result<Dataset> CatalogRegistry::FetchDataset(VirtualDataCatalog* home,
                                              std::string_view ref) const {
  VDG_ASSIGN_OR_RETURN(ResolvedRef resolved, Resolve(home, ref));
  return resolved.catalog->GetDataset(resolved.local_name);
}

Result<std::string> ExportTransformationXml(
    const VirtualDataCatalog& catalog, std::string_view name) {
  VDG_ASSIGN_OR_RETURN(Transformation tr, catalog.GetTransformation(name));
  return TransformationToXml(tr);
}

Result<std::string> ExportDerivationXml(const VirtualDataCatalog& catalog,
                                        std::string_view name) {
  VDG_ASSIGN_OR_RETURN(Derivation dv, catalog.GetDerivation(name));
  return DerivationToXml(dv);
}

Status ImportTransformationXml(std::string_view xml,
                               std::string_view origin,
                               VirtualDataCatalog* destination) {
  if (destination == nullptr) {
    return Status::InvalidArgument("null destination catalog");
  }
  VDG_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> node, ParseXml(xml));
  VDG_ASSIGN_OR_RETURN(Transformation tr, TransformationFromXml(*node));
  if (!origin.empty()) {
    tr.annotations().Set("vdg.origin", std::string(origin));
  }
  return destination->DefineTransformation(std::move(tr));
}

Status ImportDerivationXml(std::string_view xml, std::string_view origin,
                           VirtualDataCatalog* destination) {
  if (destination == nullptr) {
    return Status::InvalidArgument("null destination catalog");
  }
  VDG_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> node, ParseXml(xml));
  VDG_ASSIGN_OR_RETURN(Derivation dv, DerivationFromXml(*node));
  if (!origin.empty()) {
    dv.annotations().Set("vdg.origin", std::string(origin));
  }
  return destination->DefineDerivation(std::move(dv));
}

Status CatalogRegistry::ImportTransformation(
    VirtualDataCatalog* home, std::string_view ref,
    VirtualDataCatalog* destination) const {
  if (destination == nullptr) {
    return Status::InvalidArgument("null destination catalog");
  }
  VDG_ASSIGN_OR_RETURN(ResolvedRef resolved, Resolve(home, ref));
  VDG_ASSIGN_OR_RETURN(
      Transformation tr,
      resolved.catalog->GetTransformation(resolved.local_name));
  tr.annotations().Set("vdg.origin", "vdp://" + resolved.catalog->name() +
                                         "/" + resolved.local_name);
  return destination->DefineTransformation(std::move(tr));
}

}  // namespace vdg
