#ifndef VDG_FEDERATION_REGISTRY_H_
#define VDG_FEDERATION_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "catalog/client.h"
#include "common/uri.h"

namespace vdg {

/// A resolved object reference: which catalog server (as a transport
/// handle), which local name within it.
struct ResolvedRef {
  CatalogClient* client = nullptr;
  std::string local_name;
  bool remote = false;  // true when resolution left the home catalog
};

/// Names the virtual data servers of a community and resolves the
/// inter-catalog hyperlinks of Figure 2. Reference forms:
///   "name"                  — the home catalog
///   "authority::name"       — the catalog registered as `authority`
///   "vdp://authority/name"  — fully qualified hyperlink
/// Remote resolutions are counted (`remote_lookups`) so experiments
/// can report cross-server traffic.
///
/// Catalogs are held behind CatalogClient handles, so a registry can
/// federate a mix of in-process catalogs and (simulated or real)
/// remote endpoints without the resolution code knowing which is
/// which. Register(VirtualDataCatalog*) wraps the catalog in a
/// zero-cost in-process client; RegisterClient installs any transport.
class CatalogRegistry {
 public:
  /// Registers an in-process catalog under its own name (the vdp
  /// authority), with read-write access.
  Status Register(VirtualDataCatalog* catalog);
  /// Registers a transport handle under its authority() name.
  Status RegisterClient(std::shared_ptr<CatalogClient> client);

  Result<CatalogClient*> Find(std::string_view authority) const;
  bool Has(std::string_view authority) const;
  size_t size() const { return catalogs_.size(); }

  /// Resolves a reference relative to `home` (see class comment).
  /// `home` need not be registered; bare references bind to it through
  /// a lazily created in-process handle.
  Result<ResolvedRef> Resolve(VirtualDataCatalog* home,
                              std::string_view ref) const;

  /// Resolves a reference relative to an already-resolved client —
  /// the recursion step of cross-server walks, where "home" is
  /// whatever server the previous hop landed on.
  Result<ResolvedRef> ResolveFrom(CatalogClient* home,
                                  std::string_view ref) const;

  /// Typed fetch-through helpers (resolve + lookup), the federation
  /// read path used by planners and provenance.
  Result<Transformation> FetchTransformation(VirtualDataCatalog* home,
                                             std::string_view ref) const;
  Result<Derivation> FetchDerivation(VirtualDataCatalog* home,
                                     std::string_view ref) const;
  Result<Dataset> FetchDataset(VirtualDataCatalog* home,
                               std::string_view ref) const;

  /// Copies a transformation definition from wherever `ref` points
  /// into `destination` (the "knowledge propagates across the web of
  /// servers" flow of Section 4.1). The copy is annotated with its
  /// origin (`vdg.origin` = vdp URI). Importing a definition into the
  /// catalog it already lives in is rejected as InvalidArgument.
  Status ImportTransformation(VirtualDataCatalog* home, std::string_view ref,
                              VirtualDataCatalog* destination) const;
  /// Same flow over an arbitrary destination transport.
  Status ImportTransformation(VirtualDataCatalog* home, std::string_view ref,
                              CatalogClient* destination) const;

  uint64_t remote_lookups() const { return remote_lookups_; }
  void reset_remote_lookups() { remote_lookups_ = 0; }

 private:
  /// Shared resolution core: `home` may be null (qualified refs only);
  /// `home_authority` is home->authority() or empty when null.
  Result<ResolvedRef> ResolveImpl(CatalogClient* home,
                                  std::string_view ref) const;

  /// The client to use for `home` itself: the registered handle when
  /// `home` is a registered in-process catalog, otherwise a lazily
  /// created (and cached) in-process wrapper. Identified by pointer,
  /// so an unregistered home is never dereferenced here.
  Result<CatalogClient*> ClientFor(VirtualDataCatalog* home) const;

  std::map<std::string, std::shared_ptr<CatalogClient>, std::less<>>
      catalogs_;
  /// Wrappers for unregistered home catalogs passed to Resolve().
  mutable std::map<const VirtualDataCatalog*, std::shared_ptr<CatalogClient>>
      home_wrappers_;
  mutable uint64_t remote_lookups_ = 0;
};

// ----------------------------------------------------------------------
// The XML wire path: how definitions actually travel between servers
// ("an XML version is also implemented for machine-to-machine
// interfaces"). Export produces a self-contained document; Import
// installs it into a destination catalog, tagging provenance of the
// copy with `vdg.origin`.
// ----------------------------------------------------------------------

/// Serializes one transformation from `catalog` as wire XML.
Result<std::string> ExportTransformationXml(
    const VirtualDataCatalog& catalog, std::string_view name);
/// Serializes one derivation from `catalog` as wire XML.
Result<std::string> ExportDerivationXml(const VirtualDataCatalog& catalog,
                                        std::string_view name);

/// Decodes wire XML and defines the transformation in `destination`,
/// annotated with `origin` (a vdp:// URI; may be empty).
Status ImportTransformationXml(std::string_view xml,
                               std::string_view origin,
                               VirtualDataCatalog* destination);
/// Decodes wire XML and defines the derivation in `destination`.
Status ImportDerivationXml(std::string_view xml, std::string_view origin,
                           VirtualDataCatalog* destination);

}  // namespace vdg

#endif  // VDG_FEDERATION_REGISTRY_H_
