#ifndef VDG_FEDERATION_REGISTRY_H_
#define VDG_FEDERATION_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>

#include "catalog/catalog.h"
#include "common/uri.h"

namespace vdg {

/// A resolved object reference: which catalog, which local name.
struct ResolvedRef {
  VirtualDataCatalog* catalog = nullptr;
  std::string local_name;
  bool remote = false;  // true when resolution left the home catalog
};

/// Names the virtual data servers of a community and resolves the
/// inter-catalog hyperlinks of Figure 2. Reference forms:
///   "name"                  — the home catalog
///   "authority::name"       — the catalog registered as `authority`
///   "vdp://authority/name"  — fully qualified hyperlink
/// Remote resolutions are counted (`remote_lookups`) so experiments
/// can report cross-server traffic.
class CatalogRegistry {
 public:
  /// Registers a catalog under its own name (the vdp authority).
  Status Register(VirtualDataCatalog* catalog);

  Result<VirtualDataCatalog*> Find(std::string_view authority) const;
  bool Has(std::string_view authority) const;
  size_t size() const { return catalogs_.size(); }

  /// Resolves a reference relative to `home` (see class comment).
  Result<ResolvedRef> Resolve(VirtualDataCatalog* home,
                              std::string_view ref) const;

  /// Typed fetch-through helpers (resolve + lookup), the federation
  /// read path used by planners and provenance.
  Result<Transformation> FetchTransformation(VirtualDataCatalog* home,
                                             std::string_view ref) const;
  Result<Derivation> FetchDerivation(VirtualDataCatalog* home,
                                     std::string_view ref) const;
  Result<Dataset> FetchDataset(VirtualDataCatalog* home,
                               std::string_view ref) const;

  /// Copies a transformation definition from wherever `ref` points
  /// into `destination` (the "knowledge propagates across the web of
  /// servers" flow of Section 4.1). The copy is annotated with its
  /// origin (`vdg.origin` = vdp URI).
  Status ImportTransformation(VirtualDataCatalog* home, std::string_view ref,
                              VirtualDataCatalog* destination) const;

  uint64_t remote_lookups() const { return remote_lookups_; }
  void reset_remote_lookups() { remote_lookups_ = 0; }

 private:
  std::map<std::string, VirtualDataCatalog*, std::less<>> catalogs_;
  mutable uint64_t remote_lookups_ = 0;
};

// ----------------------------------------------------------------------
// The XML wire path: how definitions actually travel between servers
// ("an XML version is also implemented for machine-to-machine
// interfaces"). Export produces a self-contained document; Import
// installs it into a destination catalog, tagging provenance of the
// copy with `vdg.origin`.
// ----------------------------------------------------------------------

/// Serializes one transformation from `catalog` as wire XML.
Result<std::string> ExportTransformationXml(
    const VirtualDataCatalog& catalog, std::string_view name);
/// Serializes one derivation from `catalog` as wire XML.
Result<std::string> ExportDerivationXml(const VirtualDataCatalog& catalog,
                                        std::string_view name);

/// Decodes wire XML and defines the transformation in `destination`,
/// annotated with `origin` (a vdp:// URI; may be empty).
Status ImportTransformationXml(std::string_view xml,
                               std::string_view origin,
                               VirtualDataCatalog* destination);
/// Decodes wire XML and defines the derivation in `destination`.
Status ImportDerivationXml(std::string_view xml, std::string_view origin,
                           VirtualDataCatalog* destination);

}  // namespace vdg

#endif  // VDG_FEDERATION_REGISTRY_H_
