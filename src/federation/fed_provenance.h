#ifndef VDG_FEDERATION_FED_PROVENANCE_H_
#define VDG_FEDERATION_FED_PROVENANCE_H_

#include <set>
#include <string>

#include "federation/registry.h"
#include "provenance/provenance.h"

namespace vdg {

/// Cross-server provenance (Figure 3): derivation chains that span
/// catalogs — a personal derivation depending on group data, which in
/// turn depends on collaboration data. Dataset and transformation
/// references may be `vdp://` hyperlinks or `authority::name` forms;
/// traversal hops between catalogs through the registry.
///
/// Each link of the chain costs ONE round trip on the owning server:
/// the walk fetches a compound ProvenanceStep (exists + producer +
/// derivation + invocations) through the CatalogClient boundary
/// instead of four point lookups, which is what keeps deep chains
/// usable over real transports.
class FederatedProvenance {
 public:
  explicit FederatedProvenance(const CatalogRegistry& registry)
      : registry_(registry) {}

  /// Upstream lineage of `dataset_ref` starting from `home`. Node
  /// dataset names are fully qualified vdp:// URIs, so the tree shows
  /// which server holds each link of the chain.
  Result<LineageNode> Lineage(VirtualDataCatalog* home,
                              std::string_view dataset_ref,
                              int max_depth = 0) const;

  /// Number of catalog-to-catalog hops the last Lineage call made.
  uint64_t last_hop_count() const { return last_hops_; }

 private:
  /// Expands one already-resolved link, recursing through the
  /// registry for its inputs (resolved relative to the server holding
  /// the derivation).
  Status Build(const ResolvedRef& ref, int depth, int max_depth,
               std::set<std::string>* on_path, LineageNode* out) const;

  const CatalogRegistry& registry_;
  mutable uint64_t last_hops_ = 0;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_FED_PROVENANCE_H_
