#include "federation/promotion.h"

#include "common/uri.h"
#include "vdl/xml.h"

namespace vdg {

PromotionPipeline::PromotionPipeline(std::vector<VirtualDataCatalog*> tiers,
                                     const TrustStore* trust,
                                     SignatureRegistry* signatures)
    : trust_(trust), signatures_(signatures) {
  tiers_.reserve(tiers.size());
  for (VirtualDataCatalog* catalog : tiers) {
    tiers_.push_back(std::make_shared<InProcessCatalogClient>(catalog));
  }
}

Result<std::string> PromotionPipeline::CanonicalContent(
    size_t tier, std::string_view transformation) const {
  if (tier >= tiers_.size()) {
    return Status::FailedPrecondition("tier index out of range");
  }
  VDG_ASSIGN_OR_RETURN(Transformation tr,
                       tiers_[tier]->GetTransformation(transformation));
  // Provenance-of-the-copy annotations must not void endorsements made
  // before promotion, so they are excluded from the signed content.
  tr.annotations().Erase("vdg.origin");
  tr.annotations().Erase("vdg.approved_by");
  return TransformationToXml(tr);
}

Status PromotionPipeline::Endorse(size_t tier,
                                  std::string_view transformation,
                                  const Identity& signer,
                                  const KeyPair& signer_keys) {
  VDG_ASSIGN_OR_RETURN(std::string content,
                       CanonicalContent(tier, transformation));
  signatures_->Add(SignEntry("transformation", std::string(transformation),
                             content, required_assertion_, signer,
                             signer_keys));
  return Status::OK();
}

Status PromotionPipeline::PromoteTransformation(
    size_t from, std::string_view transformation) {
  if (from + 1 >= tiers_.size()) {
    return Status::FailedPrecondition(
        "no tier above " + std::to_string(from) + " to promote into");
  }
  VDG_ASSIGN_OR_RETURN(std::string content,
                       CanonicalContent(from, transformation));

  // Gate: some registered signer must have endorsed exactly this
  // content with the required assertion, under a trusted chain.
  std::string approved_by;
  for (const EntrySignature& entry :
       signatures_->For("transformation", transformation)) {
    if (entry.assertion != required_assertion_) continue;
    auto chain = chains_.find(entry.signer);
    if (chain == chains_.end()) continue;
    if (signatures_->VerifyEntry(entry, chain->second, content, *trust_)
            .ok()) {
      approved_by = entry.signer;
      break;
    }
  }
  if (approved_by.empty()) {
    return Status::PermissionDenied(
        "transformation " + std::string(transformation) +
        " carries no verified '" + required_assertion_ +
        "' endorsement for its current content");
  }

  VDG_ASSIGN_OR_RETURN(
      Transformation tr,
      tiers_[from]->GetTransformation(transformation));
  tr.annotations().Set("vdg.origin",
                       MakeVdpRef(tiers_[from]->authority(), transformation));
  tr.annotations().Set("vdg.approved_by", approved_by);
  Status defined = tiers_[from + 1]->DefineTransformation(std::move(tr));
  if (defined.IsAlreadyExists()) {
    return Status::AlreadyExists(
        "tier " + tiers_[from + 1]->authority() + " already holds " +
        std::string(transformation));
  }
  return defined;
}

Status PromotionPipeline::PromoteToTop(size_t from,
                                       std::string_view transformation,
                                       const Identity& signer,
                                       const KeyPair& signer_keys) {
  for (size_t tier = from; tier + 1 < tiers_.size(); ++tier) {
    VDG_RETURN_IF_ERROR(Endorse(tier, transformation, signer, signer_keys));
    VDG_RETURN_IF_ERROR(PromoteTransformation(tier, transformation));
  }
  return Status::OK();
}

}  // namespace vdg
