#include "federation/remote_cache.h"

#include <algorithm>
#include <utility>
#include <variant>

namespace vdg {

namespace {

constexpr char kFieldSep = '\x1f';  // between query fields
constexpr char kTokenSep = '\x1d';  // between predicate tokens
constexpr char kPartSep = '\x1e';   // within one predicate token

/// One predicate as "key <sep> op <sep> tag+wire-value". The wire form
/// (not the display form) keeps doubles distinct past 6 digits, same
/// as the catalog's attribute-index key.
std::string PredicateToken(const AttributePredicate& predicate) {
  std::string token = predicate.key;
  token.push_back(kPartSep);
  token += std::to_string(static_cast<int>(predicate.op));
  token.push_back(kPartSep);
  token.push_back(predicate.operand.TypeTag());
  token += predicate.operand.ToWireString();
  return token;
}

/// Sorted predicate tokens: a conjunction is order-insensitive, so
/// sorting makes reordered-but-equal queries collide on one key.
void AppendPredicates(std::string* key,
                      const std::vector<AttributePredicate>& predicates) {
  std::vector<std::string> tokens;
  tokens.reserve(predicates.size());
  for (const AttributePredicate& predicate : predicates) {
    tokens.push_back(PredicateToken(predicate));
  }
  std::sort(tokens.begin(), tokens.end());
  for (const std::string& token : tokens) {
    *key += token;
    key->push_back(kTokenSep);
  }
}

void AppendOptType(std::string* key, const std::optional<DatasetType>& type) {
  key->push_back(type.has_value() ? '1' : '0');
  if (type.has_value()) *key += type->ToString();
  key->push_back(kFieldSep);
}

}  // namespace

CachingCatalogClient::CachingCatalogClient(
    std::shared_ptr<CatalogClient> upstream, size_t capacity,
    DegradedReadOptions degraded)
    : upstream_(std::move(upstream)),
      authority_(upstream_->authority()),
      capacity_(capacity == 0 ? 1 : capacity),
      objects_(capacity_),
      steps_(capacity_),
      queries_(capacity_),
      degraded_(degraded) {}

void CachingCatalogClient::NoteUpstreamLocked(const Status& status) {
  if (!degraded_.enabled) return;
  if (status.ok() || !(status.IsUnavailable() || status.IsDeadlineExceeded())) {
    // Any definitive answer (including NotFound etc.) proves the
    // upstream is reachable.
    upstream_down_ = false;
    return;
  }
  if (!upstream_down_) {
    upstream_down_ = true;
    down_since_ = std::chrono::steady_clock::now();
  }
}

Status CachingCatalogClient::DegradedGateLocked() {
  if (!degraded_.enabled || !upstream_down_) return Status::OK();
  const auto age = std::chrono::steady_clock::now() - down_since_;
  if (age <= degraded_.staleness_bound) {
    ++stats_.degraded_hits;
    return Status::OK();
  }
  ++stats_.stale_rejections;
  return Status::Unavailable(
      "upstream catalog unreachable and cache exceeded the degraded-read "
      "staleness bound");
}

std::string CachingCatalogClient::Key(std::string_view kind,
                                      std::string_view name) {
  std::string key(kind);
  key.push_back('\x1f');
  key += name;
  return key;
}

std::string CachingCatalogClient::QueryKey(const DatasetQuery& query) {
  std::string key("D");
  key.push_back(kFieldSep);
  AppendOptType(&key, query.type);
  key += query.name_prefix;
  key.push_back(kFieldSep);
  key.push_back(query.require_materialized ? '1' : '0');
  key.push_back(query.only_virtual ? '1' : '0');
  key += std::to_string(query.limit);
  key.push_back(kFieldSep);
  AppendPredicates(&key, query.predicates);
  return key;
}

std::string CachingCatalogClient::QueryKey(const TransformationQuery& query) {
  std::string key("T");
  key.push_back(kFieldSep);
  AppendOptType(&key, query.consumes);
  AppendOptType(&key, query.produces);
  key += query.name_prefix;
  key.push_back(kFieldSep);
  key += std::to_string(query.limit);
  key.push_back(kFieldSep);
  AppendPredicates(&key, query.predicates);
  return key;
}

std::string CachingCatalogClient::QueryKey(const DerivationQuery& query) {
  std::string key("V");
  key.push_back(kFieldSep);
  key += query.transformation;
  key.push_back(kFieldSep);
  key += query.reads_dataset;
  key.push_back(kFieldSep);
  key += query.writes_dataset;
  key.push_back(kFieldSep);
  key += query.name_prefix;
  key.push_back(kFieldSep);
  key += std::to_string(query.limit);
  key.push_back(kFieldSep);
  AppendPredicates(&key, query.predicates);
  return key;
}

std::string CachingCatalogClient::TopologyKey(std::string key) const {
  key.push_back(kFieldSep);
  key += std::to_string(upstream_->shard_topology().fingerprint);
  return key;
}

template <typename Fetch>
Result<NameList> CachingCatalogClient::CachedFindLocked(std::string key,
                                                        Fetch&& fetch) {
  if (const NameList* cached = queries_.Get(key)) {
    VDG_RETURN_IF_ERROR(DegradedGateLocked());
    ++stats_.query_hits;
    // A hit copies one shared_ptr: every caller aliases the SAME
    // immutable list (no per-hit vector copy — the PR-9 fix).
    return *cached;
  }
  ++stats_.query_misses;
  Result<NameList> fetched = fetch();
  NoteUpstreamLocked(fetched.ok() ? Status::OK() : fetched.status());
  VDG_ASSIGN_OR_RETURN(NameList names, std::move(fetched));
  stats_.evictions += queries_.Put(std::move(key), names);
  return names;
}

void CachingCatalogClient::FlushQueriesLocked(char kind_tag) {
  std::string lo(1, kind_tag);
  lo.push_back(kFieldSep);
  std::string hi(1, kind_tag);
  hi.push_back(kFieldSep + 1);
  stats_.evictions += queries_.EraseRange(lo, hi);
}

void CachingCatalogClient::InsertLocked(ObjectRecord record) {
  std::string key = Key(record.kind, record.name);
  stats_.evictions += objects_.Put(std::move(key), std::move(record));
}

void CachingCatalogClient::EvictLocked(std::string_view kind,
                                       std::string_view name) {
  if (objects_.Erase(Key(kind, name))) ++stats_.evictions;
}

void CachingCatalogClient::FlushLocked() {
  stats_.evictions += objects_.Clear() + queries_.Clear();
  steps_.Clear();
  ++stats_.flushes;
}

void CachingCatalogClient::ApplyChangeLocked(const CatalogChange& change) {
  if (change.kind == "dataset") {
    EvictLocked("dataset", change.name);
    steps_.Erase(change.name);
    FlushQueriesLocked('D');
  } else if (change.kind == "transformation") {
    EvictLocked("transformation", change.name);
    FlushQueriesLocked('T');
  } else if (change.kind == "derivation" || change.kind == "invocation") {
    if (change.kind == "derivation") {
      EvictLocked("derivation", change.name);
      FlushQueriesLocked('V');
    }
    // A provenance step aggregates a dataset with its producing
    // derivation and that derivation's invocations; the changelog
    // cannot pin those to one dataset key, so drop all steps.
    steps_.Clear();
  } else if (change.kind == "type") {
    // A type definition moves the conformance closure, which can grow
    // any type-constrained dataset query's result set.
    FlushQueriesLocked('D');
  }
  // Conformance checks themselves still pass through to the server.
}

Result<ObjectRecord> CachingCatalogClient::GetOrFillLocked(
    std::string_view kind, std::string_view name) {
  if (const ObjectRecord* cached = objects_.Get(Key(kind, name))) {
    VDG_RETURN_IF_ERROR(DegradedGateLocked());
    ++stats_.hits;
    return *cached;
  }
  ++stats_.misses;
  Result<std::vector<ObjectRecord>> fetched =
      upstream_->BatchGet({ObjectKey{std::string(kind), std::string(name)}});
  NoteUpstreamLocked(fetched.ok() ? Status::OK() : fetched.status());
  VDG_ASSIGN_OR_RETURN(std::vector<ObjectRecord> records, std::move(fetched));
  if (records.size() != 1) {
    return Status::Internal("single-key BatchGet returned " +
                            std::to_string(records.size()) + " records");
  }
  ObjectRecord record = records.front();
  InsertLocked(records.front());
  return record;
}

Status CachingCatalogClient::Revalidate() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.revalidations;
  const ShardTopology topo = upstream_->shard_topology();
  if (topo.shard_count <= 1 && topo.fingerprint == 0) {
    // Unsharded upstream: the original one-round-trip path.
    Result<std::vector<CatalogChange>> changes =
        upstream_->ChangesSince(synced_version_);
    NoteUpstreamLocked(changes.ok() ? Status::OK() : changes.status());
    if (changes.ok()) {
      for (const CatalogChange& change : *changes) ApplyChangeLocked(change);
      if (!changes->empty()) synced_version_ = changes->back().version;
      return Status::OK();
    }
    if (changes.status().code() == StatusCode::kResourceExhausted ||
        changes.status().IsInvalidArgument()) {
      // The server's bounded changelog no longer reaches our sync point
      // (or our version predates/postdates its window after a reset):
      // nothing cached can be trusted individually.
      FlushLocked();
      VDG_ASSIGN_OR_RETURN(synced_version_, upstream_->Version());
      return Status::OK();
    }
    return changes.status();
  }

  // Sharded upstream: its composite version is a sum, addressable in
  // no single changelog, so deltas anchor per shard.
  bool resync = false;
  if (shard_synced_.empty()) {
    // First contact: walk each shard's changelog from zero, the exact
    // analog of the single-shard first Revalidate.
    shard_synced_.assign(topo.shard_count, 0);
  } else if (topo.fingerprint != synced_topology_.fingerprint ||
             topo.shard_count != synced_topology_.shard_count) {
    // Reshard: the anchors belong to a dead topology, and no cached
    // entry can be attributed across the swap.
    resync = true;
  }
  if (!resync) {
    for (uint32_t shard = 0; shard < topo.shard_count; ++shard) {
      Result<std::vector<CatalogChange>> changes =
          upstream_->ShardChangesSince(shard, shard_synced_[shard]);
      NoteUpstreamLocked(changes.ok() ? Status::OK() : changes.status());
      if (changes.ok()) {
        for (const CatalogChange& change : *changes) ApplyChangeLocked(change);
        if (!changes->empty()) shard_synced_[shard] = changes->back().version;
        continue;
      }
      if (changes.status().code() == StatusCode::kResourceExhausted ||
          changes.status().IsInvalidArgument()) {
        // This shard's window no longer reaches our anchor; nothing
        // cached can be trusted individually.
        resync = true;
        break;
      }
      return changes.status();
    }
  }
  if (resync) {
    FlushLocked();
    Result<std::vector<uint64_t>> versions = upstream_->ShardVersions();
    NoteUpstreamLocked(versions.ok() ? Status::OK() : versions.status());
    VDG_ASSIGN_OR_RETURN(shard_synced_, std::move(versions));
  }
  synced_topology_ = topo;
  synced_version_ = 0;
  for (uint64_t anchor : shard_synced_) synced_version_ += anchor;
  return Status::OK();
}

ShardTopology CachingCatalogClient::shard_topology() const {
  return upstream_->shard_topology();
}

Result<std::vector<uint64_t>> CachingCatalogClient::ShardVersions() {
  return upstream_->ShardVersions();
}

Result<std::vector<CatalogChange>> CachingCatalogClient::ShardChangesSince(
    uint32_t shard, uint64_t since_version) {
  return upstream_->ShardChangesSince(shard, since_version);
}

Result<uint64_t> CachingCatalogClient::Version() {
  Result<uint64_t> version = upstream_->Version();
  if (degraded_.enabled) {
    // Version() doubles as the cheap reachability probe in degraded
    // mode: a success ends the outage window.
    std::lock_guard<std::mutex> lock(mu_);
    NoteUpstreamLocked(version.ok() ? Status::OK() : version.status());
  }
  return version;
}

Result<std::vector<CatalogChange>> CachingCatalogClient::ChangesSince(
    uint64_t since_version) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_ASSIGN_OR_RETURN(std::vector<CatalogChange> changes,
                       upstream_->ChangesSince(since_version));
  // Piggyback: the caller just paid for a change window, so apply it
  // to the cache too. Invalidating a change we already processed is
  // harmless (conservative), so every entry newer than our sync point
  // gets applied; the sync point itself only advances when the window
  // actually starts at or before it — otherwise the skipped gap
  // [synced_version_, since_version] could hide invalidations.
  for (const CatalogChange& change : changes) {
    if (change.version > synced_version_) ApplyChangeLocked(change);
  }
  if (!changes.empty() && since_version <= synced_version_ &&
      changes.back().version > synced_version_) {
    synced_version_ = changes.back().version;
  }
  return changes;
}

Result<Dataset> CachingCatalogClient::GetDataset(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_ASSIGN_OR_RETURN(ObjectRecord record, GetOrFillLocked("dataset", name));
  if (!record.status.ok()) return record.status;
  return *std::move(record.dataset);
}

Result<Transformation> CachingCatalogClient::GetTransformation(
    std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_ASSIGN_OR_RETURN(ObjectRecord record,
                       GetOrFillLocked("transformation", name));
  if (!record.status.ok()) return record.status;
  return *std::move(record.transformation);
}

Result<Derivation> CachingCatalogClient::GetDerivation(
    std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_ASSIGN_OR_RETURN(ObjectRecord record,
                       GetOrFillLocked("derivation", name));
  if (!record.status.ok()) return record.status;
  return *std::move(record.derivation);
}

Result<bool> CachingCatalogClient::HasDataset(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_ASSIGN_OR_RETURN(ObjectRecord record, GetOrFillLocked("dataset", name));
  if (record.status.ok()) return true;
  if (record.status.IsNotFound()) return false;
  return record.status;
}

Result<bool> CachingCatalogClient::IsMaterialized(std::string_view dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_ASSIGN_OR_RETURN(ObjectRecord record,
                       GetOrFillLocked("dataset", dataset));
  if (record.status.IsNotFound()) return false;
  if (!record.status.ok()) return record.status;
  return record.materialized;
}

Result<std::string> CachingCatalogClient::ProducerOf(
    std::string_view dataset) {
  return upstream_->ProducerOf(dataset);
}

Result<std::vector<Invocation>> CachingCatalogClient::InvocationsOf(
    std::string_view derivation) {
  return upstream_->InvocationsOf(derivation);
}

Result<NameList> CachingCatalogClient::FindDatasets(
    const DatasetQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  return CachedFindLocked(TopologyKey(QueryKey(query)),
                          [&] { return upstream_->FindDatasets(query); });
}

Result<NameList> CachingCatalogClient::FindTransformations(
    const TransformationQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  return CachedFindLocked(TopologyKey(QueryKey(query)), [&] {
    return upstream_->FindTransformations(query);
  });
}

Result<NameList> CachingCatalogClient::FindDerivations(
    const DerivationQuery& query) {
  std::lock_guard<std::mutex> lock(mu_);
  return CachedFindLocked(TopologyKey(QueryKey(query)),
                          [&] { return upstream_->FindDerivations(query); });
}

Result<NameList> CachingCatalogClient::AllNames(
    std::string_view kind) {
  return upstream_->AllNames(kind);
}

Result<bool> CachingCatalogClient::TypeConforms(const DatasetType& type,
                                                const DatasetType& against) {
  return upstream_->TypeConforms(type, against);
}

Result<std::vector<ObjectRecord>> CachingCatalogClient::BatchGet(
    const std::vector<ObjectKey>& keys) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ObjectRecord> out(keys.size());
  std::vector<ObjectKey> miss_keys;
  std::vector<size_t> miss_positions;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (const ObjectRecord* cached =
            objects_.Get(Key(keys[i].kind, keys[i].name))) {
      ++stats_.hits;
      out[i] = *cached;
    } else {
      ++stats_.misses;
      miss_keys.push_back(keys[i]);
      miss_positions.push_back(i);
    }
  }
  if (miss_keys.empty()) {
    VDG_RETURN_IF_ERROR(DegradedGateLocked());
  }
  if (!miss_keys.empty()) {
    Result<std::vector<ObjectRecord>> upstream_records =
        upstream_->BatchGet(miss_keys);
    NoteUpstreamLocked(upstream_records.ok() ? Status::OK()
                                             : upstream_records.status());
    VDG_ASSIGN_OR_RETURN(std::vector<ObjectRecord> fetched,
                         std::move(upstream_records));
    if (fetched.size() != miss_keys.size()) {
      return Status::Internal("BatchGet returned " +
                              std::to_string(fetched.size()) + " records for " +
                              std::to_string(miss_keys.size()) + " keys");
    }
    for (size_t i = 0; i < fetched.size(); ++i) {
      out[miss_positions[i]] = fetched[i];
      InsertLocked(std::move(fetched[i]));
    }
  }
  return out;
}

Result<ProvenanceStep> CachingCatalogClient::GetProvenanceStep(
    std::string_view dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  if (const ProvenanceStep* cached = steps_.Get(dataset)) {
    VDG_RETURN_IF_ERROR(DegradedGateLocked());
    ++stats_.hits;
    return *cached;
  }
  ++stats_.misses;
  Result<ProvenanceStep> fetched = upstream_->GetProvenanceStep(dataset);
  NoteUpstreamLocked(fetched.ok() ? Status::OK() : fetched.status());
  VDG_ASSIGN_OR_RETURN(ProvenanceStep step, std::move(fetched));
  stats_.evictions += steps_.Put(step.dataset, step);
  return step;
}

Status CachingCatalogClient::DefineDataset(Dataset dataset) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = dataset.name;
  VDG_RETURN_IF_ERROR(upstream_->DefineDataset(std::move(dataset)));
  EvictLocked("dataset", name);
  steps_.Erase(name);
  FlushQueriesLocked('D');
  return Status::OK();
}

Status CachingCatalogClient::DefineTransformation(
    Transformation transformation) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = transformation.name();
  VDG_RETURN_IF_ERROR(
      upstream_->DefineTransformation(std::move(transformation)));
  EvictLocked("transformation", name);
  FlushQueriesLocked('T');
  return Status::OK();
}

Status CachingCatalogClient::DefineDerivation(Derivation derivation) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = derivation.name();
  std::vector<std::string> outputs = derivation.OutputDatasets();
  VDG_RETURN_IF_ERROR(upstream_->DefineDerivation(std::move(derivation)));
  EvictLocked("derivation", name);
  // Output datasets may have been auto-defined (and their producer
  // changed), and every step touching them is now stale.
  for (const std::string& output : outputs) {
    EvictLocked("dataset", output);
  }
  steps_.Clear();
  // Outputs may have been auto-defined as datasets.
  FlushQueriesLocked('V');
  FlushQueriesLocked('D');
  return Status::OK();
}

Status CachingCatalogClient::Annotate(std::string_view kind,
                                      std::string_view name,
                                      std::string_view key,
                                      AttributeValue value) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_RETURN_IF_ERROR(
      upstream_->Annotate(kind, name, key, std::move(value)));
  EvictLocked(kind, name);
  if (kind == "dataset") {
    steps_.Erase(name);
    FlushQueriesLocked('D');
  } else if (kind == "transformation") {
    FlushQueriesLocked('T');
  } else if (kind == "derivation" || kind == "invocation") {
    if (kind == "derivation") FlushQueriesLocked('V');
    steps_.Clear();
  }
  return Status::OK();
}

Result<std::string> CachingCatalogClient::AddReplica(Replica replica) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string dataset = replica.dataset;
  VDG_ASSIGN_OR_RETURN(std::string id,
                       upstream_->AddReplica(std::move(replica)));
  // The dataset's materialized bit may have flipped.
  EvictLocked("dataset", dataset);
  FlushQueriesLocked('D');
  return id;
}

Result<std::string> CachingCatalogClient::RecordInvocation(
    Invocation invocation) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_ASSIGN_OR_RETURN(std::string id,
                       upstream_->RecordInvocation(std::move(invocation)));
  steps_.Clear();  // steps embed invocation lists
  return id;
}

Status CachingCatalogClient::SetDatasetSize(std::string_view name,
                                            int64_t size_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_RETURN_IF_ERROR(upstream_->SetDatasetSize(name, size_bytes));
  EvictLocked("dataset", name);
  FlushQueriesLocked('D');
  return Status::OK();
}

Status CachingCatalogClient::InvalidateReplica(std::string_view id) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_RETURN_IF_ERROR(upstream_->InvalidateReplica(id));
  // The replica's dataset is unknown from the id alone; every cached
  // dataset's materialized bit is suspect.
  FlushQueriesLocked('D');
  stats_.evictions += objects_.EraseIf(
      [](const std::string&, const ObjectRecord& record) {
        return record.kind == "dataset";
      });
  return Status::OK();
}

Result<BatchResult> CachingCatalogClient::ApplyBatch(
    const std::vector<CatalogMutation>& mutations,
    const BatchOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  VDG_ASSIGN_OR_RETURN(BatchResult result,
                       upstream_->ApplyBatch(mutations, options));
  // One invalidation pass for the whole batch, mirroring per-op what
  // each single-op mutation method evicts. Ops that did not apply are
  // skipped: they changed nothing upstream.
  for (size_t i = 0; i < mutations.size(); ++i) {
    if (i < result.statuses.size() && !result.statuses[i].ok()) continue;
    std::visit(
        [&](const auto& op) {
          using Op = std::decay_t<decltype(op)>;
          if constexpr (std::is_same_v<Op, CatalogMutation::DefineDatasetOp>) {
            EvictLocked("dataset", op.dataset.name);
            steps_.Erase(op.dataset.name);
            FlushQueriesLocked('D');
          } else if constexpr (std::is_same_v<
                                   Op,
                                   CatalogMutation::DefineTransformationOp>) {
            EvictLocked("transformation", op.transformation.name());
            FlushQueriesLocked('T');
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::DefineDerivationOp>) {
            EvictLocked("derivation", op.derivation.name());
            for (const std::string& output : op.derivation.OutputDatasets()) {
              EvictLocked("dataset", output);
            }
            steps_.Clear();
            FlushQueriesLocked('V');
            FlushQueriesLocked('D');  // auto-defined output datasets
          } else if constexpr (std::is_same_v<Op,
                                              CatalogMutation::AnnotateOp>) {
            std::string target = op.name;
            if (op.name_from_op.has_value() &&
                *op.name_from_op < result.assigned_ids.size()) {
              target = result.assigned_ids[*op.name_from_op];
            }
            EvictLocked(op.kind, target);
            if (op.kind == "dataset") {
              steps_.Erase(target);
              FlushQueriesLocked('D');
            } else if (op.kind == "transformation") {
              FlushQueriesLocked('T');
            } else if (op.kind == "derivation" || op.kind == "invocation") {
              if (op.kind == "derivation") FlushQueriesLocked('V');
              steps_.Clear();
            }
          } else if constexpr (std::is_same_v<Op,
                                              CatalogMutation::AddReplicaOp>) {
            EvictLocked("dataset", op.replica.dataset);
            FlushQueriesLocked('D');  // materialized-set queries move
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::RecordInvocationOp>) {
            steps_.Clear();  // steps embed invocation lists
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::SetDatasetSizeOp>) {
            EvictLocked("dataset", op.name);
            FlushQueriesLocked('D');
          } else {
            static_assert(
                std::is_same_v<Op, CatalogMutation::InvalidateReplicaOp>);
            // The replica's dataset is unknown from the id alone.
            stats_.evictions += objects_.EraseIf(
                [](const std::string&, const ObjectRecord& record) {
                  return record.kind == "dataset";
                });
            FlushQueriesLocked('D');
          }
        },
        mutations[i].op);
  }
  return result;
}

}  // namespace vdg
