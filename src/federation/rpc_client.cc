#include "federation/rpc_client.h"

#include <utility>

namespace vdg {

SimulatedRpcCatalogClient::SimulatedRpcCatalogClient(
    std::shared_ptr<CatalogClient> backend, GridSimulator* grid,
    RpcConfig config)
    : backend_(std::move(backend)),
      grid_(grid),
      config_(std::move(config)),
      authority_(backend_->authority()),
      rng_(config_.seed) {}

Status SimulatedRpcCatalogClient::Transport(bool idempotent) {
  for (int attempt = 1;; ++attempt) {
    // The request occupies the wire for the full latency either way —
    // lost responses and rejections are only discovered at timeout.
    // RunUntil (not a bare clock bump) lets scheduled events fire:
    // an outage window ending mid-backoff restores the site and the
    // next attempt goes through.
    grid_->events().RunUntil(grid_->now() + config_.latency_s);
    if (!config_.site.empty() && !grid_->IsSiteServing(config_.site)) {
      // A crashed site rejects before accepting the request, so even a
      // mutation is safe to re-send.
      ++stats_.outage_rejections;
    } else if (config_.loss_rate > 0 && rng_.Chance(config_.loss_rate)) {
      ++stats_.lost_calls;
      if (!idempotent) {
        // Lost in transit is ambiguous: the request — or only its
        // response — may have vanished. Re-sending could double-apply,
        // so surface the ambiguity instead of retrying.
        ++stats_.mutation_fail_fast;
        ++stats_.failures;
        return Status::UnavailableRetryUnsafe(
            "catalog endpoint " + authority_ +
            " lost a mutation in transit (may have been applied)");
      }
    } else {
      ++stats_.round_trips;
      return Status::OK();
    }
    if (attempt >= config_.max_attempts) {
      ++stats_.failures;
      return Status::Unavailable(
          "catalog endpoint " + authority_ + " unreachable after " +
          std::to_string(attempt) + " attempts");
    }
    ++stats_.retries;
    double backoff = config_.backoff_base_s;
    for (int i = 1; i < attempt; ++i) backoff *= config_.backoff_multiplier;
    grid_->events().RunUntil(grid_->now() + backoff);
  }
}

Result<uint64_t> SimulatedRpcCatalogClient::Version() {
  return Call([&] { return backend_->Version(); });
}

Result<std::vector<CatalogChange>> SimulatedRpcCatalogClient::ChangesSince(
    uint64_t since_version) {
  return Call([&] { return backend_->ChangesSince(since_version); });
}

Result<Dataset> SimulatedRpcCatalogClient::GetDataset(std::string_view name) {
  return Call([&] { return backend_->GetDataset(name); });
}

Result<Transformation> SimulatedRpcCatalogClient::GetTransformation(
    std::string_view name) {
  return Call([&] { return backend_->GetTransformation(name); });
}

Result<Derivation> SimulatedRpcCatalogClient::GetDerivation(
    std::string_view name) {
  return Call([&] { return backend_->GetDerivation(name); });
}

Result<bool> SimulatedRpcCatalogClient::HasDataset(std::string_view name) {
  return Call([&] { return backend_->HasDataset(name); });
}

Result<bool> SimulatedRpcCatalogClient::IsMaterialized(
    std::string_view dataset) {
  return Call([&] { return backend_->IsMaterialized(dataset); });
}

Result<std::string> SimulatedRpcCatalogClient::ProducerOf(
    std::string_view dataset) {
  return Call([&] { return backend_->ProducerOf(dataset); });
}

Result<std::vector<Invocation>> SimulatedRpcCatalogClient::InvocationsOf(
    std::string_view derivation) {
  return Call([&] { return backend_->InvocationsOf(derivation); });
}

Result<NameList> SimulatedRpcCatalogClient::FindDatasets(
    const DatasetQuery& query) {
  return Call([&] { return backend_->FindDatasets(query); });
}

Result<NameList> SimulatedRpcCatalogClient::FindTransformations(
    const TransformationQuery& query) {
  return Call([&] { return backend_->FindTransformations(query); });
}

Result<NameList> SimulatedRpcCatalogClient::FindDerivations(
    const DerivationQuery& query) {
  return Call([&] { return backend_->FindDerivations(query); });
}

Result<NameList> SimulatedRpcCatalogClient::AllNames(
    std::string_view kind) {
  return Call([&] { return backend_->AllNames(kind); });
}

Result<bool> SimulatedRpcCatalogClient::TypeConforms(
    const DatasetType& type, const DatasetType& against) {
  return Call([&] { return backend_->TypeConforms(type, against); });
}

Result<std::vector<ObjectRecord>> SimulatedRpcCatalogClient::BatchGet(
    const std::vector<ObjectKey>& keys) {
  if (config_.enable_batching) {
    stats_.batched_lookups += keys.size();
    return Call([&] { return backend_->BatchGet(keys); });
  }
  // Naive mode: every point lookup is its own round trip.
  std::vector<ObjectRecord> records;
  records.reserve(keys.size());
  for (const ObjectKey& key : keys) {
    VDG_ASSIGN_OR_RETURN(std::vector<ObjectRecord> one,
                         Call([&] { return backend_->BatchGet({key}); }));
    records.push_back(std::move(one.front()));
  }
  return records;
}

Result<ProvenanceStep> SimulatedRpcCatalogClient::GetProvenanceStep(
    std::string_view dataset) {
  if (config_.enable_batching) {
    return Call([&] { return backend_->GetProvenanceStep(dataset); });
  }
  // Naive mode: the four point lookups a provenance hop is made of,
  // each paying its own round trip.
  ProvenanceStep step;
  step.dataset = std::string(dataset);
  VDG_ASSIGN_OR_RETURN(step.exists,
                       Call([&] { return backend_->HasDataset(dataset); }));
  if (!step.exists) return step;
  Result<std::string> producer =
      Call([&] { return backend_->ProducerOf(dataset); });
  if (!producer.ok()) {
    if (producer.status().IsNotFound()) return step;  // raw input
    return producer.status();
  }
  step.producer = *producer;
  Result<Derivation> derivation =
      Call([&] { return backend_->GetDerivation(step.producer); });
  if (derivation.ok()) {
    step.derivation = *std::move(derivation);
    VDG_ASSIGN_OR_RETURN(
        step.invocations,
        Call([&] { return backend_->InvocationsOf(step.producer); }));
  } else if (!derivation.status().IsNotFound()) {
    return derivation.status();
  }
  return step;
}

Status SimulatedRpcCatalogClient::DefineDataset(Dataset dataset) {
  return CallMutation(
      [&] { return backend_->DefineDataset(std::move(dataset)); });
}

Status SimulatedRpcCatalogClient::DefineTransformation(
    Transformation transformation) {
  return CallMutation(
      [&] { return backend_->DefineTransformation(std::move(transformation)); });
}

Status SimulatedRpcCatalogClient::DefineDerivation(Derivation derivation) {
  return CallMutation(
      [&] { return backend_->DefineDerivation(std::move(derivation)); });
}

Status SimulatedRpcCatalogClient::Annotate(std::string_view kind,
                                           std::string_view name,
                                           std::string_view key,
                                           AttributeValue value) {
  return CallMutation(
      [&] { return backend_->Annotate(kind, name, key, std::move(value)); });
}

Result<std::string> SimulatedRpcCatalogClient::AddReplica(Replica replica) {
  return CallMutation([&] { return backend_->AddReplica(std::move(replica)); });
}

Result<std::string> SimulatedRpcCatalogClient::RecordInvocation(
    Invocation invocation) {
  return CallMutation(
      [&] { return backend_->RecordInvocation(std::move(invocation)); });
}

Status SimulatedRpcCatalogClient::SetDatasetSize(std::string_view name,
                                                 int64_t size_bytes) {
  return CallMutation(
      [&] { return backend_->SetDatasetSize(name, size_bytes); });
}

Status SimulatedRpcCatalogClient::InvalidateReplica(std::string_view id) {
  return CallMutation([&] { return backend_->InvalidateReplica(id); });
}

Result<BatchResult> SimulatedRpcCatalogClient::ApplyBatch(
    const std::vector<CatalogMutation>& mutations,
    const BatchOptions& options) {
  if (config_.enable_batching) {
    stats_.batched_lookups += mutations.size();
    // A token-bearing batch is deduplicated server-side, making the
    // whole group idempotent and therefore safe to auto-retry on loss.
    if (!options.idempotency_token.empty()) {
      return Call([&] { return backend_->ApplyBatch(mutations, options); });
    }
    return CallMutation(
        [&] { return backend_->ApplyBatch(mutations, options); });
  }
  // Naive mode: the base-class decomposition issues each op through
  // this client's single-op methods, one round trip apiece.
  return CatalogClient::ApplyBatch(mutations, options);
}

}  // namespace vdg
