#include "federation/resilient_client.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace vdg {

namespace {

/// Formats a 64-bit value as fixed-width hex for token uniqueness.
std::string Hex64(uint64_t v) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[i] = kDigits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

ResilientCatalogClient::ResilientCatalogClient(
    std::vector<ResilientEndpoint> endpoints, ResilientOptions options)
    : options_(options), rng_(options.seed) {
  endpoints_.reserve(endpoints.size());
  for (auto& e : endpoints) endpoints_.push_back(Endpoint{std::move(e)});
  token_prefix_ = rng_.engine()();
  // Best-effort eager dial so authority()/read_only() are stable
  // before concurrent calls start; a fully-down fleet just leaves the
  // identity to be learned on the first successful call.
  for (size_t i = 0; i < endpoints_.size(); ++i) {
    if (EnsureConnected(i).ok()) break;
  }
}

const std::string& ResilientCatalogClient::authority() const {
  std::lock_guard<std::mutex> lock(mu_);
  return authority_;
}

bool ResilientCatalogClient::read_only() const {
  std::lock_guard<std::mutex> lock(mu_);
  return read_only_;
}

ResilientStats ResilientCatalogClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

BreakerState ResilientCatalogClient::breaker_state(
    size_t endpoint_index) const {
  std::lock_guard<std::mutex> lock(mu_);
  return endpoints_.at(endpoint_index).breaker;
}

bool ResilientCatalogClient::IsTransportError(const Status& s) {
  // Unavailable: connection refused/broken or server draining.
  // DeadlineExceeded: the per-request deadline expired.
  // ResourceExhausted: bounced at admission (client or server) —
  // never executed, so always safe to try elsewhere.
  return s.IsUnavailable() || s.IsDeadlineExceeded() ||
         s.IsResourceExhausted();
}

int ResilientCatalogClient::PickEndpointLocked(int avoid) {
  const auto now = std::chrono::steady_clock::now();
  const int n = static_cast<int>(endpoints_.size());
  if (n == 0) return -1;
  // Stick to the endpoint we last used (connection affinity); rotate
  // away from `avoid` — the endpoint that just failed this call.
  const int start = last_endpoint_ >= 0 ? last_endpoint_ : 0;
  int fallback = -1;
  for (int k = 0; k < n; ++k) {
    const int i = (start + k) % n;
    Endpoint& e = endpoints_[static_cast<size_t>(i)];
    if (e.breaker == BreakerState::kOpen) {
      if (now >= e.open_until) {
        e.breaker = BreakerState::kHalfOpen;  // one probe allowed
      } else {
        stats_.breaker_short_circuits++;
        continue;
      }
    }
    if (i == avoid && n > 1) {
      if (fallback < 0) fallback = i;  // usable, but prefer a peer
      continue;
    }
    return i;
  }
  return fallback;
}

Result<std::shared_ptr<CatalogClient>> ResilientCatalogClient::EnsureConnected(
    size_t i) {
  std::function<Result<std::shared_ptr<CatalogClient>>()> dial;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Endpoint& e = endpoints_[i];
    if (e.client != nullptr) return e.client;
    dial = e.config.connect;
  }
  // Dial outside the lock: connects block (handshake round trip) and
  // other threads may be mid-call on healthy endpoints.
  Result<std::shared_ptr<CatalogClient>> client = dial();
  std::lock_guard<std::mutex> lock(mu_);
  Endpoint& e = endpoints_[i];
  if (!client.ok()) return client.status();
  if (e.client != nullptr) return e.client;  // raced; keep the first
  e.client = *client;
  if (e.ever_connected) stats_.reconnects++;
  e.ever_connected = true;
  if (authority_.empty()) {
    authority_ = e.client->authority();
    read_only_ = e.client->read_only();
  }
  return e.client;
}

void ResilientCatalogClient::RecordSuccess(size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  Endpoint& e = endpoints_[i];
  e.consecutive_failures = 0;
  e.breaker = BreakerState::kClosed;
}

void ResilientCatalogClient::RecordFailure(size_t i, bool drop_connection) {
  std::lock_guard<std::mutex> lock(mu_);
  Endpoint& e = endpoints_[i];
  e.consecutive_failures++;
  if (drop_connection) e.client.reset();
  // A failed half-open probe re-opens immediately; a closed breaker
  // opens after `breaker_threshold` consecutive failures.
  if (e.breaker == BreakerState::kHalfOpen ||
      e.consecutive_failures >= options_.breaker_threshold) {
    if (e.breaker != BreakerState::kOpen) stats_.breaker_opens++;
    e.breaker = BreakerState::kOpen;
    e.open_until =
        std::chrono::steady_clock::now() + options_.breaker_cooldown;
  }
}

template <typename T>
Result<T> ResilientCatalogClient::CallImpl(
    bool idempotent, const std::function<Result<T>(CatalogClient&)>& fn) {
  const auto deadline =
      std::chrono::steady_clock::now() + options_.retry_budget;
  Status last_error = Status::Unavailable("no catalog endpoints configured");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with seeded jitter, capped by the budget.
      double scale = 1.0;
      for (int k = 1; k < attempt; ++k) scale *= options_.backoff_multiplier;
      auto delay = std::chrono::duration_cast<std::chrono::microseconds>(
          options_.backoff_base * scale);
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.retries++;
        delay += std::chrono::duration_cast<std::chrono::microseconds>(
            delay * options_.jitter_fraction * rng_.Uniform(0.0, 1.0));
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) break;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(deadline -
                                                                now);
      std::this_thread::sleep_for(std::min(delay, remaining));
      if (std::chrono::steady_clock::now() >= deadline) break;
    }
    int idx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const int avoid = attempt > 0 ? last_endpoint_ : -1;
      idx = PickEndpointLocked(avoid);
      if (idx >= 0) {
        if (last_endpoint_ >= 0 && idx != last_endpoint_) stats_.failovers++;
        last_endpoint_ = idx;
      }
    }
    if (idx < 0) {
      // Every breaker is open and in cooldown: wait for the earliest
      // half-open probe window instead of burning attempts.
      last_error = Status::Unavailable("all catalog endpoints circuit-open");
      std::this_thread::sleep_for(std::min(
          std::chrono::duration_cast<std::chrono::microseconds>(
              options_.breaker_cooldown),
          std::chrono::duration_cast<std::chrono::microseconds>(
              options_.backoff_base)));
      continue;
    }
    Result<std::shared_ptr<CatalogClient>> client =
        EnsureConnected(static_cast<size_t>(idx));
    if (!client.ok()) {
      last_error = client.status();
      RecordFailure(static_cast<size_t>(idx), /*drop_connection=*/true);
      continue;  // a failed dial never executed anything: always retry
    }
    Result<T> r = fn(**client);
    if (r.ok() || !IsTransportError(r.status())) {
      // Either success or a real catalog answer (NotFound, TypeError,
      // ...): the endpoint is healthy.
      RecordSuccess(static_cast<size_t>(idx));
      return r;
    }
    last_error = r.status();
    // Unavailable means the connection is gone. DeadlineExceeded drops
    // it too: a request that timed out leaves the byte stream in an
    // unknown state (e.g. a corrupted length prefix has the server
    // waiting on a phantom frame forever) — reconnecting is the only
    // way back to a stream both sides agree on. Only ResourceExhausted
    // (bounced at admission, stream untouched) keeps the connection.
    RecordFailure(static_cast<size_t>(idx),
                  /*drop_connection=*/!last_error.IsResourceExhausted());
    if (!idempotent && !last_error.retry_safe()) {
      // The request reached an established connection and may have
      // executed even though the reply is lost: surface it rather
      // than risk double-applying a mutation.
      std::lock_guard<std::mutex> lock(mu_);
      stats_.mutation_fail_fast++;
      return last_error;
    }
    if (std::chrono::steady_clock::now() >= deadline) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.exhausted_calls++;
  return last_error;
}

std::string ResilientCatalogClient::GenerateToken() {
  std::lock_guard<std::mutex> lock(mu_);
  return "rcc-" + Hex64(token_prefix_) + "-" + std::to_string(next_token_++);
}

// ---------------------------------------------------------------------
// Read vocabulary: retried freely inside the budget.
// ---------------------------------------------------------------------

Result<uint64_t> ResilientCatalogClient::Version() {
  return ReadCall<uint64_t>([](CatalogClient& c) { return c.Version(); });
}

Result<std::vector<CatalogChange>> ResilientCatalogClient::ChangesSince(
    uint64_t since_version) {
  return ReadCall<std::vector<CatalogChange>>(
      [&](CatalogClient& c) { return c.ChangesSince(since_version); });
}

Result<Dataset> ResilientCatalogClient::GetDataset(std::string_view name) {
  return ReadCall<Dataset>(
      [&](CatalogClient& c) { return c.GetDataset(name); });
}

Result<Transformation> ResilientCatalogClient::GetTransformation(
    std::string_view name) {
  return ReadCall<Transformation>(
      [&](CatalogClient& c) { return c.GetTransformation(name); });
}

Result<Derivation> ResilientCatalogClient::GetDerivation(
    std::string_view name) {
  return ReadCall<Derivation>(
      [&](CatalogClient& c) { return c.GetDerivation(name); });
}

Result<bool> ResilientCatalogClient::HasDataset(std::string_view name) {
  return ReadCall<bool>([&](CatalogClient& c) { return c.HasDataset(name); });
}

Result<bool> ResilientCatalogClient::IsMaterialized(
    std::string_view dataset) {
  return ReadCall<bool>(
      [&](CatalogClient& c) { return c.IsMaterialized(dataset); });
}

Result<std::string> ResilientCatalogClient::ProducerOf(
    std::string_view dataset) {
  return ReadCall<std::string>(
      [&](CatalogClient& c) { return c.ProducerOf(dataset); });
}

Result<std::vector<Invocation>> ResilientCatalogClient::InvocationsOf(
    std::string_view derivation) {
  return ReadCall<std::vector<Invocation>>(
      [&](CatalogClient& c) { return c.InvocationsOf(derivation); });
}

Result<NameList> ResilientCatalogClient::FindDatasets(
    const DatasetQuery& query) {
  return ReadCall<NameList>(
      [&](CatalogClient& c) { return c.FindDatasets(query); });
}

Result<NameList> ResilientCatalogClient::FindTransformations(
    const TransformationQuery& query) {
  return ReadCall<NameList>(
      [&](CatalogClient& c) { return c.FindTransformations(query); });
}

Result<NameList> ResilientCatalogClient::FindDerivations(
    const DerivationQuery& query) {
  return ReadCall<NameList>(
      [&](CatalogClient& c) { return c.FindDerivations(query); });
}

Result<NameList> ResilientCatalogClient::AllNames(
    std::string_view kind) {
  return ReadCall<NameList>(
      [&](CatalogClient& c) { return c.AllNames(kind); });
}

Result<bool> ResilientCatalogClient::TypeConforms(const DatasetType& type,
                                                  const DatasetType& against) {
  return ReadCall<bool>(
      [&](CatalogClient& c) { return c.TypeConforms(type, against); });
}

Result<std::vector<ObjectRecord>> ResilientCatalogClient::BatchGet(
    const std::vector<ObjectKey>& keys) {
  return ReadCall<std::vector<ObjectRecord>>(
      [&](CatalogClient& c) { return c.BatchGet(keys); });
}

Result<ProvenanceStep> ResilientCatalogClient::GetProvenanceStep(
    std::string_view dataset) {
  return ReadCall<ProvenanceStep>(
      [&](CatalogClient& c) { return c.GetProvenanceStep(dataset); });
}

// ---------------------------------------------------------------------
// Mutation vocabulary: issued at most once past an established
// connection; a retry-unsafe transport failure surfaces to the caller
// (who can re-issue via ApplyBatch + token for exactly-once).
// ---------------------------------------------------------------------

Status ResilientCatalogClient::DefineDataset(Dataset dataset) {
  Result<bool> r = MutationCall<bool>([&](CatalogClient& c) -> Result<bool> {
    Status s = c.DefineDataset(dataset);
    if (!s.ok()) return s;
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Status ResilientCatalogClient::DefineTransformation(
    Transformation transformation) {
  Result<bool> r = MutationCall<bool>([&](CatalogClient& c) -> Result<bool> {
    Status s = c.DefineTransformation(transformation);
    if (!s.ok()) return s;
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Status ResilientCatalogClient::DefineDerivation(Derivation derivation) {
  Result<bool> r = MutationCall<bool>([&](CatalogClient& c) -> Result<bool> {
    Status s = c.DefineDerivation(derivation);
    if (!s.ok()) return s;
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Status ResilientCatalogClient::Annotate(std::string_view kind,
                                        std::string_view name,
                                        std::string_view key,
                                        AttributeValue value) {
  Result<bool> r = MutationCall<bool>([&](CatalogClient& c) -> Result<bool> {
    Status s = c.Annotate(kind, name, key, value);
    if (!s.ok()) return s;
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Result<std::string> ResilientCatalogClient::AddReplica(Replica replica) {
  return MutationCall<std::string>(
      [&](CatalogClient& c) { return c.AddReplica(replica); });
}

Result<std::string> ResilientCatalogClient::RecordInvocation(
    Invocation invocation) {
  return MutationCall<std::string>(
      [&](CatalogClient& c) { return c.RecordInvocation(invocation); });
}

Status ResilientCatalogClient::SetDatasetSize(std::string_view name,
                                              int64_t size_bytes) {
  Result<bool> r = MutationCall<bool>([&](CatalogClient& c) -> Result<bool> {
    Status s = c.SetDatasetSize(name, size_bytes);
    if (!s.ok()) return s;
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Status ResilientCatalogClient::InvalidateReplica(std::string_view id) {
  Result<bool> r = MutationCall<bool>([&](CatalogClient& c) -> Result<bool> {
    Status s = c.InvalidateReplica(id);
    if (!s.ok()) return s;
    return true;
  });
  return r.ok() ? Status::OK() : r.status();
}

Result<BatchResult> ResilientCatalogClient::ApplyBatch(
    const std::vector<CatalogMutation>& mutations,
    const BatchOptions& options) {
  BatchOptions tokenized = options;
  if (tokenized.idempotency_token.empty()) {
    tokenized.idempotency_token = GenerateToken();
  }
  // With a token the server's dedup window makes retries exactly-once,
  // so the batch rides the idempotent retry path.
  return ReadCall<BatchResult>(
      [&](CatalogClient& c) { return c.ApplyBatch(mutations, tokenized); });
}

}  // namespace vdg
