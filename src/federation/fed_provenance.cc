#include "federation/fed_provenance.h"

#include "common/uri.h"

namespace vdg {

Status FederatedProvenance::Build(const ResolvedRef& ref, int depth,
                                  int max_depth,
                                  std::set<std::string>* on_path,
                                  LineageNode* out) const {
  if (ref.remote) ++last_hops_;
  CatalogClient* client = ref.client;
  // One compound call per link: existence, producer, derivation, and
  // invocations all arrive together.
  VDG_ASSIGN_OR_RETURN(ProvenanceStep step,
                       client->GetProvenanceStep(ref.local_name));
  if (!step.exists) {
    return Status::NotFound("dataset not found: " + ref.local_name + " at " +
                            client->authority());
  }
  std::string qualified = MakeVdpRef(client->authority(), ref.local_name);
  if (on_path->count(qualified) != 0) {
    return Status::FailedPrecondition("provenance cycle through " +
                                      qualified);
  }
  out->dataset = qualified;

  if (step.producer.empty()) return Status::OK();  // raw input

  out->derivation = MakeVdpRef(client->authority(), step.producer);
  if (!step.derivation) {
    return Status::NotFound("derivation not found: " + step.producer +
                            " at " + client->authority());
  }
  out->transformation = step.derivation->QualifiedTransformation();
  out->invocations = std::move(step.invocations);

  if (max_depth != 0 && depth >= max_depth) return Status::OK();

  on_path->insert(qualified);
  for (const std::string& input : step.derivation->InputDatasets()) {
    LineageNode child;
    // Inputs resolve relative to the catalog holding the derivation —
    // a bare name means "this server", a hyperlink crosses servers.
    VDG_ASSIGN_OR_RETURN(ResolvedRef input_ref,
                         registry_.ResolveFrom(client, input));
    VDG_RETURN_IF_ERROR(
        Build(input_ref, depth + 1, max_depth, on_path, &child));
    out->inputs.push_back(std::move(child));
  }
  on_path->erase(qualified);
  return Status::OK();
}

Result<LineageNode> FederatedProvenance::Lineage(VirtualDataCatalog* home,
                                                 std::string_view dataset_ref,
                                                 int max_depth) const {
  last_hops_ = 0;
  LineageNode root;
  std::set<std::string> on_path;
  VDG_ASSIGN_OR_RETURN(ResolvedRef ref, registry_.Resolve(home, dataset_ref));
  VDG_RETURN_IF_ERROR(Build(ref, 0, max_depth, &on_path, &root));
  return root;
}

}  // namespace vdg
