#include "federation/fed_provenance.h"

namespace vdg {

Status FederatedProvenance::Build(VirtualDataCatalog* home,
                                  std::string_view dataset_ref, int depth,
                                  int max_depth,
                                  std::set<std::string>* on_path,
                                  LineageNode* out) const {
  VDG_ASSIGN_OR_RETURN(ResolvedRef ref, registry_.Resolve(home, dataset_ref));
  if (ref.remote) ++last_hops_;
  VirtualDataCatalog* catalog = ref.catalog;
  if (!catalog->HasDataset(ref.local_name)) {
    return Status::NotFound("dataset not found: " + ref.local_name + " at " +
                            catalog->name());
  }
  std::string qualified = "vdp://" + catalog->name() + "/" + ref.local_name;
  if (on_path->count(qualified) != 0) {
    return Status::FailedPrecondition("provenance cycle through " +
                                      qualified);
  }
  out->dataset = qualified;

  Result<std::string> producer = catalog->ProducerOf(ref.local_name);
  if (!producer.ok()) return Status::OK();  // raw input

  out->derivation = "vdp://" + catalog->name() + "/" + *producer;
  VDG_ASSIGN_OR_RETURN(Derivation dv, catalog->GetDerivation(*producer));
  out->transformation = dv.QualifiedTransformation();
  out->invocations = catalog->InvocationsOf(*producer);

  if (max_depth != 0 && depth >= max_depth) return Status::OK();

  on_path->insert(qualified);
  for (const std::string& input : dv.InputDatasets()) {
    LineageNode child;
    // Inputs resolve relative to the catalog holding the derivation —
    // a bare name means "this server", a hyperlink crosses servers.
    VDG_RETURN_IF_ERROR(
        Build(catalog, input, depth + 1, max_depth, on_path, &child));
    out->inputs.push_back(std::move(child));
  }
  on_path->erase(qualified);
  return Status::OK();
}

Result<LineageNode> FederatedProvenance::Lineage(VirtualDataCatalog* home,
                                                 std::string_view dataset_ref,
                                                 int max_depth) const {
  last_hops_ = 0;
  LineageNode root;
  std::set<std::string> on_path;
  VDG_RETURN_IF_ERROR(
      Build(home, dataset_ref, 0, max_depth, &on_path, &root));
  return root;
}

}  // namespace vdg
