#include "federation/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace vdg {

namespace {

/// Whole-buffer send loop; false on a broken socket.
bool SendAll(int fd, std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

// -----------------------------------------------------------------------
// BatchDedupRegistry
// -----------------------------------------------------------------------

BatchDedupRegistry::BatchDedupRegistry(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<wire::Response> BatchDedupRegistry::BeginOrAwait(
    const std::string& token) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(token);
  if (it == entries_.end()) {
    entries_.emplace(token, Entry{});  // claim: caller executes
    return std::nullopt;
  }
  // Another claimant exists. Wait for its outcome; the claimant always
  // reaches Complete() because workers finish the item they are
  // executing before honouring a stop.
  cv_.wait(lock, [&] {
    auto e = entries_.find(token);
    return e == entries_.end() || e->second.done;
  });
  auto e = entries_.find(token);
  if (e == entries_.end()) {
    // Evicted between completion and wake-up: the window is too small
    // for the retry horizon. Re-claim and execute again — the caller
    // accepts at-least-once in this (configurable) corner.
    entries_.emplace(token, Entry{});
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return e->second.response;
}

void BatchDedupRegistry::Complete(const std::string& token,
                                  wire::Response response) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(token);
    if (it == entries_.end()) return;
    it->second.done = true;
    it->second.response = std::move(response);
    completed_order_.push_back(token);
    while (completed_order_.size() > capacity_) {
      auto old = entries_.find(completed_order_.front());
      if (old != entries_.end() && old->second.done) entries_.erase(old);
      completed_order_.pop_front();
    }
  }
  cv_.notify_all();
}

size_t BatchDedupRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

// -----------------------------------------------------------------------
// ServerConnection
// -----------------------------------------------------------------------

ServerConnection::ServerConnection(CatalogServer* server, int client_fd,
                                   int server_fd)
    : server_(server), client_fd_(client_fd), server_fd_(server_fd) {}

ServerConnection::~ServerConnection() {
  Close();
  if (pump_.joinable()) pump_.join();
  if (client_fd_ >= 0) ::close(client_fd_);
  if (server_fd_ >= 0) ::close(server_fd_);
}

bool ServerConnection::ClientSend(std::string_view bytes) {
  if (client_fd_ >= 0) {
    std::lock_guard<std::mutex> lock(write_fd_mu_);
    if (closed()) return false;
    return SendAll(client_fd_, bytes);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    inbound_.append(bytes);
  }
  server_->NotifyReadable(this);
  return true;
}

bool ServerConnection::ClientReceive(std::string* out) {
  if (client_fd_ >= 0) {
    char buf[16384];
    for (;;) {
      ssize_t n = ::recv(client_fd_, buf, sizeof(buf), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      out->append(buf, static_cast<size_t>(n));
      return true;
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  outbound_cv_.wait(lock, [this] { return !outbound_.empty() || closed_; });
  if (outbound_.empty()) return false;  // closed with nothing pending
  out->append(outbound_);
  outbound_.clear();
  return true;
}

void ServerConnection::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  // Unblock any recv() in the pump thread / client receiver.
  if (client_fd_ >= 0) ::shutdown(client_fd_, SHUT_RDWR);
  if (server_fd_ >= 0) ::shutdown(server_fd_, SHUT_RDWR);
  outbound_cv_.notify_all();
  // Let the dispatcher notice and prune this connection.
  if (server_ != nullptr) server_->NotifyReadable(this);
}

bool ServerConnection::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

void ServerConnection::ServerWrite(std::string_view frame) {
  if (server_fd_ >= 0) {
    std::lock_guard<std::mutex> lock(write_fd_mu_);
    SendAll(server_fd_, frame);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    outbound_.append(frame);
  }
  outbound_cv_.notify_all();
}

// -----------------------------------------------------------------------
// CatalogServer
// -----------------------------------------------------------------------

CatalogServer::CatalogServer(std::shared_ptr<CatalogClient> backend,
                             ServerOptions options)
    : backend_(std::move(backend)), options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  dedup_ = options_.batch_dedup != nullptr
               ? options_.batch_dedup
               : std::make_shared<BatchDedupRegistry>();
  handler_delay_us_.store(options_.handler_delay.count(),
                          std::memory_order_relaxed);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
  workers_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

CatalogServer::~CatalogServer() { Shutdown(); }

std::shared_ptr<ServerConnection> CatalogServer::Connect(bool use_socket) {
  int client_fd = -1;
  int server_fd = -1;
  if (use_socket) {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) == 0) {
      client_fd = fds[0];
      server_fd = fds[1];
    }
    // On failure fall back to the in-memory pipe: same protocol, no fds.
  }
  std::shared_ptr<ServerConnection> conn(
      new ServerConnection(this, client_fd, server_fd));
  bool rejected = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ || draining_) {
      rejected = true;
    } else {
      connections_.push_back(conn);
      stats_.connections_opened.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (rejected) {
    // Close outside mu_: Close() notifies the dispatcher via
    // NotifyReadable, which takes mu_ itself.
    conn->Close();
    return conn;
  }
  if (server_fd >= 0) {
    // Socket mode: a pump thread moves kernel bytes into the same
    // inbound path the in-memory pipe uses, so the dispatcher is
    // transport-agnostic.
    ServerConnection* raw = conn.get();
    raw->pump_ = std::thread([this, raw] {
      char buf[16384];
      for (;;) {
        ssize_t n = ::recv(raw->server_fd_, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) break;
        {
          std::lock_guard<std::mutex> lock(raw->mu_);
          if (raw->closed_) break;
          raw->inbound_.append(buf, static_cast<size_t>(n));
        }
        NotifyReadable(raw);
      }
      raw->Close();
    });
  }
  return conn;
}

bool CatalogServer::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

void CatalogServer::Shutdown(std::chrono::milliseconds drain_timeout) {
  if (drain_timeout.count() > 0) {
    // Drain phase: refuse new connections and bounce fresh frames
    // (DrainConnection answers them Unavailable) while the dispatcher
    // and workers keep running, then wait for admitted work to finish.
    std::unique_lock<std::mutex> lock(mu_);
    if (!stopping_) {
      draining_ = true;
      drain_cv_.wait_for(lock, drain_timeout, [this] {
        return queue_.empty() && active_workers_ == 0;
      });
    }
  }
  std::vector<std::shared_ptr<ServerConnection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !dispatcher_.joinable()) return;
    stopping_ = true;
    conns = connections_;
  }
  dispatcher_cv_.notify_all();
  worker_cv_.notify_all();
  // Close connections before joining: a worker blocked writing to a
  // full socket unblocks once the peer is shut down.
  for (auto& conn : conns) conn->Close();
  if (dispatcher_.joinable()) dispatcher_.join();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  connections_.clear();
  queue_.clear();
}

void CatalogServer::NotifyReadable(ServerConnection* conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    readable_.push_back(conn);
  }
  dispatcher_cv_.notify_all();
}

void CatalogServer::DispatcherLoop() {
  for (;;) {
    std::shared_ptr<ServerConnection> conn;
    {
      std::unique_lock<std::mutex> lock(mu_);
      dispatcher_cv_.wait(
          lock, [this] { return stopping_ || !readable_.empty(); });
      if (stopping_) return;
      ServerConnection* raw = readable_.front();
      readable_.erase(readable_.begin());
      for (const auto& c : connections_) {
        if (c.get() == raw) {
          conn = c;
          break;
        }
      }
      // Prune connections both sides are done with.
      connections_.erase(
          std::remove_if(connections_.begin(), connections_.end(),
                         [&](const std::shared_ptr<ServerConnection>& c) {
                           return c != conn && c->closed();
                         }),
          connections_.end());
    }
    if (conn != nullptr && !conn->closed()) DrainConnection(conn);
  }
}

void CatalogServer::DrainConnection(
    const std::shared_ptr<ServerConnection>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mu_);
    conn->parse_buffer_.append(conn->inbound_);
    conn->inbound_.clear();
  }
  std::string& buffer = conn->parse_buffer_;
  while (!buffer.empty()) {
    Result<size_t> size = wire::FrameSize(buffer);
    if (!size.ok()) {
      if (size.status().IsNotFound()) break;  // need more bytes
      // Corrupt framing: the stream cannot be resynchronized.
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      stats_.connection_resets.fetch_add(1, std::memory_order_relaxed);
      buffer.clear();
      conn->Close();
      return;
    }
    if (buffer.size() < *size) break;  // incomplete frame
    std::string_view frame_bytes(buffer.data(), *size);
    Result<wire::Frame> frame = wire::DecodeFrame(frame_bytes);
    if (!frame.ok() || frame->is_response) {
      stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
      stats_.connection_resets.fetch_add(1, std::memory_order_relaxed);
      buffer.clear();
      conn->Close();
      return;
    }
    stats_.frames_in.fetch_add(1, std::memory_order_relaxed);
    stats_.bytes_in.fetch_add(*size, std::memory_order_relaxed);
    WorkItem item;
    item.conn = conn;
    item.request_id = frame->request_id;
    item.kind = frame->kind;
    item.payload.assign(frame->payload);
    buffer.erase(0, *size);
    bool admitted = false;
    bool draining = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining = draining_;
      if (!stopping_ && !draining_ &&
          queue_.size() < options_.queue_capacity) {
        queue_.push_back(std::move(item));
        admitted = true;
      }
    }
    if (draining) {
      // Drain phase: already-admitted work keeps executing, but every
      // fresh frame is answered with a retryable Unavailable so a
      // resilient client fails over instead of hanging on a dying
      // server.
      stats_.drain_rejections.fetch_add(1, std::memory_order_relaxed);
      wire::Response bounced;
      bounced.kind = item.kind;
      bounced.status = Status::Unavailable("catalog server is draining");
      Reply(conn, item.request_id, bounced);
      continue;
    }
    if (admitted) {
      worker_cv_.notify_one();
    } else {
      // Admission control: reject at the door, before any worker is
      // occupied, so overload degrades to fast-failing calls instead
      // of unbounded queueing.
      stats_.queue_rejections.fetch_add(1, std::memory_order_relaxed);
      wire::Response rejected;
      rejected.kind = item.kind;
      rejected.status =
          Status::ResourceExhausted("catalog server work queue is full");
      Reply(conn, item.request_id, rejected);
    }
  }
}

void CatalogServer::WorkerLoop() {
  for (;;) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      worker_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      item = std::move(queue_.front());
      queue_.pop_front();
      ++active_workers_;
    }
    int64_t delay_us = handler_delay_us_.load(std::memory_order_relaxed);
    if (delay_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    }
    wire::Response response;
    Result<wire::Request> request =
        wire::DecodeRequest(item.kind, item.payload);
    if (!request.ok()) {
      response.kind = item.kind;
      response.status = request.status();
    } else {
      response = Execute(*request);
    }
    stats_.requests_served.fetch_add(1, std::memory_order_relaxed);
    Reply(item.conn, item.request_id, response);
    bool drained = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_workers_;
      drained = queue_.empty() && active_workers_ == 0;
    }
    if (drained) drain_cv_.notify_all();
  }
}

wire::Response CatalogServer::Execute(const wire::Request& request) {
  wire::Response resp;
  resp.kind = request.kind;
  // Every arm forwards to the backend and either records the error
  // status or wraps the value in the kind's response body.
  switch (request.kind) {
    case wire::MsgKind::kHandshake:
      resp.body =
          wire::HandshakeResp{backend_->authority(), backend_->read_only()};
      break;
    case wire::MsgKind::kVersion: {
      Result<uint64_t> r = backend_->Version();
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::VersionResp{*r};
      break;
    }
    case wire::MsgKind::kChangesSince: {
      const auto& body = std::get<wire::ChangesSinceReq>(request.body);
      Result<std::vector<CatalogChange>> r =
          backend_->ChangesSince(body.since_version);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::ChangesResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kGetDataset: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<Dataset> r = backend_->GetDataset(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::DatasetResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kGetTransformation: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<Transformation> r = backend_->GetTransformation(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::TransformationResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kGetDerivation: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<Derivation> r = backend_->GetDerivation(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::DerivationResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kHasDataset: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<bool> r = backend_->HasDataset(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::BoolResp{*r};
      break;
    }
    case wire::MsgKind::kIsMaterialized: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<bool> r = backend_->IsMaterialized(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::BoolResp{*r};
      break;
    }
    case wire::MsgKind::kProducerOf: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<std::string> r = backend_->ProducerOf(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::StringResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kInvocationsOf: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<std::vector<Invocation>> r = backend_->InvocationsOf(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::InvocationsResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kFindDatasets: {
      const auto& body = std::get<wire::FindDatasetsReq>(request.body);
      Result<NameList> r = backend_->FindDatasets(body.query);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::NamesResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kFindTransformations: {
      const auto& body = std::get<wire::FindTransformationsReq>(request.body);
      Result<NameList> r = backend_->FindTransformations(body.query);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::NamesResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kFindDerivations: {
      const auto& body = std::get<wire::FindDerivationsReq>(request.body);
      Result<NameList> r = backend_->FindDerivations(body.query);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::NamesResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kAllNames: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<NameList> r = backend_->AllNames(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::NamesResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kTypeConforms: {
      const auto& body = std::get<wire::TypeConformsReq>(request.body);
      Result<bool> r = backend_->TypeConforms(body.type, body.against);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::BoolResp{*r};
      break;
    }
    case wire::MsgKind::kBatchGet: {
      const auto& body = std::get<wire::BatchGetReq>(request.body);
      Result<std::vector<ObjectRecord>> r = backend_->BatchGet(body.keys);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::RecordsResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kGetProvenanceStep: {
      const auto& body = std::get<wire::NameReq>(request.body);
      Result<ProvenanceStep> r = backend_->GetProvenanceStep(body.name);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::StepResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kDefineDataset: {
      const auto& body = std::get<wire::DefineDatasetReq>(request.body);
      resp.status = backend_->DefineDataset(body.dataset);
      break;
    }
    case wire::MsgKind::kDefineTransformation: {
      const auto& body = std::get<wire::DefineTransformationReq>(request.body);
      resp.status = backend_->DefineTransformation(body.transformation);
      break;
    }
    case wire::MsgKind::kDefineDerivation: {
      const auto& body = std::get<wire::DefineDerivationReq>(request.body);
      resp.status = backend_->DefineDerivation(body.derivation);
      break;
    }
    case wire::MsgKind::kAnnotate: {
      const auto& body = std::get<wire::AnnotateReq>(request.body);
      resp.status =
          backend_->Annotate(body.kind, body.name, body.key, body.value);
      break;
    }
    case wire::MsgKind::kAddReplica: {
      const auto& body = std::get<wire::AddReplicaReq>(request.body);
      Result<std::string> r = backend_->AddReplica(body.replica);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::StringResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kRecordInvocation: {
      const auto& body = std::get<wire::RecordInvocationReq>(request.body);
      Result<std::string> r = backend_->RecordInvocation(body.invocation);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::StringResp{std::move(*r)};
      break;
    }
    case wire::MsgKind::kSetDatasetSize: {
      const auto& body = std::get<wire::SetDatasetSizeReq>(request.body);
      resp.status = backend_->SetDatasetSize(body.name, body.size_bytes);
      break;
    }
    case wire::MsgKind::kInvalidateReplica: {
      const auto& body = std::get<wire::NameReq>(request.body);
      resp.status = backend_->InvalidateReplica(body.name);
      break;
    }
    case wire::MsgKind::kApplyBatch: {
      const auto& body = std::get<wire::ApplyBatchReq>(request.body);
      const std::string& token = body.options.idempotency_token;
      if (!token.empty()) {
        // Tokenized batch: consult the idempotency window first so a
        // retry (lost reply / replica failover) replays the recorded
        // outcome — assigned ids included — instead of applying twice.
        if (std::optional<wire::Response> recorded =
                dedup_->BeginOrAwait(token)) {
          stats_.batch_dedup_hits.fetch_add(1, std::memory_order_relaxed);
          resp = std::move(*recorded);
          break;
        }
      }
      Result<BatchResult> r =
          backend_->ApplyBatch(body.mutations, body.options);
      if (!r.ok()) resp.status = r.status();
      else resp.body = wire::BatchResultResp{std::move(*r)};
      if (!token.empty()) dedup_->Complete(token, resp);
      break;
    }
  }
  return resp;
}

void CatalogServer::Reply(const std::shared_ptr<ServerConnection>& conn,
                          uint64_t request_id,
                          const wire::Response& response) {
  std::string frame = wire::EncodeResponseFrame(request_id, response);
  stats_.frames_out.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
  conn->ServerWrite(frame);
}

// -----------------------------------------------------------------------
// WireCatalogClient
// -----------------------------------------------------------------------

Result<std::shared_ptr<WireCatalogClient>> WireCatalogClient::Connect(
    CatalogServer* server, WireClientOptions options, bool use_socket) {
  return ConnectChannel(server->Connect(use_socket), options);
}

Result<std::shared_ptr<WireCatalogClient>> WireCatalogClient::ConnectChannel(
    std::shared_ptr<ClientChannel> channel, WireClientOptions options) {
  if (channel == nullptr || channel->closed()) {
    return Status::Unavailable("catalog server refused the connection");
  }
  std::shared_ptr<WireCatalogClient> client(
      new WireCatalogClient(std::move(channel), options));
  wire::Request handshake;
  handshake.kind = wire::MsgKind::kHandshake;
  handshake.body = wire::EmptyReq{};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, client->Call(handshake));
  if (!resp.status.ok()) return resp.status;
  const auto* body = std::get_if<wire::HandshakeResp>(&resp.body);
  if (body == nullptr) {
    return Status::Internal("wire: handshake response carried no body");
  }
  client->authority_ = body->authority;
  client->read_only_ = body->read_only;
  return client;
}

WireCatalogClient::WireCatalogClient(std::shared_ptr<ClientChannel> conn,
                                     WireClientOptions options)
    : conn_(std::move(conn)), options_(options) {
  receiver_ = std::thread([this] { ReceiverLoop(); });
}

WireCatalogClient::~WireCatalogClient() {
  Disconnect();
  if (receiver_.joinable()) receiver_.join();
}

WireClientStats WireCatalogClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void WireCatalogClient::reset_stats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = WireClientStats{};
}

void WireCatalogClient::CancelPending() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, slot] : pending_) {
    if (slot->done) continue;
    slot->done = true;
    slot->abandoned = true;
    slot->error = Status::Cancelled("call cancelled by CancelPending");
    stats_.cancellations++;
    slot->cv.notify_all();
  }
}

void WireCatalogClient::Disconnect() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (broken_) return;
    broken_ = true;
  }
  conn_->Close();
  // Pending requests were already sent: they may execute server-side
  // even though their replies are lost, so carriers must not blindly
  // re-issue mutations among them.
  FailAllPending(
      Status::UnavailableRetryUnsafe("wire client disconnected"));
}

void WireCatalogClient::FailAllPending(const Status& error) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, slot] : pending_) {
    if (slot->done) continue;
    slot->done = true;
    slot->error = error;
    slot->cv.notify_all();
  }
}

bool WireCatalogClient::SendFrame(std::string_view frame) {
  // One frame = one logical send, serialized so concurrent callers
  // can't interleave partial frames, looping because a channel (or a
  // fault shim under it) may accept fewer bytes than offered.
  std::lock_guard<std::mutex> lock(send_mu_);
  size_t off = 0;
  while (off < frame.size()) {
    ptrdiff_t n = conn_->Send(frame.substr(off));
    if (n <= 0) return false;
    off += static_cast<size_t>(n);
  }
  return true;
}

void WireCatalogClient::ReceiverLoop() {
  std::string buffer;
  for (;;) {
    if (!conn_->Receive(&buffer)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        broken_ = true;
      }
      // Lost replies: the in-flight requests may have executed.
      FailAllPending(Status::UnavailableRetryUnsafe(
          "wire connection closed by server"));
      return;
    }
    while (!buffer.empty()) {
      Result<size_t> size = wire::FrameSize(buffer);
      if (!size.ok()) {
        if (size.status().IsNotFound()) break;  // need more bytes
        {
          std::lock_guard<std::mutex> lock(mu_);
          broken_ = true;
        }
        conn_->Close();
        FailAllPending(Status::UnavailableRetryUnsafe(
            "wire response stream is corrupt: " + size.status().message()));
        return;
      }
      if (buffer.size() < *size) break;
      Result<wire::Frame> frame =
          wire::DecodeFrame(std::string_view(buffer.data(), *size));
      if (!frame.ok() || !frame->is_response) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          broken_ = true;
        }
        conn_->Close();
        FailAllPending(
            Status::UnavailableRetryUnsafe("wire response stream is corrupt"));
        return;
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.bytes_received += *size;
        auto it = pending_.find(frame->request_id);
        if (it != pending_.end() && !it->second->done) {
          // Deposit raw payload bytes; the caller decodes on its own
          // thread so the receiver never stalls on a large response.
          it->second->payload.assign(frame->payload);
          it->second->done = true;
          it->second->cv.notify_all();
        }
        // else: response to an abandoned (deadline-expired/cancelled)
        // or unknown request — discarded by design.
      }
      buffer.erase(0, *size);
    }
  }
}

Result<wire::Response> WireCatalogClient::Call(const wire::Request& request) {
  std::shared_ptr<PendingSlot> slot;
  uint64_t request_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (broken_) {
      stats_.failures++;
      return Status::Unavailable("wire client is disconnected");
    }
    if (pending_.size() >= options_.max_in_flight) {
      stats_.admission_rejections++;
      return Status::ResourceExhausted(
          "wire client in-flight limit reached");
    }
    request_id = next_request_id_++;
    slot = std::make_shared<PendingSlot>();
    pending_.emplace(request_id, slot);
  }
  std::string frame = wire::EncodeRequestFrame(request_id, request);
  if (!SendFrame(frame)) {
    std::lock_guard<std::mutex> lock(mu_);
    pending_.erase(request_id);
    stats_.failures++;
    // A partial frame can never be executed (the server drops
    // incomplete framing), so a send failure is retry-safe.
    return Status::Unavailable("wire connection closed");
  }
  const bool has_deadline = options_.default_deadline.count() > 0;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.default_deadline;
  std::unique_lock<std::mutex> lock(mu_);
  stats_.bytes_sent += frame.size();
  while (!slot->done) {
    if (has_deadline) {
      if (slot->cv.wait_until(lock, deadline) == std::cv_status::timeout &&
          !slot->done) {
        // Abandon the slot: the request may still execute server-side,
        // but its response is discarded on arrival.
        slot->abandoned = true;
        pending_.erase(request_id);
        stats_.deadline_expiries++;
        // The request is still queued or executing server-side:
        // re-issuing a mutation after an expiry can double-apply it.
        return Status::MarkRetryUnsafe(Status::DeadlineExceeded(
            "wire call deadline expired: " +
            std::string(wire::MsgKindName(request.kind))));
      }
    } else {
      slot->cv.wait(lock);
    }
  }
  pending_.erase(request_id);
  if (!slot->error.ok()) {
    if (!slot->error.IsCancelled()) stats_.failures++;
    return slot->error;
  }
  stats_.round_trips++;
  std::string payload = std::move(slot->payload);
  lock.unlock();
  // Decode on the calling thread, outside the client lock.
  return wire::DecodeResponse(request.kind, payload);
}

namespace {

/// Extracts the typed body of an OK response; a missing body of the
/// expected alternative is a protocol violation.
template <typename BodyT>
Result<BodyT> TakeBody(wire::Response&& resp) {
  if (!resp.status.ok()) return resp.status;
  auto* body = std::get_if<BodyT>(&resp.body);
  if (body == nullptr) {
    return Status::Internal("wire: response body missing for " +
                            std::string(wire::MsgKindName(resp.kind)));
  }
  return std::move(*body);
}

wire::Request MakeNameRequest(wire::MsgKind kind, std::string_view name) {
  wire::Request req;
  req.kind = kind;
  req.body = wire::NameReq{std::string(name)};
  return req;
}

}  // namespace

Result<uint64_t> WireCatalogClient::Version() {
  wire::Request req;
  req.kind = wire::MsgKind::kVersion;
  req.body = wire::EmptyReq{};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::VersionResp body,
                       TakeBody<wire::VersionResp>(std::move(resp)));
  return body.version;
}

Result<std::vector<CatalogChange>> WireCatalogClient::ChangesSince(
    uint64_t since_version) {
  wire::Request req;
  req.kind = wire::MsgKind::kChangesSince;
  req.body = wire::ChangesSinceReq{since_version};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::ChangesResp body,
                       TakeBody<wire::ChangesResp>(std::move(resp)));
  return std::move(body.changes);
}

Result<Dataset> WireCatalogClient::GetDataset(std::string_view name) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kGetDataset, name)));
  VDG_ASSIGN_OR_RETURN(wire::DatasetResp body,
                       TakeBody<wire::DatasetResp>(std::move(resp)));
  return std::move(body.dataset);
}

Result<Transformation> WireCatalogClient::GetTransformation(
    std::string_view name) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kGetTransformation, name)));
  VDG_ASSIGN_OR_RETURN(wire::TransformationResp body,
                       TakeBody<wire::TransformationResp>(std::move(resp)));
  return std::move(body.transformation);
}

Result<Derivation> WireCatalogClient::GetDerivation(std::string_view name) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kGetDerivation, name)));
  VDG_ASSIGN_OR_RETURN(wire::DerivationResp body,
                       TakeBody<wire::DerivationResp>(std::move(resp)));
  return std::move(body.derivation);
}

Result<bool> WireCatalogClient::HasDataset(std::string_view name) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kHasDataset, name)));
  VDG_ASSIGN_OR_RETURN(wire::BoolResp body,
                       TakeBody<wire::BoolResp>(std::move(resp)));
  return body.value;
}

Result<bool> WireCatalogClient::IsMaterialized(std::string_view dataset) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kIsMaterialized, dataset)));
  VDG_ASSIGN_OR_RETURN(wire::BoolResp body,
                       TakeBody<wire::BoolResp>(std::move(resp)));
  return body.value;
}

Result<std::string> WireCatalogClient::ProducerOf(std::string_view dataset) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kProducerOf, dataset)));
  VDG_ASSIGN_OR_RETURN(wire::StringResp body,
                       TakeBody<wire::StringResp>(std::move(resp)));
  return std::move(body.value);
}

Result<std::vector<Invocation>> WireCatalogClient::InvocationsOf(
    std::string_view derivation) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kInvocationsOf, derivation)));
  VDG_ASSIGN_OR_RETURN(wire::InvocationsResp body,
                       TakeBody<wire::InvocationsResp>(std::move(resp)));
  return std::move(body.invocations);
}

Result<NameList> WireCatalogClient::FindDatasets(
    const DatasetQuery& query) {
  wire::Request req;
  req.kind = wire::MsgKind::kFindDatasets;
  req.body = wire::FindDatasetsReq{query};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::NamesResp body,
                       TakeBody<wire::NamesResp>(std::move(resp)));
  return std::move(body.names);
}

Result<NameList> WireCatalogClient::FindTransformations(
    const TransformationQuery& query) {
  wire::Request req;
  req.kind = wire::MsgKind::kFindTransformations;
  req.body = wire::FindTransformationsReq{query};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::NamesResp body,
                       TakeBody<wire::NamesResp>(std::move(resp)));
  return std::move(body.names);
}

Result<NameList> WireCatalogClient::FindDerivations(
    const DerivationQuery& query) {
  wire::Request req;
  req.kind = wire::MsgKind::kFindDerivations;
  req.body = wire::FindDerivationsReq{query};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::NamesResp body,
                       TakeBody<wire::NamesResp>(std::move(resp)));
  return std::move(body.names);
}

Result<NameList> WireCatalogClient::AllNames(
    std::string_view kind) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kAllNames, kind)));
  VDG_ASSIGN_OR_RETURN(wire::NamesResp body,
                       TakeBody<wire::NamesResp>(std::move(resp)));
  return std::move(body.names);
}

Result<bool> WireCatalogClient::TypeConforms(const DatasetType& type,
                                             const DatasetType& against) {
  wire::Request req;
  req.kind = wire::MsgKind::kTypeConforms;
  req.body = wire::TypeConformsReq{type, against};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::BoolResp body,
                       TakeBody<wire::BoolResp>(std::move(resp)));
  return body.value;
}

Result<std::vector<ObjectRecord>> WireCatalogClient::BatchGet(
    const std::vector<ObjectKey>& keys) {
  wire::Request req;
  req.kind = wire::MsgKind::kBatchGet;
  req.body = wire::BatchGetReq{keys};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::RecordsResp body,
                       TakeBody<wire::RecordsResp>(std::move(resp)));
  return std::move(body.records);
}

Result<ProvenanceStep> WireCatalogClient::GetProvenanceStep(
    std::string_view dataset) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kGetProvenanceStep, dataset)));
  VDG_ASSIGN_OR_RETURN(wire::StepResp body,
                       TakeBody<wire::StepResp>(std::move(resp)));
  return std::move(body.step);
}

Status WireCatalogClient::DefineDataset(Dataset dataset) {
  wire::Request req;
  req.kind = wire::MsgKind::kDefineDataset;
  req.body = wire::DefineDatasetReq{std::move(dataset)};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  return resp.status;
}

Status WireCatalogClient::DefineTransformation(Transformation transformation) {
  wire::Request req;
  req.kind = wire::MsgKind::kDefineTransformation;
  req.body = wire::DefineTransformationReq{std::move(transformation)};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  return resp.status;
}

Status WireCatalogClient::DefineDerivation(Derivation derivation) {
  wire::Request req;
  req.kind = wire::MsgKind::kDefineDerivation;
  req.body = wire::DefineDerivationReq{std::move(derivation)};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  return resp.status;
}

Status WireCatalogClient::Annotate(std::string_view kind,
                                   std::string_view name,
                                   std::string_view key,
                                   AttributeValue value) {
  wire::Request req;
  req.kind = wire::MsgKind::kAnnotate;
  req.body = wire::AnnotateReq{std::string(kind), std::string(name),
                               std::string(key), std::move(value)};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  return resp.status;
}

Result<std::string> WireCatalogClient::AddReplica(Replica replica) {
  wire::Request req;
  req.kind = wire::MsgKind::kAddReplica;
  req.body = wire::AddReplicaReq{std::move(replica)};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::StringResp body,
                       TakeBody<wire::StringResp>(std::move(resp)));
  return std::move(body.value);
}

Result<std::string> WireCatalogClient::RecordInvocation(
    Invocation invocation) {
  wire::Request req;
  req.kind = wire::MsgKind::kRecordInvocation;
  req.body = wire::RecordInvocationReq{std::move(invocation)};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::StringResp body,
                       TakeBody<wire::StringResp>(std::move(resp)));
  return std::move(body.value);
}

Status WireCatalogClient::SetDatasetSize(std::string_view name,
                                         int64_t size_bytes) {
  wire::Request req;
  req.kind = wire::MsgKind::kSetDatasetSize;
  req.body = wire::SetDatasetSizeReq{std::string(name), size_bytes};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  return resp.status;
}

Status WireCatalogClient::InvalidateReplica(std::string_view id) {
  VDG_ASSIGN_OR_RETURN(
      wire::Response resp,
      Call(MakeNameRequest(wire::MsgKind::kInvalidateReplica, id)));
  return resp.status;
}

Result<BatchResult> WireCatalogClient::ApplyBatch(
    const std::vector<CatalogMutation>& mutations,
    const BatchOptions& options) {
  wire::Request req;
  req.kind = wire::MsgKind::kApplyBatch;
  req.body = wire::ApplyBatchReq{mutations, options};
  VDG_ASSIGN_OR_RETURN(wire::Response resp, Call(req));
  VDG_ASSIGN_OR_RETURN(wire::BatchResultResp body,
                       TakeBody<wire::BatchResultResp>(std::move(resp)));
  return std::move(body.result);
}

}  // namespace vdg
