#ifndef VDG_FEDERATION_FAULTY_TRANSPORT_H_
#define VDG_FEDERATION_FAULTY_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/rng.h"
#include "federation/server.h"

namespace vdg {

// -----------------------------------------------------------------------
// Deterministic transport fault injection for the wire federation
// path. A FaultyChannel wraps any ClientChannel (in-memory pipe or
// AF_UNIX socketpair alike — it sits above the transport) and, driven
// by one seeded FaultInjector shared across the reconnect attempts of
// an endpoint, perturbs the byte stream the ways real networks do:
//
//   refuse     Connect-time refusal: the endpoint rejects the dial.
//   reset      The connection drops before the frame is sent.
//   truncate   A prefix of the frame is delivered, then the
//              connection drops — the server sees a mid-frame EOF.
//   corrupt    One byte of the frame is flipped in flight; the
//              server's CRC check rejects the frame and closes the
//              stream (framing cannot be resynchronized).
//   short      Only a prefix is accepted per Send call — benign, but
//              only if the client loops until the frame is flushed.
//   stall      The send blocks for a fixed delay, exercising
//              per-request deadlines.
//   recv-*     The same corruption/reset faults on the response path.
//
// Every draw flows through one seeded Rng, so a given
// (seed, workload) pair replays the identical fault schedule —
// failures found in CI's multi-seed chaos lane reproduce locally by
// exporting the same VDG_FAULT_SEED.
// -----------------------------------------------------------------------

struct FaultProfile {
  double refuse_connect_rate = 0.0;  // per Connect attempt
  double reset_rate = 0.0;           // per Send: drop before delivery
  double truncate_rate = 0.0;        // per Send: deliver prefix, then drop
  double corrupt_rate = 0.0;         // per Send: flip one byte
  double short_write_rate = 0.0;     // per Send: accept only a prefix
  double stall_rate = 0.0;           // per Send: sleep `stall`
  double recv_corrupt_rate = 0.0;    // per Receive: flip one byte
  double recv_reset_rate = 0.0;      // per Receive: EOF instead of bytes
  std::chrono::microseconds stall{2000};
};

/// Counters for every fault actually fired (atomics: Send and Receive
/// run on different threads).
struct FaultStats {
  std::atomic<uint64_t> connects_refused{0};
  std::atomic<uint64_t> resets{0};
  std::atomic<uint64_t> truncations{0};
  std::atomic<uint64_t> corruptions{0};
  std::atomic<uint64_t> short_writes{0};
  std::atomic<uint64_t> stalls{0};
  std::atomic<uint64_t> recv_corruptions{0};
  std::atomic<uint64_t> recv_resets{0};

  uint64_t total() const {
    return connects_refused.load() + resets.load() + truncations.load() +
           corruptions.load() + short_writes.load() + stalls.load() +
           recv_corruptions.load() + recv_resets.load();
  }
};

/// One seeded fault source, shared by every FaultyChannel of an
/// endpoint so the schedule spans reconnects deterministically.
/// Thread-safe.
class FaultInjector {
 public:
  FaultInjector(FaultProfile profile, uint64_t seed)
      : profile_(profile), rng_(seed) {}

  const FaultProfile& profile() const { return profile_; }
  const FaultStats& stats() const { return stats_; }
  FaultStats& stats() { return stats_; }

  /// True when a Connect attempt should be refused.
  bool RollConnectRefusal();

  /// Bernoulli draw under the injector lock.
  bool Roll(double p);

  /// Random index in [0, n) under the injector lock. Requires n > 0.
  size_t Pick(size_t n);

 private:
  FaultProfile profile_;
  std::mutex mu_;
  Rng rng_;
  FaultStats stats_;
};

/// The shim itself: a ClientChannel that perturbs bytes on their way
/// to/from the wrapped channel per the injector's profile.
class FaultyChannel : public ClientChannel {
 public:
  FaultyChannel(std::shared_ptr<ClientChannel> inner,
                std::shared_ptr<FaultInjector> injector)
      : inner_(std::move(inner)), injector_(std::move(injector)) {}

  ptrdiff_t Send(std::string_view bytes) override;
  bool Receive(std::string* out) override;
  void Close() override { inner_->Close(); }
  bool closed() const override { return inner_->closed(); }

 private:
  std::shared_ptr<ClientChannel> inner_;
  std::shared_ptr<FaultInjector> injector_;
};

/// Dials `server` through the fault shim: rolls an accept-time
/// refusal, then hands a FaultyChannel-wrapped connection to the
/// normal WireCatalogClient handshake. The natural `connect` callback
/// for a ResilientEndpoint under test.
Result<std::shared_ptr<WireCatalogClient>> ConnectFaulty(
    CatalogServer* server, std::shared_ptr<FaultInjector> injector,
    WireClientOptions options = {}, bool use_socket = false);

}  // namespace vdg

#endif  // VDG_FEDERATION_FAULTY_TRANSPORT_H_
