#ifndef VDG_FEDERATION_SERVER_H_
#define VDG_FEDERATION_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/client.h"
#include "catalog/wire.h"

namespace vdg {

// -----------------------------------------------------------------------
// CatalogServer — a real service runtime in front of a CatalogClient
// backend: requests arrive as wire-codec frames on duplex byte
// channels, an event-loop dispatcher thread validates and admits them,
// and a stateless worker pool decodes, executes, and replies. Unlike
// SimulatedRpcCatalogClient (which hands objects across a simulated
// clock), every byte here is genuinely serialized, checksummed, and
// dispatched across real threads — RPC cost is measured, not modeled.
//
// Threading model:
//  - One dispatcher thread owns frame extraction: it wakes when any
//    connection has inbound bytes, splits them into frames, validates
//    header + CRC, and pushes complete frames onto a bounded work
//    queue. A malformed frame closes its connection (stream framing
//    cannot be resynchronized after corruption). A full work queue
//    makes the dispatcher answer immediately with ResourceExhausted —
//    admission control happens before a worker is ever occupied.
//  - N stateless workers pop frames, decode the request, execute it
//    against the backend, and write the response frame atomically to
//    the connection. Workers keep no per-connection state, so any
//    worker can serve any request and a slow call never wedges the
//    pool. The backend must be thread-safe (InProcessCatalogClient
//    over VirtualDataCatalog is).
//  - Connections are in-memory duplex pipes by default (hermetic, no
//    fds); loopback-socket mode runs the same byte protocol over an
//    AF_UNIX socketpair with a per-connection pump thread, proving the
//    codec against a real kernel byte stream.
// -----------------------------------------------------------------------

struct ServerOptions {
  /// Worker threads executing requests against the backend.
  size_t workers = 4;
  /// Bounded work-queue depth; frames beyond this are rejected with
  /// ResourceExhausted at admission (backpressure, not buffering).
  size_t queue_capacity = 128;
  /// Test/bench hook: every worker sleeps this long before executing a
  /// request, simulating slow handlers for deadline/backpressure tests.
  std::chrono::microseconds handler_delay{0};
};

/// Aggregate server counters (atomics: touched by dispatcher, workers,
/// and pump threads concurrently).
struct ServerStats {
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> requests_served{0};   // executed by a worker
  std::atomic<uint64_t> queue_rejections{0};  // admission-control bounces
  std::atomic<uint64_t> protocol_errors{0};   // malformed frames (closes conn)
};

class CatalogServer;

/// One duplex byte channel between a client and the server. The client
/// half writes request bytes and blocks reading response bytes; the
/// server half is driven by the dispatcher/workers. Created only by
/// CatalogServer::Connect().
class ServerConnection {
 public:
  ~ServerConnection();

  /// Client-side: appends request bytes and wakes the dispatcher.
  /// Returns false once the connection is closed.
  bool ClientSend(std::string_view bytes);

  /// Client-side: blocks until response bytes arrive (appended to
  /// `*out`) or the connection closes with nothing pending (returns
  /// false — EOF).
  bool ClientReceive(std::string* out);

  /// Closes both directions; blocked receivers wake with EOF. Safe to
  /// call from either side, multiple times.
  void Close();

  bool closed() const;

 private:
  friend class CatalogServer;
  explicit ServerConnection(CatalogServer* server, int client_fd,
                            int server_fd);

  /// Server-side: appends response bytes (one whole frame per call,
  /// under the write lock, so concurrent workers never interleave
  /// frames) and wakes the client reader.
  void ServerWrite(std::string_view frame);

  CatalogServer* server_;

  mutable std::mutex mu_;
  std::condition_variable outbound_cv_;
  std::string inbound_;       // client -> server, drained by dispatcher
  std::string outbound_;      // server -> client, drained by ClientReceive
  bool closed_ = false;

  /// Socket mode: the AF_UNIX socketpair ends (-1 in pipe mode). The
  /// client writes/reads client_fd_ directly; a server pump thread
  /// feeds recv()'d bytes into the same inbound_ path.
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::mutex write_fd_mu_;    // serializes whole-frame send()s
  std::thread pump_;

  /// Dispatcher-owned reassembly buffer for partially received frames.
  /// Only the dispatcher thread touches it — no lock.
  std::string parse_buffer_;
};

class CatalogServer {
 public:
  /// `backend` executes decoded requests; it must be thread-safe and
  /// outlive the server. Workers and the dispatcher start immediately.
  CatalogServer(std::shared_ptr<CatalogClient> backend,
                ServerOptions options = {});
  ~CatalogServer();

  CatalogServer(const CatalogServer&) = delete;
  CatalogServer& operator=(const CatalogServer&) = delete;

  /// Opens a new duplex channel. `use_socket` selects the AF_UNIX
  /// socketpair transport (falls back to the in-memory pipe if the
  /// socketpair cannot be created).
  std::shared_ptr<ServerConnection> Connect(bool use_socket = false);

  /// Stops dispatcher and workers and closes every connection. Queued
  /// but unexecuted requests are dropped; their clients see EOF and
  /// fail pending calls with Unavailable. Idempotent; the destructor
  /// calls it.
  void Shutdown();

  const ServerStats& stats() const { return stats_; }
  const ServerOptions& options() const { return options_; }

  /// Adjusts the handler-delay test hook at runtime (e.g. connect
  /// fast, then slow the handlers to force a deadline expiry).
  void set_handler_delay(std::chrono::microseconds delay) {
    handler_delay_us_.store(delay.count(), std::memory_order_relaxed);
  }

 private:
  friend class ServerConnection;

  struct WorkItem {
    std::shared_ptr<ServerConnection> conn;
    uint64_t request_id = 0;
    wire::MsgKind kind = wire::MsgKind::kVersion;
    std::string payload;  // request payload bytes (already CRC-checked)
  };

  /// Wakes the dispatcher: `conn` has new inbound bytes.
  void NotifyReadable(ServerConnection* conn);

  void DispatcherLoop();
  void WorkerLoop();

  /// Splits every complete frame out of `conn`'s inbound stream,
  /// admitting each to the work queue or rejecting/closing per policy.
  void DrainConnection(const std::shared_ptr<ServerConnection>& conn);

  /// Executes one decoded request against the backend.
  wire::Response Execute(const wire::Request& request);

  void Reply(const std::shared_ptr<ServerConnection>& conn,
             uint64_t request_id, const wire::Response& response);

  std::shared_ptr<CatalogClient> backend_;
  ServerOptions options_;
  std::atomic<int64_t> handler_delay_us_{0};
  ServerStats stats_;

  std::mutex mu_;  // guards connections_, readable_, queue_, stopping_
  std::condition_variable dispatcher_cv_;
  std::condition_variable worker_cv_;
  std::vector<std::shared_ptr<ServerConnection>> connections_;
  std::vector<ServerConnection*> readable_;
  std::deque<WorkItem> queue_;
  bool stopping_ = false;

  std::thread dispatcher_;
  std::vector<std::thread> workers_;
};

// -----------------------------------------------------------------------
// WireCatalogClient — the CatalogClient that actually speaks the wire
// protocol: every call encodes a frame, ships it through a
// ServerConnection, and blocks until the matching response frame
// returns or the per-request deadline expires. Thread-safe: any number
// of threads may issue calls concurrently; a receiver thread
// demultiplexes response frames to per-request slots by request id.
// -----------------------------------------------------------------------

struct WireClientOptions {
  /// Per-request deadline. A request still unanswered when it expires
  /// fails with DeadlineExceeded; the late response (if any) is
  /// discarded on arrival. zero() disables the deadline.
  std::chrono::milliseconds default_deadline{5000};
  /// Admission bound: calls beyond this many in flight fail immediately
  /// with ResourceExhausted instead of queueing client-side.
  size_t max_in_flight = 64;
};

/// Client-side transport counters.
struct WireClientStats {
  uint64_t round_trips = 0;           // completed request/response pairs
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t deadline_expiries = 0;
  uint64_t admission_rejections = 0;  // max_in_flight bounces
  uint64_t cancellations = 0;         // calls failed by CancelPending
  uint64_t failures = 0;              // transport-level failures (EOF etc.)
};

class WireCatalogClient : public CatalogClient {
 public:
  /// Connects to `server` and performs the handshake (one round trip)
  /// to learn the authority and read-only bit. Fails if the server is
  /// already shut down.
  static Result<std::shared_ptr<WireCatalogClient>> Connect(
      CatalogServer* server, WireClientOptions options = {},
      bool use_socket = false);

  ~WireCatalogClient() override;

  const std::string& authority() const override { return authority_; }
  bool read_only() const override { return read_only_; }

  WireClientStats stats() const;
  void reset_stats();

  /// Fails every in-flight call with Cancelled. The connection stays
  /// usable for new calls; late responses to cancelled requests are
  /// discarded.
  void CancelPending();

  /// Closes the connection; all pending and future calls fail with
  /// Unavailable.
  void Disconnect();

  Result<uint64_t> Version() override;
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) override;
  Result<Dataset> GetDataset(std::string_view name) override;
  Result<Transformation> GetTransformation(std::string_view name) override;
  Result<Derivation> GetDerivation(std::string_view name) override;
  Result<bool> HasDataset(std::string_view name) override;
  Result<bool> IsMaterialized(std::string_view dataset) override;
  Result<std::string> ProducerOf(std::string_view dataset) override;
  Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) override;
  Result<std::vector<std::string>> FindDatasets(
      const DatasetQuery& query) override;
  Result<std::vector<std::string>> FindTransformations(
      const TransformationQuery& query) override;
  Result<std::vector<std::string>> FindDerivations(
      const DerivationQuery& query) override;
  Result<std::vector<std::string>> AllNames(std::string_view kind) override;
  Result<bool> TypeConforms(const DatasetType& type,
                            const DatasetType& against) override;
  Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) override;
  Result<ProvenanceStep> GetProvenanceStep(std::string_view dataset) override;

  Status DefineDataset(Dataset dataset) override;
  Status DefineTransformation(Transformation transformation) override;
  Status DefineDerivation(Derivation derivation) override;
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value) override;
  Result<std::string> AddReplica(Replica replica) override;
  Result<std::string> RecordInvocation(Invocation invocation) override;
  Status SetDatasetSize(std::string_view name, int64_t size_bytes) override;
  Status InvalidateReplica(std::string_view id) override;
  /// Ships the whole batch as one frame / one round trip.
  Result<BatchResult> ApplyBatch(const std::vector<CatalogMutation>& mutations,
                                 const BatchOptions& options = {}) override;

 private:
  /// Why a pending slot finished (or stopped mattering).
  struct PendingSlot {
    bool done = false;
    bool abandoned = false;  // deadline expired / cancelled; drop reply
    Status error = Status::OK();  // transport-level failure (EOF, ...)
    std::string payload;          // raw response payload bytes
    std::condition_variable cv;
  };

  WireCatalogClient(std::shared_ptr<ServerConnection> conn,
                    WireClientOptions options);

  /// One round trip: admission check, encode+send, wait for the
  /// response (or deadline), decode on the calling thread.
  Result<wire::Response> Call(const wire::Request& request);

  /// Fails every pending slot with `error` (EOF / disconnect path).
  void FailAllPending(const Status& error);

  void ReceiverLoop();

  std::shared_ptr<ServerConnection> conn_;
  WireClientOptions options_;
  std::string authority_;
  bool read_only_ = false;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingSlot>> pending_;
  uint64_t next_request_id_ = 1;
  bool broken_ = false;  // connection failed; all calls -> Unavailable
  WireClientStats stats_;

  std::thread receiver_;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_SERVER_H_
