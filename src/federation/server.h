#ifndef VDG_FEDERATION_SERVER_H_
#define VDG_FEDERATION_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "catalog/client.h"
#include "catalog/wire.h"

namespace vdg {

// -----------------------------------------------------------------------
// CatalogServer — a real service runtime in front of a CatalogClient
// backend: requests arrive as wire-codec frames on duplex byte
// channels, an event-loop dispatcher thread validates and admits them,
// and a stateless worker pool decodes, executes, and replies. Unlike
// SimulatedRpcCatalogClient (which hands objects across a simulated
// clock), every byte here is genuinely serialized, checksummed, and
// dispatched across real threads — RPC cost is measured, not modeled.
//
// Threading model:
//  - One dispatcher thread owns frame extraction: it wakes when any
//    connection has inbound bytes, splits them into frames, validates
//    header + CRC, and pushes complete frames onto a bounded work
//    queue. A malformed frame closes its connection (stream framing
//    cannot be resynchronized after corruption). A full work queue
//    makes the dispatcher answer immediately with ResourceExhausted —
//    admission control happens before a worker is ever occupied.
//  - N stateless workers pop frames, decode the request, execute it
//    against the backend, and write the response frame atomically to
//    the connection. Workers keep no per-connection state, so any
//    worker can serve any request and a slow call never wedges the
//    pool. The backend must be thread-safe (InProcessCatalogClient
//    over VirtualDataCatalog is).
//  - Connections are in-memory duplex pipes by default (hermetic, no
//    fds); loopback-socket mode runs the same byte protocol over an
//    AF_UNIX socketpair with a per-connection pump thread, proving the
//    codec against a real kernel byte stream.
// -----------------------------------------------------------------------

class BatchDedupRegistry;

struct ServerOptions {
  /// Worker threads executing requests against the backend.
  size_t workers = 4;
  /// Bounded work-queue depth; frames beyond this are rejected with
  /// ResourceExhausted at admission (backpressure, not buffering).
  size_t queue_capacity = 128;
  /// Test/bench hook: every worker sleeps this long before executing a
  /// request, simulating slow handlers for deadline/backpressure tests.
  std::chrono::microseconds handler_delay{0};
  /// ApplyBatch idempotency window. When null the server creates a
  /// private registry; replica servers fronting the SAME backend
  /// catalog must share one registry so a batch retried across
  /// failover still dedups (the window models storage-level dedup in a
  /// replicated service, so it lives with the storage, not the node).
  std::shared_ptr<BatchDedupRegistry> batch_dedup;
};

/// Aggregate server counters (atomics: touched by dispatcher, workers,
/// and pump threads concurrently).
struct ServerStats {
  std::atomic<uint64_t> frames_in{0};
  std::atomic<uint64_t> frames_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> requests_served{0};   // executed by a worker
  std::atomic<uint64_t> queue_rejections{0};  // admission-control bounces
  std::atomic<uint64_t> protocol_errors{0};   // malformed frames (closes conn)
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connection_resets{0};  // conns closed on a
                                               // malformed/corrupt stream
  std::atomic<uint64_t> drain_rejections{0};   // frames bounced with
                                               // Unavailable during drain
  std::atomic<uint64_t> batch_dedup_hits{0};   // ApplyBatch retries answered
                                               // from the idempotency window
};

/// Bounded idempotency window for ApplyBatch. Keyed by the client's
/// `BatchOptions::idempotency_token`, it records each tokenized
/// batch's wire response so a retry (lost reply, failover to a replica
/// server sharing the registry) returns the original outcome —
/// assigned ids included — instead of applying the mutations twice.
/// Thread-safe; a concurrent duplicate blocks until the first
/// execution completes rather than racing it.
class BatchDedupRegistry {
 public:
  explicit BatchDedupRegistry(size_t capacity = 1024);

  /// Claims `token` for execution. Returns nullopt when the caller is
  /// the first claimant and must execute the batch, then call
  /// Complete(). Returns the recorded response when the token already
  /// completed (a dedup hit); blocks when another thread is mid-
  /// execution and then returns its result.
  std::optional<wire::Response> BeginOrAwait(const std::string& token);

  /// Records the outcome of a claimed token and wakes any waiters.
  /// Evicts the oldest completed entries beyond `capacity`.
  void Complete(const std::string& token, wire::Response response);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t size() const;

 private:
  struct Entry {
    bool done = false;
    wire::Response response;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  std::deque<std::string> completed_order_;  // FIFO eviction of done entries
  std::atomic<uint64_t> hits_{0};
};

class CatalogServer;

/// Client-side view of a duplex byte channel. WireCatalogClient talks
/// to this interface rather than to ServerConnection directly so a
/// fault-injection shim (FaultyChannel in faulty_transport.h) can wrap
/// the real transport and corrupt/short/drop the byte stream under it.
class ClientChannel {
 public:
  virtual ~ClientChannel() = default;

  /// Attempts to write `bytes` toward the server. Returns the number
  /// of bytes accepted — possibly FEWER than requested (a short
  /// write): the caller must loop until the whole frame is flushed.
  /// Returns -1 once the channel is broken.
  virtual ptrdiff_t Send(std::string_view bytes) = 0;

  /// Blocks until response bytes arrive (appended to `*out`) or the
  /// channel closes with nothing pending (returns false — EOF).
  virtual bool Receive(std::string* out) = 0;

  /// Closes both directions; blocked receivers wake with EOF.
  virtual void Close() = 0;

  virtual bool closed() const = 0;
};

/// One duplex byte channel between a client and the server. The client
/// half writes request bytes and blocks reading response bytes; the
/// server half is driven by the dispatcher/workers. Created only by
/// CatalogServer::Connect().
class ServerConnection : public ClientChannel {
 public:
  ~ServerConnection() override;

  /// ClientChannel: the real transport never short-writes (the socket
  /// path loops internally), so Send accepts the whole buffer or
  /// reports the channel broken.
  ptrdiff_t Send(std::string_view bytes) override {
    return ClientSend(bytes) ? static_cast<ptrdiff_t>(bytes.size()) : -1;
  }
  bool Receive(std::string* out) override { return ClientReceive(out); }

  /// Client-side: appends request bytes and wakes the dispatcher.
  /// Returns false once the connection is closed.
  bool ClientSend(std::string_view bytes);

  /// Client-side: blocks until response bytes arrive (appended to
  /// `*out`) or the connection closes with nothing pending (returns
  /// false — EOF).
  bool ClientReceive(std::string* out);

  /// Closes both directions; blocked receivers wake with EOF. Safe to
  /// call from either side, multiple times.
  void Close() override;

  bool closed() const override;

 private:
  friend class CatalogServer;
  explicit ServerConnection(CatalogServer* server, int client_fd,
                            int server_fd);

  /// Server-side: appends response bytes (one whole frame per call,
  /// under the write lock, so concurrent workers never interleave
  /// frames) and wakes the client reader.
  void ServerWrite(std::string_view frame);

  CatalogServer* server_;

  mutable std::mutex mu_;
  std::condition_variable outbound_cv_;
  std::string inbound_;       // client -> server, drained by dispatcher
  std::string outbound_;      // server -> client, drained by ClientReceive
  bool closed_ = false;

  /// Socket mode: the AF_UNIX socketpair ends (-1 in pipe mode). The
  /// client writes/reads client_fd_ directly; a server pump thread
  /// feeds recv()'d bytes into the same inbound_ path.
  int client_fd_ = -1;
  int server_fd_ = -1;
  std::mutex write_fd_mu_;    // serializes whole-frame send()s
  std::thread pump_;

  /// Dispatcher-owned reassembly buffer for partially received frames.
  /// Only the dispatcher thread touches it — no lock.
  std::string parse_buffer_;
};

class CatalogServer {
 public:
  /// `backend` executes decoded requests; it must be thread-safe and
  /// outlive the server. Workers and the dispatcher start immediately.
  CatalogServer(std::shared_ptr<CatalogClient> backend,
                ServerOptions options = {});
  ~CatalogServer();

  CatalogServer(const CatalogServer&) = delete;
  CatalogServer& operator=(const CatalogServer&) = delete;

  /// Opens a new duplex channel. `use_socket` selects the AF_UNIX
  /// socketpair transport (falls back to the in-memory pipe if the
  /// socketpair cannot be created).
  std::shared_ptr<ServerConnection> Connect(bool use_socket = false);

  /// Stops the server. With `drain_timeout == 0` (the default and what
  /// the destructor uses) the stop is abrupt: queued but unexecuted
  /// requests are dropped; their clients see EOF and fail pending
  /// calls with Unavailable. With a positive `drain_timeout` the
  /// server drains first: new connections are refused, freshly
  /// arriving frames are answered with a retryable Unavailable
  /// (counted in stats().drain_rejections), and already-admitted
  /// requests keep executing until the queue and workers are idle or
  /// the timeout elapses — only then does the hard stop run.
  /// Idempotent.
  void Shutdown(std::chrono::milliseconds drain_timeout =
                    std::chrono::milliseconds(0));

  /// True from the moment a draining Shutdown begins; Connect refuses
  /// and new frames bounce while set.
  bool draining() const;

  /// The ApplyBatch idempotency window this server consults (shared
  /// across replicas when ServerOptions::batch_dedup was supplied).
  const std::shared_ptr<BatchDedupRegistry>& batch_dedup() const {
    return dedup_;
  }

  const ServerStats& stats() const { return stats_; }
  const ServerOptions& options() const { return options_; }

  /// Adjusts the handler-delay test hook at runtime (e.g. connect
  /// fast, then slow the handlers to force a deadline expiry).
  void set_handler_delay(std::chrono::microseconds delay) {
    handler_delay_us_.store(delay.count(), std::memory_order_relaxed);
  }

 private:
  friend class ServerConnection;

  struct WorkItem {
    std::shared_ptr<ServerConnection> conn;
    uint64_t request_id = 0;
    wire::MsgKind kind = wire::MsgKind::kVersion;
    std::string payload;  // request payload bytes (already CRC-checked)
  };

  /// Wakes the dispatcher: `conn` has new inbound bytes.
  void NotifyReadable(ServerConnection* conn);

  void DispatcherLoop();
  void WorkerLoop();

  /// Splits every complete frame out of `conn`'s inbound stream,
  /// admitting each to the work queue or rejecting/closing per policy.
  void DrainConnection(const std::shared_ptr<ServerConnection>& conn);

  /// Executes one decoded request against the backend.
  wire::Response Execute(const wire::Request& request);

  void Reply(const std::shared_ptr<ServerConnection>& conn,
             uint64_t request_id, const wire::Response& response);

  std::shared_ptr<CatalogClient> backend_;
  ServerOptions options_;
  std::atomic<int64_t> handler_delay_us_{0};
  ServerStats stats_;

  std::shared_ptr<BatchDedupRegistry> dedup_;

  // guards connections_, readable_, queue_, stopping_, draining_,
  // active_workers_
  mutable std::mutex mu_;
  std::condition_variable dispatcher_cv_;
  std::condition_variable worker_cv_;
  std::condition_variable drain_cv_;  // queue empty && no active workers
  std::vector<std::shared_ptr<ServerConnection>> connections_;
  std::vector<ServerConnection*> readable_;
  std::deque<WorkItem> queue_;
  bool stopping_ = false;
  bool draining_ = false;
  size_t active_workers_ = 0;  // items popped but not yet replied

  std::thread dispatcher_;
  std::vector<std::thread> workers_;
};

// -----------------------------------------------------------------------
// WireCatalogClient — the CatalogClient that actually speaks the wire
// protocol: every call encodes a frame, ships it through a
// ServerConnection, and blocks until the matching response frame
// returns or the per-request deadline expires. Thread-safe: any number
// of threads may issue calls concurrently; a receiver thread
// demultiplexes response frames to per-request slots by request id.
// -----------------------------------------------------------------------

struct WireClientOptions {
  /// Per-request deadline. A request still unanswered when it expires
  /// fails with DeadlineExceeded; the late response (if any) is
  /// discarded on arrival. zero() disables the deadline.
  std::chrono::milliseconds default_deadline{5000};
  /// Admission bound: calls beyond this many in flight fail immediately
  /// with ResourceExhausted instead of queueing client-side.
  size_t max_in_flight = 64;
};

/// Client-side transport counters.
struct WireClientStats {
  uint64_t round_trips = 0;           // completed request/response pairs
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t deadline_expiries = 0;
  uint64_t admission_rejections = 0;  // max_in_flight bounces
  uint64_t cancellations = 0;         // calls failed by CancelPending
  uint64_t failures = 0;              // transport-level failures (EOF etc.)
};

class WireCatalogClient : public CatalogClient {
 public:
  /// Connects to `server` and performs the handshake (one round trip)
  /// to learn the authority and read-only bit. Fails if the server is
  /// already shut down.
  static Result<std::shared_ptr<WireCatalogClient>> Connect(
      CatalogServer* server, WireClientOptions options = {},
      bool use_socket = false);

  /// Same handshake over a caller-supplied channel — the hook
  /// FaultyChannel and future transports (TCP) plug into.
  static Result<std::shared_ptr<WireCatalogClient>> ConnectChannel(
      std::shared_ptr<ClientChannel> channel, WireClientOptions options = {});

  ~WireCatalogClient() override;

  const std::string& authority() const override { return authority_; }
  bool read_only() const override { return read_only_; }

  WireClientStats stats() const;
  void reset_stats();

  /// Fails every in-flight call with Cancelled. The connection stays
  /// usable for new calls; late responses to cancelled requests are
  /// discarded.
  void CancelPending();

  /// Closes the connection; all pending and future calls fail with
  /// Unavailable.
  void Disconnect();

  Result<uint64_t> Version() override;
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) override;
  Result<Dataset> GetDataset(std::string_view name) override;
  Result<Transformation> GetTransformation(std::string_view name) override;
  Result<Derivation> GetDerivation(std::string_view name) override;
  Result<bool> HasDataset(std::string_view name) override;
  Result<bool> IsMaterialized(std::string_view dataset) override;
  Result<std::string> ProducerOf(std::string_view dataset) override;
  Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) override;
  Result<NameList> FindDatasets(
      const DatasetQuery& query) override;
  Result<NameList> FindTransformations(
      const TransformationQuery& query) override;
  Result<NameList> FindDerivations(
      const DerivationQuery& query) override;
  Result<NameList> AllNames(std::string_view kind) override;
  Result<bool> TypeConforms(const DatasetType& type,
                            const DatasetType& against) override;
  Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) override;
  Result<ProvenanceStep> GetProvenanceStep(std::string_view dataset) override;

  Status DefineDataset(Dataset dataset) override;
  Status DefineTransformation(Transformation transformation) override;
  Status DefineDerivation(Derivation derivation) override;
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value) override;
  Result<std::string> AddReplica(Replica replica) override;
  Result<std::string> RecordInvocation(Invocation invocation) override;
  Status SetDatasetSize(std::string_view name, int64_t size_bytes) override;
  Status InvalidateReplica(std::string_view id) override;
  /// Ships the whole batch as one frame / one round trip.
  Result<BatchResult> ApplyBatch(const std::vector<CatalogMutation>& mutations,
                                 const BatchOptions& options = {}) override;

 private:
  /// Why a pending slot finished (or stopped mattering).
  struct PendingSlot {
    bool done = false;
    bool abandoned = false;  // deadline expired / cancelled; drop reply
    Status error = Status::OK();  // transport-level failure (EOF, ...)
    std::string payload;          // raw response payload bytes
    std::condition_variable cv;
  };

  WireCatalogClient(std::shared_ptr<ClientChannel> conn,
                    WireClientOptions options);

  /// One round trip: admission check, encode+send, wait for the
  /// response (or deadline), decode on the calling thread.
  Result<wire::Response> Call(const wire::Request& request);

  /// Flushes the whole frame through the channel, looping on short
  /// writes, under send_mu_ so concurrent callers never interleave
  /// partial frames. Returns false once the channel is broken.
  bool SendFrame(std::string_view frame);

  /// Fails every pending slot with `error` (EOF / disconnect path).
  void FailAllPending(const Status& error);

  void ReceiverLoop();

  std::shared_ptr<ClientChannel> conn_;
  WireClientOptions options_;
  std::string authority_;
  bool read_only_ = false;

  std::mutex send_mu_;  // serializes whole-frame sends (short-write loop)
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<PendingSlot>> pending_;
  uint64_t next_request_id_ = 1;
  bool broken_ = false;  // connection failed; all calls -> Unavailable
  WireClientStats stats_;

  std::thread receiver_;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_SERVER_H_
