#ifndef VDG_FEDERATION_REMOTE_CACHE_H_
#define VDG_FEDERATION_REMOTE_CACHE_H_

#include <chrono>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/client.h"

namespace vdg {

/// A bounded string-keyed map with least-recently-used displacement:
/// the shared cache discipline for every per-entry cache inside
/// CachingCatalogClient (object records, provenance steps, query
/// result sets). Inserting past capacity displaces exactly as many
/// cold entries as needed — never the whole map — and reports how many
/// were displaced so callers can count evictions truthfully.
/// Not thread-safe; callers hold their own lock.
template <typename V>
class LruCacheMap {
 public:
  explicit LruCacheMap(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Value for `key`, touched to most-recently-used; nullptr on miss.
  /// The pointer is invalidated by the next mutating call.
  const V* Get(std::string_view key) {
    auto it = map_.find(key);
    if (it == map_.end()) return nullptr;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return &it->second.value;
  }

  /// Inserts (or replaces) `key`, displacing LRU entries while over
  /// capacity. Returns how many entries were displaced (replacement of
  /// an existing key counts zero).
  size_t Put(std::string key, V value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second.value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return 0;
    }
    size_t displaced = 0;
    while (map_.size() >= capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
      ++displaced;
    }
    lru_.push_front(key);
    map_.emplace(std::move(key), Entry{std::move(value), lru_.begin()});
    return displaced;
  }

  /// Removes `key`; true if it was present.
  bool Erase(std::string_view key) {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    lru_.erase(it->second.lru_pos);
    map_.erase(it);
    return true;
  }

  /// Removes every key in [lo, hi); returns how many were removed.
  size_t EraseRange(const std::string& lo, const std::string& hi) {
    auto begin = map_.lower_bound(lo);
    auto end = map_.lower_bound(hi);
    size_t n = 0;
    for (auto it = begin; it != end;) {
      lru_.erase(it->second.lru_pos);
      it = map_.erase(it);
      ++n;
    }
    return n;
  }

  /// Removes every entry matching `pred(key, value)`; returns count.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    size_t n = 0;
    for (auto it = map_.begin(); it != map_.end();) {
      if (pred(it->first, it->second.value)) {
        lru_.erase(it->second.lru_pos);
        it = map_.erase(it);
        ++n;
      } else {
        ++it;
      }
    }
    return n;
  }

  /// Removes everything; returns how many entries were dropped.
  size_t Clear() {
    size_t n = map_.size();
    map_.clear();
    lru_.clear();
    return n;
  }

  size_t size() const { return map_.size(); }

 private:
  struct Entry {
    V value;
    std::list<std::string>::iterator lru_pos;
  };

  size_t capacity_;
  std::map<std::string, Entry, std::less<>> map_;
  std::list<std::string> lru_;  // front = most recent
};

/// Cache effectiveness counters.
struct CacheStats {
  uint64_t hits = 0;           // lookups answered locally
  uint64_t misses = 0;         // lookups that went upstream
  uint64_t revalidations = 0;  // Revalidate() calls that reached upstream
  uint64_t evictions = 0;      // entries dropped by invalidation or LRU
  uint64_t flushes = 0;        // whole-cache drops (changelog overflow)
  uint64_t query_hits = 0;     // Find* result sets answered locally
  uint64_t query_misses = 0;   // Find* calls that went upstream
  uint64_t degraded_hits = 0;  // hits served while upstream was down
  uint64_t stale_rejections = 0;  // hits refused past the staleness bound
};

/// Degraded-read policy for when the upstream is unreachable. Off by
/// default: a plain cache keeps serving hits forever regardless of
/// upstream health (the explicit-revalidation contract). With
/// degradation ENABLED the cache becomes staleness-BOUNDED instead:
/// once an upstream call fails with a transport error, cached reads
/// keep serving — counted as degraded_hits — only until
/// `staleness_bound` has elapsed since the outage began; after that
/// hits are refused with Unavailable (stale_rejections) until any
/// upstream call succeeds again. This is the "grace window" a
/// federated tier gets to ride out a catalog restart without either
/// erroring immediately or serving unboundedly old answers.
struct DegradedReadOptions {
  bool enabled = false;
  std::chrono::milliseconds staleness_bound{5000};
};

/// Read-through object cache in front of a (typically remote)
/// CatalogClient. Point lookups (Get*/Has*/IsMaterialized) and
/// provenance steps are served from local snapshots after the first
/// fetch; negative answers (NotFound) are cached too, so repeated
/// probes for a missing object cost one round trip total.
///
/// Coherence contract: the cache is *explicitly* revalidated. Between
/// Revalidate() calls reads may be stale by design (the paper's
/// federated indexes accept the same staleness). Revalidate() makes
/// ONE ChangesSince(synced_version) round trip against the server's
/// changelog and evicts exactly the objects that changed; when the
/// bounded changelog no longer reaches back (ResourceExhausted) the
/// whole cache is flushed and the version re-synced. Mutations issued
/// THROUGH this client write through and invalidate immediately, so a
/// caller always reads its own writes.
///
/// Find* result sets are cached whole under a *normalized* query key:
/// the predicate conjunction is order-insensitive, so two queries that
/// differ only in predicate order share one cache entry. The key also
/// carries the upstream's shard-set fingerprint, so after a reshard a
/// cached result from the old topology can never answer a new query
/// (it simply never matches again and ages out). Because the
/// per-object changelog cannot tell which result sets a change
/// perturbs, invalidation is per query *kind*: any dataset change (or
/// type change — the conformance closure moves) drops every cached
/// dataset query, and likewise for transformations and derivations.
/// AllNames/ChangesSince/Version/ProducerOf/TypeConforms still pass
/// straight through.
///
/// Thread-safe behind one mutex, held across upstream fills (the
/// client -> catalog lock order; the catalog lock stays a leaf). Note
/// that a SimulatedRpcCatalogClient upstream is single-threaded
/// regardless — see its header.
class CachingCatalogClient : public CatalogClient {
 public:
  explicit CachingCatalogClient(std::shared_ptr<CatalogClient> upstream,
                                size_t capacity = 4096,
                                DegradedReadOptions degraded = {});

  /// True while the last upstream contact failed with a transport
  /// error (degraded mode's outage flag; always false when disabled).
  bool upstream_down() const {
    std::lock_guard<std::mutex> lock(mu_);
    return upstream_down_;
  }

  const std::string& authority() const override { return authority_; }
  bool read_only() const override { return upstream_->read_only(); }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  /// Brings the cache current against the upstream changelog, evicting
  /// precisely the changed objects. Against an unsharded upstream this
  /// is ONE ChangesSince round trip; against a sharded upstream (a
  /// composite version is a sum, addressable in no single changelog)
  /// it walks ShardChangesSince per shard from per-shard anchors. A
  /// changelog window miss — or a topology-fingerprint change
  /// (reshard), after which nothing cached can be attributed — flushes
  /// everything and re-syncs the anchors.
  Status Revalidate();

  /// The server version this cache last synchronized against (the sum
  /// of the per-shard anchors when the upstream is sharded).
  uint64_t synced_version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return synced_version_;
  }

  ShardTopology shard_topology() const override;
  Result<std::vector<uint64_t>> ShardVersions() override;
  Result<std::vector<CatalogChange>> ShardChangesSince(
      uint32_t shard, uint64_t since_version) override;

  Result<uint64_t> Version() override;
  /// Forwards upstream, then piggybacks the observed change window
  /// into the cache: every returned change newer than our sync point
  /// is applied as an invalidation, and when the window covers the gap
  /// (since_version <= synced_version_) the sync point advances — so a
  /// caller that walks the changelog also freshens the cache for free.
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) override;
  Result<Dataset> GetDataset(std::string_view name) override;
  Result<Transformation> GetTransformation(std::string_view name) override;
  Result<Derivation> GetDerivation(std::string_view name) override;
  Result<bool> HasDataset(std::string_view name) override;
  Result<bool> IsMaterialized(std::string_view dataset) override;
  Result<std::string> ProducerOf(std::string_view dataset) override;
  Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) override;
  Result<NameList> FindDatasets(
      const DatasetQuery& query) override;
  Result<NameList> FindTransformations(
      const TransformationQuery& query) override;
  Result<NameList> FindDerivations(
      const DerivationQuery& query) override;
  Result<NameList> AllNames(std::string_view kind) override;
  Result<bool> TypeConforms(const DatasetType& type,
                            const DatasetType& against) override;
  Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) override;
  Result<ProvenanceStep> GetProvenanceStep(std::string_view dataset) override;

  Status DefineDataset(Dataset dataset) override;
  Status DefineTransformation(Transformation transformation) override;
  Status DefineDerivation(Derivation derivation) override;
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value) override;
  Result<std::string> AddReplica(Replica replica) override;
  Result<std::string> RecordInvocation(Invocation invocation) override;
  Status SetDatasetSize(std::string_view name, int64_t size_bytes) override;
  Status InvalidateReplica(std::string_view id) override;
  /// Forwards the whole batch upstream in one call, then runs ONE
  /// locked invalidation pass applying each applied op's eviction
  /// rule — instead of locking and evicting once per mutation.
  Result<BatchResult> ApplyBatch(const std::vector<CatalogMutation>& mutations,
                                 const BatchOptions& options = {}) override;

 private:
  /// "kind\x1fname" cache key.
  static std::string Key(std::string_view kind, std::string_view name);

  /// Normalized Find* cache keys: a kind tag, every scalar query field,
  /// and the predicate conjunction rendered to sorted tokens — a
  /// conjunction is order-insensitive, so reordered predicates hash to
  /// the same entry.
  static std::string QueryKey(const DatasetQuery& query);
  static std::string QueryKey(const TransformationQuery& query);
  static std::string QueryKey(const DerivationQuery& query);
  /// Appends the upstream shard-set fingerprint to a Find* query key:
  /// a reshard changes the fingerprint, so a result set cached under
  /// the old topology can never satisfy a post-reshard query. Appended,
  /// not prefixed — FlushQueriesLocked's range erase keys on the
  /// leading kind tag.
  std::string TopologyKey(std::string key) const;

  /// Cached record for (kind, name), filling from upstream on a miss.
  /// mu_ must be held.
  Result<ObjectRecord> GetOrFillLocked(std::string_view kind,
                                       std::string_view name);
  void InsertLocked(ObjectRecord record);
  void EvictLocked(std::string_view kind, std::string_view name);
  void FlushLocked();
  /// Applies one changelog entry's invalidation. mu_ must be held.
  void ApplyChangeLocked(const CatalogChange& change);

  /// Serves a Find* query from `queries_`, filling from `fetch` on a
  /// miss. mu_ must be held (and stays held across the fill, like
  /// every other upstream path here).
  template <typename Fetch>
  Result<NameList> CachedFindLocked(std::string key, Fetch&& fetch);
  /// Drops every cached query of one kind tag ('D'/'T'/'V').
  void FlushQueriesLocked(char kind_tag);

  /// Updates the outage flag from an upstream call's outcome: success
  /// clears it, a transport error (Unavailable / DeadlineExceeded)
  /// starts the staleness clock. mu_ must be held.
  void NoteUpstreamLocked(const Status& status);
  /// Degraded-mode gate for serving a cache hit. OK when degradation
  /// is off, upstream is believed up, or the outage is younger than
  /// the staleness bound; Unavailable otherwise. mu_ must be held.
  Status DegradedGateLocked();

  std::shared_ptr<CatalogClient> upstream_;
  std::string authority_;
  size_t capacity_;
  mutable std::mutex mu_;
  LruCacheMap<ObjectRecord> objects_;
  /// Provenance steps by dataset name. Conservatively flushed whenever
  /// a derivation or invocation changes anywhere: a step aggregates
  /// objects the per-object changelog cannot pin to one dataset.
  LruCacheMap<ProvenanceStep> steps_;
  /// Whole Find* result sets by normalized query key (see QueryKey).
  /// Flushed per kind on any change of that kind; entries past capacity
  /// displace the least-recently-used set, same policy as objects_.
  /// One immutable NameList per query: every hit hands back a
  /// shared_ptr copy of the SAME list (identical identity()), not a
  /// fresh vector<string> — repeated hits allocate nothing.
  LruCacheMap<NameList> queries_;
  uint64_t synced_version_ = 0;
  /// Per-shard changelog anchors against a sharded upstream, plus the
  /// topology they belong to. Empty until the first Revalidate against
  /// a sharded upstream; an unsharded upstream never populates them
  /// (synced_version_ alone is its anchor, exactly as before).
  std::vector<uint64_t> shard_synced_;
  ShardTopology synced_topology_;
  CacheStats stats_;
  DegradedReadOptions degraded_;
  bool upstream_down_ = false;
  std::chrono::steady_clock::time_point down_since_{};
};

}  // namespace vdg

#endif  // VDG_FEDERATION_REMOTE_CACHE_H_
