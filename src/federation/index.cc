#include "federation/index.h"

#include <algorithm>

#include "common/strings.h"

namespace vdg {

namespace {
std::string NameKey(std::string_view kind, std::string_view name) {
  return std::string(kind) + "/" + std::string(name);
}
}  // namespace

Status FederatedIndex::AddSource(const VirtualDataCatalog* catalog) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  for (const SourceState& source : sources_) {
    if (source.catalog == catalog) {
      return Status::AlreadyExists("catalog already indexed: " +
                                   catalog->name());
    }
  }
  sources_.push_back(SourceState{catalog, 0});
  return Status::OK();
}

Status FederatedIndex::Refresh() {
  entries_.clear();
  by_name_.clear();
  version_sum_ = 0;
  for (SourceState& source : sources_) {
    const VirtualDataCatalog& catalog = *source.catalog;
    for (const std::string& name : catalog.AllDatasetNames()) {
      VDG_ASSIGN_OR_RETURN(Dataset ds, catalog.GetDataset(name));
      IndexEntry entry;
      entry.kind = "dataset";
      entry.name = name;
      entry.authority = catalog.name();
      entry.type = ds.type;
      entry.materialized = catalog.IsMaterialized(name);
      entry.annotations = ds.annotations;
      by_name_.emplace(NameKey(entry.kind, entry.name), entries_.size());
      entries_.push_back(std::move(entry));
    }
    for (const std::string& name : catalog.AllTransformationNames()) {
      VDG_ASSIGN_OR_RETURN(Transformation tr, catalog.GetTransformation(name));
      IndexEntry entry;
      entry.kind = "transformation";
      entry.name = name;
      entry.authority = catalog.name();
      entry.annotations = tr.annotations();
      by_name_.emplace(NameKey(entry.kind, entry.name), entries_.size());
      entries_.push_back(std::move(entry));
    }
    for (const std::string& name : catalog.AllDerivationNames()) {
      VDG_ASSIGN_OR_RETURN(Derivation dv, catalog.GetDerivation(name));
      IndexEntry entry;
      entry.kind = "derivation";
      entry.name = name;
      entry.authority = catalog.name();
      entry.annotations = dv.annotations();
      by_name_.emplace(NameKey(entry.kind, entry.name), entries_.size());
      entries_.push_back(std::move(entry));
    }
    source.version_at_refresh = catalog.version();
    version_sum_ += static_cast<double>(catalog.version());
  }
  ++refresh_count_;
  return Status::OK();
}

bool FederatedIndex::IsStale() const {
  if (refresh_count_ == 0) return true;
  for (const SourceState& source : sources_) {
    if (source.catalog->version() != source.version_at_refresh) return true;
  }
  return false;
}

std::vector<IndexEntry> FederatedIndex::FindDatasets(
    const DatasetQuery& query) const {
  std::vector<IndexEntry> out;
  for (const IndexEntry& entry : entries_) {
    if (entry.kind != "dataset") continue;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (query.type) {
      // Conformance is judged by the owning catalog's type universe.
      const VirtualDataCatalog* owner = nullptr;
      for (const SourceState& source : sources_) {
        if (source.catalog->name() == entry.authority) {
          owner = source.catalog;
          break;
        }
      }
      if (owner == nullptr ||
          !owner->types().Conforms(entry.type, *query.type)) {
        continue;
      }
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    if (query.require_materialized && !entry.materialized) continue;
    if (query.only_virtual && entry.materialized) continue;
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::FindTransformations(
    const TransformationQuery& query) const {
  std::vector<IndexEntry> out;
  for (const IndexEntry& entry : entries_) {
    if (entry.kind != "transformation") continue;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    // consumes/produces need full signatures; the index defers those
    // to the owning catalog (one remote call per candidate).
    if (query.consumes || query.produces) {
      const VirtualDataCatalog* owner = nullptr;
      for (const SourceState& source : sources_) {
        if (source.catalog->name() == entry.authority) {
          owner = source.catalog;
          break;
        }
      }
      if (owner == nullptr) continue;
      TransformationQuery narrowed = query;
      narrowed.name_prefix = entry.name;
      if (owner->FindTransformations(narrowed).empty()) continue;
    }
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::FindDerivations(
    const DerivationQuery& query) const {
  std::vector<IndexEntry> out;
  for (const IndexEntry& entry : entries_) {
    if (entry.kind != "derivation") continue;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::LookupName(
    std::string_view kind, std::string_view name) const {
  std::vector<IndexEntry> out;
  auto [lo, hi] = by_name_.equal_range(NameKey(kind, name));
  for (auto it = lo; it != hi; ++it) {
    out.push_back(entries_[it->second]);
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::ScanDatasets(
    const DatasetQuery& query) const {
  std::vector<IndexEntry> out;
  for (const SourceState& source : sources_) {
    const VirtualDataCatalog& catalog = *source.catalog;
    for (const std::string& name : catalog.FindDatasets(query)) {
      Result<Dataset> ds = catalog.GetDataset(name);
      if (!ds.ok()) continue;
      IndexEntry entry;
      entry.kind = "dataset";
      entry.name = name;
      entry.authority = catalog.name();
      entry.type = ds->type;
      entry.materialized = catalog.IsMaterialized(name);
      entry.annotations = ds->annotations;
      out.push_back(std::move(entry));
      if (query.limit != 0 && out.size() >= query.limit) return out;
    }
  }
  return out;
}

}  // namespace vdg
