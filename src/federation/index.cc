#include "federation/index.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/strings.h"

namespace vdg {

namespace {
std::string NameKey(std::string_view kind, std::string_view name) {
  return std::string(kind) + "/" + std::string(name);
}
}  // namespace

std::string FederatedIndex::EntryKey(std::string_view kind,
                                     std::string_view authority,
                                     std::string_view name) {
  std::string out(kind);
  out.push_back('\x1f');
  out += authority;
  out.push_back('\x1f');
  out += name;
  return out;
}

Status FederatedIndex::AddSource(const VirtualDataCatalog* catalog) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  return AddSource(std::make_shared<InProcessCatalogClient>(catalog));
}

Status FederatedIndex::AddSource(std::shared_ptr<CatalogClient> client) {
  if (client == nullptr) return Status::InvalidArgument("null catalog client");
  std::unique_lock lock(mu_);
  if (source_by_authority_.count(client->authority()) != 0) {
    return Status::AlreadyExists("catalog already indexed: " +
                                 client->authority());
  }
  source_by_authority_[client->authority()] = client.get();
  SourceState source;
  source.client = std::move(client);
  sources_.push_back(std::move(source));
  return Status::OK();
}

Result<IndexEntry> FederatedIndex::EntryFromRecord(
    ObjectRecord record, std::string_view authority) {
  if (!record.status.ok()) return record.status;
  IndexEntry entry;
  entry.kind = std::move(record.kind);
  entry.name = std::move(record.name);
  entry.authority = std::string(authority);
  if (record.dataset) {
    entry.type = record.dataset->type;
    entry.materialized = record.materialized;
    entry.annotations = std::move(record.dataset->annotations);
  } else if (record.transformation) {
    entry.annotations = std::move(record.transformation->annotations());
  } else if (record.derivation) {
    entry.annotations = std::move(record.derivation->annotations());
  } else {
    return Status::InvalidArgument("unindexable kind: " + entry.kind);
  }
  return entry;
}

void FederatedIndex::UpsertEntry(SourceState* source, IndexEntry entry) {
  std::string key = EntryKey(entry.kind, entry.authority, entry.name);
  auto [it, inserted] = entries_.insert_or_assign(key, std::move(entry));
  if (inserted) {
    by_name_.emplace(NameKey(it->second.kind, it->second.name), key);
    source->entry_keys.insert(std::move(key));
  }
}

void FederatedIndex::EraseEntry(SourceState* source, std::string_view kind,
                                std::string_view name) {
  std::string key = EntryKey(kind, source->client->authority(), name);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  auto [lo, hi] = by_name_.equal_range(NameKey(kind, name));
  for (auto n = lo; n != hi; ++n) {
    if (n->second == key) {
      by_name_.erase(n);
      break;
    }
  }
  source->entry_keys.erase(key);
  entries_.erase(it);
}

Status FederatedIndex::RebuildSource(SourceState* source) {
  CatalogClient& client = *source->client;
  // Capture the per-shard versions BEFORE enumerating: a writer racing
  // the scan may land changes we partially miss, and recording the
  // pre-scan anchors makes the next delta refresh re-apply them
  // (idempotent upserts) instead of skipping them forever.
  ShardTopology topo_before_scan = client.shard_topology();
  VDG_ASSIGN_OR_RETURN(std::vector<uint64_t> anchors_before_scan,
                       client.ShardVersions());
  // Drop everything this source contributed, then rescan it.
  for (const std::string& key : source->entry_keys) {
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    auto [lo, hi] = by_name_.equal_range(
        NameKey(it->second.kind, it->second.name));
    for (auto n = lo; n != hi; ++n) {
      if (n->second == key) {
        by_name_.erase(n);
        break;
      }
    }
    entries_.erase(it);
  }
  source->entry_keys.clear();

  // Enumerate all three kinds, then fetch every object in one batched
  // round trip rather than a point lookup per name.
  std::vector<ObjectKey> keys;
  const char* kinds[] = {"dataset", "transformation", "derivation"};
  for (const char* kind : kinds) {
    VDG_ASSIGN_OR_RETURN(NameList names, client.AllNames(kind));
    for (std::string_view name : names) {
      keys.push_back(ObjectKey{kind, std::string(name)});
    }
  }
  VDG_ASSIGN_OR_RETURN(std::vector<ObjectRecord> records,
                       client.BatchGet(keys));
  for (ObjectRecord& record : records) {
    Result<IndexEntry> entry =
        EntryFromRecord(std::move(record), client.authority());
    if (!entry.ok()) {
      // A name enumerated a moment ago can be gone by snapshot time
      // (racing remove); the next delta will reconcile it.
      if (entry.status().IsNotFound()) continue;
      return entry.status();
    }
    UpsertEntry(source, std::move(*entry));
    ++refresh_stats_.entries_scanned;
  }
  ++refresh_stats_.full_rebuilds;
  source->topology_at_refresh = topo_before_scan;
  source->shard_anchors = std::move(anchors_before_scan);
  source->version_at_refresh = 0;
  for (uint64_t anchor : source->shard_anchors) {
    source->version_at_refresh += anchor;
  }
  return Status::OK();
}

Status FederatedIndex::ApplyDelta(SourceState* source,
                                  const std::vector<CatalogChange>& changes,
                                  uint64_t* anchor) {
  CatalogClient& client = *source->client;
  // Collapse to the final op per object: a burst of edits to one
  // dataset costs one snapshot, and interleaved define/remove settles
  // on whichever came last.
  std::map<std::pair<std::string, std::string>, char> final_op;
  for (const CatalogChange& change : changes) {
    if (change.kind != "dataset" && change.kind != "transformation" &&
        change.kind != "derivation") {
      continue;  // invocations/types are not index-visible
    }
    final_op[{change.kind, change.name}] = change.op;
  }
  // One batched fetch for every upserted object; deletes need no I/O.
  std::vector<ObjectKey> keys;
  for (const auto& [object, op] : final_op) {
    if (op != 'D') keys.push_back(ObjectKey{object.first, object.second});
  }
  std::map<std::pair<std::string, std::string>, ObjectRecord> fetched;
  if (!keys.empty()) {
    VDG_ASSIGN_OR_RETURN(std::vector<ObjectRecord> records,
                         client.BatchGet(keys));
    for (ObjectRecord& record : records) {
      fetched[{record.kind, record.name}] = std::move(record);
    }
  }
  for (const auto& [object, op] : final_op) {
    const auto& [kind, name] = object;
    if (op == 'D') {
      EraseEntry(source, kind, name);
    } else {
      auto it = fetched.find(object);
      Result<IndexEntry> entry =
          it == fetched.end()
              ? Result<IndexEntry>(Status::NotFound("missing record"))
              : EntryFromRecord(std::move(it->second), client.authority());
      if (entry.ok()) {
        UpsertEntry(source, std::move(*entry));
      } else {
        // Upserted then removed within the window with the removal
        // recorded as an upsert collapse — treat as gone.
        EraseEntry(source, kind, name);
      }
    }
    ++refresh_stats_.entries_applied;
  }
  // Advance to the last change actually applied, not the shard's live
  // version: a writer may have bumped it after ChangesSince returned,
  // and those changes must survive into the next delta.
  if (!changes.empty()) {
    *anchor = changes.back().version;
  }
  return Status::OK();
}

Status FederatedIndex::DeltaRefreshSource(SourceState* source,
                                          const ShardTopology& topo) {
  CatalogClient& client = *source->client;
  if (source->shard_anchors.size() != topo.shard_count) {
    // First refresh of this source: every shard starts from version 0,
    // matching the pre-shard behavior of ChangesSince(0).
    source->shard_anchors.assign(topo.shard_count, 0);
    source->topology_at_refresh = topo;
  }
  for (uint32_t shard = 0; shard < topo.shard_count; ++shard) {
    uint64_t* anchor = &source->shard_anchors[shard];
    Result<std::vector<CatalogChange>> changes =
        client.ShardChangesSince(shard, *anchor);
    if (!changes.ok()) {
      if (changes.status().code() == StatusCode::kResourceExhausted ||
          changes.status().IsInvalidArgument()) {
        // This shard's changelog window no longer reaches our anchor
        // (or the anchor postdates a reset shard): rescan the whole
        // source — entries are not attributable to shards, so a
        // partial per-shard rebuild cannot drop this shard's stale
        // entries without dropping everyone's.
        return RebuildSource(source);
      }
      return changes.status();
    }
    VDG_RETURN_IF_ERROR(ApplyDelta(source, *changes, anchor));
  }
  ++refresh_stats_.delta_refreshes;
  source->version_at_refresh = 0;
  for (uint64_t anchor : source->shard_anchors) {
    source->version_at_refresh += anchor;
  }
  return Status::OK();
}

Status FederatedIndex::Refresh() {
  std::unique_lock lock(mu_);
  // Accumulate into a local and commit only at the end: an early
  // return on a failed source must not leave version_sum_ zeroed (or
  // half-summed) while the per-source versions still hold real values.
  uint64_t version_sum = 0;
  for (SourceState& source : sources_) {
    Result<uint64_t> live_version = source.client->Version();
    if (!live_version.ok()) {
      version_sum_ = 0;
      for (const SourceState& s : sources_) {
        version_sum_ += s.version_at_refresh;
      }
      return live_version.status();
    }
    if (*live_version != source.version_at_refresh || refresh_count_ == 0) {
      // Deltas anchor per shard (a composite version is a sum, not a
      // changelog position). A fingerprint change means the anchors
      // describe a dead topology: only a rebuild is sound. Window
      // misses fall back to a rebuild inside DeltaRefreshSource;
      // transport failures do NOT — an unreachable source must
      // surface as an error, not as a silent full rebuild over the
      // same broken link.
      ShardTopology topo = source.client->shard_topology();
      Status applied;
      if (!source.shard_anchors.empty() &&
          (topo.fingerprint != source.topology_at_refresh.fingerprint ||
           topo.shard_count != source.topology_at_refresh.shard_count)) {
        applied = RebuildSource(&source);
      } else {
        applied = DeltaRefreshSource(&source, topo);
      }
      if (!applied.ok()) {
        // Keep the stats invariant: the sum always mirrors the
        // per-source versions, including sources updated before the
        // failure.
        version_sum_ = 0;
        for (const SourceState& s : sources_) {
          version_sum_ += s.version_at_refresh;
        }
        return applied;
      }
    }
    version_sum += source.version_at_refresh;
  }
  version_sum_ = version_sum;
  ++refresh_count_;
  return Status::OK();
}

Status FederatedIndex::RebuildAll() {
  std::unique_lock lock(mu_);
  uint64_t version_sum = 0;
  for (SourceState& source : sources_) {
    Status rebuilt = RebuildSource(&source);
    if (!rebuilt.ok()) {
      version_sum_ = 0;
      for (const SourceState& s : sources_) {
        version_sum_ += s.version_at_refresh;
      }
      return rebuilt;
    }
    version_sum += source.version_at_refresh;
  }
  version_sum_ = version_sum;
  ++refresh_count_;
  return Status::OK();
}

bool FederatedIndex::IsStale() const {
  std::shared_lock lock(mu_);
  if (refresh_count_ == 0) return true;
  for (const SourceState& source : sources_) {
    // In-process clients answer from an atomic load; polling here
    // contends only on this index's shared lock, never the catalog's.
    Result<uint64_t> version = source.client->Version();
    if (!version.ok() || *version != source.version_at_refresh) return true;
  }
  return false;
}

std::vector<IndexEntry> FederatedIndex::FindDatasets(
    const DatasetQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  // Entry keys are kind-first, so this walks only the dataset range.
  for (auto it = entries_.lower_bound("dataset\x1f");
       it != entries_.end() && StartsWith(it->first, "dataset\x1f"); ++it) {
    const IndexEntry& entry = it->second;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (query.type) {
      // Conformance is judged by the owning catalog's type universe,
      // read under that catalog's lock through the client boundary —
      // a concurrent DefineType would otherwise race this walk. An
      // unreachable owner conservatively excludes its entries.
      auto owner = source_by_authority_.find(entry.authority);
      if (owner == source_by_authority_.end()) continue;
      Result<bool> conforms =
          owner->second->TypeConforms(entry.type, *query.type);
      if (!conforms.ok() || !*conforms) continue;
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    if (query.require_materialized && !entry.materialized) continue;
    if (query.only_virtual && entry.materialized) continue;
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::FindTransformations(
    const TransformationQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  for (auto it = entries_.lower_bound("transformation\x1f");
       it != entries_.end() && StartsWith(it->first, "transformation\x1f");
       ++it) {
    const IndexEntry& entry = it->second;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    // consumes/produces need full signatures; the index defers those
    // to the owning catalog (one remote call per candidate).
    if (query.consumes || query.produces) {
      auto owner = source_by_authority_.find(entry.authority);
      if (owner == source_by_authority_.end()) continue;
      TransformationQuery narrowed = query;
      narrowed.name_prefix = entry.name;
      Result<NameList> matches =
          owner->second->FindTransformations(narrowed);
      if (!matches.ok() || matches->empty()) continue;
    }
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::FindDerivations(
    const DerivationQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  for (auto it = entries_.lower_bound("derivation\x1f");
       it != entries_.end() && StartsWith(it->first, "derivation\x1f"); ++it) {
    const IndexEntry& entry = it->second;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::LookupName(
    std::string_view kind, std::string_view name) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  auto [lo, hi] = by_name_.equal_range(NameKey(kind, name));
  for (auto it = lo; it != hi; ++it) {
    auto entry = entries_.find(it->second);
    if (entry != entries_.end()) out.push_back(entry->second);
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::ScanDatasets(
    const DatasetQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  for (const SourceState& source : sources_) {
    CatalogClient& client = *source.client;
    Result<NameList> names = client.FindDatasets(query);
    if (!names.ok()) continue;  // unreachable source contributes nothing
    // One batched fetch for the matches instead of a get per name.
    std::vector<ObjectKey> keys;
    keys.reserve(names->size());
    for (std::string_view name : *names) {
      keys.push_back(ObjectKey{"dataset", std::string(name)});
    }
    Result<std::vector<ObjectRecord>> records = client.BatchGet(keys);
    if (!records.ok()) continue;
    for (ObjectRecord& record : *records) {
      Result<IndexEntry> entry =
          EntryFromRecord(std::move(record), client.authority());
      if (!entry.ok()) continue;
      out.push_back(std::move(*entry));
      if (query.limit != 0 && out.size() >= query.limit) return out;
    }
  }
  return out;
}

}  // namespace vdg
