#include "federation/index.h"

#include <algorithm>
#include <mutex>

#include "common/strings.h"

namespace vdg {

namespace {
std::string NameKey(std::string_view kind, std::string_view name) {
  return std::string(kind) + "/" + std::string(name);
}
}  // namespace

std::string FederatedIndex::EntryKey(std::string_view kind,
                                     std::string_view authority,
                                     std::string_view name) {
  std::string out(kind);
  out.push_back('\x1f');
  out += authority;
  out.push_back('\x1f');
  out += name;
  return out;
}

Status FederatedIndex::AddSource(const VirtualDataCatalog* catalog) {
  if (catalog == nullptr) return Status::InvalidArgument("null catalog");
  std::unique_lock lock(mu_);
  for (const SourceState& source : sources_) {
    if (source.catalog == catalog) {
      return Status::AlreadyExists("catalog already indexed: " +
                                   catalog->name());
    }
  }
  sources_.push_back(SourceState{catalog, 0, {}});
  source_by_authority_[catalog->name()] = catalog;
  return Status::OK();
}

Result<IndexEntry> FederatedIndex::Snapshot(const VirtualDataCatalog& catalog,
                                            std::string_view kind,
                                            std::string_view name) {
  IndexEntry entry;
  entry.kind = std::string(kind);
  entry.name = std::string(name);
  entry.authority = catalog.name();
  if (kind == "dataset") {
    VDG_ASSIGN_OR_RETURN(Dataset ds, catalog.GetDataset(name));
    entry.type = ds.type;
    entry.materialized = catalog.IsMaterialized(name);
    entry.annotations = ds.annotations;
  } else if (kind == "transformation") {
    VDG_ASSIGN_OR_RETURN(Transformation tr, catalog.GetTransformation(name));
    entry.annotations = tr.annotations();
  } else if (kind == "derivation") {
    VDG_ASSIGN_OR_RETURN(Derivation dv, catalog.GetDerivation(name));
    entry.annotations = dv.annotations();
  } else {
    return Status::InvalidArgument("unindexable kind: " + std::string(kind));
  }
  return entry;
}

void FederatedIndex::UpsertEntry(SourceState* source, IndexEntry entry) {
  std::string key = EntryKey(entry.kind, entry.authority, entry.name);
  auto [it, inserted] = entries_.insert_or_assign(key, std::move(entry));
  if (inserted) {
    by_name_.emplace(NameKey(it->second.kind, it->second.name), key);
    source->entry_keys.insert(std::move(key));
  }
}

void FederatedIndex::EraseEntry(SourceState* source, std::string_view kind,
                                std::string_view name) {
  std::string key = EntryKey(kind, source->catalog->name(), name);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  auto [lo, hi] = by_name_.equal_range(NameKey(kind, name));
  for (auto n = lo; n != hi; ++n) {
    if (n->second == key) {
      by_name_.erase(n);
      break;
    }
  }
  source->entry_keys.erase(key);
  entries_.erase(it);
}

Status FederatedIndex::RebuildSource(SourceState* source) {
  const VirtualDataCatalog& catalog = *source->catalog;
  // Capture the version BEFORE enumerating: a writer racing the scan
  // may land changes we partially miss, and recording the pre-scan
  // version makes the next delta refresh re-apply them (idempotent
  // upserts) instead of skipping them forever.
  uint64_t version_before_scan = catalog.version();
  // Drop everything this source contributed, then rescan it.
  for (const std::string& key : source->entry_keys) {
    auto it = entries_.find(key);
    if (it == entries_.end()) continue;
    auto [lo, hi] = by_name_.equal_range(
        NameKey(it->second.kind, it->second.name));
    for (auto n = lo; n != hi; ++n) {
      if (n->second == key) {
        by_name_.erase(n);
        break;
      }
    }
    entries_.erase(it);
  }
  source->entry_keys.clear();

  const char* kinds[] = {"dataset", "transformation", "derivation"};
  for (const char* kind : kinds) {
    std::vector<std::string> names;
    if (kind == std::string_view("dataset")) {
      names = catalog.AllDatasetNames();
    } else if (kind == std::string_view("transformation")) {
      names = catalog.AllTransformationNames();
    } else {
      names = catalog.AllDerivationNames();
    }
    for (const std::string& name : names) {
      VDG_ASSIGN_OR_RETURN(IndexEntry entry, Snapshot(catalog, kind, name));
      UpsertEntry(source, std::move(entry));
      ++refresh_stats_.entries_scanned;
    }
  }
  ++refresh_stats_.full_rebuilds;
  source->version_at_refresh = version_before_scan;
  return Status::OK();
}

Status FederatedIndex::ApplyDelta(SourceState* source,
                                  const std::vector<CatalogChange>& changes) {
  const VirtualDataCatalog& catalog = *source->catalog;
  // Collapse to the final op per object: a burst of edits to one
  // dataset costs one snapshot, and interleaved define/remove settles
  // on whichever came last.
  std::map<std::pair<std::string, std::string>, char> final_op;
  for (const CatalogChange& change : changes) {
    if (change.kind != "dataset" && change.kind != "transformation" &&
        change.kind != "derivation") {
      continue;  // invocations/types are not index-visible
    }
    final_op[{change.kind, change.name}] = change.op;
  }
  for (const auto& [object, op] : final_op) {
    const auto& [kind, name] = object;
    if (op == 'D') {
      EraseEntry(source, kind, name);
    } else {
      Result<IndexEntry> entry = Snapshot(catalog, kind, name);
      if (entry.ok()) {
        UpsertEntry(source, std::move(*entry));
      } else {
        // Upserted then removed within the window with the removal
        // recorded as an upsert collapse — treat as gone.
        EraseEntry(source, kind, name);
      }
    }
    ++refresh_stats_.entries_applied;
  }
  ++refresh_stats_.delta_refreshes;
  // Advance to the last change actually applied, not the catalog's
  // live version: a writer may have bumped it after ChangesSince
  // returned, and those changes must survive into the next delta.
  if (!changes.empty()) {
    source->version_at_refresh = changes.back().version;
  }
  return Status::OK();
}

Status FederatedIndex::Refresh() {
  std::unique_lock lock(mu_);
  // Accumulate into a local and commit only at the end: an early
  // return on a failed source must not leave version_sum_ zeroed (or
  // half-summed) while the per-source versions still hold real values.
  uint64_t version_sum = 0;
  for (SourceState& source : sources_) {
    if (source.catalog->version() != source.version_at_refresh ||
        refresh_count_ == 0) {
      Result<std::vector<CatalogChange>> changes =
          source.catalog->ChangesSince(source.version_at_refresh);
      Status applied = changes.ok() ? ApplyDelta(&source, *changes)
                                    // Changelog window exceeded (or
                                    // source predates it): rescan.
                                    : RebuildSource(&source);
      if (!applied.ok()) {
        // Keep the stats invariant: the sum always mirrors the
        // per-source versions, including sources updated before the
        // failure.
        version_sum_ = 0;
        for (const SourceState& s : sources_) {
          version_sum_ += s.version_at_refresh;
        }
        return applied;
      }
    }
    version_sum += source.version_at_refresh;
  }
  version_sum_ = version_sum;
  ++refresh_count_;
  return Status::OK();
}

Status FederatedIndex::RebuildAll() {
  std::unique_lock lock(mu_);
  uint64_t version_sum = 0;
  for (SourceState& source : sources_) {
    Status rebuilt = RebuildSource(&source);
    if (!rebuilt.ok()) {
      version_sum_ = 0;
      for (const SourceState& s : sources_) {
        version_sum_ += s.version_at_refresh;
      }
      return rebuilt;
    }
    version_sum += source.version_at_refresh;
  }
  version_sum_ = version_sum;
  ++refresh_count_;
  return Status::OK();
}

bool FederatedIndex::IsStale() const {
  std::shared_lock lock(mu_);
  if (refresh_count_ == 0) return true;
  for (const SourceState& source : sources_) {
    // catalog->version() is an atomic load; polling it here contends
    // only on this index's shared lock, never on the catalog's.
    if (source.catalog->version() != source.version_at_refresh) return true;
  }
  return false;
}

std::vector<IndexEntry> FederatedIndex::FindDatasets(
    const DatasetQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  // Entry keys are kind-first, so this walks only the dataset range.
  for (auto it = entries_.lower_bound("dataset\x1f");
       it != entries_.end() && StartsWith(it->first, "dataset\x1f"); ++it) {
    const IndexEntry& entry = it->second;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (query.type) {
      // Conformance is judged by the owning catalog's type universe.
      // TypeConforms (not types().Conforms) so the hierarchy is read
      // under the catalog's lock — a concurrent DefineType would
      // otherwise race this walk.
      auto owner = source_by_authority_.find(entry.authority);
      if (owner == source_by_authority_.end() ||
          !owner->second->TypeConforms(entry.type, *query.type)) {
        continue;
      }
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    if (query.require_materialized && !entry.materialized) continue;
    if (query.only_virtual && entry.materialized) continue;
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::FindTransformations(
    const TransformationQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  for (auto it = entries_.lower_bound("transformation\x1f");
       it != entries_.end() && StartsWith(it->first, "transformation\x1f");
       ++it) {
    const IndexEntry& entry = it->second;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    // consumes/produces need full signatures; the index defers those
    // to the owning catalog (one remote call per candidate).
    if (query.consumes || query.produces) {
      auto owner = source_by_authority_.find(entry.authority);
      if (owner == source_by_authority_.end()) continue;
      TransformationQuery narrowed = query;
      narrowed.name_prefix = entry.name;
      if (owner->second->FindTransformations(narrowed).empty()) continue;
    }
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::FindDerivations(
    const DerivationQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  for (auto it = entries_.lower_bound("derivation\x1f");
       it != entries_.end() && StartsWith(it->first, "derivation\x1f"); ++it) {
    const IndexEntry& entry = it->second;
    if (!query.name_prefix.empty() &&
        !StartsWith(entry.name, query.name_prefix)) {
      continue;
    }
    if (!MatchesAll(entry.annotations, query.predicates)) continue;
    out.push_back(entry);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::LookupName(
    std::string_view kind, std::string_view name) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  auto [lo, hi] = by_name_.equal_range(NameKey(kind, name));
  for (auto it = lo; it != hi; ++it) {
    auto entry = entries_.find(it->second);
    if (entry != entries_.end()) out.push_back(entry->second);
  }
  return out;
}

std::vector<IndexEntry> FederatedIndex::ScanDatasets(
    const DatasetQuery& query) const {
  std::shared_lock lock(mu_);
  std::vector<IndexEntry> out;
  for (const SourceState& source : sources_) {
    const VirtualDataCatalog& catalog = *source.catalog;
    for (const std::string& name : catalog.FindDatasets(query)) {
      Result<Dataset> ds = catalog.GetDataset(name);
      if (!ds.ok()) continue;
      IndexEntry entry;
      entry.kind = "dataset";
      entry.name = name;
      entry.authority = catalog.name();
      entry.type = ds->type;
      entry.materialized = catalog.IsMaterialized(name);
      entry.annotations = ds->annotations;
      out.push_back(std::move(entry));
      if (query.limit != 0 && out.size() >= query.limit) return out;
    }
  }
  return out;
}

}  // namespace vdg
