#include "federation/faulty_transport.h"

#include <thread>
#include <utility>

namespace vdg {

bool FaultInjector::RollConnectRefusal() {
  if (!Roll(profile_.refuse_connect_rate)) return false;
  stats_.connects_refused.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::Roll(double p) {
  if (p <= 0.0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.Chance(p);
}

size_t FaultInjector::Pick(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.Index(n);
}

ptrdiff_t FaultyChannel::Send(std::string_view bytes) {
  FaultStats& stats = injector_->stats();
  const FaultProfile& profile = injector_->profile();
  if (injector_->Roll(profile.stall_rate)) {
    stats.stalls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(profile.stall);
  }
  if (injector_->Roll(profile.reset_rate)) {
    stats.resets.fetch_add(1, std::memory_order_relaxed);
    inner_->Close();
    return -1;
  }
  if (!bytes.empty() && injector_->Roll(profile.truncate_rate)) {
    // Deliver a strict prefix, then drop the link: the server sees a
    // mid-frame EOF and must discard the partial frame.
    stats.truncations.fetch_add(1, std::memory_order_relaxed);
    size_t keep = injector_->Pick(bytes.size());
    if (keep > 0) inner_->Send(bytes.substr(0, keep));
    inner_->Close();
    return -1;
  }
  if (!bytes.empty() && injector_->Roll(profile.corrupt_rate)) {
    stats.corruptions.fetch_add(1, std::memory_order_relaxed);
    std::string mangled(bytes);
    mangled[injector_->Pick(mangled.size())] ^= 0x40;
    // Forward the whole mangled buffer; the server's CRC/framing
    // validation is what turns this into a visible fault.
    return inner_->Send(mangled);
  }
  if (bytes.size() > 1 && injector_->Roll(profile.short_write_rate)) {
    // Accept only a prefix. Correct callers loop; the pre-fix client
    // treated this as success and dropped the frame's tail.
    stats.short_writes.fetch_add(1, std::memory_order_relaxed);
    size_t keep = 1 + injector_->Pick(bytes.size() - 1);
    return inner_->Send(bytes.substr(0, keep));
  }
  return inner_->Send(bytes);
}

bool FaultyChannel::Receive(std::string* out) {
  FaultStats& stats = injector_->stats();
  const FaultProfile& profile = injector_->profile();
  if (injector_->Roll(profile.recv_reset_rate)) {
    stats.recv_resets.fetch_add(1, std::memory_order_relaxed);
    inner_->Close();
    return false;
  }
  if (profile.recv_corrupt_rate > 0.0) {
    std::string chunk;
    if (!inner_->Receive(&chunk)) return false;
    if (!chunk.empty() && injector_->Roll(profile.recv_corrupt_rate)) {
      stats.recv_corruptions.fetch_add(1, std::memory_order_relaxed);
      chunk[injector_->Pick(chunk.size())] ^= 0x40;
    }
    out->append(chunk);
    return true;
  }
  return inner_->Receive(out);
}

Result<std::shared_ptr<WireCatalogClient>> ConnectFaulty(
    CatalogServer* server, std::shared_ptr<FaultInjector> injector,
    WireClientOptions options, bool use_socket) {
  if (injector->RollConnectRefusal()) {
    return Status::Unavailable("endpoint refused the connection (injected)");
  }
  auto channel = std::make_shared<FaultyChannel>(server->Connect(use_socket),
                                                 std::move(injector));
  return WireCatalogClient::ConnectChannel(std::move(channel), options);
}

}  // namespace vdg
