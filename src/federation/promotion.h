#ifndef VDG_FEDERATION_PROMOTION_H_
#define VDG_FEDERATION_PROMOTION_H_

#include <memory>
#include <string>
#include <vector>

#include "federation/registry.h"
#include "security/signed_entry.h"
#include "security/trust.h"

namespace vdg {

/// The community curation flow of Sections 4.1–4.2: "data and
/// knowledge definitions will propagate across, up, and around the web
/// of each virtual organization's knowledge servers as information is
/// created, reprocessed, annotated, validated, and approved for
/// broader use, trust, and distribution."
///
/// A PromotionPipeline moves definitions up a chain of catalogs
/// (personal -> group -> collaboration). Each hop is gated: the object
/// must carry a *verified* signed assertion (e.g. "approved") from a
/// signer whose certificate chain anchors at a trusted root. The copy
/// installed upstream is annotated with its origin and the approving
/// identity. Endorsements are pinned to the object's canonical
/// *content* (provenance-of-copy annotations excluded), so an
/// unchanged definition climbs multiple tiers on one endorsement,
/// while any edit voids it and demands re-approval.
class PromotionPipeline {
 public:
  /// `tiers` orders the catalogs from least to most authoritative
  /// (e.g. {personal, group, collaboration}); all borrowed. Each is
  /// wrapped in a read-write in-process handle.
  PromotionPipeline(std::vector<VirtualDataCatalog*> tiers,
                    const TrustStore* trust, SignatureRegistry* signatures);

  /// Tiers behind arbitrary transport handles — promotion across
  /// remote servers.
  PromotionPipeline(std::vector<std::shared_ptr<CatalogClient>> tiers,
                    const TrustStore* trust, SignatureRegistry* signatures)
      : tiers_(std::move(tiers)), trust_(trust), signatures_(signatures) {}

  /// The assertion a hop requires, per destination tier index
  /// (defaults to "approved" everywhere).
  void set_required_assertion(std::string assertion) {
    required_assertion_ = std::move(assertion);
  }

  /// Registers the certificate chain that authenticates `signer`.
  void RegisterSignerChain(std::string signer,
                           std::vector<Certificate> chain) {
    chains_[std::move(signer)] = std::move(chain);
  }

  /// Records a signed endorsement of a transformation currently
  /// defined in `tier` (content-pinned: later edits void it).
  Status Endorse(size_t tier, std::string_view transformation,
                 const Identity& signer, const KeyPair& signer_keys);

  /// Promotes `transformation` from tier `from` to tier `from + 1`.
  /// Fails with PermissionDenied when no verified endorsement covers
  /// the object's current content, and FailedPrecondition when the
  /// tiers are out of range.
  Status PromoteTransformation(size_t from, std::string_view transformation);

  /// Convenience: endorse-and-promote through every remaining tier.
  Status PromoteToTop(size_t from, std::string_view transformation,
                      const Identity& signer, const KeyPair& signer_keys);

  size_t tier_count() const { return tiers_.size(); }

 private:
  /// Canonical signable content of a transformation (its wire XML).
  Result<std::string> CanonicalContent(size_t tier,
                                       std::string_view transformation) const;

  std::vector<std::shared_ptr<CatalogClient>> tiers_;
  const TrustStore* trust_;
  SignatureRegistry* signatures_;
  std::string required_assertion_ = "approved";
  std::map<std::string, std::vector<Certificate>> chains_;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_PROMOTION_H_
