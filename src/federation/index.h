#ifndef VDG_FEDERATION_INDEX_H_
#define VDG_FEDERATION_INDEX_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/client.h"
#include "common/uri.h"

namespace vdg {

/// One indexed object: enough of a snapshot to answer discovery
/// queries without touching the source catalog.
struct IndexEntry {
  std::string kind;       // "dataset" | "transformation" | "derivation"
  std::string name;       // local name within its catalog
  std::string authority;  // owning catalog
  DatasetType type;       // datasets only
  bool materialized = false;
  AttributeSet annotations;

  std::string VdpRef() const { return MakeVdpRef(authority, name); }
};

/// Counters describing how the index has been kept fresh; the
/// refresh-cost side of the FIG4 tradeoff.
struct IndexRefreshStats {
  uint64_t delta_refreshes = 0;  // sources brought current via changelog
  uint64_t full_rebuilds = 0;    // sources rescanned end-to-end
  uint64_t entries_applied = 0;  // delta upserts/deletes applied
  uint64_t entries_scanned = 0;  // objects visited by full rescans
};

/// A federating index over selected catalogs (Figure 4): personal,
/// group, and collaboration indexes are all instances differing only
/// in scope. The index answers discovery from its snapshot — one
/// in-memory structure instead of a scan across N catalogs — at the
/// price of staleness, which `IsStale()` detects via the catalogs'
/// edit-version counters.
///
/// Sources are CatalogClient handles (read-only by construction when
/// added as raw catalogs), so the same index federates in-process
/// catalogs and remote endpoints. Refresh() is incremental: each
/// source exposes a bounded per-version changelog per shard
/// (ShardChangesSince; one implicit shard for ordinary sources), and
/// the index applies only the objects that changed since its recorded
/// per-shard anchors for that source, fetching the changed objects in
/// ONE batched round trip per shard. A sharded source's composite
/// version is a *sum* of shard versions — deltas anchor per shard, and
/// a topology fingerprint change (resharding) forces that source's
/// full rebuild. When the changelog window no longer reaches
/// back far enough, that source alone falls back to a full rescan
/// (also batched); transport errors (e.g. Unavailable) propagate
/// instead of silently triggering an expensive rebuild. RebuildAll()
/// forces the old full-rescan behavior.
///
/// Threading: a shared_mutex guards the snapshot. Lookups
/// (FindDatasets / FindTransformations / FindDerivations / LookupName /
/// ScanDatasets / IsStale / the counters) take it shared and may run
/// concurrently; AddSource / Refresh / RebuildAll take it exclusive.
/// Lock ordering: the index lock is acquired BEFORE any source
/// client's (and hence catalog's) lock — Refresh holds the index lock
/// while calling ChangesSince / BatchGet on sources. The catalog never
/// calls back into the index, so its lock is a leaf and the order
/// index -> client -> catalog cannot invert — refreshing while readers
/// query both layers cannot deadlock.
class FederatedIndex {
 public:
  explicit FederatedIndex(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a source catalog (borrowed; must outlive the index) behind a
  /// read-only in-process handle: the index never mutates its sources.
  Status AddSource(const VirtualDataCatalog* catalog);
  /// Adds a source behind an arbitrary transport handle.
  Status AddSource(std::shared_ptr<CatalogClient> client);
  size_t source_count() const {
    std::shared_lock lock(mu_);
    return sources_.size();
  }

  /// Brings the snapshot current: per source, applies the catalog's
  /// changelog delta when available, otherwise rescans that source.
  /// Refresh cost is what FIG4 benchmarks against query savings.
  Status Refresh();

  /// Forces a full rescan of every source (the pre-delta behavior;
  /// kept as the benchmark baseline and repair hatch).
  Status RebuildAll();

  /// True when any source changed since the last Refresh(). A source
  /// whose version cannot be read (transport failure) counts as stale.
  bool IsStale() const;
  uint64_t refresh_count() const {
    std::shared_lock lock(mu_);
    return refresh_count_;
  }
  uint64_t last_refresh_version_sum() const {
    std::shared_lock lock(mu_);
    return version_sum_;
  }
  /// By value: a reference would dangle past the lock's release.
  IndexRefreshStats refresh_stats() const {
    std::shared_lock lock(mu_);
    return refresh_stats_;
  }

  /// Discovery answered purely from the snapshot.
  std::vector<IndexEntry> FindDatasets(const DatasetQuery& query) const;
  std::vector<IndexEntry> FindTransformations(
      const TransformationQuery& query) const;
  std::vector<IndexEntry> FindDerivations(const DerivationQuery& query) const;

  /// Exact-name lookup across all sources.
  std::vector<IndexEntry> LookupName(std::string_view kind,
                                     std::string_view name) const;

  size_t size() const {
    std::shared_lock lock(mu_);
    return entries_.size();
  }

  /// The same dataset query evaluated by querying every source catalog
  /// directly — the baseline the index is measured against.
  std::vector<IndexEntry> ScanDatasets(const DatasetQuery& query) const;

 private:
  struct SourceState {
    std::shared_ptr<CatalogClient> client;
    /// Sum of shard_anchors — the composite version this source was
    /// last brought current to (what IsStale compares Version()
    /// against). For a single-shard source this IS the catalog
    /// version, and the anchor vector has one element.
    uint64_t version_at_refresh = 0;
    /// Per-shard changelog anchors: the version of the last change
    /// applied from each shard. A sharded source's composite version
    /// is a sum — not addressable in any one changelog — so deltas
    /// anchor per shard or not at all.
    std::vector<uint64_t> shard_anchors;
    /// Topology the anchors belong to; a fingerprint change
    /// (resharding) invalidates them and forces a rebuild.
    ShardTopology topology_at_refresh;
    /// Entry keys owned by this source, for targeted rescans.
    std::set<std::string> entry_keys;
  };

  /// Entry keys order kind first so each Find* iterates one contiguous
  /// range of the map.
  static std::string EntryKey(std::string_view kind,
                              std::string_view authority,
                              std::string_view name);

  Status RebuildSource(SourceState* source);
  /// Brings one source current via per-shard changelog deltas; falls
  /// back to RebuildSource when any shard's window no longer reaches
  /// back (or the recorded anchor postdates a reset shard).
  Status DeltaRefreshSource(SourceState* source, const ShardTopology& topo);
  /// Applies one shard's changes and advances that shard's `anchor` to
  /// the last change applied.
  Status ApplyDelta(SourceState* source,
                    const std::vector<CatalogChange>& changes,
                    uint64_t* anchor);
  void UpsertEntry(SourceState* source, IndexEntry entry);
  void EraseEntry(SourceState* source, std::string_view kind,
                  std::string_view name);
  /// Converts one batched ObjectRecord into an IndexEntry (the
  /// record's own error status when the object no longer exists).
  static Result<IndexEntry> EntryFromRecord(ObjectRecord record,
                                            std::string_view authority);

  std::string name_;
  /// Guards every member below; see the class comment for the
  /// reader/writer protocol and lock ordering versus the catalogs.
  mutable std::shared_mutex mu_;
  std::vector<SourceState> sources_;
  std::map<std::string, CatalogClient*, std::less<>> source_by_authority_;
  std::map<std::string, IndexEntry, std::less<>> entries_;
  // (kind, name) -> entry keys, for cross-authority exact lookup.
  std::multimap<std::string, std::string, std::less<>> by_name_;
  uint64_t refresh_count_ = 0;
  /// Sum of source versions at the last refresh. uint64_t, not double:
  /// catalog versions are uint64_t counters and a floating accumulator
  /// silently loses precision past 2^53.
  uint64_t version_sum_ = 0;
  IndexRefreshStats refresh_stats_;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_INDEX_H_
