#ifndef VDG_FEDERATION_INDEX_H_
#define VDG_FEDERATION_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/catalog.h"

namespace vdg {

/// One indexed object: enough of a snapshot to answer discovery
/// queries without touching the source catalog.
struct IndexEntry {
  std::string kind;       // "dataset" | "transformation" | "derivation"
  std::string name;       // local name within its catalog
  std::string authority;  // owning catalog
  DatasetType type;       // datasets only
  bool materialized = false;
  AttributeSet annotations;

  std::string VdpRef() const { return "vdp://" + authority + "/" + name; }
};

/// A federating index over selected catalogs (Figure 4): personal,
/// group, and collaboration indexes are all instances differing only
/// in scope. The index answers discovery from its snapshot — one
/// in-memory structure instead of a scan across N catalogs — at the
/// price of staleness, which `IsStale()` detects via the catalogs'
/// edit-version counters.
class FederatedIndex {
 public:
  explicit FederatedIndex(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a source catalog (borrowed; must outlive the index).
  Status AddSource(const VirtualDataCatalog* catalog);
  size_t source_count() const { return sources_.size(); }

  /// Rebuilds the snapshot from all sources and records their
  /// versions. Refresh cost is what FIG4 benchmarks against query
  /// savings.
  Status Refresh();

  /// True when any source changed since the last Refresh().
  bool IsStale() const;
  uint64_t refresh_count() const { return refresh_count_; }
  SimTime last_refresh_version_sum() const { return version_sum_; }

  /// Discovery answered purely from the snapshot.
  std::vector<IndexEntry> FindDatasets(const DatasetQuery& query) const;
  std::vector<IndexEntry> FindTransformations(
      const TransformationQuery& query) const;
  std::vector<IndexEntry> FindDerivations(const DerivationQuery& query) const;

  /// Exact-name lookup across all sources.
  std::vector<IndexEntry> LookupName(std::string_view kind,
                                     std::string_view name) const;

  size_t size() const { return entries_.size(); }

  /// The same dataset query evaluated by scanning every source catalog
  /// directly — the baseline the index is measured against.
  std::vector<IndexEntry> ScanDatasets(const DatasetQuery& query) const;

 private:
  struct SourceState {
    const VirtualDataCatalog* catalog;
    uint64_t version_at_refresh = 0;
  };

  std::string name_;
  std::vector<SourceState> sources_;
  std::vector<IndexEntry> entries_;
  // (kind, name) -> indices into entries_
  std::multimap<std::string, size_t, std::less<>> by_name_;
  uint64_t refresh_count_ = 0;
  double version_sum_ = 0;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_INDEX_H_
