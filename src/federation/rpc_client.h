#ifndef VDG_FEDERATION_RPC_CLIENT_H_
#define VDG_FEDERATION_RPC_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "catalog/client.h"
#include "common/rng.h"
#include "grid/simulator.h"

namespace vdg {

/// Transport parameters for one simulated catalog endpoint.
struct RpcConfig {
  /// Simulated wall time one round trip occupies (request + response).
  double latency_s = 0.05;
  /// Probability that one attempt is lost in transit (response never
  /// arrives; the client times out and retries).
  double loss_rate = 0.0;
  /// Attempts per logical call before giving up with Unavailable.
  int max_attempts = 4;
  /// Exponential backoff between attempts, in simulated seconds.
  double backoff_base_s = 0.5;
  double backoff_multiplier = 2.0;
  /// Grid site hosting the catalog server. When set, the endpoint is
  /// coupled to the simulator's fault model: a crashed site rejects
  /// calls until restored (maintenance offline keeps serving, matching
  /// storage semantics). Empty = never down.
  std::string site;
  /// When false, compound calls (BatchGet, GetProvenanceStep) are
  /// decomposed into one round trip per underlying point lookup — the
  /// naive-RPC baseline the batching layer is measured against.
  bool enable_batching = true;
  /// Seed for the loss draw (independent of the grid's own Rng so
  /// transport noise never perturbs job/transfer outcomes).
  uint64_t seed = 0x5eed;
};

/// Transport-level counters, the measurable cost of federation.
struct RpcStats {
  uint64_t round_trips = 0;        // completed request/response pairs
  uint64_t lost_calls = 0;         // attempts lost in transit
  uint64_t outage_rejections = 0;  // attempts against a crashed site
  uint64_t retries = 0;            // re-attempts after loss/outage
  uint64_t batched_lookups = 0;    // point lookups coalesced into batches
  uint64_t failures = 0;           // logical calls that exhausted retries
  uint64_t mutation_fail_fast = 0;  // mutations surfaced retry-unsafe on loss
};

/// CatalogClient over the grid simulator's event queue: every call
/// advances simulated time by the configured latency, can be lost,
/// and can find the server's site crashed — in which case the client
/// backs off (in simulated time, letting scheduled outage windows end
/// and restore the site) and retries up to max_attempts before
/// surfacing Unavailable. At zero fault rates the results are
/// bit-for-bit those of the wrapped backend; only time passes.
///
/// NOT thread-safe, and must never be invoked from inside an event
/// callback: each call drives the event queue (RunUntil), and the
/// queue is single-threaded and non-reentrant. Use it from the
/// simulation's driving thread only.
class SimulatedRpcCatalogClient : public CatalogClient {
 public:
  /// `backend` is the server-side implementation (normally an
  /// InProcessCatalogClient for the target catalog); `grid` supplies
  /// the clock, event queue, and fault model. Both must outlive this.
  SimulatedRpcCatalogClient(std::shared_ptr<CatalogClient> backend,
                            GridSimulator* grid, RpcConfig config = {});

  const std::string& authority() const override { return authority_; }
  bool read_only() const override { return backend_->read_only(); }

  const RpcStats& stats() const { return stats_; }
  void reset_stats() { stats_ = RpcStats{}; }
  const RpcConfig& config() const { return config_; }

  Result<uint64_t> Version() override;
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) override;
  Result<Dataset> GetDataset(std::string_view name) override;
  Result<Transformation> GetTransformation(std::string_view name) override;
  Result<Derivation> GetDerivation(std::string_view name) override;
  Result<bool> HasDataset(std::string_view name) override;
  Result<bool> IsMaterialized(std::string_view dataset) override;
  Result<std::string> ProducerOf(std::string_view dataset) override;
  Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) override;
  Result<NameList> FindDatasets(
      const DatasetQuery& query) override;
  Result<NameList> FindTransformations(
      const TransformationQuery& query) override;
  Result<NameList> FindDerivations(
      const DerivationQuery& query) override;
  Result<NameList> AllNames(std::string_view kind) override;
  Result<bool> TypeConforms(const DatasetType& type,
                            const DatasetType& against) override;
  Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) override;
  Result<ProvenanceStep> GetProvenanceStep(std::string_view dataset) override;

  Status DefineDataset(Dataset dataset) override;
  Status DefineTransformation(Transformation transformation) override;
  Status DefineDerivation(Derivation derivation) override;
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value) override;
  Result<std::string> AddReplica(Replica replica) override;
  Result<std::string> RecordInvocation(Invocation invocation) override;
  Status SetDatasetSize(std::string_view name, int64_t size_bytes) override;
  Status InvalidateReplica(std::string_view id) override;
  /// With batching enabled, the whole group ships as ONE round trip
  /// and the server commits it as one group commit. In naive mode the
  /// base-class decomposition runs, paying one round trip per op (plus
  /// one for the final version read) — the baseline the batched path
  /// is measured against.
  Result<BatchResult> ApplyBatch(const std::vector<CatalogMutation>& mutations,
                                 const BatchOptions& options = {}) override;

 private:
  /// One logical RPC: repeats {advance the clock by the latency, check
  /// the site, roll for loss} with exponential backoff until an
  /// attempt completes or the budget runs out. Outage rejections are
  /// retried for every call — the crashed site never accepted the
  /// request. A *lost* call is ambiguous (the server may have executed
  /// it and only the response vanished), so for non-idempotent calls
  /// loss fails fast with a retry-unsafe Unavailable instead of
  /// blindly re-sending.
  Status Transport(bool idempotent);

  /// Transport + server-side execution of `fn` on success, for
  /// idempotent reads (auto-retried on loss and outage alike).
  template <typename Fn>
  auto Call(Fn&& fn) -> decltype(fn()) {
    Status wire = Transport(/*idempotent=*/true);
    if (!wire.ok()) return wire;
    return fn();
  }

  /// Transport + execution for mutations: retries only outages, and
  /// surfaces loss as retry-unsafe (Status::retry_safe() == false).
  template <typename Fn>
  auto CallMutation(Fn&& fn) -> decltype(fn()) {
    Status wire = Transport(/*idempotent=*/false);
    if (!wire.ok()) return wire;
    return fn();
  }

  std::shared_ptr<CatalogClient> backend_;
  GridSimulator* grid_;
  RpcConfig config_;
  std::string authority_;
  Rng rng_;
  RpcStats stats_;
};

}  // namespace vdg

#endif  // VDG_FEDERATION_RPC_CLIENT_H_
