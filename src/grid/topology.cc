#include "grid/topology.h"

#include "common/strings.h"

namespace vdg {

Status GridTopology::AddSite(SiteConfig site) {
  if (!IsValidIdentifier(site.name)) {
    return Status::InvalidArgument("invalid site name: " + site.name);
  }
  if (sites_.count(site.name) != 0) {
    return Status::AlreadyExists("site already defined: " + site.name);
  }
  for (const HostConfig& host : site.hosts) {
    if (host.cpu_factor <= 0) {
      return Status::InvalidArgument("host " + host.name +
                                     " has non-positive cpu factor");
    }
    if (host.slots <= 0) {
      return Status::InvalidArgument("host " + host.name + " has no slots");
    }
  }
  std::string name = site.name;
  sites_.emplace(std::move(name), std::move(site));
  return Status::OK();
}

Status GridTopology::AddLink(LinkConfig link, bool bidirectional) {
  if (!HasSite(link.from) || !HasSite(link.to)) {
    return Status::NotFound("link endpoints must be defined sites: " +
                            link.from + " -> " + link.to);
  }
  if (link.bandwidth_bytes_per_s <= 0) {
    return Status::InvalidArgument("link " + link.from + "->" + link.to +
                                   " has non-positive bandwidth");
  }
  links_[{link.from, link.to}] = link;
  if (bidirectional) {
    LinkConfig reverse = link;
    std::swap(reverse.from, reverse.to);
    links_[{reverse.from, reverse.to}] = reverse;
  }
  return Status::OK();
}

bool GridTopology::HasSite(std::string_view name) const {
  return sites_.find(name) != sites_.end();
}

Result<SiteConfig> GridTopology::GetSite(std::string_view name) const {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    return Status::NotFound("site not found: " + std::string(name));
  }
  return it->second;
}

std::vector<std::string> GridTopology::SiteNames() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) {
    (void)site;
    out.push_back(name);
  }
  return out;
}

size_t GridTopology::total_hosts() const {
  size_t total = 0;
  for (const auto& [name, site] : sites_) {
    (void)name;
    total += site.hosts.size();
  }
  return total;
}

size_t GridTopology::total_slots() const {
  size_t total = 0;
  for (const auto& [name, site] : sites_) {
    (void)name;
    for (const HostConfig& host : site.hosts) {
      total += static_cast<size_t>(host.slots);
    }
  }
  return total;
}

double GridTopology::Bandwidth(std::string_view from,
                               std::string_view to) const {
  if (from == to) return kLocalBandwidth;
  auto it = links_.find({std::string(from), std::string(to)});
  if (it != links_.end()) return it->second.bandwidth_bytes_per_s;
  return default_bandwidth_;
}

double GridTopology::Latency(std::string_view from,
                             std::string_view to) const {
  if (from == to) return kLocalLatency;
  auto it = links_.find({std::string(from), std::string(to)});
  if (it != links_.end()) return it->second.latency_s;
  return default_latency_;
}

double GridTopology::TransferSeconds(std::string_view from,
                                     std::string_view to,
                                     int64_t bytes) const {
  if (bytes <= 0) return Latency(from, to);
  return Latency(from, to) +
         static_cast<double>(bytes) / Bandwidth(from, to);
}

}  // namespace vdg
