#include "grid/rls.h"

namespace vdg {

Status ReplicaLocationService::Register(std::string_view logical_name,
                                        PhysicalLocation location) {
  auto& locs = locations_[std::string(logical_name)];
  for (const PhysicalLocation& existing : locs) {
    if (existing == location) {
      return Status::AlreadyExists("replica already registered: " +
                                   std::string(logical_name) + " at " +
                                   location.site);
    }
  }
  locs.push_back(std::move(location));
  return Status::OK();
}

Status ReplicaLocationService::Unregister(std::string_view logical_name,
                                          std::string_view site,
                                          std::string_view storage_element) {
  auto it = locations_.find(logical_name);
  if (it == locations_.end()) {
    return Status::NotFound("no replicas registered for " +
                            std::string(logical_name));
  }
  auto& locs = it->second;
  for (size_t i = 0; i < locs.size(); ++i) {
    if (locs[i].site == site && locs[i].storage_element == storage_element) {
      locs.erase(locs.begin() + static_cast<ptrdiff_t>(i));
      if (locs.empty()) locations_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("replica not registered: " +
                          std::string(logical_name) + " at " +
                          std::string(site));
}

std::vector<PhysicalLocation> ReplicaLocationService::Lookup(
    std::string_view logical_name) const {
  auto it = locations_.find(logical_name);
  if (it == locations_.end()) return {};
  return it->second;
}

bool ReplicaLocationService::Exists(std::string_view logical_name) const {
  return locations_.find(logical_name) != locations_.end();
}

bool ReplicaLocationService::ExistsAt(std::string_view logical_name,
                                      std::string_view site) const {
  auto it = locations_.find(logical_name);
  if (it == locations_.end()) return false;
  for (const PhysicalLocation& loc : it->second) {
    if (loc.site == site) return true;
  }
  return false;
}

Result<PhysicalLocation> ReplicaLocationService::BestSource(
    std::string_view logical_name, std::string_view destination_site,
    const GridTopology& topology) const {
  auto it = locations_.find(logical_name);
  if (it == locations_.end() || it->second.empty()) {
    return Status::NotFound("no replicas registered for " +
                            std::string(logical_name));
  }
  const PhysicalLocation* best = nullptr;
  double best_cost = 0;
  for (const PhysicalLocation& loc : it->second) {
    double cost = topology.TransferSeconds(loc.site, destination_site,
                                           loc.size_bytes);
    if (best == nullptr || cost < best_cost ||
        (cost == best_cost && loc.site < best->site)) {
      best = &loc;
      best_cost = cost;
    }
  }
  return *best;
}

size_t ReplicaLocationService::replica_count() const {
  size_t total = 0;
  for (const auto& [name, locs] : locations_) {
    (void)name;
    total += locs.size();
  }
  return total;
}

}  // namespace vdg
