#ifndef VDG_GRID_RLS_H_
#define VDG_GRID_RLS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "grid/topology.h"

namespace vdg {

/// One physical location of a logical file.
struct PhysicalLocation {
  std::string site;
  std::string storage_element;
  int64_t size_bytes = 0;

  bool operator==(const PhysicalLocation& other) const {
    return site == other.site && storage_element == other.storage_element;
  }
};

/// Replica Location Service: logical file name -> physical locations.
/// The Grid substrate the paper assumes (Globus RLS); planners consult
/// it to decide where data is and what a fetch would cost.
class ReplicaLocationService {
 public:
  Status Register(std::string_view logical_name, PhysicalLocation location);
  Status Unregister(std::string_view logical_name, std::string_view site,
                    std::string_view storage_element);

  std::vector<PhysicalLocation> Lookup(std::string_view logical_name) const;
  bool Exists(std::string_view logical_name) const;
  bool ExistsAt(std::string_view logical_name, std::string_view site) const;

  /// The location cheapest to fetch from at `destination_site`, judged
  /// by topology transfer time. NotFound when unreplicated.
  Result<PhysicalLocation> BestSource(std::string_view logical_name,
                                      std::string_view destination_site,
                                      const GridTopology& topology) const;

  size_t logical_count() const { return locations_.size(); }
  size_t replica_count() const;

 private:
  std::map<std::string, std::vector<PhysicalLocation>, std::less<>>
      locations_;
};

}  // namespace vdg

#endif  // VDG_GRID_RLS_H_
