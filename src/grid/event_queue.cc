#include "grid/event_queue.h"

#include <utility>

namespace vdg {

void EventQueue::ScheduleAt(SimTime at, Callback fn) {
  if (at < now_) at = now_;  // late scheduling clamps to the present
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::RunUntilEmpty() {
  while (!queue_.empty()) {
    // The callback may schedule more events, so pop before invoking.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++dispatched_;
    event.fn();
  }
  return now_;
}

SimTime EventQueue::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++dispatched_;
    event.fn();
  }
  if (now_ < deadline) now_ = deadline;
  return now_;
}

}  // namespace vdg
