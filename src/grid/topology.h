#ifndef VDG_GRID_TOPOLOGY_H_
#define VDG_GRID_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace vdg {

/// One compute host: `cpu_factor` scales nominal job runtimes (2.0 =
/// twice as fast), `slots` is how many jobs run concurrently.
struct HostConfig {
  std::string name;
  double cpu_factor = 1.0;
  int slots = 1;
};

/// One storage element within a site.
struct StorageElementConfig {
  std::string name;
  int64_t capacity_bytes = 0;  // 0 = unbounded
};

/// A grid site: a named pool of hosts plus storage elements, connected
/// to other sites by WAN links.
struct SiteConfig {
  std::string name;
  std::vector<HostConfig> hosts;
  std::vector<StorageElementConfig> storage;
};

/// A directed network link between two sites.
struct LinkConfig {
  std::string from;
  std::string to;
  double bandwidth_bytes_per_s = 0;
  double latency_s = 0;
};

/// Static description of the simulated grid: sites, hosts, storage,
/// links. The GriPhyN-like testbed of the paper's SDSS experiment
/// (4 sites, ~800 hosts) is one preset built on this
/// (vdg::workload::GriphynTestbed).
class GridTopology {
 public:
  /// Intra-site "transfers" use this fast local path.
  static constexpr double kLocalBandwidth = 1e9;  // 1 GB/s
  static constexpr double kLocalLatency = 1e-4;

  Status AddSite(SiteConfig site);
  /// Adds a link; `bidirectional` also installs the reverse direction.
  Status AddLink(LinkConfig link, bool bidirectional = true);

  bool HasSite(std::string_view name) const;
  Result<SiteConfig> GetSite(std::string_view name) const;
  std::vector<std::string> SiteNames() const;
  size_t site_count() const { return sites_.size(); }
  size_t total_hosts() const;
  size_t total_slots() const;

  /// Effective bandwidth / latency between two sites. Same-site pairs
  /// use the local path; unlinked pairs fall back to the default WAN
  /// parameters (configurable).
  double Bandwidth(std::string_view from, std::string_view to) const;
  double Latency(std::string_view from, std::string_view to) const;

  /// Estimated seconds to move `bytes` from one site to another.
  double TransferSeconds(std::string_view from, std::string_view to,
                         int64_t bytes) const;

  void set_default_wan(double bandwidth_bytes_per_s, double latency_s) {
    default_bandwidth_ = bandwidth_bytes_per_s;
    default_latency_ = latency_s;
  }

 private:
  std::map<std::string, SiteConfig, std::less<>> sites_;
  std::map<std::pair<std::string, std::string>, LinkConfig> links_;
  double default_bandwidth_ = 10e6;  // 10 MB/s WAN default (2003-era)
  double default_latency_ = 0.05;
};

}  // namespace vdg

#endif  // VDG_GRID_TOPOLOGY_H_
