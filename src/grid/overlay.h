#ifndef VDG_GRID_OVERLAY_H_
#define VDG_GRID_OVERLAY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "grid/storage.h"

namespace vdg {

/// One overlaid dataset: a byte range of a base physical object.
struct OverlayMapping {
  std::string dataset;      // logical overlay name
  std::string base_object;  // physical object the bytes live in
  int64_t offset = 0;
  int64_t length = 0;
};

/// Section 8's "virtual datasets" concept, implemented: "multiple
/// datasets refer to different overlaid subsets of the same physical
/// storage elements. This raises difficult issues of storage
/// management and garbage collection."
///
/// The manager tracks, per storage element, base physical objects and
/// the overlay datasets carved out of them. A base object's bytes are
/// shared — storing N overlays of one base costs one copy — and the
/// base is garbage-collected from the storage element when its last
/// overlay is released (unless independently pinned).
class OverlayManager {
 public:
  explicit OverlayManager(StorageElement* storage) : storage_(storage) {}

  /// Stores `base_object` (once) and registers it as overlayable.
  /// AlreadyExists if the base is already managed.
  Status StoreBase(std::string_view base_object, int64_t bytes, SimTime now);

  /// Carves an overlay dataset out of a managed base. Validates the
  /// byte range and name uniqueness. Overlays may overlap each other.
  Status CreateOverlay(std::string_view dataset,
                       std::string_view base_object, int64_t offset,
                       int64_t length);

  /// Releases one overlay. When the base object's last overlay goes,
  /// the base's bytes are reclaimed from the storage element (GC).
  /// Returns the number of bytes reclaimed (0 when the base lives on).
  Result<int64_t> ReleaseOverlay(std::string_view dataset);

  bool HasOverlay(std::string_view dataset) const;
  Result<OverlayMapping> GetOverlay(std::string_view dataset) const;
  /// All overlays carved from `base_object`, sorted by dataset name.
  std::vector<OverlayMapping> OverlaysOf(std::string_view base_object) const;

  /// Overlays of `base_object` whose ranges intersect [offset,
  /// offset+length) — "which datasets are affected if these bytes are
  /// corrupted?", the storage-side analogue of provenance invalidation.
  std::vector<OverlayMapping> OverlaysIntersecting(
      std::string_view base_object, int64_t offset, int64_t length) const;

  /// Physical bytes shared: sum of overlay lengths minus base sizes —
  /// how much storage the overlay representation saves vs. full copies.
  int64_t BytesSaved() const;

  size_t base_count() const { return bases_.size(); }
  size_t overlay_count() const { return overlays_.size(); }

 private:
  struct BaseState {
    int64_t bytes = 0;
    std::vector<std::string> overlays;  // overlay dataset names
  };

  StorageElement* storage_;
  std::map<std::string, BaseState, std::less<>> bases_;
  std::map<std::string, OverlayMapping, std::less<>> overlays_;
};

}  // namespace vdg

#endif  // VDG_GRID_OVERLAY_H_
