#ifndef VDG_GRID_SIMULATOR_H_
#define VDG_GRID_SIMULATOR_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "grid/event_queue.h"
#include "grid/rls.h"
#include "grid/storage.h"
#include "grid/topology.h"

namespace vdg {

/// Outcome of one simulated job execution.
struct JobResult {
  uint64_t job_id = 0;
  std::string site;
  std::string host;
  SimTime submit_time = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
  double cpu_seconds = 0;  // nominal work, before host speed scaling
  bool succeeded = true;
};

/// Outcome of one simulated wide-area transfer.
struct TransferResult {
  uint64_t transfer_id = 0;
  std::string from_site;
  std::string to_site;
  int64_t bytes = 0;
  SimTime start_time = 0;
  SimTime end_time = 0;
  bool succeeded = true;
};

/// Per-site execution statistics.
struct SiteStats {
  uint64_t jobs_completed = 0;
  uint64_t jobs_failed = 0;
  double busy_slot_seconds = 0;  // sum of per-job wall occupancy
  uint64_t peak_queue_depth = 0;
  uint64_t transfers_in = 0;     // successful inbound transfers
  int64_t bytes_in = 0;
  // --- fault-injection outcomes ---
  uint64_t jobs_killed = 0;      // running jobs lost to a crash
  uint64_t transfers_failed = 0; // inbound transfers that failed
  uint64_t files_lost = 0;       // unpinned replicas wiped by a crash
  uint64_t crashes = 0;          // CrashSite invocations
};

/// The simulated Grid substrate: GRAM-style job submission against
/// per-site host pools (FIFO queue, fastest-free-host dispatch),
/// GridFTP-style transfers with shared link bandwidth, storage
/// elements, and a replica location service. Deterministic under a
/// fixed seed; all time is simulated.
class GridSimulator {
 public:
  using JobCallback = std::function<void(const JobResult&)>;
  using TransferCallback = std::function<void(const TransferResult&)>;

  GridSimulator(GridTopology topology, uint64_t seed);

  GridSimulator(const GridSimulator&) = delete;
  GridSimulator& operator=(const GridSimulator&) = delete;

  const GridTopology& topology() const { return topology_; }
  EventQueue& events() { return events_; }
  SimTime now() const { return events_.now(); }
  ReplicaLocationService& rls() { return rls_; }
  const ReplicaLocationService& rls() const { return rls_; }
  Rng& rng() { return rng_; }

  /// Fraction of jobs that fail (uniformly at random). Default 0.
  void set_job_failure_rate(double p) { job_failure_rate_ = p; }

  /// Fraction of transfers that fail (uniformly at random). A failed
  /// transfer still occupies the link for its full duration, then
  /// completes with succeeded=false. Default 0.
  void set_transfer_failure_rate(double p) { transfer_failure_rate_ = p; }

  /// Takes a site out of (or back into) service. Offline sites reject
  /// job submissions with Unavailable; queued jobs stay queued until
  /// the site returns (a maintenance window, not a crash).
  Status SetSiteOffline(std::string_view site, bool offline);
  bool IsSiteOffline(std::string_view site) const;

  /// A site *crash* — harsher than maintenance offline: running jobs
  /// are killed (callbacks fire now with succeeded=false), queued jobs
  /// fail immediately, in-flight transfers touching the site abort,
  /// and every unpinned replica on the site's storage is lost from the
  /// RLS. The site stays offline until SetSiteOffline(site, false).
  Status CrashSite(std::string_view site);
  /// True between CrashSite and the SetSiteOffline(site, false) that
  /// brings the site back.
  bool IsSiteCrashed(std::string_view site) const;

  /// True when a *service* hosted at `site` (storage, a catalog
  /// endpoint) answers requests: the site exists and is not crashed.
  /// Maintenance offline stops compute but keeps services up, matching
  /// SubmitTransfer's storage semantics.
  bool IsSiteServing(std::string_view site) const;

  /// Schedules a service interruption `start_in_s` from now lasting
  /// `duration_s`: a maintenance window (queued work holds) or, with
  /// `crash`, a full crash with data loss. The site returns to service
  /// automatically at the end of the window — unless a later window,
  /// a crash, or a manual SetSiteOffline/CrashSite changed the site's
  /// state in the meantime, in which case that change wins and the
  /// stale window end is a no-op.
  Status ScheduleOutage(std::string_view site, double start_in_s,
                        double duration_s, bool crash = false);
  /// Runtime noise: multiplies each job's runtime by a clamped normal
  /// with the given relative standard deviation. Default 0 (exact).
  void set_runtime_jitter(double relative_stddev) {
    runtime_jitter_ = relative_stddev;
  }

  /// Submits a job of `cpu_seconds` nominal work to `site`. The
  /// callback fires (in simulated time) when the job completes.
  Result<uint64_t> SubmitJob(std::string_view site, double cpu_seconds,
                             JobCallback callback);

  /// Submits a transfer of `bytes` between sites. Concurrent transfers
  /// on the same site pair share bandwidth (snapshot at start).
  /// Unavailable when either endpoint is *crashed* — a maintenance
  /// window (SetSiteOffline) stops compute but storage still serves.
  Result<uint64_t> SubmitTransfer(std::string_view from_site,
                                  std::string_view to_site, int64_t bytes,
                                  TransferCallback callback);

  /// Runs the event loop until no work remains. Returns final time.
  SimTime RunUntilIdle() { return events_.RunUntilEmpty(); }

  // --- Storage ---
  /// Storage element by site and name; null when unknown.
  StorageElement* FindStorage(std::string_view site, std::string_view name);
  /// Some storage element at `site` (the first); null when none.
  StorageElement* AnyStorageAt(std::string_view site);
  std::vector<StorageElement*> StorageAt(std::string_view site);

  /// Stores a logical file at `site` (first element with room) and
  /// registers it in the RLS. The workhorse for staging input data.
  Status PlaceFile(std::string_view site, std::string_view logical_name,
                   int64_t bytes, bool pinned = false);
  /// Removes the file from `site` storage and the RLS.
  Status EvictFile(std::string_view site, std::string_view logical_name);

  // --- Stats ---
  Result<SiteStats> StatsFor(std::string_view site) const;
  /// Busy slot-seconds / (slot capacity x elapsed); 0 when idle.
  Result<double> Utilization(std::string_view site) const;
  uint64_t total_jobs_submitted() const { return next_job_id_ - 1; }
  uint64_t total_transfers_submitted() const { return next_transfer_id_ - 1; }

 private:
  struct HostState {
    HostConfig config;
    int busy_slots = 0;
  };
  struct SiteState {
    std::vector<HostState> hosts;
    std::deque<uint64_t> queue;  // pending job ids
    SiteStats stats;
    bool offline = false;
    bool crashed = false;  // offline AND storage/transfers down
    /// Bumped on every service-state change (offline, restore, crash).
    /// A scheduled outage's end event only restores the site when the
    /// epoch still matches what its start event produced, so a later
    /// window, crash, or manual change supersedes the auto-restore.
    uint64_t service_epoch = 0;
  };
  struct PendingJob {
    uint64_t id;
    std::string site;
    double cpu_seconds;
    SimTime submit_time;
    JobCallback callback;
  };
  /// A dispatched job occupying a host slot. Kept in a registry (not
  /// only in the completion closure) so CrashSite can kill it early;
  /// the scheduled completion event becomes a no-op once the entry is
  /// gone.
  struct RunningJob {
    PendingJob job;
    size_t host_idx = 0;
    std::string host;
    SimTime start = 0;
    double runtime = 0;
    bool will_succeed = true;
  };
  /// An in-flight transfer, killable by a crash of either endpoint.
  struct InFlightTransfer {
    TransferResult result;
    TransferCallback callback;
    std::pair<std::string, std::string> key;
  };

  void TryDispatch(const std::string& site);
  void CompleteJob(uint64_t job_id);
  void CompleteTransfer(uint64_t transfer_id);
  void FinishTransferBookkeeping(const InFlightTransfer& t);

  GridTopology topology_;
  EventQueue events_;
  Rng rng_;
  ReplicaLocationService rls_;

  std::map<std::string, SiteState, std::less<>> sites_;
  // (site, element name) -> storage element
  std::map<std::pair<std::string, std::string>,
           std::unique_ptr<StorageElement>>
      storage_;
  std::map<uint64_t, PendingJob> pending_jobs_;
  std::map<uint64_t, RunningJob> running_jobs_;
  std::map<uint64_t, InFlightTransfer> inflight_transfers_;
  std::map<std::pair<std::string, std::string>, int> active_transfers_;

  double job_failure_rate_ = 0;
  double transfer_failure_rate_ = 0;
  double runtime_jitter_ = 0;
  uint64_t next_job_id_ = 1;
  uint64_t next_transfer_id_ = 1;
};

}  // namespace vdg

#endif  // VDG_GRID_SIMULATOR_H_
