#include "grid/storage.h"

#include <algorithm>

namespace vdg {

Status StorageElement::Store(std::string_view logical_name,
                             int64_t size_bytes, SimTime now) {
  if (size_bytes < 0) {
    return Status::InvalidArgument("negative file size for " +
                                   std::string(logical_name));
  }
  if (files_.find(logical_name) != files_.end()) {
    return Status::AlreadyExists("file already stored: " +
                                 std::string(logical_name) + " on " + name_);
  }
  if (capacity_bytes_ != 0 && used_bytes_ + size_bytes > capacity_bytes_) {
    return Status::ResourceExhausted(
        "storage element " + site_ + "/" + name_ + " is full (" +
        std::to_string(used_bytes_) + "/" + std::to_string(capacity_bytes_) +
        " bytes, need " + std::to_string(size_bytes) + ")");
  }
  StoredFile file;
  file.logical_name = std::string(logical_name);
  file.size_bytes = size_bytes;
  file.stored_at = now;
  file.last_access = now;
  files_.emplace(file.logical_name, file);
  used_bytes_ += size_bytes;
  return Status::OK();
}

Status StorageElement::Remove(std::string_view logical_name) {
  auto it = files_.find(logical_name);
  if (it == files_.end()) {
    return Status::NotFound("file not stored: " + std::string(logical_name));
  }
  if (it->second.pinned) {
    return Status::FailedPrecondition("file is pinned: " +
                                      std::string(logical_name));
  }
  used_bytes_ -= it->second.size_bytes;
  files_.erase(it);
  return Status::OK();
}

bool StorageElement::Contains(std::string_view logical_name) const {
  return files_.find(logical_name) != files_.end();
}

Status StorageElement::Touch(std::string_view logical_name, SimTime now) {
  auto it = files_.find(logical_name);
  if (it == files_.end()) {
    return Status::NotFound("file not stored: " + std::string(logical_name));
  }
  it->second.last_access = now;
  ++it->second.access_count;
  return Status::OK();
}

Status StorageElement::SetPinned(std::string_view logical_name, bool pinned) {
  auto it = files_.find(logical_name);
  if (it == files_.end()) {
    return Status::NotFound("file not stored: " + std::string(logical_name));
  }
  it->second.pinned = pinned;
  return Status::OK();
}

Result<StoredFile> StorageElement::GetFile(
    std::string_view logical_name) const {
  auto it = files_.find(logical_name);
  if (it == files_.end()) {
    return Status::NotFound("file not stored: " + std::string(logical_name));
  }
  return it->second;
}

std::vector<StoredFile> StorageElement::Files() const {
  std::vector<StoredFile> out;
  out.reserve(files_.size());
  for (const auto& [name, file] : files_) {
    (void)name;
    out.push_back(file);
  }
  return out;
}

std::vector<StoredFile> StorageElement::EvictionCandidates() const {
  std::vector<StoredFile> out;
  for (const auto& [name, file] : files_) {
    (void)name;
    if (!file.pinned) out.push_back(file);
  }
  std::sort(out.begin(), out.end(),
            [](const StoredFile& a, const StoredFile& b) {
              if (a.last_access != b.last_access) {
                return a.last_access < b.last_access;
              }
              return a.logical_name < b.logical_name;
            });
  return out;
}

}  // namespace vdg
