#include "grid/simulator.h"

#include <algorithm>

namespace vdg {

GridSimulator::GridSimulator(GridTopology topology, uint64_t seed)
    : topology_(std::move(topology)), rng_(seed) {
  for (const std::string& site_name : topology_.SiteNames()) {
    SiteConfig site = *topology_.GetSite(site_name);
    SiteState state;
    state.hosts.reserve(site.hosts.size());
    for (const HostConfig& host : site.hosts) {
      state.hosts.push_back(HostState{host, 0});
    }
    sites_.emplace(site_name, std::move(state));

    if (site.storage.empty()) {
      // Every site gets at least one (unbounded) storage element.
      storage_.emplace(
          std::make_pair(site_name, std::string("se0")),
          std::make_unique<StorageElement>(site_name, "se0", 0));
    } else {
      for (const StorageElementConfig& se : site.storage) {
        storage_.emplace(std::make_pair(site_name, se.name),
                         std::make_unique<StorageElement>(
                             site_name, se.name, se.capacity_bytes));
      }
    }
  }
}

Status GridSimulator::SetSiteOffline(std::string_view site, bool offline) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  bool was_offline = it->second.offline;
  it->second.offline = offline;
  if (was_offline && !offline) {
    // Back in service: drain whatever queued while down.
    TryDispatch(std::string(site));
  }
  return Status::OK();
}

bool GridSimulator::IsSiteOffline(std::string_view site) const {
  auto it = sites_.find(site);
  return it != sites_.end() && it->second.offline;
}

Result<uint64_t> GridSimulator::SubmitJob(std::string_view site,
                                          double cpu_seconds,
                                          JobCallback callback) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  if (it->second.offline) {
    return Status::Unavailable("site is offline: " + std::string(site));
  }
  if (cpu_seconds < 0) {
    return Status::InvalidArgument("negative job length");
  }
  uint64_t id = next_job_id_++;
  PendingJob job{id, std::string(site), cpu_seconds, now(),
                 std::move(callback)};
  pending_jobs_.emplace(id, std::move(job));
  it->second.queue.push_back(id);
  it->second.stats.peak_queue_depth = std::max(
      it->second.stats.peak_queue_depth,
      static_cast<uint64_t>(it->second.queue.size()));
  TryDispatch(std::string(site));
  return id;
}

void GridSimulator::TryDispatch(const std::string& site) {
  auto site_it = sites_.find(site);
  if (site_it == sites_.end()) return;
  SiteState& state = site_it->second;
  if (state.offline) return;  // queue holds until the site returns

  while (!state.queue.empty()) {
    // Fastest free host wins; index breaks ties deterministically.
    HostState* best = nullptr;
    size_t best_idx = 0;
    for (size_t i = 0; i < state.hosts.size(); ++i) {
      HostState& host = state.hosts[i];
      if (host.busy_slots >= host.config.slots) continue;
      if (best == nullptr ||
          host.config.cpu_factor > best->config.cpu_factor) {
        best = &host;
        best_idx = i;
      }
    }
    if (best == nullptr) return;  // all slots busy

    uint64_t job_id = state.queue.front();
    state.queue.pop_front();
    auto job_it = pending_jobs_.find(job_id);
    if (job_it == pending_jobs_.end()) continue;  // cancelled
    PendingJob job = std::move(job_it->second);
    pending_jobs_.erase(job_it);

    double runtime = job.cpu_seconds / best->config.cpu_factor;
    if (runtime_jitter_ > 0) {
      runtime *= rng_.ClampedNormal(1.0, runtime_jitter_, 0.05);
    }
    bool succeeded =
        job_failure_rate_ <= 0 || !rng_.Chance(job_failure_rate_);

    ++best->busy_slots;
    SimTime start = now();
    std::string host_name = best->config.name;
    // best_idx survives into the closure; the HostState pointer may
    // not (map rehash cannot happen for std::map, but vector growth
    // is impossible here since hosts are fixed) — index is safest.
    events_.ScheduleAfter(
        runtime, [this, site, best_idx, job = std::move(job), start,
                  runtime, succeeded, host_name]() {
          SiteState& s = sites_.find(site)->second;
          HostState& h = s.hosts[best_idx];
          --h.busy_slots;
          if (succeeded) {
            ++s.stats.jobs_completed;
          } else {
            ++s.stats.jobs_failed;
          }
          s.stats.busy_slot_seconds += runtime;

          JobResult result;
          result.job_id = job.id;
          result.site = site;
          result.host = host_name;
          result.submit_time = job.submit_time;
          result.start_time = start;
          result.end_time = start + runtime;
          result.cpu_seconds = job.cpu_seconds;
          result.succeeded = succeeded;
          if (job.callback) job.callback(result);
          TryDispatch(site);
        });
  }
}

Result<uint64_t> GridSimulator::SubmitTransfer(std::string_view from_site,
                                               std::string_view to_site,
                                               int64_t bytes,
                                               TransferCallback callback) {
  if (!topology_.HasSite(from_site) || !topology_.HasSite(to_site)) {
    return Status::NotFound("transfer endpoints must be defined sites: " +
                            std::string(from_site) + " -> " +
                            std::string(to_site));
  }
  if (bytes < 0) return Status::InvalidArgument("negative transfer size");

  uint64_t id = next_transfer_id_++;
  auto key = std::make_pair(std::string(from_site), std::string(to_site));
  int& active = active_transfers_[key];
  ++active;
  // Concurrent transfers on a site pair share the link: snapshot the
  // effective bandwidth at start (deterministic approximation of fair
  // sharing).
  double bandwidth = topology_.Bandwidth(from_site, to_site) /
                     static_cast<double>(active);
  double duration = topology_.Latency(from_site, to_site) +
                    (bytes > 0 ? static_cast<double>(bytes) / bandwidth : 0);

  TransferResult result;
  result.transfer_id = id;
  result.from_site = std::string(from_site);
  result.to_site = std::string(to_site);
  result.bytes = bytes;
  result.start_time = now();
  result.end_time = now() + duration;
  result.succeeded = true;

  events_.ScheduleAfter(
      duration, [this, key, result, callback = std::move(callback)]() {
        auto it = active_transfers_.find(key);
        if (it != active_transfers_.end() && --it->second <= 0) {
          active_transfers_.erase(it);
        }
        auto site_it = sites_.find(result.to_site);
        if (site_it != sites_.end()) {
          ++site_it->second.stats.transfers_in;
          site_it->second.stats.bytes_in += result.bytes;
        }
        if (callback) callback(result);
      });
  return id;
}

StorageElement* GridSimulator::FindStorage(std::string_view site,
                                           std::string_view name) {
  auto it = storage_.find(std::make_pair(std::string(site), std::string(name)));
  return it == storage_.end() ? nullptr : it->second.get();
}

StorageElement* GridSimulator::AnyStorageAt(std::string_view site) {
  for (auto& [key, se] : storage_) {
    if (key.first == site) return se.get();
  }
  return nullptr;
}

std::vector<StorageElement*> GridSimulator::StorageAt(std::string_view site) {
  std::vector<StorageElement*> out;
  for (auto& [key, se] : storage_) {
    if (key.first == site) out.push_back(se.get());
  }
  return out;
}

Status GridSimulator::PlaceFile(std::string_view site,
                                std::string_view logical_name, int64_t bytes,
                                bool pinned) {
  std::vector<StorageElement*> elements = StorageAt(site);
  if (elements.empty()) {
    return Status::NotFound("site has no storage: " + std::string(site));
  }
  Status last = Status::ResourceExhausted("no storage element has room");
  for (StorageElement* se : elements) {
    if (se->Contains(logical_name)) {
      return Status::AlreadyExists("file already placed: " +
                                   std::string(logical_name) + " at " +
                                   std::string(site));
    }
    last = se->Store(logical_name, bytes, now());
    if (last.ok()) {
      if (pinned) VDG_RETURN_IF_ERROR(se->SetPinned(logical_name, true));
      PhysicalLocation loc;
      loc.site = std::string(site);
      loc.storage_element = se->name();
      loc.size_bytes = bytes;
      return rls_.Register(logical_name, std::move(loc));
    }
  }
  return last;
}

Status GridSimulator::EvictFile(std::string_view site,
                                std::string_view logical_name) {
  for (StorageElement* se : StorageAt(site)) {
    if (!se->Contains(logical_name)) continue;
    VDG_RETURN_IF_ERROR(se->Remove(logical_name));
    return rls_.Unregister(logical_name, site, se->name());
  }
  return Status::NotFound("file not stored at " + std::string(site) + ": " +
                          std::string(logical_name));
}

Result<SiteStats> GridSimulator::StatsFor(std::string_view site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  return it->second.stats;
}

Result<double> GridSimulator::Utilization(std::string_view site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  if (events_.now() <= 0) return 0.0;
  double slot_capacity = 0;
  for (const HostState& host : it->second.hosts) {
    slot_capacity += host.config.slots;
  }
  if (slot_capacity == 0) return 0.0;
  return it->second.stats.busy_slot_seconds /
         (slot_capacity * events_.now());
}

}  // namespace vdg
