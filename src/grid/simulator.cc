#include "grid/simulator.h"

#include <algorithm>

namespace vdg {

GridSimulator::GridSimulator(GridTopology topology, uint64_t seed)
    : topology_(std::move(topology)), rng_(seed) {
  for (const std::string& site_name : topology_.SiteNames()) {
    SiteConfig site = *topology_.GetSite(site_name);
    SiteState state;
    state.hosts.reserve(site.hosts.size());
    for (const HostConfig& host : site.hosts) {
      state.hosts.push_back(HostState{host, 0});
    }
    sites_.emplace(site_name, std::move(state));

    if (site.storage.empty()) {
      // Every site gets at least one (unbounded) storage element.
      storage_.emplace(
          std::make_pair(site_name, std::string("se0")),
          std::make_unique<StorageElement>(site_name, "se0", 0));
    } else {
      for (const StorageElementConfig& se : site.storage) {
        storage_.emplace(std::make_pair(site_name, se.name),
                         std::make_unique<StorageElement>(
                             site_name, se.name, se.capacity_bytes));
      }
    }
  }
}

Status GridSimulator::SetSiteOffline(std::string_view site, bool offline) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  bool was_offline = it->second.offline;
  it->second.offline = offline;
  ++it->second.service_epoch;
  if (!offline) it->second.crashed = false;  // recovery clears a crash
  if (was_offline && !offline) {
    // Back in service: drain whatever queued while down.
    TryDispatch(std::string(site));
  }
  return Status::OK();
}

bool GridSimulator::IsSiteOffline(std::string_view site) const {
  auto it = sites_.find(site);
  return it != sites_.end() && it->second.offline;
}

bool GridSimulator::IsSiteCrashed(std::string_view site) const {
  auto it = sites_.find(site);
  return it != sites_.end() && it->second.crashed;
}

bool GridSimulator::IsSiteServing(std::string_view site) const {
  auto it = sites_.find(site);
  return it != sites_.end() && !it->second.crashed;
}

Result<uint64_t> GridSimulator::SubmitJob(std::string_view site,
                                          double cpu_seconds,
                                          JobCallback callback) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  if (it->second.offline) {
    return Status::Unavailable("site is offline: " + std::string(site));
  }
  if (cpu_seconds < 0) {
    return Status::InvalidArgument("negative job length");
  }
  uint64_t id = next_job_id_++;
  PendingJob job{id, std::string(site), cpu_seconds, now(),
                 std::move(callback)};
  pending_jobs_.emplace(id, std::move(job));
  it->second.queue.push_back(id);
  it->second.stats.peak_queue_depth = std::max(
      it->second.stats.peak_queue_depth,
      static_cast<uint64_t>(it->second.queue.size()));
  TryDispatch(std::string(site));
  return id;
}

void GridSimulator::TryDispatch(const std::string& site) {
  auto site_it = sites_.find(site);
  if (site_it == sites_.end()) return;
  SiteState& state = site_it->second;
  if (state.offline) return;  // queue holds until the site returns

  while (!state.queue.empty()) {
    // Fastest free host wins; index breaks ties deterministically.
    HostState* best = nullptr;
    size_t best_idx = 0;
    for (size_t i = 0; i < state.hosts.size(); ++i) {
      HostState& host = state.hosts[i];
      if (host.busy_slots >= host.config.slots) continue;
      if (best == nullptr ||
          host.config.cpu_factor > best->config.cpu_factor) {
        best = &host;
        best_idx = i;
      }
    }
    if (best == nullptr) return;  // all slots busy

    uint64_t job_id = state.queue.front();
    state.queue.pop_front();
    auto job_it = pending_jobs_.find(job_id);
    if (job_it == pending_jobs_.end()) continue;  // cancelled
    PendingJob job = std::move(job_it->second);
    pending_jobs_.erase(job_it);

    double runtime = job.cpu_seconds / best->config.cpu_factor;
    if (runtime_jitter_ > 0) {
      runtime *= rng_.ClampedNormal(1.0, runtime_jitter_, 0.05);
    }

    RunningJob running;
    running.host_idx = best_idx;
    running.host = best->config.name;
    running.start = now();
    running.runtime = runtime;
    running.will_succeed =
        job_failure_rate_ <= 0 || !rng_.Chance(job_failure_rate_);
    running.job = std::move(job);

    ++best->busy_slots;
    uint64_t id = running.job.id;
    running_jobs_.emplace(id, std::move(running));
    // The completion event only carries the id: if a crash kills the
    // job first, the registry entry is gone and the event is a no-op.
    events_.ScheduleAfter(runtime, [this, id]() { CompleteJob(id); });
  }
}

void GridSimulator::CompleteJob(uint64_t job_id) {
  auto it = running_jobs_.find(job_id);
  if (it == running_jobs_.end()) return;  // killed by a crash
  RunningJob running = std::move(it->second);
  running_jobs_.erase(it);

  const std::string& site = running.job.site;
  SiteState& s = sites_.find(site)->second;
  HostState& h = s.hosts[running.host_idx];
  --h.busy_slots;
  if (running.will_succeed) {
    ++s.stats.jobs_completed;
  } else {
    ++s.stats.jobs_failed;
  }
  s.stats.busy_slot_seconds += running.runtime;

  JobResult result;
  result.job_id = running.job.id;
  result.site = site;
  result.host = running.host;
  result.submit_time = running.job.submit_time;
  result.start_time = running.start;
  result.end_time = running.start + running.runtime;
  result.cpu_seconds = running.job.cpu_seconds;
  result.succeeded = running.will_succeed;
  if (running.job.callback) running.job.callback(result);
  TryDispatch(site);
}

Status GridSimulator::CrashSite(std::string_view site) {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  SiteState& state = it->second;
  state.offline = true;
  state.crashed = true;
  ++state.service_epoch;
  ++state.stats.crashes;
  std::string site_name(site);

  // Kill running jobs (id order: deterministic callback sequence).
  std::vector<uint64_t> killed;
  for (const auto& [id, running] : running_jobs_) {
    if (running.job.site == site_name) killed.push_back(id);
  }
  for (uint64_t id : killed) {
    auto job_it = running_jobs_.find(id);
    if (job_it == running_jobs_.end()) continue;
    RunningJob running = std::move(job_it->second);
    running_jobs_.erase(job_it);
    HostState& h = state.hosts[running.host_idx];
    --h.busy_slots;
    ++state.stats.jobs_failed;
    ++state.stats.jobs_killed;
    state.stats.busy_slot_seconds += now() - running.start;

    JobResult result;
    result.job_id = running.job.id;
    result.site = site_name;
    result.host = running.host;
    result.submit_time = running.job.submit_time;
    result.start_time = running.start;
    result.end_time = now();
    result.cpu_seconds = running.job.cpu_seconds;
    result.succeeded = false;
    if (running.job.callback) running.job.callback(result);
  }

  // Queued jobs fail immediately (they would wait forever otherwise).
  std::deque<uint64_t> queued;
  queued.swap(state.queue);
  for (uint64_t id : queued) {
    auto job_it = pending_jobs_.find(id);
    if (job_it == pending_jobs_.end()) continue;
    PendingJob job = std::move(job_it->second);
    pending_jobs_.erase(job_it);
    ++state.stats.jobs_failed;
    JobResult result;
    result.job_id = job.id;
    result.site = site_name;
    result.submit_time = job.submit_time;
    result.start_time = now();
    result.end_time = now();
    result.cpu_seconds = job.cpu_seconds;
    result.succeeded = false;
    if (job.callback) job.callback(result);
  }

  // Abort in-flight transfers touching the crashed site.
  std::vector<uint64_t> dead_transfers;
  for (const auto& [id, transfer] : inflight_transfers_) {
    if (transfer.result.from_site == site_name ||
        transfer.result.to_site == site_name) {
      dead_transfers.push_back(id);
    }
  }
  for (uint64_t id : dead_transfers) {
    auto tr_it = inflight_transfers_.find(id);
    if (tr_it == inflight_transfers_.end()) continue;
    InFlightTransfer transfer = std::move(tr_it->second);
    inflight_transfers_.erase(tr_it);
    transfer.result.succeeded = false;
    transfer.result.end_time = now();
    FinishTransferBookkeeping(transfer);
    if (transfer.callback) transfer.callback(transfer.result);
  }

  // Unpinned replicas on local storage are gone — deregister them so
  // planners and executors see the loss (and can re-derive).
  for (StorageElement* se : StorageAt(site_name)) {
    for (const StoredFile& file : se->Files()) {
      if (file.pinned) continue;
      (void)se->Remove(file.logical_name);
      (void)rls_.Unregister(file.logical_name, site_name, se->name());
      ++state.stats.files_lost;
    }
  }
  return Status::OK();
}

Status GridSimulator::ScheduleOutage(std::string_view site, double start_in_s,
                                     double duration_s, bool crash) {
  if (sites_.find(site) == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  if (start_in_s < 0 || duration_s < 0) {
    return Status::InvalidArgument("outage window must be in the future");
  }
  std::string site_name(site);
  // The start event records the epoch its state change produced; the
  // end event restores service only when the site is still in that
  // epoch. An overlapping window, a crash, or a manual offline bumps
  // the epoch and thereby owns the site — this window's end becomes a
  // stale no-op instead of yanking the site back online early.
  auto epoch = std::make_shared<uint64_t>(0);
  events_.ScheduleAfter(start_in_s, [this, site_name, crash, epoch]() {
    if (crash) {
      (void)CrashSite(site_name);
    } else {
      (void)SetSiteOffline(site_name, true);
    }
    auto it = sites_.find(site_name);
    if (it != sites_.end()) *epoch = it->second.service_epoch;
  });
  events_.ScheduleAfter(start_in_s + duration_s, [this, site_name,
                                                  epoch]() {
    auto it = sites_.find(site_name);
    if (it == sites_.end() || it->second.service_epoch != *epoch) return;
    (void)SetSiteOffline(site_name, false);
  });
  return Status::OK();
}

Result<uint64_t> GridSimulator::SubmitTransfer(std::string_view from_site,
                                               std::string_view to_site,
                                               int64_t bytes,
                                               TransferCallback callback) {
  if (!topology_.HasSite(from_site) || !topology_.HasSite(to_site)) {
    return Status::NotFound("transfer endpoints must be defined sites: " +
                            std::string(from_site) + " -> " +
                            std::string(to_site));
  }
  if (IsSiteCrashed(from_site) || IsSiteCrashed(to_site)) {
    return Status::Unavailable("transfer endpoint crashed: " +
                               std::string(from_site) + " -> " +
                               std::string(to_site));
  }
  if (bytes < 0) return Status::InvalidArgument("negative transfer size");

  uint64_t id = next_transfer_id_++;
  auto key = std::make_pair(std::string(from_site), std::string(to_site));
  int& active = active_transfers_[key];
  ++active;
  // Concurrent transfers on a site pair share the link: snapshot the
  // effective bandwidth at start (deterministic approximation of fair
  // sharing).
  double bandwidth = topology_.Bandwidth(from_site, to_site) /
                     static_cast<double>(active);
  double duration = topology_.Latency(from_site, to_site) +
                    (bytes > 0 ? static_cast<double>(bytes) / bandwidth : 0);

  InFlightTransfer transfer;
  transfer.key = key;
  transfer.callback = std::move(callback);
  transfer.result.transfer_id = id;
  transfer.result.from_site = std::string(from_site);
  transfer.result.to_site = std::string(to_site);
  transfer.result.bytes = bytes;
  transfer.result.start_time = now();
  transfer.result.end_time = now() + duration;
  transfer.result.succeeded =
      transfer_failure_rate_ <= 0 || !rng_.Chance(transfer_failure_rate_);
  inflight_transfers_.emplace(id, std::move(transfer));
  events_.ScheduleAfter(duration, [this, id]() { CompleteTransfer(id); });
  return id;
}

void GridSimulator::CompleteTransfer(uint64_t transfer_id) {
  auto it = inflight_transfers_.find(transfer_id);
  if (it == inflight_transfers_.end()) return;  // aborted by a crash
  InFlightTransfer transfer = std::move(it->second);
  inflight_transfers_.erase(it);
  FinishTransferBookkeeping(transfer);
  if (transfer.callback) transfer.callback(transfer.result);
}

void GridSimulator::FinishTransferBookkeeping(const InFlightTransfer& t) {
  auto it = active_transfers_.find(t.key);
  if (it != active_transfers_.end() && --it->second <= 0) {
    active_transfers_.erase(it);
  }
  auto site_it = sites_.find(t.result.to_site);
  if (site_it == sites_.end()) return;
  if (t.result.succeeded) {
    ++site_it->second.stats.transfers_in;
    site_it->second.stats.bytes_in += t.result.bytes;
  } else {
    ++site_it->second.stats.transfers_failed;
  }
}

StorageElement* GridSimulator::FindStorage(std::string_view site,
                                           std::string_view name) {
  auto it = storage_.find(std::make_pair(std::string(site), std::string(name)));
  return it == storage_.end() ? nullptr : it->second.get();
}

StorageElement* GridSimulator::AnyStorageAt(std::string_view site) {
  for (auto& [key, se] : storage_) {
    if (key.first == site) return se.get();
  }
  return nullptr;
}

std::vector<StorageElement*> GridSimulator::StorageAt(std::string_view site) {
  std::vector<StorageElement*> out;
  for (auto& [key, se] : storage_) {
    if (key.first == site) out.push_back(se.get());
  }
  return out;
}

Status GridSimulator::PlaceFile(std::string_view site,
                                std::string_view logical_name, int64_t bytes,
                                bool pinned) {
  std::vector<StorageElement*> elements = StorageAt(site);
  if (elements.empty()) {
    return Status::NotFound("site has no storage: " + std::string(site));
  }
  Status last = Status::ResourceExhausted("no storage element has room");
  for (StorageElement* se : elements) {
    if (se->Contains(logical_name)) {
      return Status::AlreadyExists("file already placed: " +
                                   std::string(logical_name) + " at " +
                                   std::string(site));
    }
    last = se->Store(logical_name, bytes, now());
    if (last.ok()) {
      if (pinned) VDG_RETURN_IF_ERROR(se->SetPinned(logical_name, true));
      PhysicalLocation loc;
      loc.site = std::string(site);
      loc.storage_element = se->name();
      loc.size_bytes = bytes;
      return rls_.Register(logical_name, std::move(loc));
    }
  }
  return last;
}

Status GridSimulator::EvictFile(std::string_view site,
                                std::string_view logical_name) {
  for (StorageElement* se : StorageAt(site)) {
    if (!se->Contains(logical_name)) continue;
    VDG_RETURN_IF_ERROR(se->Remove(logical_name));
    return rls_.Unregister(logical_name, site, se->name());
  }
  return Status::NotFound("file not stored at " + std::string(site) + ": " +
                          std::string(logical_name));
}

Result<SiteStats> GridSimulator::StatsFor(std::string_view site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  return it->second.stats;
}

Result<double> GridSimulator::Utilization(std::string_view site) const {
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    return Status::NotFound("unknown site: " + std::string(site));
  }
  if (events_.now() <= 0) return 0.0;
  double slot_capacity = 0;
  for (const HostState& host : it->second.hosts) {
    slot_capacity += host.config.slots;
  }
  if (slot_capacity == 0) return 0.0;
  return it->second.stats.busy_slot_seconds /
         (slot_capacity * events_.now());
}

}  // namespace vdg
