#include "grid/overlay.h"

#include <algorithm>

namespace vdg {

Status OverlayManager::StoreBase(std::string_view base_object, int64_t bytes,
                                 SimTime now) {
  if (storage_ == nullptr) {
    return Status::InvalidArgument("overlay manager has no storage");
  }
  if (bases_.find(base_object) != bases_.end()) {
    return Status::AlreadyExists("base object already managed: " +
                                 std::string(base_object));
  }
  VDG_RETURN_IF_ERROR(storage_->Store(base_object, bytes, now));
  BaseState state;
  state.bytes = bytes;
  bases_.emplace(std::string(base_object), std::move(state));
  return Status::OK();
}

Status OverlayManager::CreateOverlay(std::string_view dataset,
                                     std::string_view base_object,
                                     int64_t offset, int64_t length) {
  auto base = bases_.find(base_object);
  if (base == bases_.end()) {
    return Status::NotFound("base object not managed: " +
                            std::string(base_object));
  }
  if (overlays_.find(dataset) != overlays_.end()) {
    return Status::AlreadyExists("overlay already defined: " +
                                 std::string(dataset));
  }
  if (offset < 0 || length <= 0 || offset + length > base->second.bytes) {
    return Status::InvalidArgument(
        "overlay range [" + std::to_string(offset) + ", " +
        std::to_string(offset + length) + ") exceeds base object of " +
        std::to_string(base->second.bytes) + " bytes");
  }
  OverlayMapping mapping;
  mapping.dataset = std::string(dataset);
  mapping.base_object = std::string(base_object);
  mapping.offset = offset;
  mapping.length = length;
  overlays_.emplace(mapping.dataset, mapping);
  base->second.overlays.push_back(mapping.dataset);
  // Every read of the overlay touches the base's access stats.
  return Status::OK();
}

Result<int64_t> OverlayManager::ReleaseOverlay(std::string_view dataset) {
  auto it = overlays_.find(dataset);
  if (it == overlays_.end()) {
    return Status::NotFound("overlay not defined: " + std::string(dataset));
  }
  auto base = bases_.find(it->second.base_object);
  if (base == bases_.end()) {
    return Status::Internal("overlay references unmanaged base " +
                            it->second.base_object);
  }
  auto& members = base->second.overlays;
  members.erase(std::remove(members.begin(), members.end(), it->second.dataset),
                members.end());
  overlays_.erase(it);

  if (!members.empty()) return int64_t{0};

  // Last overlay gone: garbage-collect the base's bytes.
  int64_t reclaimed = base->second.bytes;
  Status removed = storage_->Remove(base->first);
  if (removed.code() == StatusCode::kFailedPrecondition) {
    // Pinned independently of the overlay machinery: leave it.
    bases_.erase(base);
    return int64_t{0};
  }
  VDG_RETURN_IF_ERROR(removed);
  bases_.erase(base);
  return reclaimed;
}

bool OverlayManager::HasOverlay(std::string_view dataset) const {
  return overlays_.find(dataset) != overlays_.end();
}

Result<OverlayMapping> OverlayManager::GetOverlay(
    std::string_view dataset) const {
  auto it = overlays_.find(dataset);
  if (it == overlays_.end()) {
    return Status::NotFound("overlay not defined: " + std::string(dataset));
  }
  return it->second;
}

std::vector<OverlayMapping> OverlayManager::OverlaysOf(
    std::string_view base_object) const {
  std::vector<OverlayMapping> out;
  auto base = bases_.find(base_object);
  if (base == bases_.end()) return out;
  for (const std::string& name : base->second.overlays) {
    auto overlay = overlays_.find(name);
    if (overlay != overlays_.end()) out.push_back(overlay->second);
  }
  std::sort(out.begin(), out.end(),
            [](const OverlayMapping& a, const OverlayMapping& b) {
              return a.dataset < b.dataset;
            });
  return out;
}

std::vector<OverlayMapping> OverlayManager::OverlaysIntersecting(
    std::string_view base_object, int64_t offset, int64_t length) const {
  std::vector<OverlayMapping> out;
  if (length <= 0) return out;  // an empty range touches nothing
  for (const OverlayMapping& overlay : OverlaysOf(base_object)) {
    bool disjoint = overlay.offset + overlay.length <= offset ||
                    offset + length <= overlay.offset;
    if (!disjoint) out.push_back(overlay);
  }
  return out;
}

int64_t OverlayManager::BytesSaved() const {
  int64_t overlay_bytes = 0;
  for (const auto& [name, overlay] : overlays_) {
    (void)name;
    overlay_bytes += overlay.length;
  }
  int64_t base_bytes = 0;
  for (const auto& [name, base] : bases_) {
    (void)name;
    base_bytes += base.bytes;
  }
  return overlay_bytes - base_bytes;
}

}  // namespace vdg
