#ifndef VDG_GRID_STORAGE_H_
#define VDG_GRID_STORAGE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"

namespace vdg {

/// One stored logical file on a storage element, with the access
/// statistics replication/eviction policies feed on.
struct StoredFile {
  std::string logical_name;
  int64_t size_bytes = 0;
  SimTime stored_at = 0;
  SimTime last_access = 0;
  uint64_t access_count = 0;
  bool pinned = false;  // pinned files are exempt from eviction
};

/// A simulated storage element: bounded capacity, named files, access
/// tracking. Eviction is policy-driven (vdg::replication), not
/// built-in; Store fails with ResourceExhausted when full.
class StorageElement {
 public:
  StorageElement(std::string site, std::string name, int64_t capacity_bytes)
      : site_(std::move(site)),
        name_(std::move(name)),
        capacity_bytes_(capacity_bytes) {}

  const std::string& site() const { return site_; }
  const std::string& name() const { return name_; }
  int64_t capacity_bytes() const { return capacity_bytes_; }
  int64_t used_bytes() const { return used_bytes_; }
  int64_t free_bytes() const {
    return capacity_bytes_ == 0 ? INT64_MAX : capacity_bytes_ - used_bytes_;
  }

  /// Stores a file. AlreadyExists on duplicates, ResourceExhausted
  /// when the file does not fit.
  Status Store(std::string_view logical_name, int64_t size_bytes,
               SimTime now);
  /// Removes a file; NotFound if absent, FailedPrecondition if pinned.
  Status Remove(std::string_view logical_name);
  bool Contains(std::string_view logical_name) const;

  /// Records a read of `logical_name` at `now` (feeds eviction stats).
  Status Touch(std::string_view logical_name, SimTime now);
  Status SetPinned(std::string_view logical_name, bool pinned);

  Result<StoredFile> GetFile(std::string_view logical_name) const;
  std::vector<StoredFile> Files() const;
  size_t file_count() const { return files_.size(); }

  /// Unpinned files ordered by eviction preference: least-recently
  /// accessed first (ties broken by name for determinism).
  std::vector<StoredFile> EvictionCandidates() const;

 private:
  std::string site_;
  std::string name_;
  int64_t capacity_bytes_;
  int64_t used_bytes_ = 0;
  std::map<std::string, StoredFile, std::less<>> files_;
};

}  // namespace vdg

#endif  // VDG_GRID_STORAGE_H_
