#ifndef VDG_GRID_EVENT_QUEUE_H_
#define VDG_GRID_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/sim_time.h"

namespace vdg {

/// Single-threaded discrete-event engine. Events fire in (time,
/// insertion-order) order, which makes every simulation run fully
/// deterministic.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (>= now).
  void ScheduleAt(SimTime at, Callback fn);
  /// Schedules `fn` to run `delay` seconds from now.
  void ScheduleAfter(SimTime delay, Callback fn) {
    ScheduleAt(now_ + delay, std::move(fn));
  }

  /// Runs events until the queue drains. Returns the final time.
  SimTime RunUntilEmpty();
  /// Runs events with time <= `deadline`; clock lands on the deadline
  /// if the queue drains early. Returns the final time.
  SimTime RunUntil(SimTime deadline);

  bool empty() const { return queue_.empty(); }
  size_t pending() const { return queue_.size(); }
  /// Total events dispatched since construction.
  uint64_t dispatched() const { return dispatched_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t dispatched_ = 0;
};

}  // namespace vdg

#endif  // VDG_GRID_EVENT_QUEUE_H_
