#ifndef VDG_SECURITY_TRUST_H_
#define VDG_SECURITY_TRUST_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "security/crypto.h"

namespace vdg {

/// A named principal: a person, group, or service that can sign VDC
/// entries and issue certificates for others.
struct Identity {
  std::string name;        // e.g. "alice@uchicago", "cms-production"
  uint64_t public_key = 0;

  bool operator==(const Identity& other) const {
    return name == other.name && public_key == other.public_key;
  }
};

/// A certificate binds a subject identity to its public key, vouched
/// for by an issuer's signature. Chains of certificates implement the
/// paper's requirement that trust be established without direct
/// relationships among individuals (Section 4.2).
struct Certificate {
  Identity subject;
  std::string issuer;  // issuer identity name
  Signature signature; // issuer's signature over CanonicalText()

  /// The byte string the issuer signs.
  std::string CanonicalText() const;
};

/// Issues a certificate for `subject` signed by `issuer_keys`.
Certificate IssueCertificate(const Identity& subject,
                             std::string issuer_name,
                             const KeyPair& issuer_keys);

/// Holds trusted root authorities and validates certificate chains.
/// A chain [c0, c1, ..., cn] is valid when c0's issuer is a trusted
/// root, each ci is signed by the subject key of c(i-1) (or the root
/// key for c0), and no certificate is revoked.
class TrustStore {
 public:
  /// Registers a trusted root authority (self-certifying).
  void AddRoot(Identity root);
  bool IsRoot(std::string_view name) const;

  /// Marks a subject name revoked; chains through it fail.
  void Revoke(std::string_view name);
  bool IsRevoked(std::string_view name) const;

  /// Validates a chain and returns the terminal (leaf) identity.
  Result<Identity> ValidateChain(
      const std::vector<Certificate>& chain) const;

  /// Convenience: validate a chain, then verify `signature` over
  /// `message` with the leaf's key.
  Status VerifySigned(const std::vector<Certificate>& chain,
                      std::string_view message,
                      const Signature& signature) const;

  size_t root_count() const { return roots_.size(); }

 private:
  std::map<std::string, Identity, std::less<>> roots_;
  std::set<std::string, std::less<>> revoked_;
};

}  // namespace vdg

#endif  // VDG_SECURITY_TRUST_H_
