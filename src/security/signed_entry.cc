#include "security/signed_entry.h"

#include "common/hash.h"

namespace vdg {

namespace {
std::string Key(std::string_view kind, std::string_view name) {
  return std::string(kind) + "/" + std::string(name);
}
}  // namespace

std::string EntrySignature::CanonicalText() const {
  return "entry:" + object_kind + ":" + object_name + ":" + content_hash +
         ":" + assertion + ":" + signer;
}

EntrySignature SignEntry(std::string object_kind, std::string object_name,
                         std::string_view canonical_content,
                         std::string assertion, const Identity& signer,
                         const KeyPair& signer_keys) {
  EntrySignature entry;
  entry.object_kind = std::move(object_kind);
  entry.object_name = std::move(object_name);
  entry.content_hash = Sha256::HexDigest(canonical_content);
  entry.assertion = std::move(assertion);
  entry.signer = signer.name;
  entry.signature = Sign(signer_keys, entry.CanonicalText());
  return entry;
}

void SignatureRegistry::Add(EntrySignature signature) {
  entries_.emplace(Key(signature.object_kind, signature.object_name),
                   std::move(signature));
}

std::vector<EntrySignature> SignatureRegistry::For(
    std::string_view kind, std::string_view name) const {
  std::vector<EntrySignature> out;
  auto [lo, hi] = entries_.equal_range(Key(kind, name));
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

Status SignatureRegistry::VerifyEntry(
    const EntrySignature& entry,
    const std::vector<Certificate>& signer_chain,
    std::string_view current_content, const TrustStore& trust) const {
  VDG_ASSIGN_OR_RETURN(Identity leaf, trust.ValidateChain(signer_chain));
  if (leaf.name != entry.signer) {
    return Status::PermissionDenied("chain terminates at " + leaf.name +
                                    " but entry is signed by " + entry.signer);
  }
  if (!Verify(leaf.public_key, entry.CanonicalText(), entry.signature)) {
    return Status::PermissionDenied("entry signature by " + entry.signer +
                                    " does not verify");
  }
  if (Sha256::HexDigest(current_content) != entry.content_hash) {
    return Status::FailedPrecondition(
        "object " + entry.object_kind + "/" + entry.object_name +
        " changed since it was signed by " + entry.signer);
  }
  return Status::OK();
}

bool SignatureRegistry::HasVerifiedAssertion(
    std::string_view kind, std::string_view name, std::string_view assertion,
    std::string_view current_content,
    const std::map<std::string, std::vector<Certificate>>& chains,
    const TrustStore& trust) const {
  for (const EntrySignature& entry : For(kind, name)) {
    if (entry.assertion != assertion) continue;
    auto chain = chains.find(entry.signer);
    if (chain == chains.end()) continue;
    if (VerifyEntry(entry, chain->second, current_content, trust).ok()) {
      return true;
    }
  }
  return false;
}

}  // namespace vdg
