#include "security/trust.h"

namespace vdg {

std::string Certificate::CanonicalText() const {
  return "cert:" + subject.name + ":" + PublicKeyToHex(subject.public_key) +
         ":issued-by:" + issuer;
}

Certificate IssueCertificate(const Identity& subject,
                             std::string issuer_name,
                             const KeyPair& issuer_keys) {
  Certificate cert;
  cert.subject = subject;
  cert.issuer = std::move(issuer_name);
  cert.signature = Sign(issuer_keys, cert.CanonicalText());
  return cert;
}

void TrustStore::AddRoot(Identity root) {
  roots_.insert_or_assign(root.name, std::move(root));
}

bool TrustStore::IsRoot(std::string_view name) const {
  return roots_.find(name) != roots_.end();
}

void TrustStore::Revoke(std::string_view name) {
  revoked_.insert(std::string(name));
}

bool TrustStore::IsRevoked(std::string_view name) const {
  return revoked_.find(name) != revoked_.end();
}

Result<Identity> TrustStore::ValidateChain(
    const std::vector<Certificate>& chain) const {
  if (chain.empty()) {
    return Status::InvalidArgument("empty certificate chain");
  }
  // The first link must be issued by a trusted root.
  auto root = roots_.find(chain.front().issuer);
  if (root == roots_.end()) {
    return Status::PermissionDenied("chain anchor " + chain.front().issuer +
                                    " is not a trusted root");
  }
  if (IsRevoked(root->second.name)) {
    return Status::PermissionDenied("root " + root->second.name +
                                    " is revoked");
  }
  uint64_t issuer_key = root->second.public_key;
  std::string issuer_name = root->second.name;
  for (const Certificate& cert : chain) {
    if (cert.issuer != issuer_name) {
      return Status::PermissionDenied("broken chain: certificate for " +
                                      cert.subject.name + " issued by " +
                                      cert.issuer + ", expected " +
                                      issuer_name);
    }
    if (IsRevoked(cert.subject.name)) {
      return Status::PermissionDenied("identity " + cert.subject.name +
                                      " is revoked");
    }
    if (!Verify(issuer_key, cert.CanonicalText(), cert.signature)) {
      return Status::PermissionDenied("bad signature on certificate for " +
                                      cert.subject.name);
    }
    issuer_key = cert.subject.public_key;
    issuer_name = cert.subject.name;
  }
  return chain.back().subject;
}

Status TrustStore::VerifySigned(const std::vector<Certificate>& chain,
                                std::string_view message,
                                const Signature& signature) const {
  VDG_ASSIGN_OR_RETURN(Identity leaf, ValidateChain(chain));
  if (!Verify(leaf.public_key, message, signature)) {
    return Status::PermissionDenied("signature by " + leaf.name +
                                    " does not verify");
  }
  return Status::OK();
}

}  // namespace vdg
