#include "security/access.h"

#include "common/strings.h"

namespace vdg {

const char* AccessActionToString(AccessAction action) {
  switch (action) {
    case AccessAction::kRead:
      return "read";
    case AccessAction::kDefine:
      return "define";
    case AccessAction::kAnnotate:
      return "annotate";
    case AccessAction::kAdmin:
      return "admin";
  }
  return "?";
}

void AccessPolicy::AddToGroup(std::string_view principal,
                              std::string_view group) {
  groups_.emplace(std::string(principal), std::string(group));
}

bool AccessPolicy::InGroup(std::string_view principal,
                           std::string_view group) const {
  auto [lo, hi] = groups_.equal_range(principal);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == group) return true;
  }
  return false;
}

void AccessPolicy::Grant(std::string_view who, AccessAction action,
                         std::string_view name_prefix) {
  rules_.push_back(
      Rule{std::string(who), action, std::string(name_prefix), false});
}

void AccessPolicy::Deny(std::string_view who, AccessAction action,
                        std::string_view name_prefix) {
  rules_.push_back(
      Rule{std::string(who), action, std::string(name_prefix), true});
}

bool AccessPolicy::RuleApplies(const Rule& rule, std::string_view principal,
                               AccessAction action,
                               std::string_view object_name) const {
  if (rule.action != action && rule.action != AccessAction::kAdmin) {
    return false;
  }
  if (!rule.name_prefix.empty() &&
      !StartsWith(object_name, rule.name_prefix)) {
    return false;
  }
  return rule.who == principal || InGroup(principal, rule.who) ||
         rule.who == "*";
}

Status AccessPolicy::Check(std::string_view principal, AccessAction action,
                           std::string_view object_name) const {
  if (principal == owner_) return Status::OK();
  bool granted = false;
  for (const Rule& rule : rules_) {
    if (!RuleApplies(rule, principal, action, object_name)) continue;
    if (rule.deny) {
      return Status::PermissionDenied(
          std::string(principal) + " is denied " +
          AccessActionToString(action) + " on " + std::string(object_name));
    }
    granted = true;
  }
  if (granted) return Status::OK();
  return Status::PermissionDenied(std::string(principal) +
                                  " has no grant for " +
                                  AccessActionToString(action) + " on " +
                                  std::string(object_name));
}

}  // namespace vdg
