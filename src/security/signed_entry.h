#ifndef VDG_SECURITY_SIGNED_ENTRY_H_
#define VDG_SECURITY_SIGNED_ENTRY_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "security/crypto.h"
#include "security/trust.h"

namespace vdg {

/// A cryptographic endorsement of one VDC entry (Section 4.2):
/// "signatures on VDC entries and attributes as a means of
/// establishing the identity of the authority(s) that vouch for their
/// validity". `content_hash` pins the endorsed object state, so edits
/// after signing are detectable; `assertion` carries the quality claim
/// ("curated", "approved", "validated", ...).
struct EntrySignature {
  std::string object_kind;   // "dataset" | "transformation" | ...
  std::string object_name;
  std::string content_hash;  // SHA-256 hex of the canonical object text
  std::string assertion;     // quality claim being vouched for
  std::string signer;        // identity name
  Signature signature;

  /// Byte string covered by the signature.
  std::string CanonicalText() const;
};

/// Signs an endorsement of (kind, name, canonical content).
EntrySignature SignEntry(std::string object_kind, std::string object_name,
                         std::string_view canonical_content,
                         std::string assertion, const Identity& signer,
                         const KeyPair& signer_keys);

/// Community registry of endorsements, keyed by (kind, name). The
/// quality machinery is policy-neutral: callers decide which signers
/// and assertions they require (e.g. "approved by cms-production").
class SignatureRegistry {
 public:
  void Add(EntrySignature signature);

  /// All endorsements registered for one object.
  std::vector<EntrySignature> For(std::string_view kind,
                                  std::string_view name) const;

  /// Verifies an endorsement against the signer's certificate chain
  /// and the object's *current* canonical content. Fails with
  /// PermissionDenied on an untrusted chain or a bad signature, and
  /// FailedPrecondition when the content changed since signing.
  Status VerifyEntry(const EntrySignature& entry,
                     const std::vector<Certificate>& signer_chain,
                     std::string_view current_content,
                     const TrustStore& trust) const;

  /// True when some registered endorsement for the object carries
  /// `assertion`, verifies under `trust` via `chains[signer]`, and
  /// matches `current_content`.
  bool HasVerifiedAssertion(
      std::string_view kind, std::string_view name,
      std::string_view assertion, std::string_view current_content,
      const std::map<std::string, std::vector<Certificate>>& chains,
      const TrustStore& trust) const;

  size_t size() const { return entries_.size(); }

 private:
  std::multimap<std::string, EntrySignature, std::less<>> entries_;
};

}  // namespace vdg

#endif  // VDG_SECURITY_SIGNED_ENTRY_H_
