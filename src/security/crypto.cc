#include "security/crypto.h"

#include <cstdio>

#include "common/hash.h"

namespace vdg {

namespace {

// Largest 64-bit prime; group is (Z/pZ)* with generator g. The group
// order p-1 is composite, which the Schnorr verification equation
// tolerates (it holds identically for any exponent arithmetic mod p-1).
constexpr uint64_t kP = 18446744073709551557ULL;
constexpr uint64_t kOrder = kP - 1;
constexpr uint64_t kG = 5;

uint64_t MulMod(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % kP);
}

uint64_t PowMod(uint64_t base, uint64_t exp) {
  uint64_t result = 1;
  base %= kP;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, base);
    base = MulMod(base, base);
    exp >>= 1;
  }
  return result;
}

uint64_t MulModOrder(uint64_t a, uint64_t b) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(a) * b) % kOrder);
}

// First 8 digest bytes as a big-endian integer.
uint64_t HashToInt(std::string_view data) {
  Sha256::Digest d = Sha256::Hash(data);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[i];
  return v;
}

}  // namespace

KeyPair KeyPair::FromSeed(std::string_view seed) {
  KeyPair keys;
  keys.private_key = HashToInt(std::string("vdg-key:") + std::string(seed));
  if (keys.private_key % kOrder == 0) keys.private_key = 1;  // degenerate
  keys.private_key %= kOrder;
  keys.public_key = PowMod(kG, keys.private_key);
  return keys;
}

std::string Signature::ToHex() const {
  char buf[36];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(e),
                static_cast<unsigned long long>(s));
  return buf;
}

Result<Signature> Signature::FromHex(std::string_view hex) {
  if (hex.size() != 32) {
    return Status::ParseError("signature hex must be 32 chars");
  }
  auto parse16 = [](std::string_view part) -> Result<uint64_t> {
    uint64_t v = 0;
    for (char c : part) {
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint64_t>(c - 'A' + 10);
      } else {
        return Status::ParseError("bad hex digit in signature");
      }
    }
    return v;
  };
  Signature sig;
  VDG_ASSIGN_OR_RETURN(sig.e, parse16(hex.substr(0, 16)));
  VDG_ASSIGN_OR_RETURN(sig.s, parse16(hex.substr(16, 16)));
  return sig;
}

Signature Sign(const KeyPair& keys, std::string_view message) {
  // Deterministic nonce: k = H(x || m), never reused across messages.
  std::string nonce_input = "vdg-nonce:";
  nonce_input += std::to_string(keys.private_key);
  nonce_input += ":";
  nonce_input += message;
  uint64_t k = HashToInt(nonce_input) % kOrder;
  if (k == 0) k = 1;

  uint64_t r = PowMod(kG, k);
  std::string challenge_input = "vdg-chal:";
  challenge_input += std::to_string(r);
  challenge_input += ":";
  challenge_input += message;
  uint64_t e = HashToInt(challenge_input) % kOrder;

  // s = k - x*e (mod order). kOrder is within 60 of 2^64, so the
  // naive (k + kOrder - xe) % kOrder form overflows; branch instead.
  uint64_t xe = MulModOrder(keys.private_key % kOrder, e);
  uint64_t s = k >= xe ? k - xe : k + (kOrder - xe);
  return Signature{e, s};
}

bool Verify(uint64_t public_key, std::string_view message,
            const Signature& signature) {
  if (public_key == 0) return false;
  // r' = g^s * y^e mod p; accept iff H(r' || m) == e.
  uint64_t rv = MulMod(PowMod(kG, signature.s), PowMod(public_key, signature.e));
  std::string challenge_input = "vdg-chal:";
  challenge_input += std::to_string(rv);
  challenge_input += ":";
  challenge_input += message;
  return (HashToInt(challenge_input) % kOrder) == signature.e;
}

std::string PublicKeyToHex(uint64_t public_key) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(public_key));
  return buf;
}

Result<uint64_t> PublicKeyFromHex(std::string_view hex) {
  if (hex.size() != 16) {
    return Status::ParseError("public key hex must be 16 chars");
  }
  uint64_t v = 0;
  for (char c : hex) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<uint64_t>(c - 'a' + 10);
    } else {
      return Status::ParseError("bad hex digit in public key");
    }
  }
  return v;
}

}  // namespace vdg
