#ifndef VDG_SECURITY_CRYPTO_H_
#define VDG_SECURITY_CRYPTO_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace vdg {

/// Schnorr-style signatures over the multiplicative group mod a 64-bit
/// prime. The *structure* is real asymmetric cryptography — verification
/// uses only the public key — but the 64-bit modulus is toy-strength.
/// The paper's architecture (Section 4.2) needs sign/verify/chain
/// semantics to implement quality and trust policies, not production
/// key sizes; DESIGN.md documents this substitution for the offline
/// environment (no TLS library available).
struct KeyPair {
  uint64_t private_key = 0;  // x
  uint64_t public_key = 0;   // y = g^x mod p

  /// Deterministically derives a key pair from a seed phrase (e.g. an
  /// identity name plus a secret). Same seed, same keys — which keeps
  /// simulations reproducible.
  static KeyPair FromSeed(std::string_view seed);
};

/// A detached signature (e, s) with hex rendering for catalogs.
struct Signature {
  uint64_t e = 0;
  uint64_t s = 0;

  std::string ToHex() const;
  static Result<Signature> FromHex(std::string_view hex);

  bool operator==(const Signature& other) const {
    return e == other.e && s == other.s;
  }
};

/// Signs `message` with the private key. Deterministic (the nonce is
/// derived from key and message, RFC-6979 style).
Signature Sign(const KeyPair& keys, std::string_view message);

/// Verifies `signature` over `message` against `public_key`.
bool Verify(uint64_t public_key, std::string_view message,
            const Signature& signature);

/// Renders a public key as fixed-width hex (16 chars).
std::string PublicKeyToHex(uint64_t public_key);
Result<uint64_t> PublicKeyFromHex(std::string_view hex);

}  // namespace vdg

#endif  // VDG_SECURITY_CRYPTO_H_
