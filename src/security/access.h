#ifndef VDG_SECURITY_ACCESS_H_
#define VDG_SECURITY_ACCESS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"

namespace vdg {

/// Actions a principal may perform against a catalog's objects.
enum class AccessAction { kRead = 0, kDefine = 1, kAnnotate = 2, kAdmin = 3 };

const char* AccessActionToString(AccessAction action);

/// Community Authorization Service-style policy (the paper cites CAS
/// [17]): principals belong to groups; rules grant actions to
/// principals or groups, optionally scoped to an object-name prefix;
/// explicit denies win over grants; the owner may do anything.
class AccessPolicy {
 public:
  explicit AccessPolicy(std::string owner) : owner_(std::move(owner)) {}

  const std::string& owner() const { return owner_; }

  void AddToGroup(std::string_view principal, std::string_view group);
  bool InGroup(std::string_view principal, std::string_view group) const;

  /// Grants `action` to `who` (a principal or group name) on objects
  /// whose name starts with `name_prefix` ("" = all).
  void Grant(std::string_view who, AccessAction action,
             std::string_view name_prefix = "");
  /// Denies override grants.
  void Deny(std::string_view who, AccessAction action,
            std::string_view name_prefix = "");

  /// OK when allowed; PermissionDenied otherwise.
  Status Check(std::string_view principal, AccessAction action,
               std::string_view object_name) const;

 private:
  struct Rule {
    std::string who;
    AccessAction action;
    std::string name_prefix;
    bool deny = false;
  };

  bool RuleApplies(const Rule& rule, std::string_view principal,
                   AccessAction action, std::string_view object_name) const;

  std::string owner_;
  std::multimap<std::string, std::string, std::less<>> groups_;  // principal -> group
  std::vector<Rule> rules_;
};

}  // namespace vdg

#endif  // VDG_SECURITY_ACCESS_H_
