#include "executor/executor.h"

#include <algorithm>

#include "common/logging.h"

namespace vdg {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}  // namespace

double WorkflowEngine::NominalRuntime(const PlanNode& node) const {
  double base = options_.default_runtime_s;
  double per_mb = 0;
  Result<Transformation> tr =
      catalog_->GetTransformation(node.transformation);
  if (tr.ok()) {
    if (auto v = tr->annotations().GetDouble("sim.runtime_s")) base = *v;
    if (auto v = tr->annotations().GetDouble("sim.runtime_s_per_mb")) {
      per_mb = *v;
    }
  }
  return base + per_mb * (static_cast<double>(InputBytes(node)) / kMiB);
}

int64_t WorkflowEngine::InputBytes(const PlanNode& node) const {
  int64_t total = 0;
  for (const std::string& input : node.inputs) {
    Result<Dataset> ds = catalog_->GetDataset(input);
    if (ds.ok() && ds->size_bytes > 0) {
      total += ds->size_bytes;
    } else {
      for (const PhysicalLocation& loc : grid_->rls().Lookup(input)) {
        total += loc.size_bytes;
        break;
      }
    }
  }
  return total;
}

int64_t WorkflowEngine::OutputBytes(const PlanNode& node,
                                    std::string_view output,
                                    int64_t input_bytes) const {
  // A declared dataset size wins.
  Result<Dataset> ds = catalog_->GetDataset(output);
  if (ds.ok() && ds->size_bytes > 0) return ds->size_bytes;
  Result<Transformation> tr =
      catalog_->GetTransformation(node.transformation);
  if (tr.ok()) {
    if (auto v = tr->annotations().GetDouble("sim.output_mb")) {
      return static_cast<int64_t>(*v * kMiB);
    }
    if (auto v = tr->annotations().GetDouble("sim.output_ratio")) {
      if (input_bytes > 0) {
        return static_cast<int64_t>(*v *
                                    static_cast<double>(input_bytes));
      }
    }
  }
  if (input_bytes > 0) return input_bytes;
  return options_.default_output_bytes;
}

Result<uint64_t> WorkflowEngine::Submit(const ExecutionPlan& plan,
                                        CompletionCallback on_done) {
  auto wf = std::make_unique<WorkflowState>();
  wf->id = next_workflow_id_++;
  wf->plan = plan;
  wf->start_time = grid_->now();
  wf->on_done = std::move(on_done);
  wf->result.workflow_id = wf->id;
  wf->result.start_time = wf->start_time;
  wf->result.nodes_total = plan.nodes.size();

  wf->nodes.reserve(plan.nodes.size());
  for (const PlanNode& node : plan.nodes) {
    NodeState state;
    state.plan = node;
    state.pending_deps = node.deps.size();
    state.execution.derivation = node.derivation.name();
    state.execution.site = node.site;
    wf->nodes.push_back(std::move(state));
  }
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    for (size_t dep : plan.nodes[i].deps) {
      if (dep >= wf->nodes.size()) {
        return Status::InvalidArgument("plan node " + std::to_string(i) +
                                       " has out-of-range dependency");
      }
      wf->nodes[dep].dependents.push_back(i);
    }
  }
  wf->remaining = wf->nodes.size();

  WorkflowState* raw = wf.get();
  // An already-local plan (no nodes, no fetches) completes synchronously
  // inside RunFetches, which erases the state — capture the id first.
  const uint64_t id = raw->id;
  workflows_.emplace(id, std::move(wf));

  if (raw->nodes.empty()) {
    // Pure-fetch or already-local plan.
    RunFetches(raw);
  } else {
    for (size_t i = 0; i < raw->nodes.size(); ++i) {
      if (raw->nodes[i].pending_deps == 0) StartNode(raw, i);
    }
  }
  return id;
}

void WorkflowEngine::StartNode(WorkflowState* wf, size_t index) {
  NodeState& node = wf->nodes[index];
  node.execution.attempts = 0;
  node.pending_transfers = node.plan.staging.size();
  if (node.pending_transfers == 0) {
    LaunchJob(wf, index);
    return;
  }
  for (const TransferPlan& stage : node.plan.staging) {
    wf->result.transfers++;
    wf->result.bytes_staged += stage.bytes;
    uint64_t wf_id = wf->id;
    Result<uint64_t> submitted = grid_->SubmitTransfer(
        stage.from_site, stage.to_site, stage.bytes,
        [this, wf_id, index](const TransferResult& result) {
          (void)result;
          auto it = workflows_.find(wf_id);
          if (it == workflows_.end()) return;
          WorkflowState* state = it->second.get();
          NodeState& n = state->nodes[index];
          if (n.failed) return;  // a sibling stage already failed
          if (--n.pending_transfers == 0) LaunchJob(state, index);
        });
    if (!submitted.ok()) {
      VDG_LOG(Warning) << "staging transfer failed to submit: "
                       << submitted.status().ToString();
      node.failed = true;
      ++wf->result.nodes_failed;
      SkipUnreachable(wf, index);
      return;
    }
  }
}

void WorkflowEngine::LaunchJob(WorkflowState* wf, size_t index) {
  NodeState& node = wf->nodes[index];
  ++node.execution.attempts;
  double runtime = NominalRuntime(node.plan);
  uint64_t wf_id = wf->id;
  Result<uint64_t> submitted = grid_->SubmitJob(
      node.plan.site, runtime, [this, wf_id, index](const JobResult& job) {
        auto it = workflows_.find(wf_id);
        if (it == workflows_.end()) return;
        FinishNode(it->second.get(), index, job);
      });
  if (!submitted.ok()) {
    VDG_LOG(Warning) << "job submission failed: "
                     << submitted.status().ToString();
    node.failed = true;
    ++wf->result.nodes_failed;
    SkipUnreachable(wf, index);
  }
}

void WorkflowEngine::FinishNode(WorkflowState* wf, size_t index,
                                const JobResult& job) {
  NodeState& node = wf->nodes[index];
  if (!job.succeeded) {
    if (node.execution.attempts <= options_.max_retries) {
      LaunchJob(wf, index);  // retry in place
      return;
    }
    node.failed = true;
    node.execution.succeeded = false;
    node.execution.start_time = job.start_time;
    node.execution.end_time = job.end_time;
    node.execution.host = job.host;
    ++wf->result.nodes_failed;
    SkipUnreachable(wf, index);
    return;
  }

  node.done = true;
  node.execution.succeeded = true;
  node.execution.start_time = job.start_time;
  node.execution.end_time = job.end_time;
  node.execution.host = job.host;
  ++wf->result.nodes_succeeded;
  --wf->remaining;

  // Materialize outputs at the execution site.
  int64_t input_bytes = InputBytes(node.plan);
  for (const std::string& output : node.plan.outputs) {
    int64_t bytes = OutputBytes(node.plan, output, input_bytes);
    Status placed = grid_->PlaceFile(node.plan.site, output, bytes);
    if (!placed.ok() && !placed.IsAlreadyExists()) {
      VDG_LOG(Warning) << "output placement failed: " << placed.ToString();
    }
  }
  if (options_.record_provenance) RecordProvenance(wf, &node, job);

  for (size_t dependent : node.dependents) {
    NodeState& next = wf->nodes[dependent];
    if (next.failed || next.done) continue;
    if (--next.pending_deps == 0) StartNode(wf, dependent);
  }
  MaybeFinishWorkflow(wf);
}

void WorkflowEngine::SkipUnreachable(WorkflowState* wf, size_t index) {
  wf->any_failure = true;
  --wf->remaining;
  // Everything downstream of a dead node can never run.
  std::vector<size_t> frontier{index};
  while (!frontier.empty()) {
    size_t current = frontier.back();
    frontier.pop_back();
    for (size_t dependent : wf->nodes[current].dependents) {
      NodeState& next = wf->nodes[dependent];
      if (next.failed || next.done) continue;
      next.failed = true;
      ++wf->result.nodes_skipped;
      --wf->remaining;
      frontier.push_back(dependent);
    }
  }
  MaybeFinishWorkflow(wf);
}

void WorkflowEngine::MaybeFinishWorkflow(WorkflowState* wf) {
  if (wf->remaining > 0) return;
  if (wf->any_failure) {
    CompleteWorkflow(wf);
    return;
  }
  RunFetches(wf);
}

void WorkflowEngine::RunFetches(WorkflowState* wf) {
  if (wf->plan.fetches.empty()) {
    CompleteWorkflow(wf);
    return;
  }
  wf->pending_fetches = wf->plan.fetches.size();
  for (const TransferPlan& fetch : wf->plan.fetches) {
    wf->result.transfers++;
    wf->result.bytes_staged += fetch.bytes;
    uint64_t wf_id = wf->id;
    std::string dataset = fetch.dataset;
    std::string to_site = fetch.to_site;
    int64_t bytes = fetch.bytes;
    Result<uint64_t> submitted = grid_->SubmitTransfer(
        fetch.from_site, fetch.to_site, fetch.bytes,
        [this, wf_id, dataset, to_site, bytes](const TransferResult&) {
          auto it = workflows_.find(wf_id);
          if (it == workflows_.end()) return;
          WorkflowState* state = it->second.get();
          Status placed = grid_->PlaceFile(to_site, dataset, bytes);
          if (!placed.ok() && !placed.IsAlreadyExists()) {
            VDG_LOG(Warning) << "fetch placement failed: "
                             << placed.ToString();
          }
          if (--state->pending_fetches == 0) CompleteWorkflow(state);
        });
    if (!submitted.ok()) {
      wf->any_failure = true;
      if (--wf->pending_fetches == 0) CompleteWorkflow(wf);
    }
  }
}

void WorkflowEngine::CompleteWorkflow(WorkflowState* wf) {
  wf->result.succeeded = !wf->any_failure;
  wf->result.end_time = grid_->now();
  wf->result.makespan_s = wf->result.end_time - wf->start_time;

  std::vector<NodeExecution> executions;
  executions.reserve(wf->nodes.size());
  for (const NodeState& node : wf->nodes) {
    executions.push_back(node.execution);
  }
  finished_executions_.emplace(wf->id, std::move(executions));

  WorkflowResult result = wf->result;
  CompletionCallback on_done = std::move(wf->on_done);
  workflows_.erase(wf->id);
  if (on_done) on_done(result);
}

void WorkflowEngine::RecordProvenance(WorkflowState* wf, NodeState* node,
                                      const JobResult& job) {
  (void)wf;
  const PlanNode& plan = node->plan;
  // Synthesized sub-derivations (compound expansion) may not exist in
  // the catalog yet; define them so invocations have an anchor.
  if (!catalog_->HasDerivation(plan.derivation.name())) {
    Status defined = catalog_->DefineDerivation(plan.derivation);
    if (!defined.ok()) {
      VDG_LOG(Warning) << "cannot define synthesized derivation "
                       << plan.derivation.name() << ": "
                       << defined.ToString();
      return;
    }
  }

  Invocation iv;
  iv.derivation = plan.derivation.name();
  iv.context.site = job.site;
  iv.context.host = job.host;
  iv.start_time = job.start_time;
  iv.duration_s = job.end_time - job.start_time;
  iv.cpu_seconds = job.cpu_seconds;
  iv.exit_code = 0;
  iv.succeeded = true;

  // Consumed replicas: the first valid catalog replica of each input.
  for (const std::string& input : plan.inputs) {
    std::vector<Replica> replicas = catalog_->ReplicasOf(input);
    if (!replicas.empty()) iv.consumed_replicas.push_back(replicas[0].id);
  }

  int64_t input_bytes = InputBytes(plan);
  for (const std::string& output : plan.outputs) {
    int64_t bytes = OutputBytes(plan, output, input_bytes);
    Replica replica;
    replica.dataset = output;
    replica.site = job.site;
    replica.storage_element = "se0";
    replica.physical_path = "/" + job.site + "/" + output;
    replica.size_bytes = bytes;
    replica.created_at = job.end_time;
    Result<std::string> added = catalog_->AddReplica(std::move(replica));
    if (added.ok()) {
      iv.produced_replicas.push_back(*added);
    } else {
      VDG_LOG(Warning) << "replica record failed: "
                       << added.status().ToString();
    }
    Result<Dataset> ds = catalog_->GetDataset(output);
    if (ds.ok() && ds->size_bytes == 0) {
      Status sized = catalog_->SetDatasetSize(output, bytes);
      (void)sized;
    }
  }
  Result<std::string> recorded = catalog_->RecordInvocation(std::move(iv));
  if (!recorded.ok()) {
    VDG_LOG(Warning) << "invocation record failed: "
                     << recorded.status().ToString();
  }
}

Result<WorkflowResult> WorkflowEngine::Execute(const ExecutionPlan& plan) {
  WorkflowResult captured;
  bool finished = false;
  VDG_ASSIGN_OR_RETURN(uint64_t id,
                       Submit(plan, [&](const WorkflowResult& result) {
                         captured = result;
                         finished = true;
                       }));
  (void)id;
  grid_->RunUntilIdle();
  if (!finished) {
    return Status::Internal("workflow did not complete after event drain");
  }
  return captured;
}

Result<std::vector<NodeExecution>> WorkflowEngine::ExecutionsOf(
    uint64_t workflow_id) const {
  auto it = finished_executions_.find(workflow_id);
  if (it == finished_executions_.end()) {
    return Status::NotFound("no finished workflow with id " +
                            std::to_string(workflow_id));
  }
  return it->second;
}

}  // namespace vdg
