#include "executor/executor.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.h"
#include "planner/planner.h"

namespace vdg {

namespace {
constexpr double kMiB = 1024.0 * 1024.0;
}  // namespace

double WorkflowEngine::NominalRuntime(const PlanNode& node) const {
  double base = options_.default_runtime_s;
  double per_mb = 0;
  Result<Transformation> tr =
      catalog_->GetTransformation(node.transformation);
  if (tr.ok()) {
    if (auto v = tr->annotations().GetDouble("sim.runtime_s")) base = *v;
    if (auto v = tr->annotations().GetDouble("sim.runtime_s_per_mb")) {
      per_mb = *v;
    }
  }
  return base + per_mb * (static_cast<double>(InputBytes(node)) / kMiB);
}

int64_t WorkflowEngine::InputBytes(const PlanNode& node) const {
  int64_t total = 0;
  for (const std::string& input : node.inputs) {
    Result<Dataset> ds = catalog_->GetDataset(input);
    if (ds.ok() && ds->size_bytes > 0) {
      total += ds->size_bytes;
    } else {
      for (const PhysicalLocation& loc : grid_->rls().Lookup(input)) {
        total += loc.size_bytes;
        break;
      }
    }
  }
  return total;
}

int64_t WorkflowEngine::StagedBytes(const std::string& dataset) const {
  Result<Dataset> ds = catalog_->GetDataset(dataset);
  if (ds.ok() && ds->size_bytes > 0) return ds->size_bytes;
  for (const PhysicalLocation& loc : grid_->rls().Lookup(dataset)) {
    if (loc.size_bytes > 0) return loc.size_bytes;
  }
  for (const Replica& replica : catalog_->ReplicasOf(dataset)) {
    if (replica.size_bytes > 0) return replica.size_bytes;
  }
  return options_.default_output_bytes;
}

int64_t WorkflowEngine::OutputBytes(const PlanNode& node,
                                    std::string_view output,
                                    int64_t input_bytes) const {
  // A declared dataset size wins.
  Result<Dataset> ds = catalog_->GetDataset(output);
  if (ds.ok() && ds->size_bytes > 0) return ds->size_bytes;
  Result<Transformation> tr =
      catalog_->GetTransformation(node.transformation);
  if (tr.ok()) {
    if (auto v = tr->annotations().GetDouble("sim.output_mb")) {
      return static_cast<int64_t>(*v * kMiB);
    }
    if (auto v = tr->annotations().GetDouble("sim.output_ratio")) {
      if (input_bytes > 0) {
        return static_cast<int64_t>(*v *
                                    static_cast<double>(input_bytes));
      }
    }
  }
  if (input_bytes > 0) return input_bytes;
  return options_.default_output_bytes;
}

WorkflowEngine::WorkflowState* WorkflowEngine::FindWorkflow(uint64_t id) {
  auto it = workflows_.find(id);
  return it == workflows_.end() ? nullptr : it->second.get();
}

double WorkflowEngine::BackoffDelay(int attempt) const {
  const FaultPolicy& faults = options_.faults;
  double delay = faults.backoff_base_s;
  for (int i = 1; i < attempt; ++i) delay *= faults.backoff_multiplier;
  return std::min(delay, faults.backoff_max_s);
}

bool WorkflowEngine::IsSiteUsable(std::string_view site) const {
  if (grid_->IsSiteOffline(site)) return false;
  auto it = site_health_.find(site);
  return it == site_health_.end() ||
         it->second.blacklisted_until <= grid_->now();
}

void WorkflowEngine::NoteSiteFailure(const std::string& site,
                                     WorkflowState* wf) {
  const FaultPolicy& faults = options_.faults;
  if (faults.blacklist_threshold <= 0) return;
  SiteHealth& health = site_health_[site];
  if (++health.consecutive_failures >= faults.blacklist_threshold) {
    health.blacklisted_until = grid_->now() + faults.blacklist_cooldown_s;
    health.consecutive_failures = 0;
    ++wf->result.recovery.sites_blacklisted;
    VDG_LOG(Info) << "site " << site << " blacklisted until "
                  << health.blacklisted_until;
  }
}

void WorkflowEngine::NoteSiteSuccess(const std::string& site) {
  auto it = site_health_.find(site);
  if (it != site_health_.end()) it->second.consecutive_failures = 0;
}

Result<uint64_t> WorkflowEngine::Submit(const ExecutionPlan& plan,
                                        CompletionCallback on_done) {
  auto wf = std::make_unique<WorkflowState>();
  wf->id = next_workflow_id_++;
  wf->plan = plan;
  wf->start_time = grid_->now();
  wf->on_done = std::move(on_done);
  wf->result.workflow_id = wf->id;
  wf->result.start_time = wf->start_time;
  wf->result.nodes_total = plan.nodes.size();

  wf->nodes.reserve(plan.nodes.size());
  for (const PlanNode& node : plan.nodes) {
    NodeState state;
    state.plan = node;
    state.pending_deps = node.deps.size();
    state.current_site = node.site;
    state.execution.derivation = node.derivation.name();
    state.execution.site = node.site;
    wf->nodes.push_back(std::move(state));
  }
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    for (size_t dep : plan.nodes[i].deps) {
      if (dep >= wf->nodes.size()) {
        return Status::InvalidArgument("plan node " + std::to_string(i) +
                                       " has out-of-range dependency");
      }
      wf->nodes[dep].dependents.push_back(i);
    }
  }
  wf->remaining = wf->nodes.size();
  wf->fetches.reserve(plan.fetches.size());
  for (const TransferPlan& fetch : plan.fetches) {
    FetchState fs;
    fs.plan = fetch;
    wf->fetches.push_back(std::move(fs));
  }

  WorkflowState* raw = wf.get();
  // An already-local plan (no nodes, no fetches) completes synchronously
  // inside RunFetches, which erases the state — capture the id first.
  const uint64_t id = raw->id;
  workflows_.emplace(id, std::move(wf));

  if (raw->nodes.empty()) {
    // Pure-fetch or already-local plan.
    RunFetches(raw);
  } else {
    for (size_t i = 0; i < raw->nodes.size(); ++i) {
      if (raw->nodes[i].pending_deps == 0) StartNode(raw, i);
    }
  }
  return id;
}

void WorkflowEngine::StartNode(WorkflowState* wf, size_t index) {
  NodeState& node = wf->nodes[index];
  node.execution.attempts = 0;
  BeginAttempt(wf, index);
}

void WorkflowEngine::BeginAttempt(WorkflowState* wf, size_t index) {
  NodeState& node = wf->nodes[index];
  ++node.execution.attempts;
  node.execution.site = node.current_site;
  BeginStaging(wf, index);
}

void WorkflowEngine::BeginStaging(WorkflowState* wf, size_t index) {
  NodeState& node = wf->nodes[index];
  const FaultPolicy& faults = options_.faults;
  const std::string& dest = node.current_site;

  // Staging needs are recomputed live on every attempt — a retry after
  // a crash or failover must not trust the plan-time picture of where
  // data lives.
  std::vector<TransferPlan> transfers;
  std::vector<std::string> to_rederive;
  const ReplicaLocationService& rls = grid_->rls();
  for (const std::string& input : node.plan.inputs) {
    if (rls.ExistsAt(input, dest)) continue;  // already local
    Result<PhysicalLocation> best = rls.BestSource(input, dest,
                                                   grid_->topology());
    if (best.ok()) {
      if (best->site == dest) continue;
      TransferPlan stage;
      stage.dataset = input;
      stage.from_site = best->site;
      stage.to_site = dest;
      stage.bytes = best->size_bytes > 0 ? best->size_bytes
                                         : StagedBytes(input);
      transfers.push_back(std::move(stage));
      continue;
    }
    // No physically resident copy anywhere. The catalog may still
    // carry valid replica records — either data lost to a crash, or a
    // catalog-only registration that was never backed by bytes.
    std::vector<Replica> claimed = catalog_->ReplicasOf(input);
    bool derivable = catalog_->ProducerOf(input).ok();
    // The recoveries queued earlier in this same pass count against
    // the ceiling too; RederiveInput only bumps node.rederivations
    // once each launches.
    bool can_rederive = faults.rederive_lost_inputs && derivable &&
                        node.rederivations +
                                static_cast<int>(to_rederive.size()) <
                            faults.max_rederivations_per_node;
    if (can_rederive) {
      to_rederive.push_back(input);
      continue;
    }
    if (!claimed.empty()) {
      // Trust the catalog record (the seed behaviour): stage from the
      // cheapest claimed site.
      const Replica* chosen = nullptr;
      double best_cost = 0;
      for (const Replica& replica : claimed) {
        double cost = grid_->topology().TransferSeconds(
            replica.site, dest, replica.size_bytes);
        if (chosen == nullptr || cost < best_cost) {
          chosen = &replica;
          best_cost = cost;
        }
      }
      if (chosen->site == dest) continue;
      TransferPlan stage;
      stage.dataset = input;
      stage.from_site = chosen->site;
      stage.to_site = dest;
      stage.bytes = chosen->size_bytes > 0 ? chosen->size_bytes
                                           : StagedBytes(input);
      transfers.push_back(std::move(stage));
      continue;
    }
    VDG_LOG(Warning) << "input " << input << " of "
                     << node.plan.derivation.name()
                     << " has no source and cannot be re-derived";
    HandleNodeFailure(wf, index, "missing input");
    return;
  }

  if (!to_rederive.empty()) {
    // Launch recovery sub-workflows; staging resumes (recomputed from
    // scratch) once the last one completes.
    node.pending_recoveries = to_rederive.size();
    for (const std::string& input : to_rederive) {
      RederiveInput(wf, index, input);
    }
    return;
  }

  node.pending_transfers = transfers.size();
  if (node.pending_transfers == 0) {
    LaunchJob(wf, index);
    return;
  }
  const uint64_t wf_id = wf->id;
  const uint64_t gen = node.generation;
  for (const TransferPlan& stage : transfers) {
    wf->result.transfers++;
    wf->result.bytes_staged += stage.bytes;
    ++wf->result.recovery.transfer_attempts;
    Result<uint64_t> submitted = grid_->SubmitTransfer(
        stage.from_site, stage.to_site, stage.bytes,
        [this, wf_id, index, gen](const TransferResult& result) {
          WorkflowState* state = FindWorkflow(wf_id);
          if (state == nullptr) return;
          NodeState& n = state->nodes[index];
          if (n.generation != gen || n.done || n.failed) return;
          if (!result.succeeded) {
            ++state->result.recovery.transfer_failures;
            HandleNodeFailure(state, index, "staging transfer failed");
            return;
          }
          if (--n.pending_transfers == 0) LaunchJob(state, index);
        });
    if (!submitted.ok()) {
      // Endpoint offline/crashed at submit time: a transient fault,
      // not a dead node — back off and retry like any other failure.
      ++wf->result.recovery.submit_rejections;
      VDG_LOG(Info) << "staging transfer rejected: "
                    << submitted.status().ToString();
      HandleNodeFailure(wf, index, "staging submit rejected");
      return;  // generation bump stales the transfers already in flight
    }
  }
}

void WorkflowEngine::LaunchJob(WorkflowState* wf, size_t index) {
  NodeState& node = wf->nodes[index];
  double runtime = NominalRuntime(node.plan);
  const uint64_t wf_id = wf->id;
  const uint64_t gen = node.generation;
  ++wf->result.recovery.job_attempts;
  Result<uint64_t> submitted = grid_->SubmitJob(
      node.current_site, runtime,
      [this, wf_id, index, gen](const JobResult& job) {
        WorkflowState* state = FindWorkflow(wf_id);
        if (state == nullptr) return;
        NodeState& n = state->nodes[index];
        // A stale generation is a completion from an abandoned attempt
        // (timeout or failover already moved on): drop it.
        if (n.generation != gen || n.done || n.failed) return;
        FinishNode(state, index, job);
      });
  if (!submitted.ok()) {
    ++wf->result.recovery.submit_rejections;
    VDG_LOG(Info) << "job submission rejected: "
                  << submitted.status().ToString();
    HandleNodeFailure(wf, index, "job submit rejected");
    return;
  }
  if (options_.faults.node_timeout_s > 0) {
    grid_->events().ScheduleAfter(
        options_.faults.node_timeout_s, [this, wf_id, index, gen]() {
          WorkflowState* state = FindWorkflow(wf_id);
          if (state == nullptr) return;
          NodeState& n = state->nodes[index];
          if (n.generation != gen || n.done || n.failed) return;
          ++state->result.recovery.node_timeouts;
          NoteSiteFailure(n.current_site, state);
          HandleNodeFailure(state, index, "node timeout");
        });
  }
}

void WorkflowEngine::FinishNode(WorkflowState* wf, size_t index,
                                const JobResult& job) {
  NodeState& node = wf->nodes[index];
  if (!job.succeeded) {
    ++wf->result.recovery.job_failures;
    NoteSiteFailure(node.current_site, wf);
    HandleNodeFailure(wf, index, "job failed");
    return;
  }

  NoteSiteSuccess(node.current_site);
  node.done = true;
  node.execution.succeeded = true;
  node.execution.start_time = job.start_time;
  node.execution.end_time = job.end_time;
  node.execution.host = job.host;
  node.execution.site = job.site;
  ++wf->result.nodes_succeeded;
  --wf->remaining;

  // Materialize outputs at the execution site.
  int64_t input_bytes = InputBytes(node.plan);
  for (const std::string& output : node.plan.outputs) {
    int64_t bytes = OutputBytes(node.plan, output, input_bytes);
    Status placed = grid_->PlaceFile(node.current_site, output, bytes);
    if (!placed.ok() && !placed.IsAlreadyExists()) {
      VDG_LOG(Warning) << "output placement failed: " << placed.ToString();
    }
  }
  if (options_.record_provenance) RecordProvenance(wf, &node, job);

  for (size_t dependent : node.dependents) {
    NodeState& next = wf->nodes[dependent];
    if (next.failed || next.done) continue;
    if (--next.pending_deps == 0) StartNode(wf, dependent);
  }
  MaybeFinishWorkflow(wf);
}

void WorkflowEngine::HandleNodeFailure(WorkflowState* wf, size_t index,
                                       const char* reason) {
  NodeState& node = wf->nodes[index];
  if (node.done || node.failed) return;
  // Abandon the current attempt: whatever is still in flight for it
  // (late job completion, sibling transfers, the timeout) goes stale.
  ++node.generation;

  if (node.execution.attempts > options_.max_retries) {
    VDG_LOG(Warning) << "node " << node.plan.derivation.name()
                     << " failed permanently after "
                     << node.execution.attempts
                     << " attempts (last: " << reason << ")";
    FailNodePermanently(wf, index);
    return;
  }

  // Failover: when the current site is offline or benched, move to the
  // best usable alternate before retrying.
  if (options_.faults.enable_failover && !IsSiteUsable(node.current_site)) {
    std::vector<std::string> fallback;
    const std::vector<std::string>* candidates = &node.plan.candidate_sites;
    if (candidates->empty()) {
      fallback.push_back(node.plan.site);
      candidates = &fallback;
    }
    for (const std::string& candidate : *candidates) {
      if (candidate == node.current_site || !IsSiteUsable(candidate)) {
        continue;
      }
      VDG_LOG(Info) << "node " << node.plan.derivation.name()
                    << " failing over " << node.current_site << " -> "
                    << candidate;
      node.current_site = candidate;
      ++wf->result.recovery.failovers;
      break;
    }
  }
  ScheduleRetry(wf, index);
}

void WorkflowEngine::ScheduleRetry(WorkflowState* wf, size_t index) {
  NodeState& node = wf->nodes[index];
  double delay = BackoffDelay(node.execution.attempts);
  ++wf->result.recovery.backoff_waits;
  wf->result.recovery.total_backoff_s += delay;
  const uint64_t wf_id = wf->id;
  const uint64_t gen = node.generation;
  grid_->events().ScheduleAfter(delay, [this, wf_id, index, gen]() {
    WorkflowState* state = FindWorkflow(wf_id);
    if (state == nullptr) return;
    NodeState& n = state->nodes[index];
    if (n.generation != gen || n.done || n.failed) return;
    BeginAttempt(state, index);
  });
}

void WorkflowEngine::FailNodePermanently(WorkflowState* wf, size_t index) {
  NodeState& node = wf->nodes[index];
  node.failed = true;
  node.execution.succeeded = false;
  if (node.execution.end_time == 0) node.execution.end_time = grid_->now();
  ++wf->result.nodes_failed;
  SkipUnreachable(wf, index);
}

void WorkflowEngine::RederiveInput(WorkflowState* wf, size_t index,
                                   const std::string& input) {
  NodeState& node = wf->nodes[index];
  ++node.rederivations;
  ++wf->result.recovery.rederivations;

  // The catalog's replica records for this input are fiction now —
  // invalidate them so the recovery planner re-runs the derivation
  // instead of "fetching" from a site that lost the bytes.
  for (const Replica& replica : catalog_->ReplicasOf(input)) {
    if (!grid_->rls().ExistsAt(input, replica.site)) {
      ++wf->result.recovery.replicas_lost_detected;
      Status invalidated = writer_->InvalidateReplica(replica.id);
      if (!invalidated.ok()) {
        VDG_LOG(Warning) << "cannot invalidate lost replica "
                         << replica.id << ": " << invalidated.ToString();
      }
    }
  }

  const uint64_t wf_id = wf->id;
  const uint64_t gen = node.generation;
  auto finish_recovery = [this, wf_id, index, gen](bool succeeded) {
    WorkflowState* state = FindWorkflow(wf_id);
    if (state == nullptr) return;
    NodeState& n = state->nodes[index];
    if (!succeeded) n.recovery_failed = true;
    if (--n.pending_recoveries > 0) return;
    if (n.generation != gen || n.done || n.failed) return;
    bool failed = n.recovery_failed;
    n.recovery_failed = false;
    if (failed) {
      HandleNodeFailure(state, index, "re-derivation failed");
    } else {
      BeginStaging(state, index);
    }
  };

  RequestPlanner planner(*catalog_, grid_->topology(), &grid_->rls(),
                         recovery_estimator_);
  PlannerOptions popt;
  popt.target_site = node.current_site;
  popt.site_filter = [this](std::string_view site) {
    return IsSiteUsable(site);
  };
  Result<ExecutionPlan> plan = planner.Plan(input, popt);
  if (!plan.ok()) {
    VDG_LOG(Warning) << "cannot plan re-derivation of " << input << ": "
                     << plan.status().ToString();
    finish_recovery(false);
    return;
  }

  VDG_LOG(Info) << "re-deriving lost input " << input << " at "
                << node.current_site;
  Result<uint64_t> recovery_id = Submit(
      *plan,
      [this, wf_id, input, finish_recovery](const WorkflowResult& result) {
        if (result.succeeded) {
          // Record the recovery in provenance: the dataset was rebuilt
          // from its derivation after its replicas were lost.
          writer_->Annotate("dataset", input, "recovery.rederived", true);
          writer_->Annotate("dataset", input, "recovery.by_workflow",
                             static_cast<int64_t>(result.workflow_id));
          WorkflowState* parent = FindWorkflow(wf_id);
          if (parent != nullptr) {
            ++parent->result.recovery.datasets_regenerated;
          }
        }
        finish_recovery(result.succeeded);
      });
  if (!recovery_id.ok()) {
    VDG_LOG(Warning) << "cannot submit re-derivation of " << input << ": "
                     << recovery_id.status().ToString();
    finish_recovery(false);
  }
}

void WorkflowEngine::SkipUnreachable(WorkflowState* wf, size_t index) {
  wf->any_failure = true;
  --wf->remaining;
  // Everything downstream of a dead node can never run.
  std::vector<size_t> frontier{index};
  while (!frontier.empty()) {
    size_t current = frontier.back();
    frontier.pop_back();
    for (size_t dependent : wf->nodes[current].dependents) {
      NodeState& next = wf->nodes[dependent];
      if (next.failed || next.done) continue;
      next.failed = true;
      ++wf->result.nodes_skipped;
      --wf->remaining;
      frontier.push_back(dependent);
    }
  }
  MaybeFinishWorkflow(wf);
}

void WorkflowEngine::MaybeFinishWorkflow(WorkflowState* wf) {
  if (wf->remaining > 0) return;
  if (wf->any_failure) {
    CompleteWorkflow(wf);
    return;
  }
  RunFetches(wf);
}

void WorkflowEngine::RunFetches(WorkflowState* wf) {
  if (wf->fetches.empty()) {
    CompleteWorkflow(wf);
    return;
  }
  const uint64_t wf_id = wf->id;
  const size_t fetch_count = wf->fetches.size();
  wf->pending_fetches = fetch_count;
  for (size_t i = 0; i < fetch_count; ++i) {
    // A fetch can finish synchronously (dataset already at the
    // destination, or a rejected submit past the retry budget). If the
    // last one completes the workflow, the state is erased out from
    // under this loop — re-resolve it by id every iteration.
    WorkflowState* state = FindWorkflow(wf_id);
    if (state == nullptr) return;
    RunFetch(state, i);
  }
}

void WorkflowEngine::RunFetch(WorkflowState* wf, size_t fetch_index) {
  FetchState& fetch = wf->fetches[fetch_index];
  ++fetch.attempts;
  const std::string& dataset = fetch.plan.dataset;
  const std::string& to_site = fetch.plan.to_site;

  // Re-resolve the source each attempt: the planned source may have
  // crashed, and a retry should pull from whoever still has the bytes.
  std::string from_site = fetch.plan.from_site;
  int64_t bytes = fetch.plan.bytes;
  Result<PhysicalLocation> best =
      grid_->rls().BestSource(dataset, to_site, grid_->topology());
  if (best.ok()) {
    if (best->site == to_site) {
      // Already at the destination — nothing to move.
      FinishFetch(wf, fetch_index, true);
      return;
    }
    from_site = best->site;
    if (best->size_bytes > 0) bytes = best->size_bytes;
  }

  wf->result.transfers++;
  wf->result.bytes_staged += bytes;
  ++wf->result.recovery.transfer_attempts;
  const uint64_t wf_id = wf->id;
  Result<uint64_t> submitted = grid_->SubmitTransfer(
      from_site, to_site, bytes,
      [this, wf_id, fetch_index, dataset, to_site,
       bytes](const TransferResult& result) {
        WorkflowState* state = FindWorkflow(wf_id);
        if (state == nullptr) return;
        FetchState& f = state->fetches[fetch_index];
        if (f.done) return;
        if (!result.succeeded) {
          ++state->result.recovery.transfer_failures;
          if (f.attempts > options_.max_retries) {
            FinishFetch(state, fetch_index, false);
            return;
          }
          double delay = BackoffDelay(f.attempts);
          ++state->result.recovery.backoff_waits;
          state->result.recovery.total_backoff_s += delay;
          grid_->events().ScheduleAfter(delay, [this, wf_id,
                                                fetch_index]() {
            WorkflowState* s = FindWorkflow(wf_id);
            if (s == nullptr || s->fetches[fetch_index].done) return;
            RunFetch(s, fetch_index);
          });
          return;
        }
        Status placed = grid_->PlaceFile(to_site, dataset, bytes);
        if (!placed.ok() && !placed.IsAlreadyExists()) {
          VDG_LOG(Warning) << "fetch placement failed: "
                           << placed.ToString();
        }
        FinishFetch(state, fetch_index, true);
      });
  if (!submitted.ok()) {
    ++wf->result.recovery.submit_rejections;
    if (fetch.attempts > options_.max_retries) {
      FinishFetch(wf, fetch_index, false);
      return;
    }
    double delay = BackoffDelay(fetch.attempts);
    ++wf->result.recovery.backoff_waits;
    wf->result.recovery.total_backoff_s += delay;
    grid_->events().ScheduleAfter(delay, [this, wf_id, fetch_index]() {
      WorkflowState* s = FindWorkflow(wf_id);
      if (s == nullptr || s->fetches[fetch_index].done) return;
      RunFetch(s, fetch_index);
    });
  }
}

void WorkflowEngine::FinishFetch(WorkflowState* wf, size_t fetch_index,
                                 bool succeeded) {
  FetchState& fetch = wf->fetches[fetch_index];
  if (fetch.done) return;
  fetch.done = true;
  if (!succeeded) wf->any_failure = true;
  if (--wf->pending_fetches == 0) CompleteWorkflow(wf);
}

void WorkflowEngine::CompleteWorkflow(WorkflowState* wf) {
  wf->result.succeeded = !wf->any_failure;
  wf->result.end_time = grid_->now();
  wf->result.makespan_s = wf->result.end_time - wf->start_time;

  std::vector<NodeExecution> executions;
  executions.reserve(wf->nodes.size());
  for (const NodeState& node : wf->nodes) {
    executions.push_back(node.execution);
  }
  finished_executions_.emplace(wf->id, std::move(executions));
  finished_plans_.emplace(wf->id,
                          std::make_pair(wf->plan, wf->result.succeeded));

  WorkflowResult result = wf->result;
  CompletionCallback on_done = std::move(wf->on_done);
  workflows_.erase(wf->id);
  if (on_done) on_done(result);
}

void WorkflowEngine::RecordProvenance(WorkflowState* wf, NodeState* node,
                                      const JobResult& job) {
  (void)wf;
  const PlanNode& plan = node->plan;
  // All reads up front (they hit the local catalog snapshot), then the
  // whole write-back ships as ONE batch: over an RPC transport that is
  // one round trip instead of one per replica/size/invocation/
  // annotation, and the catalog commits it under a single version bump
  // and journal flush.
  std::vector<CatalogMutation> batch;

  // Synthesized sub-derivations (compound expansion) may not exist in
  // the catalog yet; define them so invocations have an anchor.
  if (!catalog_->HasDerivation(plan.derivation.name())) {
    batch.push_back(CatalogMutation::DefineDerivation(plan.derivation));
  }

  Invocation iv;
  iv.derivation = plan.derivation.name();
  iv.context.site = job.site;
  iv.context.host = job.host;
  iv.start_time = job.start_time;
  iv.duration_s = job.end_time - job.start_time;
  iv.cpu_seconds = job.cpu_seconds;
  iv.exit_code = 0;
  iv.succeeded = true;

  // Consumed replicas: the first valid catalog replica of each input.
  for (const std::string& input : plan.inputs) {
    std::vector<Replica> replicas = catalog_->ReplicasOf(input);
    if (!replicas.empty()) iv.consumed_replicas.push_back(replicas[0].id);
  }

  int64_t input_bytes = InputBytes(plan);
  std::vector<size_t> replica_ops;
  for (const std::string& output : plan.outputs) {
    int64_t bytes = OutputBytes(plan, output, input_bytes);
    Replica replica;
    replica.dataset = output;
    replica.site = job.site;
    replica.storage_element = "se0";
    replica.physical_path = "/" + job.site + "/" + output;
    replica.size_bytes = bytes;
    replica.created_at = job.end_time;
    replica_ops.push_back(batch.size());
    batch.push_back(CatalogMutation::AddReplica(std::move(replica)));
    Result<Dataset> ds = catalog_->GetDataset(output);
    if (ds.ok() && ds->size_bytes == 0) {
      batch.push_back(CatalogMutation::SetDatasetSize(output, bytes));
    }
  }
  // The invocation's produced_replicas are the ids the AddReplica ops
  // above will be assigned when the batch runs.
  batch.push_back(
      CatalogMutation::RecordInvocation(std::move(iv), replica_ops));
  const int attempts = node->execution.attempts;
  if (attempts > 1) {
    // Recovery leaves its mark: an invocation that only succeeded
    // after retries records how hard it was.
    batch.push_back(CatalogMutation::AnnotateAssigned(
        "invocation", batch.size() - 1, "recovery.attempts",
        static_cast<int64_t>(attempts)));
  }

  BatchOptions options;
  options.stop_on_error = true;  // a half-written step is worse than none
  Result<BatchResult> applied = writer_->ApplyBatch(batch, options);
  if (!applied.ok()) {
    VDG_LOG(Warning) << "provenance write-back failed: "
                     << applied.status().ToString();
  } else if (!applied->first_error.ok()) {
    VDG_LOG(Warning) << "provenance write-back incomplete ("
                     << applied->applied << "/" << batch.size()
                     << " ops): " << applied->first_error.ToString();
  }
}

Result<WorkflowResult> WorkflowEngine::Execute(const ExecutionPlan& plan) {
  WorkflowResult captured;
  bool finished = false;
  VDG_ASSIGN_OR_RETURN(uint64_t id,
                       Submit(plan, [&](const WorkflowResult& result) {
                         captured = result;
                         finished = true;
                       }));
  (void)id;
  grid_->RunUntilIdle();
  if (!finished) {
    return Status::Internal("workflow did not complete after event drain");
  }
  return captured;
}

Result<std::vector<NodeExecution>> WorkflowEngine::ExecutionsOf(
    uint64_t workflow_id) const {
  auto it = finished_executions_.find(workflow_id);
  if (it == finished_executions_.end()) {
    return Status::NotFound("no finished workflow with id " +
                            std::to_string(workflow_id));
  }
  return it->second;
}

Result<ExecutionPlan> WorkflowEngine::RescueOf(uint64_t workflow_id) const {
  auto plan_it = finished_plans_.find(workflow_id);
  auto exec_it = finished_executions_.find(workflow_id);
  if (plan_it == finished_plans_.end() ||
      exec_it == finished_executions_.end()) {
    return Status::NotFound("no finished workflow with id " +
                            std::to_string(workflow_id));
  }
  const ExecutionPlan& original = plan_it->second.first;
  const bool succeeded = plan_it->second.second;
  const std::vector<NodeExecution>& executions = exec_it->second;

  ExecutionPlan rescue;
  rescue.target_dataset = original.target_dataset;
  rescue.target_site = original.target_site;
  rescue.mode = original.mode;
  if (succeeded) return rescue;  // nothing to rescue

  // Keep only the nodes that did not complete; dependencies on
  // succeeded nodes are dropped (their outputs are materialized and
  // stage like any other input), dependencies between surviving nodes
  // are remapped to rescue indices.
  std::map<size_t, size_t> remap;
  for (size_t i = 0; i < original.nodes.size(); ++i) {
    if (i < executions.size() && executions[i].succeeded) continue;
    remap.emplace(i, remap.size());
  }
  for (const auto& [old_index, new_index] : remap) {
    (void)new_index;
    PlanNode node = original.nodes[old_index];
    node.staging.clear();  // recomputed live at run time
    std::vector<size_t> deps;
    for (size_t dep : node.deps) {
      auto it = remap.find(dep);
      if (it != remap.end()) deps.push_back(it->second);
    }
    node.deps = std::move(deps);
    rescue.est_compute_s += node.est_runtime_s;
    rescue.nodes.push_back(std::move(node));
  }
  rescue.fetches = original.fetches;
  return rescue;
}

}  // namespace vdg
