#ifndef VDG_EXECUTOR_EXECUTOR_H_
#define VDG_EXECUTOR_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/client.h"
#include "estimator/estimator.h"
#include "grid/simulator.h"
#include "planner/plan.h"

namespace vdg {

/// Execution record of one plan node.
struct NodeExecution {
  std::string derivation;
  std::string site;
  std::string host;
  SimTime start_time = 0;
  SimTime end_time = 0;
  int attempts = 0;
  bool succeeded = false;
};

/// Aggregate fault/recovery accounting for one workflow run. Every
/// counter is deterministic under a fixed grid seed, so two identical
/// runs produce bit-identical stats (asserted by the recovery tests).
struct RecoveryStats {
  uint64_t job_attempts = 0;        // jobs actually submitted
  uint64_t job_failures = 0;        // job completions with succeeded=false
  uint64_t transfer_attempts = 0;   // staging/fetch transfers submitted
  uint64_t transfer_failures = 0;   // transfer completions that failed
  uint64_t submit_rejections = 0;   // Unavailable at submit time (outage)
  uint64_t backoff_waits = 0;       // scheduled retry delays
  double total_backoff_s = 0;       // simulated seconds spent backing off
  uint64_t node_timeouts = 0;       // attempts abandoned past the deadline
  uint64_t failovers = 0;           // node moved to an alternate site
  uint64_t sites_blacklisted = 0;   // cooldowns imposed on flaky sites
  uint64_t replicas_lost_detected = 0;  // catalog replicas with no bytes
  uint64_t rederivations = 0;       // recovery sub-workflows launched
  uint64_t datasets_regenerated = 0;    // lost inputs rebuilt successfully
};

/// Outcome of one workflow run.
struct WorkflowResult {
  uint64_t workflow_id = 0;
  bool succeeded = false;
  SimTime start_time = 0;
  SimTime end_time = 0;
  double makespan_s = 0;
  size_t nodes_total = 0;
  size_t nodes_succeeded = 0;
  size_t nodes_failed = 0;   // nodes that exhausted retries
  size_t nodes_skipped = 0;  // unreachable after an upstream failure
  uint64_t transfers = 0;
  int64_t bytes_staged = 0;
  RecoveryStats recovery;
};

/// How the engine reacts to faults: retry pacing, abandonment
/// deadlines, site health tracking, and virtual-data re-derivation of
/// lost inputs. All durations are simulated seconds.
struct FaultPolicy {
  /// First retry delay; attempt n waits base * multiplier^(n-1),
  /// capped at backoff_max_s.
  double backoff_base_s = 5.0;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 300.0;
  /// Abandon a running attempt after this long (0 = never). The late
  /// completion, if any, is ignored; the retry path takes over.
  double node_timeout_s = 0;
  /// Consecutive failures at one site before it is benched
  /// (0 = never blacklist).
  int blacklist_threshold = 3;
  /// How long a blacklisted site sits out.
  double blacklist_cooldown_s = 600.0;
  /// Retry on an alternate candidate site when the current one is
  /// offline or blacklisted (candidate_sites from the planner).
  bool enable_failover = true;
  /// When an input's catalog replicas have no physically resident
  /// bytes, invalidate them and re-derive the input from its recorded
  /// derivation (the virtual-data promise). Off by default: the seed
  /// behaviour trusts catalog replica records as-is.
  bool rederive_lost_inputs = false;
  /// Ceiling on recovery sub-workflows per node per attempt chain.
  int max_rederivations_per_node = 2;
};

struct ExecutorOptions {
  /// Extra attempts after the first failure of a node's job.
  int max_retries = 2;
  /// Record invocations + output replicas + sizes into the catalog.
  bool record_provenance = true;
  /// Default nominal runtime when a transformation carries no
  /// `sim.runtime_s` annotation.
  double default_runtime_s = 10.0;
  /// Default output size when nothing specifies one.
  int64_t default_output_bytes = 1 << 20;
  /// Fault handling knobs.
  FaultPolicy faults;
};

/// DAGMan-style workflow execution (Section 5.4): dispatches plan
/// nodes to the simulated grid when their predecessors complete,
/// stages inputs, retries failures, and writes the resulting
/// invocation/replica records back into the catalog — turning virtual
/// data into real data plus provenance.
///
/// Fault tolerance: every failure — a job that dies, a transfer that
/// drops, a submit rejected by an offline site, an attempt that blows
/// its deadline — funnels into one recovery path that backs off
/// exponentially in simulated time, fails over onto alternate
/// candidate sites, benches sites that fail repeatedly, and (when
/// enabled) re-derives inputs whose replicas were lost, recording the
/// recovery in provenance. A workflow fails a node only after
/// max_retries + 1 attempts.
///
/// Runtime model: each transformation's simulated behaviour is
/// self-described through annotations on the transformation object:
///   sim.runtime_s        — base nominal runtime (seconds)
///   sim.runtime_s_per_mb — added per MiB of input
///   sim.output_mb        — size of each produced output (MiB)
///   sim.output_ratio     — alternative: output = ratio x input bytes
class WorkflowEngine {
 public:
  using CompletionCallback = std::function<void(const WorkflowResult&)>;

  WorkflowEngine(GridSimulator* grid, VirtualDataCatalog* catalog,
                 ExecutorOptions options = {})
      : grid_(grid),
        catalog_(catalog),
        writer_(std::make_shared<InProcessCatalogClient>(catalog)),
        options_(options) {}

  /// Routes all catalog *writes* (derivations, replicas, invocations,
  /// annotations) through `writer` instead of the default in-process
  /// client, so provenance recording can be observed, cached, or sent
  /// over a (simulated) wire. Reads stay on the local catalog: the
  /// hot scheduling path must not pay transport costs. `writer` must
  /// target the same catalog and must not be read-only. Call before
  /// submitting work.
  void set_catalog_writer(std::shared_ptr<CatalogClient> writer) {
    writer_ = std::move(writer);
  }

  /// Enqueues a workflow; `on_done` fires in simulated time when it
  /// finishes. Multiple workflows may be in flight concurrently.
  Result<uint64_t> Submit(const ExecutionPlan& plan,
                          CompletionCallback on_done);

  /// Submit + drive the event loop until everything (including other
  /// outstanding work) drains; returns this workflow's result.
  Result<WorkflowResult> Execute(const ExecutionPlan& plan);

  /// Per-node execution records of a finished workflow.
  Result<std::vector<NodeExecution>> ExecutionsOf(uint64_t workflow_id) const;

  /// Rescue plan for a finished workflow (the DAGMan rescue-DAG
  /// analog): the sub-plan containing only the nodes that failed or
  /// were skipped, with dependency edges remapped and staging left to
  /// be recomputed at run time. Submitting it resumes the workflow
  /// where it died. Succeeded nodes are not re-run — their outputs are
  /// already materialized and the rescue nodes stage from them.
  Result<ExecutionPlan> RescueOf(uint64_t workflow_id) const;

  /// True when `site` is currently accepting work from this engine:
  /// online and not sitting out a blacklist cooldown.
  bool IsSiteUsable(std::string_view site) const;

  uint64_t workflows_submitted() const { return next_workflow_id_ - 1; }

 private:
  struct NodeState {
    PlanNode plan;
    size_t pending_deps = 0;
    size_t pending_transfers = 0;
    std::vector<size_t> dependents;
    NodeExecution execution;
    bool done = false;
    bool failed = false;
    /// Site of the current attempt (failover moves it off plan.site).
    std::string current_site;
    /// Invalidates stale async callbacks: bumped whenever the node
    /// abandons an attempt, so a late job completion, transfer, or
    /// timeout from the abandoned attempt is ignored.
    uint64_t generation = 0;
    int rederivations = 0;          // recovery sub-workflows launched
    size_t pending_recoveries = 0;  // recovery sub-workflows in flight
    bool recovery_failed = false;
  };
  struct FetchState {
    TransferPlan plan;
    int attempts = 0;
    bool done = false;
  };
  struct WorkflowState {
    uint64_t id = 0;
    ExecutionPlan plan;
    std::vector<NodeState> nodes;
    std::vector<FetchState> fetches;
    size_t remaining = 0;  // nodes not yet finished (or skipped)
    size_t pending_fetches = 0;
    bool any_failure = false;
    SimTime start_time = 0;
    WorkflowResult result;
    CompletionCallback on_done;
  };
  /// Consecutive-failure tracking per site (shared by all workflows).
  struct SiteHealth {
    int consecutive_failures = 0;
    SimTime blacklisted_until = -1;
  };

  void StartNode(WorkflowState* wf, size_t index);
  void BeginAttempt(WorkflowState* wf, size_t index);
  void BeginStaging(WorkflowState* wf, size_t index);
  void LaunchJob(WorkflowState* wf, size_t index);
  void FinishNode(WorkflowState* wf, size_t index, const JobResult& job);
  /// The single retry funnel: backoff + failover, or permanent failure
  /// once the attempt budget is spent.
  void HandleNodeFailure(WorkflowState* wf, size_t index,
                         const char* reason);
  void FailNodePermanently(WorkflowState* wf, size_t index);
  void RederiveInput(WorkflowState* wf, size_t index,
                     const std::string& input);
  void SkipUnreachable(WorkflowState* wf, size_t index);
  void MaybeFinishWorkflow(WorkflowState* wf);
  void RunFetches(WorkflowState* wf);
  void RunFetch(WorkflowState* wf, size_t fetch_index);
  void FinishFetch(WorkflowState* wf, size_t fetch_index, bool succeeded);
  void CompleteWorkflow(WorkflowState* wf);

  WorkflowState* FindWorkflow(uint64_t id);
  double BackoffDelay(int attempt) const;
  void ScheduleRetry(WorkflowState* wf, size_t index);
  void NoteSiteFailure(const std::string& site, WorkflowState* wf);
  void NoteSiteSuccess(const std::string& site);

  double NominalRuntime(const PlanNode& node) const;
  int64_t OutputBytes(const PlanNode& node, std::string_view output,
                      int64_t input_bytes) const;
  int64_t InputBytes(const PlanNode& node) const;
  int64_t StagedBytes(const std::string& dataset) const;
  void RecordProvenance(WorkflowState* wf, NodeState* node,
                        const JobResult& job);

  GridSimulator* grid_;
  VirtualDataCatalog* catalog_;
  /// Write-side catalog access (see the writer constructor).
  std::shared_ptr<CatalogClient> writer_;
  ExecutorOptions options_;
  /// Estimator backing recovery re-planning (re-derivation of lost
  /// inputs builds a fresh RequestPlanner around it).
  CostEstimator recovery_estimator_;
  uint64_t next_workflow_id_ = 1;
  std::map<uint64_t, std::unique_ptr<WorkflowState>> workflows_;
  std::map<uint64_t, std::vector<NodeExecution>> finished_executions_;
  /// Plan + final success of each finished workflow, kept for RescueOf.
  std::map<uint64_t, std::pair<ExecutionPlan, bool>> finished_plans_;
  std::map<std::string, SiteHealth, std::less<>> site_health_;
};

}  // namespace vdg

#endif  // VDG_EXECUTOR_EXECUTOR_H_
