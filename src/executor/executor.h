#ifndef VDG_EXECUTOR_EXECUTOR_H_
#define VDG_EXECUTOR_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "grid/simulator.h"
#include "planner/plan.h"

namespace vdg {

/// Execution record of one plan node.
struct NodeExecution {
  std::string derivation;
  std::string site;
  std::string host;
  SimTime start_time = 0;
  SimTime end_time = 0;
  int attempts = 0;
  bool succeeded = false;
};

/// Outcome of one workflow run.
struct WorkflowResult {
  uint64_t workflow_id = 0;
  bool succeeded = false;
  SimTime start_time = 0;
  SimTime end_time = 0;
  double makespan_s = 0;
  size_t nodes_total = 0;
  size_t nodes_succeeded = 0;
  size_t nodes_failed = 0;   // nodes that exhausted retries
  size_t nodes_skipped = 0;  // unreachable after an upstream failure
  uint64_t transfers = 0;
  int64_t bytes_staged = 0;
};

struct ExecutorOptions {
  /// Extra attempts after the first failure of a node's job.
  int max_retries = 2;
  /// Record invocations + output replicas + sizes into the catalog.
  bool record_provenance = true;
  /// Default nominal runtime when a transformation carries no
  /// `sim.runtime_s` annotation.
  double default_runtime_s = 10.0;
  /// Default output size when nothing specifies one.
  int64_t default_output_bytes = 1 << 20;
};

/// DAGMan-style workflow execution (Section 5.4): dispatches plan
/// nodes to the simulated grid when their predecessors complete,
/// stages inputs, retries failures, and writes the resulting
/// invocation/replica records back into the catalog — turning virtual
/// data into real data plus provenance.
///
/// Runtime model: each transformation's simulated behaviour is
/// self-described through annotations on the transformation object:
///   sim.runtime_s        — base nominal runtime (seconds)
///   sim.runtime_s_per_mb — added per MiB of input
///   sim.output_mb        — size of each produced output (MiB)
///   sim.output_ratio     — alternative: output = ratio x input bytes
class WorkflowEngine {
 public:
  using CompletionCallback = std::function<void(const WorkflowResult&)>;

  WorkflowEngine(GridSimulator* grid, VirtualDataCatalog* catalog,
                 ExecutorOptions options = {})
      : grid_(grid), catalog_(catalog), options_(options) {}

  /// Enqueues a workflow; `on_done` fires in simulated time when it
  /// finishes. Multiple workflows may be in flight concurrently.
  Result<uint64_t> Submit(const ExecutionPlan& plan,
                          CompletionCallback on_done);

  /// Submit + drive the event loop until everything (including other
  /// outstanding work) drains; returns this workflow's result.
  Result<WorkflowResult> Execute(const ExecutionPlan& plan);

  /// Per-node execution records of a finished workflow.
  Result<std::vector<NodeExecution>> ExecutionsOf(uint64_t workflow_id) const;

  uint64_t workflows_submitted() const { return next_workflow_id_ - 1; }

 private:
  struct NodeState {
    PlanNode plan;
    size_t pending_deps = 0;
    size_t pending_transfers = 0;
    std::vector<size_t> dependents;
    NodeExecution execution;
    bool done = false;
    bool failed = false;
  };
  struct WorkflowState {
    uint64_t id = 0;
    ExecutionPlan plan;
    std::vector<NodeState> nodes;
    size_t remaining = 0;  // nodes not yet finished (or skipped)
    size_t pending_fetches = 0;
    bool any_failure = false;
    SimTime start_time = 0;
    WorkflowResult result;
    CompletionCallback on_done;
  };

  void StartNode(WorkflowState* wf, size_t index);
  void LaunchJob(WorkflowState* wf, size_t index);
  void FinishNode(WorkflowState* wf, size_t index, const JobResult& job);
  void SkipUnreachable(WorkflowState* wf, size_t index);
  void MaybeFinishWorkflow(WorkflowState* wf);
  void RunFetches(WorkflowState* wf);
  void CompleteWorkflow(WorkflowState* wf);

  double NominalRuntime(const PlanNode& node) const;
  int64_t OutputBytes(const PlanNode& node, std::string_view output,
                      int64_t input_bytes) const;
  int64_t InputBytes(const PlanNode& node) const;
  void RecordProvenance(WorkflowState* wf, NodeState* node,
                        const JobResult& job);

  GridSimulator* grid_;
  VirtualDataCatalog* catalog_;
  ExecutorOptions options_;
  uint64_t next_workflow_id_ = 1;
  std::map<uint64_t, std::unique_ptr<WorkflowState>> workflows_;
  std::map<uint64_t, std::vector<NodeExecution>> finished_executions_;
};

}  // namespace vdg

#endif  // VDG_EXECUTOR_EXECUTOR_H_
