#include "types/type_system.h"

#include <algorithm>

#include "common/strings.h"

namespace vdg {

std::string_view TypeDimensionBaseName(TypeDimension dim) {
  switch (dim) {
    case TypeDimension::kContent:
      return "Dataset-content";
    case TypeDimension::kFormat:
      return "Dataset-format";
    case TypeDimension::kEncoding:
      return "Dataset-encoding";
  }
  return "Dataset";
}

std::string_view TypeDimensionName(TypeDimension dim) {
  switch (dim) {
    case TypeDimension::kContent:
      return "content";
    case TypeDimension::kFormat:
      return "format";
    case TypeDimension::kEncoding:
      return "encoding";
  }
  return "?";
}

TypeHierarchy::TypeHierarchy(TypeDimension dimension)
    : dimension_(dimension), base_name_(TypeDimensionBaseName(dimension)) {}

Status TypeHierarchy::Define(std::string_view name, std::string_view parent) {
  if (!IsValidIdentifier(name)) {
    return Status::InvalidArgument("invalid type name: " + std::string(name));
  }
  if (name == base_name_) {
    return Status::InvalidArgument("cannot redefine dimension base " +
                                   base_name_);
  }
  if (parent != base_name_ && !Contains(parent)) {
    return Status::NotFound("parent type not defined: " + std::string(parent));
  }
  auto [it, inserted] =
      parent_.emplace(std::string(name), std::string(parent));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("type already defined: " + std::string(name));
  }
  return Status::OK();
}

bool TypeHierarchy::Contains(std::string_view name) const {
  return parent_.find(name) != parent_.end();
}

Result<std::string> TypeHierarchy::ParentOf(std::string_view name) const {
  auto it = parent_.find(name);
  if (it == parent_.end()) {
    return Status::NotFound("type not defined: " + std::string(name));
  }
  return it->second;
}

bool TypeHierarchy::IsSubtypeOf(std::string_view name,
                                std::string_view ancestor) const {
  if (name == ancestor) return name == base_name_ || Contains(name);
  if (!Contains(name)) return false;
  std::string_view cur = name;
  while (true) {
    auto it = parent_.find(cur);
    if (it == parent_.end()) return false;  // walked past a defined chain
    if (it->second == ancestor) return true;
    if (it->second == base_name_) return ancestor == base_name_;
    cur = it->second;
  }
}

Result<std::vector<std::string>> TypeHierarchy::AncestryOf(
    std::string_view name) const {
  if (name == base_name_) return std::vector<std::string>{base_name_};
  if (!Contains(name)) {
    return Status::NotFound("type not defined: " + std::string(name));
  }
  std::vector<std::string> out;
  std::string cur(name);
  out.push_back(cur);
  while (cur != base_name_) {
    auto it = parent_.find(cur);
    if (it == parent_.end()) break;
    cur = it->second;
    out.push_back(cur);
  }
  return out;
}

std::vector<std::string> TypeHierarchy::ChildrenOf(
    std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [child, parent] : parent_) {
    if (parent == name) out.push_back(child);
  }
  return out;  // map iteration order is already sorted
}

NameList TypeHierarchy::AllTypes() const {
  std::vector<std::string> out;
  out.reserve(parent_.size());
  for (const auto& [name, parent] : parent_) {
    (void)parent;
    out.push_back(name);
  }
  return NameList::FromStrings(std::move(out));
}

Result<int> TypeHierarchy::DepthOf(std::string_view name) const {
  VDG_ASSIGN_OR_RETURN(std::vector<std::string> chain, AncestryOf(name));
  return static_cast<int>(chain.size()) - 1;
}

const std::string& DatasetType::component(TypeDimension dim) const {
  switch (dim) {
    case TypeDimension::kContent:
      return content;
    case TypeDimension::kFormat:
      return format;
    case TypeDimension::kEncoding:
      return encoding;
  }
  return content;
}

std::string& DatasetType::component(TypeDimension dim) {
  switch (dim) {
    case TypeDimension::kContent:
      return content;
    case TypeDimension::kFormat:
      return format;
    case TypeDimension::kEncoding:
      return encoding;
  }
  return content;
}

std::string DatasetType::ToString() const {
  auto piece = [](const std::string& s) { return s.empty() ? "*" : s.c_str(); };
  std::string out;
  out += piece(content);
  out += "/";
  out += piece(format);
  out += "/";
  out += piece(encoding);
  return out;
}

Result<DatasetType> DatasetType::Parse(std::string_view text) {
  std::string_view trimmed = StrTrim(text);
  if (trimmed == "Dataset" || trimmed == "*" || trimmed.empty()) {
    return DatasetType::Any();
  }
  std::vector<std::string> parts = StrSplit(trimmed, '/');
  if (parts.size() > 3) {
    return Status::ParseError("dataset type has more than 3 components: " +
                              std::string(text));
  }
  DatasetType out;
  for (int i = 0; i < static_cast<int>(parts.size()); ++i) {
    std::string_view p = StrTrim(parts[i]);
    if (p == "*" || p.empty()) continue;
    if (!IsValidIdentifier(p)) {
      return Status::ParseError("invalid type component: " + std::string(p));
    }
    out.component(static_cast<TypeDimension>(i)) = std::string(p);
  }
  return out;
}

TypeRegistry::TypeRegistry() {
  hierarchies_.reserve(kNumTypeDimensions);
  for (int i = 0; i < kNumTypeDimensions; ++i) {
    hierarchies_.emplace_back(static_cast<TypeDimension>(i));
  }
}

Status TypeRegistry::Define(TypeDimension dim, std::string_view name,
                            std::string_view parent) {
  return dimension(dim).Define(name, parent);
}

Status TypeRegistry::Validate(const DatasetType& type) const {
  for (int i = 0; i < kNumTypeDimensions; ++i) {
    auto dim = static_cast<TypeDimension>(i);
    const std::string& comp = type.component(dim);
    if (comp.empty()) continue;
    const TypeHierarchy& h = dimension(dim);
    if (comp != h.base_name() && !h.Contains(comp)) {
      return Status::TypeError("unknown " +
                               std::string(TypeDimensionName(dim)) +
                               " type: " + comp);
    }
  }
  return Status::OK();
}

bool TypeRegistry::Conforms(const DatasetType& actual,
                            const DatasetType& formal) const {
  for (int i = 0; i < kNumTypeDimensions; ++i) {
    auto dim = static_cast<TypeDimension>(i);
    const std::string& want = formal.component(dim);
    if (want.empty()) continue;  // unconstrained dimension
    const TypeHierarchy& h = dimension(dim);
    std::string_view have = actual.component(dim);
    if (have.empty()) have = h.base_name();
    std::string_view want_name =
        want == h.base_name() ? h.base_name() : std::string_view(want);
    if (want_name == h.base_name()) continue;  // base accepts anything
    if (!h.IsSubtypeOf(have, want_name)) return false;
  }
  return true;
}

bool TypeRegistry::ConformsToAny(
    const DatasetType& actual,
    const std::vector<DatasetType>& formal_union) const {
  if (formal_union.empty()) return true;
  for (const DatasetType& formal : formal_union) {
    if (Conforms(actual, formal)) return true;
  }
  return false;
}

DatasetType TypeRegistry::CommonSupertype(const DatasetType& a,
                                          const DatasetType& b) const {
  DatasetType out;
  for (int i = 0; i < kNumTypeDimensions; ++i) {
    auto dim = static_cast<TypeDimension>(i);
    const TypeHierarchy& h = dimension(dim);
    const std::string& ca = a.component(dim);
    const std::string& cb = b.component(dim);
    if (ca.empty() || cb.empty()) continue;  // base dominates
    auto chain_a = h.AncestryOf(ca);
    auto chain_b = h.AncestryOf(cb);
    if (!chain_a.ok() || !chain_b.ok()) continue;
    // Find the deepest name present in both ancestry chains.
    for (const std::string& anc : *chain_a) {
      if (std::find(chain_b->begin(), chain_b->end(), anc) !=
          chain_b->end()) {
        if (anc != h.base_name()) out.component(dim) = anc;
        break;
      }
    }
  }
  return out;
}

Status TypeRegistry::LoadAppendixCPreset() {
  struct Entry {
    TypeDimension dim;
    const char* name;
    const char* parent;  // nullptr => dimension base
  };
  static const Entry kEntries[] = {
      // Dimension: Dataset-format
      {TypeDimension::kFormat, "Fileset", nullptr},
      {TypeDimension::kFormat, "Simple", "Fileset"},
      {TypeDimension::kFormat, "Multi-file-list", "Fileset"},
      {TypeDimension::kFormat, "Tar-archive", "Fileset"},
      {TypeDimension::kFormat, "Zip-archive", "Fileset"},
      {TypeDimension::kFormat, "Spreadsheet", nullptr},
      {TypeDimension::kFormat, "Excel-95", "Spreadsheet"},
      {TypeDimension::kFormat, "Excel-2000", "Spreadsheet"},
      {TypeDimension::kFormat, "Relation", nullptr},
      {TypeDimension::kFormat, "SQL-table", "Relation"},
      {TypeDimension::kFormat, "SQL-table-set", "Relation"},
      {TypeDimension::kFormat, "SQL-table-keyrange", "Relation"},
      // Dimension: Dataset-encoding
      {TypeDimension::kEncoding, "Text", nullptr},
      {TypeDimension::kEncoding, "ASCII", "Text"},
      {TypeDimension::kEncoding, "DOS-text", "ASCII"},
      {TypeDimension::kEncoding, "UNIX-text", "ASCII"},
      {TypeDimension::kEncoding, "EBCDIC", "Text"},
      {TypeDimension::kEncoding, "MVS-Text", "EBCDIC"},
      {TypeDimension::kEncoding, "Unicode", "Text"},
      {TypeDimension::kEncoding, "Table", nullptr},
      {TypeDimension::kEncoding, "Tab-separated-table", "Table"},
      {TypeDimension::kEncoding, "Comma-separated-table", "Table"},
      {TypeDimension::kEncoding, "HDF-file", nullptr},
      {TypeDimension::kEncoding, "HDF-4-file", "HDF-file"},
      {TypeDimension::kEncoding, "HDF-5-file", "HDF-file"},
      {TypeDimension::kEncoding, "SPSS", nullptr},
      {TypeDimension::kEncoding, "SPSS-portable", "SPSS"},
      {TypeDimension::kEncoding, "SPSS-native", "SPSS"},
      {TypeDimension::kEncoding, "SAS", nullptr},
      {TypeDimension::kEncoding, "SAS-transport", "SAS"},
      {TypeDimension::kEncoding, "SAS-native", "SAS"},
      // Dimension: Dataset-content
      {TypeDimension::kContent, "UChicago", nullptr},
      {TypeDimension::kContent, "UChicago-student-record", "UChicago"},
      {TypeDimension::kContent, "UChicago-class-record", "UChicago"},
      {TypeDimension::kContent, "CMS", nullptr},
      {TypeDimension::kContent, "Simulation", "CMS"},
      {TypeDimension::kContent, "Zebra-file", "Simulation"},
      {TypeDimension::kContent, "Geant-4-file", "Simulation"},
      {TypeDimension::kContent, "Analysis", "CMS"},
      {TypeDimension::kContent, "ROOT-IO-file", "Analysis"},
      {TypeDimension::kContent, "PAW-ntuple-file", "Analysis"},
      {TypeDimension::kContent, "SDSS", nullptr},
      {TypeDimension::kContent, "FITS-file", "SDSS"},
      {TypeDimension::kContent, "Object-map", "SDSS"},
      {TypeDimension::kContent, "Spectrometry-raw", "SDSS"},
      {TypeDimension::kContent, "Image-raw", "SDSS"},
  };
  for (const Entry& e : kEntries) {
    std::string_view parent =
        e.parent != nullptr ? std::string_view(e.parent)
                            : TypeDimensionBaseName(e.dim);
    VDG_RETURN_IF_ERROR(Define(e.dim, e.name, parent));
  }
  return Status::OK();
}

size_t TypeRegistry::size() const {
  size_t total = 0;
  for (const TypeHierarchy& h : hierarchies_) total += h.size();
  return total;
}

}  // namespace vdg
