#ifndef VDG_TYPES_TYPE_SYSTEM_H_
#define VDG_TYPES_TYPE_SYSTEM_H_

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/name_list.h"
#include "common/status.h"

namespace vdg {

/// The three orthogonal dimensions of a dataset type (Section 3.1).
/// A fully specified type names one node in each dimension's hierarchy;
/// "multiple inheritance" in the paper's sense arises from combining
/// the dimensions.
enum class TypeDimension { kContent = 0, kFormat = 1, kEncoding = 2 };

/// Number of dimensions; handy for iteration.
inline constexpr int kNumTypeDimensions = 3;

/// Dimension base-type names as defined by the paper: a formal argument
/// typed at the base of every dimension is "essentially untyped".
std::string_view TypeDimensionBaseName(TypeDimension dim);
std::string_view TypeDimensionName(TypeDimension dim);

/// A single dimension's subtype forest. Every defined name has exactly
/// one parent; the dimension base name is the implicit root.
class TypeHierarchy {
 public:
  explicit TypeHierarchy(TypeDimension dimension);

  TypeDimension dimension() const { return dimension_; }
  std::string_view base_name() const { return base_name_; }

  /// Defines `name` as a direct subtype of `parent`. The parent must
  /// already exist (or be the base name). Fails with AlreadyExists on
  /// redefinition and InvalidArgument on bad identifiers.
  Status Define(std::string_view name, std::string_view parent);

  /// Defines `name` directly under the dimension base.
  Status DefineTopLevel(std::string_view name) {
    return Define(name, base_name_);
  }

  bool Contains(std::string_view name) const;

  /// Parent of `name`; the base name has no parent (NotFound).
  Result<std::string> ParentOf(std::string_view name) const;

  /// Reflexive, transitive subtype test. Every defined name (and the
  /// base itself) is a subtype of the base name. Unknown names are
  /// never subtypes of anything.
  bool IsSubtypeOf(std::string_view name, std::string_view ancestor) const;

  /// Path from `name` up to (and including) the base name. Fails if
  /// `name` is unknown.
  Result<std::vector<std::string>> AncestryOf(std::string_view name) const;

  /// Direct children of `name` (sorted). `name` may be the base name.
  std::vector<std::string> ChildrenOf(std::string_view name) const;

  /// All defined names (sorted), excluding the base name — a
  /// self-owning NameList, the same result-plane list type the catalog
  /// returns (DESIGN.md §15), so the type layer has no private copying
  /// result path.
  NameList AllTypes() const;

  /// Distance from the base name (base = 0). Unknown names: NotFound.
  Result<int> DepthOf(std::string_view name) const;

  size_t size() const { return parent_.size(); }

 private:
  TypeDimension dimension_;
  std::string base_name_;
  std::map<std::string, std::string, std::less<>> parent_;
};

/// A (possibly partially specified) dataset type: one name per
/// dimension. An empty component means "the dimension base", i.e.
/// unconstrained in that dimension.
struct DatasetType {
  std::string content;   // e.g. "CMS" / "SDSS" / "Simulation"
  std::string format;    // e.g. "Fileset" / "Relation"
  std::string encoding;  // e.g. "Text" / "HDF-file"

  /// The fully unconstrained type, the paper's "Dataset" synonym.
  static DatasetType Any() { return DatasetType{}; }

  /// True when all three components are unconstrained.
  bool IsAny() const {
    return content.empty() && format.empty() && encoding.empty();
  }

  const std::string& component(TypeDimension dim) const;
  std::string& component(TypeDimension dim);

  /// Canonical rendering "content/format/encoding" with "*" for
  /// unconstrained components, e.g. "SDSS/Fileset/*".
  std::string ToString() const;

  /// Parses the ToString() form. Bare "Dataset" parses to Any().
  static Result<DatasetType> Parse(std::string_view text);

  bool operator==(const DatasetType& other) const {
    return content == other.content && format == other.format &&
           encoding == other.encoding;
  }
  bool operator<(const DatasetType& other) const {
    if (content != other.content) return content < other.content;
    if (format != other.format) return format < other.format;
    return encoding < other.encoding;
  }
};

/// Owns the three dimension hierarchies and implements the paper's
/// conformance rule: a dataset of type A may bind to a formal argument
/// of type F iff, in every dimension, A's component is a (reflexive)
/// subtype of F's component. Formal arguments may also be typed as a
/// *list* of dataset types (a union); conformance then requires
/// matching at least one list element.
class TypeRegistry {
 public:
  TypeRegistry();

  TypeHierarchy& dimension(TypeDimension dim) {
    return hierarchies_[static_cast<int>(dim)];
  }
  const TypeHierarchy& dimension(TypeDimension dim) const {
    return hierarchies_[static_cast<int>(dim)];
  }

  /// Defines a type name under `parent` in the given dimension.
  Status Define(TypeDimension dim, std::string_view name,
                std::string_view parent);

  /// Checks that every non-empty component of `type` is defined.
  Status Validate(const DatasetType& type) const;

  /// Single-type conformance (see class comment).
  bool Conforms(const DatasetType& actual, const DatasetType& formal) const;

  /// Union-type conformance: true when `formal_union` is empty (an
  /// untyped argument accepts anything) or `actual` conforms to at
  /// least one element.
  bool ConformsToAny(const DatasetType& actual,
                     const std::vector<DatasetType>& formal_union) const;

  /// Most-derived common supertype of `a` and `b`, per dimension.
  DatasetType CommonSupertype(const DatasetType& a,
                              const DatasetType& b) const;

  /// Installs the Appendix-C example hierarchy (Fileset/Spreadsheet/
  /// Relation formats; Text/Table/HDF/SPSS/SAS encodings; UChicago/
  /// CMS/SDSS content trees). Idempotent on a fresh registry.
  Status LoadAppendixCPreset();

  /// Total number of type names across all dimensions.
  size_t size() const;

 private:
  std::vector<TypeHierarchy> hierarchies_;
};

}  // namespace vdg

#endif  // VDG_TYPES_TYPE_SYSTEM_H_
