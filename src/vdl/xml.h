#ifndef VDG_VDL_XML_H_
#define VDG_VDL_XML_H_

#include <string>

#include "vdl/parser.h"

namespace vdg {

/// XML rendering of VDL programs — the paper notes "an XML version is
/// also implemented for machine-to-machine interfaces". This is the
/// machine-facing serialization used by the federation layer when
/// shipping definitions between catalogs.
std::string TransformationToXml(const Transformation& tr, int indent = 0);
std::string DerivationToXml(const Derivation& dv, int indent = 0);
std::string DatasetToXml(const Dataset& ds, int indent = 0);
std::string ProgramToXml(const VdlProgram& program);

/// Escapes &, <, >, ", ' for XML attribute/text contexts.
std::string XmlEscape(const std::string& text);

}  // namespace vdg

#endif  // VDG_VDL_XML_H_
