#include "vdl/xml.h"

namespace vdg {

std::string XmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

std::string Indent(int n) { return std::string(static_cast<size_t>(n), ' '); }

std::string ExprToXml(const TemplateExpr& expr, int indent) {
  std::string out;
  for (const TemplatePiece& piece : expr) {
    out += Indent(indent);
    if (piece.is_ref()) {
      out += "<use name=\"" + XmlEscape(piece.text) + "\"";
      if (piece.ref_direction) {
        out += " link=\"" +
               std::string(ArgDirectionToString(*piece.ref_direction)) + "\"";
      }
      out += "/>\n";
    } else {
      out += "<text>" + XmlEscape(piece.text) + "</text>\n";
    }
  }
  return out;
}

std::string AttrsToXml(const AttributeSet& attrs, int indent) {
  std::string out;
  for (const auto& [key, value] : attrs) {
    out += Indent(indent) + "<attribute name=\"" + XmlEscape(key) +
           "\" kind=\"" + value.TypeTag() + "\">" +
           XmlEscape(value.ToWireString()) + "</attribute>\n";
  }
  return out;
}

}  // namespace

std::string TransformationToXml(const Transformation& tr, int indent) {
  std::string out = Indent(indent);
  out += "<transformation name=\"" + XmlEscape(tr.name()) + "\" kind=\"";
  out += tr.is_compound() ? "compound" : "simple";
  out += "\"";
  if (!tr.version().empty()) {
    out += " version=\"" + XmlEscape(tr.version()) + "\"";
  }
  out += ">\n";
  for (const FormalArg& arg : tr.args()) {
    out += Indent(indent + 2) + "<declare name=\"" + XmlEscape(arg.name) +
           "\" link=\"" + ArgDirectionToString(arg.direction) + "\"";
    if (!arg.types.empty()) {
      std::string types;
      for (size_t i = 0; i < arg.types.size(); ++i) {
        if (i > 0) types += "|";
        types += arg.types[i].ToString();
      }
      out += " type=\"" + XmlEscape(types) + "\"";
    }
    if (arg.default_string) {
      out += " default=\"" + XmlEscape(*arg.default_string) + "\"";
    }
    if (arg.default_dataset) {
      out += " defaultDataset=\"" + XmlEscape(*arg.default_dataset) + "\"";
    }
    out += "/>\n";
  }
  if (tr.is_compound()) {
    for (const CompoundCall& call : tr.calls()) {
      out += Indent(indent + 2) + "<call ref=\"" + XmlEscape(call.callee) +
             "\">\n";
      for (const auto& [formal, piece] : call.bindings) {
        out += Indent(indent + 4) + "<pass bind=\"" + XmlEscape(formal) +
               "\">\n";
        out += ExprToXml({piece}, indent + 6);
        out += Indent(indent + 4) + "</pass>\n";
      }
      out += Indent(indent + 2) + "</call>\n";
    }
  } else {
    if (!tr.executable().empty()) {
      out += Indent(indent + 2) + "<executable>" +
             XmlEscape(tr.executable()) + "</executable>\n";
    }
    for (const ArgumentTemplate& t : tr.argument_templates()) {
      out += Indent(indent + 2) + "<argument";
      if (!t.name.empty()) out += " name=\"" + XmlEscape(t.name) + "\"";
      out += ">\n";
      out += ExprToXml(t.expr, indent + 4);
      out += Indent(indent + 2) + "</argument>\n";
    }
    for (const auto& [name, expr] : tr.env()) {
      out += Indent(indent + 2) + "<env name=\"" + XmlEscape(name) + "\">\n";
      out += ExprToXml(expr, indent + 4);
      out += Indent(indent + 2) + "</env>\n";
    }
    for (const auto& [key, expr] : tr.profile()) {
      out +=
          Indent(indent + 2) + "<profile key=\"" + XmlEscape(key) + "\">\n";
      out += ExprToXml(expr, indent + 4);
      out += Indent(indent + 2) + "</profile>\n";
    }
  }
  out += AttrsToXml(tr.annotations(), indent + 2);
  out += Indent(indent) + "</transformation>\n";
  return out;
}

std::string DerivationToXml(const Derivation& dv, int indent) {
  std::string out = Indent(indent);
  out += "<derivation name=\"" + XmlEscape(dv.name()) + "\" uses=\"" +
         XmlEscape(dv.QualifiedTransformation()) + "\">\n";
  for (const ActualArg& arg : dv.args()) {
    out += Indent(indent + 2) + "<pass bind=\"" + XmlEscape(arg.formal) +
           "\"";
    if (arg.string_value) {
      out += " value=\"" + XmlEscape(*arg.string_value) + "\"/>\n";
    } else {
      out += " dataset=\"" + XmlEscape(*arg.dataset) + "\" link=\"" +
             ArgDirectionToString(*arg.direction) + "\"/>\n";
    }
  }
  for (const auto& [name, value] : dv.env_overrides()) {
    out += Indent(indent + 2) + "<env name=\"" + XmlEscape(name) +
           "\" value=\"" + XmlEscape(value) + "\"/>\n";
  }
  out += AttrsToXml(dv.annotations(), indent + 2);
  out += Indent(indent) + "</derivation>\n";
  return out;
}

std::string DatasetToXml(const Dataset& ds, int indent) {
  std::string out = Indent(indent);
  out += "<dataset name=\"" + XmlEscape(ds.name) + "\" type=\"" +
         XmlEscape(ds.type.ToString()) + "\" size=\"" +
         std::to_string(ds.size_bytes) + "\"";
  if (!ds.producer.empty()) {
    out += " producer=\"" + XmlEscape(ds.producer) + "\"";
  }
  out += ">\n";
  out += Indent(indent + 2) + "<descriptor schema=\"" +
         XmlEscape(ds.descriptor.schema) + "\">\n";
  out += AttrsToXml(ds.descriptor.fields, indent + 4);
  out += Indent(indent + 2) + "</descriptor>\n";
  out += AttrsToXml(ds.annotations, indent + 2);
  out += Indent(indent) + "</dataset>\n";
  return out;
}

std::string ProgramToXml(const VdlProgram& program) {
  std::string out = "<?xml version=\"1.0\"?>\n<vdl version=\"1.0\">\n";
  for (const Dataset& ds : program.datasets) out += DatasetToXml(ds, 2);
  for (const Transformation& tr : program.transformations) {
    out += TransformationToXml(tr, 2);
  }
  for (const Derivation& dv : program.derivations) {
    out += DerivationToXml(dv, 2);
  }
  out += "</vdl>\n";
  return out;
}

}  // namespace vdg
