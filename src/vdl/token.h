#ifndef VDG_VDL_TOKEN_H_
#define VDG_VDL_TOKEN_H_

#include <string>

namespace vdg {

/// Lexical token kinds of the Chimera Virtual Data Language (VDL 1.0,
/// Appendix A of the paper).
enum class TokenKind {
  kIdent,       // t1, example1, env.MAXMEM, run1.exp15.T1932.raw
  kString,      // "..." (supports \" and \\ escapes)
  kLParen,      // (
  kRParen,      // )
  kLBrace,      // {
  kRBrace,      // }
  kSemi,        // ;
  kComma,       // ,
  kEq,          // =
  kArrow,       // ->
  kColonColon,  // ::
  kColon,       // :
  kDollarBrace, // ${
  kAtBrace,     // @{
  kSlash,       // /
  kPipe,        // |
  kStar,        // *
  kEof,
};

const char* TokenKindToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // identifier text or unescaped string contents
  int line = 0;
  int column = 0;

  bool is(TokenKind k) const { return kind == k; }
  bool IsIdent(std::string_view word) const {
    return kind == TokenKind::kIdent && text == word;
  }
};

}  // namespace vdg

#endif  // VDG_VDL_TOKEN_H_
