#include "vdl/lexer.h"

#include <cctype>

namespace vdg {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kSemi:
      return "';'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kColonColon:
      return "'::'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kDollarBrace:
      return "'${'";
    case TokenKind::kAtBrace:
      return "'@{'";
    case TokenKind::kSlash:
      return "'/'";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

char VdlLexer::Peek(size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char VdlLexer::Advance() {
  char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

Token VdlLexer::Make(TokenKind kind, std::string text) const {
  Token t;
  t.kind = kind;
  t.text = std::move(text);
  t.line = token_line_;
  t.column = token_column_;
  return t;
}

void VdlLexer::SkipWhitespaceAndComments() {
  while (!AtEnd()) {
    char c = Peek();
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
    } else if (c == '#' || (c == '/' && Peek(1) == '/')) {
      while (!AtEnd() && Peek() != '\n') Advance();
    } else {
      break;
    }
  }
}

namespace {
bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentContinue(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '.' || c == '-';
}
}  // namespace

Result<Token> VdlLexer::Next() {
  SkipWhitespaceAndComments();
  token_line_ = line_;
  token_column_ = column_;
  if (AtEnd()) return Make(TokenKind::kEof);

  char c = Peek();

  if (IsIdentStart(c)) {
    std::string text;
    while (!AtEnd() && IsIdentContinue(Peek())) {
      // `->` must not be folded into an identifier ending in '-'.
      if (Peek() == '-' && Peek(1) == '>') break;
      text.push_back(Advance());
    }
    return Make(TokenKind::kIdent, std::move(text));
  }

  if (std::isdigit(static_cast<unsigned char>(c))) {
    // Bare numbers appear only as identifier-like literals (rare in
    // VDL; values are normally quoted). Lex as an identifier token.
    std::string text;
    while (!AtEnd() && IsIdentContinue(Peek())) text.push_back(Advance());
    return Make(TokenKind::kIdent, std::move(text));
  }

  if (c == '"') {
    Advance();  // opening quote
    std::string text;
    while (true) {
      if (AtEnd()) {
        return Status::ParseError("unterminated string literal at line " +
                                  std::to_string(token_line_));
      }
      char ch = Advance();
      if (ch == '"') break;
      if (ch == '\\') {
        if (AtEnd()) {
          return Status::ParseError("dangling escape at line " +
                                    std::to_string(token_line_));
        }
        char esc = Advance();
        switch (esc) {
          case 'n':
            text.push_back('\n');
            break;
          case 't':
            text.push_back('\t');
            break;
          case '"':
          case '\\':
            text.push_back(esc);
            break;
          default:
            return Status::ParseError(std::string("unknown escape \\") + esc +
                                      " at line " + std::to_string(line_));
        }
      } else {
        text.push_back(ch);
      }
    }
    return Make(TokenKind::kString, std::move(text));
  }

  Advance();
  switch (c) {
    case '(':
      return Make(TokenKind::kLParen);
    case ')':
      return Make(TokenKind::kRParen);
    case '{':
      return Make(TokenKind::kLBrace);
    case '}':
      return Make(TokenKind::kRBrace);
    case ';':
      return Make(TokenKind::kSemi);
    case ',':
      return Make(TokenKind::kComma);
    case '=':
      return Make(TokenKind::kEq);
    case '|':
      return Make(TokenKind::kPipe);
    case '*':
      return Make(TokenKind::kStar);
    case '/':
      return Make(TokenKind::kSlash);
    case '-':
      if (Peek() == '>') {
        Advance();
        return Make(TokenKind::kArrow);
      }
      return Status::ParseError("unexpected '-' at line " +
                                std::to_string(token_line_));
    case ':':
      if (Peek() == ':') {
        Advance();
        return Make(TokenKind::kColonColon);
      }
      return Make(TokenKind::kColon);
    case '$':
      if (Peek() == '{') {
        Advance();
        return Make(TokenKind::kDollarBrace);
      }
      return Status::ParseError("expected '{' after '$' at line " +
                                std::to_string(token_line_));
    case '@':
      if (Peek() == '{') {
        Advance();
        return Make(TokenKind::kAtBrace);
      }
      return Status::ParseError("expected '{' after '@' at line " +
                                std::to_string(token_line_));
    default:
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' at line " + std::to_string(token_line_));
  }
}

Result<std::vector<Token>> VdlLexer::Tokenize() {
  std::vector<Token> out;
  while (true) {
    VDG_ASSIGN_OR_RETURN(Token t, Next());
    bool eof = t.is(TokenKind::kEof);
    out.push_back(std::move(t));
    if (eof) break;
  }
  return out;
}

}  // namespace vdg
