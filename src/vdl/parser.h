#ifndef VDG_VDL_PARSER_H_
#define VDG_VDL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "schema/dataset.h"
#include "schema/derivation.h"
#include "schema/transformation.h"
#include "vdl/token.h"

namespace vdg {

/// The result of parsing a VDL source unit: transformation, derivation
/// and (extension) dataset definitions, in source order.
struct VdlProgram {
  std::vector<Transformation> transformations;
  std::vector<Derivation> derivations;
  std::vector<Dataset> datasets;

  size_t size() const {
    return transformations.size() + derivations.size() + datasets.size();
  }
};

/// Recursive-descent parser for VDL 1.0 (Appendix A of the paper):
///
///   TR t1( output a2, input a1, none pa="500" ) {
///     argument parg = "-p "${none:pa};
///     argument stdout = ${output:a2};
///     exec = "/usr/bin/app3";
///     env.MAXMEM = ${none:env};
///   }
///   DV d1->example1::t1( a2=@{output:"file2"}, a1=@{input:"file1"},
///                        pa="600" );
///
/// Compound transformations nest calls in the body instead of
/// `argument`/`exec` statements. Formal arguments may carry dataset
/// types (`input SDSS/Fileset/* a1`) and unions (`input T1|T2 x`) —
/// the typed-signature extension Section 3.2 describes.
///
/// As an extension (the "sixth class" footnote in Section 3), dataset
/// definitions are accepted:
///
///   DS file1 : SDSS/Simple/ASCII size="1024" schema="file"
///      path="/data/file1";
class VdlParser {
 public:
  explicit VdlParser(std::string_view source) : source_(source) {}

  Result<VdlProgram> Parse();

 private:
  // Token cursor helpers.
  const Token& Peek(size_t ahead = 0) const;
  Token Take();
  bool Check(TokenKind kind) const { return Peek().is(kind); }
  bool Match(TokenKind kind);
  Result<Token> Expect(TokenKind kind, std::string_view what);
  Status ErrorHere(const std::string& message) const;

  // Grammar productions.
  Result<Transformation> ParseTransformation();
  Result<Derivation> ParseDerivation();
  Result<Dataset> ParseDatasetDecl();
  Result<FormalArg> ParseFormalArg();
  Result<DatasetType> ParseTypeSpec();
  Status ParseSimpleBodyStatement(Transformation* tr);
  Result<CompoundCall> ParseCompoundCall(std::string callee);
  Result<TemplateExpr> ParseTemplateExpr();
  Result<TemplatePiece> ParseDollarRef();
  /// Parses `@{direction:"name"}` / `@{direction:"name":"extra"}`.
  struct AtBinding {
    ArgDirection direction;
    std::string dataset;
    std::string extra;
  };
  Result<AtBinding> ParseAtBinding();

  std::string_view source_;
  std::vector<Token> tokens_;
  size_t cursor_ = 0;
};

/// Convenience wrapper: lex + parse in one call.
Result<VdlProgram> ParseVdl(std::string_view source);

}  // namespace vdg

#endif  // VDG_VDL_PARSER_H_
