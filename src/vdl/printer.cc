#include "vdl/printer.h"

#include "common/strings.h"
#include "common/uri.h"

namespace vdg {

namespace {

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string PrintExpr(const TemplateExpr& expr) {
  std::string out;
  for (const TemplatePiece& piece : expr) {
    if (piece.is_ref()) {
      out += "${";
      if (piece.ref_direction) {
        out += ArgDirectionToString(*piece.ref_direction);
        out += ":";
      }
      out += piece.text;
      out += "}";
    } else {
      out += Quote(piece.text);
    }
  }
  return out;
}

std::string PrintFormal(const FormalArg& arg) {
  std::string out = ArgDirectionToString(arg.direction);
  out += " ";
  if (!arg.is_string() && !arg.types.empty()) {
    for (size_t i = 0; i < arg.types.size(); ++i) {
      if (i > 0) out += "|";
      out += arg.types[i].ToString();
    }
    out += " ";
  }
  out += arg.name;
  if (arg.default_string) {
    out += "=" + Quote(*arg.default_string);
  } else if (arg.default_dataset) {
    out += "=@{";
    out += ArgDirectionToString(arg.direction);
    out += ":" + Quote(*arg.default_dataset) + ":\"\"}";
  }
  return out;
}

std::string PrintCalleeRef(const std::string& callee) {
  // vdp:// references must be quoted; local / ns::local names are bare.
  if (IsVdpUri(callee)) return Quote(callee);
  return callee;
}

}  // namespace

std::string PrintTransformation(const Transformation& tr) {
  std::string out = "TR " + tr.name() + "( ";
  for (size_t i = 0; i < tr.args().size(); ++i) {
    if (i > 0) out += ", ";
    out += PrintFormal(tr.args()[i]);
  }
  out += " ) {\n";
  if (tr.is_compound()) {
    for (const CompoundCall& call : tr.calls()) {
      out += "  " + PrintCalleeRef(call.callee) + "( ";
      for (size_t i = 0; i < call.bindings.size(); ++i) {
        if (i > 0) out += ", ";
        const auto& [formal, piece] = call.bindings[i];
        out += formal + "=";
        if (piece.is_ref()) {
          out += "${";
          if (piece.ref_direction) {
            out += ArgDirectionToString(*piece.ref_direction);
            out += ":";
          }
          out += piece.text;
          out += "}";
        } else {
          out += Quote(piece.text);
        }
      }
      out += " );\n";
    }
  } else {
    for (const ArgumentTemplate& t : tr.argument_templates()) {
      out += "  argument";
      if (!t.name.empty()) out += " " + t.name;
      out += " = " + PrintExpr(t.expr) + ";\n";
    }
    if (!tr.executable().empty()) {
      out += "  exec = " + Quote(tr.executable()) + ";\n";
    }
    for (const auto& [name, expr] : tr.env()) {
      out += "  env." + name + " = " + PrintExpr(expr) + ";\n";
    }
    for (const auto& [key, expr] : tr.profile()) {
      out += "  profile " + key + " = " + PrintExpr(expr) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::string PrintDerivation(const Derivation& dv) {
  std::string out = "DV " + dv.name() + "->";
  if (IsVdpUri(dv.transformation())) {
    out += Quote(dv.transformation());
  } else {
    out += dv.QualifiedTransformation();
  }
  out += "( ";
  for (size_t i = 0; i < dv.args().size(); ++i) {
    if (i > 0) out += ", ";
    const ActualArg& arg = dv.args()[i];
    out += arg.formal + "=";
    if (arg.string_value) {
      out += Quote(*arg.string_value);
    } else {
      out += "@{";
      out += ArgDirectionToString(*arg.direction);
      out += ":" + Quote(*arg.dataset) + "}";
    }
  }
  out += " );\n";
  return out;
}

std::string PrintDatasetDecl(const Dataset& ds) {
  std::string out = "DS " + ds.name + " : " + ds.type.ToString();
  if (ds.size_bytes > 0) {
    out += " size=" + Quote(std::to_string(ds.size_bytes));
  }
  if (!ds.descriptor.schema.empty() && ds.descriptor.schema != "file") {
    out += " schema=" + Quote(ds.descriptor.schema);
  }
  if (!ds.producer.empty()) {
    out += " producer=" + Quote(ds.producer);
  }
  for (const auto& [key, value] : ds.descriptor.fields) {
    out += " " + key + "=" + Quote(value.ToString());
  }
  out += ";\n";
  return out;
}

std::string PrintProgram(const VdlProgram& program) {
  std::string out;
  for (const Dataset& ds : program.datasets) out += PrintDatasetDecl(ds);
  for (const Transformation& tr : program.transformations) {
    out += PrintTransformation(tr);
  }
  for (const Derivation& dv : program.derivations) {
    out += PrintDerivation(dv);
  }
  return out;
}

}  // namespace vdg
