#ifndef VDG_VDL_LEXER_H_
#define VDG_VDL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "vdl/token.h"

namespace vdg {

/// Tokenizes VDL source text. Comments run from `#` or `//` to end of
/// line. Identifiers follow the VDG name rule and may contain dots and
/// dashes (dataset names like `run1.exp15.T1932.raw`, dotted env names
/// like `env.MAXMEM`).
class VdlLexer {
 public:
  explicit VdlLexer(std::string_view source) : source_(source) {}

  /// Tokenizes the whole input, appending a kEof token on success.
  Result<std::vector<Token>> Tokenize();

 private:
  Result<Token> Next();
  void SkipWhitespaceAndComments();
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= source_.size(); }
  Token Make(TokenKind kind, std::string text = "") const;

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace vdg

#endif  // VDG_VDL_LEXER_H_
