#ifndef VDG_VDL_XML_PARSE_H_
#define VDG_VDL_XML_PARSE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "vdl/parser.h"

namespace vdg {

/// Minimal XML document node, sufficient for the VDL machine-to-
/// machine wire format emitted by vdl/xml.h (elements, attributes,
/// text content; no namespaces, CDATA, or processing beyond skipping
/// the <?xml?> prolog and comments).
struct XmlNode {
  std::string name;
  std::map<std::string, std::string> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  std::string text;  // concatenated character data directly inside

  const std::string* FindAttribute(std::string_view key) const;
  /// First child element with the given tag; nullptr when absent.
  const XmlNode* FirstChild(std::string_view tag) const;
  /// All child elements with the given tag.
  std::vector<const XmlNode*> Children(std::string_view tag) const;
};

/// Parses one XML document into a node tree.
Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input);

/// Parses the <vdl> wire format back into schema objects — the inverse
/// of ProgramToXml. Round-trip property: for any program P,
/// ParseVdlXml(ProgramToXml(P)) is equivalent to P (verified in
/// tests/test_vdl_xml.cc).
Result<VdlProgram> ParseVdlXml(std::string_view xml);

/// Individual object decoders (used by the federation wire path).
Result<Transformation> TransformationFromXml(const XmlNode& node);
Result<Derivation> DerivationFromXml(const XmlNode& node);
Result<Dataset> DatasetFromXml(const XmlNode& node);

}  // namespace vdg

#endif  // VDG_VDL_XML_PARSE_H_
