#ifndef VDG_VDL_PRINTER_H_
#define VDG_VDL_PRINTER_H_

#include <string>

#include "vdl/parser.h"

namespace vdg {

/// Renders schema objects back to parseable VDL text. The printer and
/// parser round-trip: Parse(Print(x)) yields an equivalent program,
/// which the test suite verifies property-style.
std::string PrintTransformation(const Transformation& tr);
std::string PrintDerivation(const Derivation& dv);
std::string PrintDatasetDecl(const Dataset& ds);
std::string PrintProgram(const VdlProgram& program);

}  // namespace vdg

#endif  // VDG_VDL_PRINTER_H_
