#include "vdl/xml_parse.h"

#include <cctype>
#include <cstdlib>

#include "common/strings.h"
#include "common/uri.h"

namespace vdg {

const std::string* XmlNode::FindAttribute(std::string_view key) const {
  auto it = attributes.find(std::string(key));
  return it == attributes.end() ? nullptr : &it->second;
}

const XmlNode* XmlNode::FirstChild(std::string_view tag) const {
  for (const auto& child : children) {
    if (child->name == tag) return child.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view tag) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children) {
    if (child->name == tag) out.push_back(child.get());
  }
  return out;
}

namespace {

// ------------------------- lexical helpers ---------------------------

class XmlCursor {
 public:
  explicit XmlCursor(std::string_view input) : input_(input) {}

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char Take() { return input_[pos_++]; }
  bool Consume(std::string_view literal) {
    if (input_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }
  void SkipWhitespace() {
    while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
      ++pos_;
    }
  }
  size_t pos() const { return pos_; }

 private:
  std::string_view input_;
  size_t pos_ = 0;
};

Result<std::string> DecodeEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] != '&') {
      out.push_back(raw[i]);
      continue;
    }
    size_t semi = raw.find(';', i);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated XML entity");
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out.push_back('&');
    } else if (entity == "lt") {
      out.push_back('<');
    } else if (entity == "gt") {
      out.push_back('>');
    } else if (entity == "quot") {
      out.push_back('"');
    } else if (entity == "apos") {
      out.push_back('\'');
    } else {
      return Status::ParseError("unknown XML entity: &" +
                                std::string(entity) + ";");
    }
    i = semi;
  }
  return out;
}

bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
         c == '_' || c == '.' || c == ':';
}

Result<std::string> ReadName(XmlCursor* cursor) {
  std::string name;
  while (!cursor->AtEnd() && IsNameChar(cursor->Peek())) {
    name.push_back(cursor->Take());
  }
  if (name.empty()) {
    return Status::ParseError("expected XML name at offset " +
                              std::to_string(cursor->pos()));
  }
  return name;
}

Status ParseAttributes(XmlCursor* cursor, XmlNode* node) {
  while (true) {
    cursor->SkipWhitespace();
    char c = cursor->Peek();
    if (c == '>' || c == '/' || c == '?') return Status::OK();
    VDG_ASSIGN_OR_RETURN(std::string key, ReadName(cursor));
    cursor->SkipWhitespace();
    if (!cursor->Consume("=")) {
      return Status::ParseError("expected '=' after attribute " + key);
    }
    cursor->SkipWhitespace();
    char quote = cursor->Peek();
    if (quote != '"' && quote != '\'') {
      return Status::ParseError("expected quoted attribute value for " +
                                key);
    }
    cursor->Take();
    std::string raw;
    while (!cursor->AtEnd() && cursor->Peek() != quote) {
      raw.push_back(cursor->Take());
    }
    if (cursor->AtEnd()) {
      return Status::ParseError("unterminated attribute value for " + key);
    }
    cursor->Take();  // closing quote
    VDG_ASSIGN_OR_RETURN(std::string value, DecodeEntities(raw));
    node->attributes.emplace(std::move(key), std::move(value));
  }
}

Result<std::unique_ptr<XmlNode>> ParseElement(XmlCursor* cursor);

// Parses children + text until the matching close tag.
Status ParseContent(XmlCursor* cursor, XmlNode* node) {
  std::string text;
  while (true) {
    if (cursor->AtEnd()) {
      return Status::ParseError("unterminated element <" + node->name + ">");
    }
    if (cursor->Peek() == '<') {
      if (cursor->Peek(1) == '/') {
        // Close tag.
        cursor->Consume("</");
        VDG_ASSIGN_OR_RETURN(std::string name, ReadName(cursor));
        cursor->SkipWhitespace();
        if (!cursor->Consume(">")) {
          return Status::ParseError("malformed close tag </" + name);
        }
        if (name != node->name) {
          return Status::ParseError("mismatched close tag </" + name +
                                    "> for <" + node->name + ">");
        }
        VDG_ASSIGN_OR_RETURN(node->text, DecodeEntities(text));
        return Status::OK();
      }
      if (cursor->Consume("<!--")) {
        while (!cursor->AtEnd() && !cursor->Consume("-->")) cursor->Take();
        continue;
      }
      VDG_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> child,
                           ParseElement(cursor));
      node->children.push_back(std::move(child));
    } else {
      text.push_back(cursor->Take());
    }
  }
}

Result<std::unique_ptr<XmlNode>> ParseElement(XmlCursor* cursor) {
  if (!cursor->Consume("<")) {
    return Status::ParseError("expected '<' at offset " +
                              std::to_string(cursor->pos()));
  }
  auto node = std::make_unique<XmlNode>();
  VDG_ASSIGN_OR_RETURN(node->name, ReadName(cursor));
  VDG_RETURN_IF_ERROR(ParseAttributes(cursor, node.get()));
  if (cursor->Consume("/>")) return node;
  if (!cursor->Consume(">")) {
    return Status::ParseError("malformed open tag <" + node->name);
  }
  VDG_RETURN_IF_ERROR(ParseContent(cursor, node.get()));
  return node;
}

// --------------------- wire-format reconstruction --------------------

Result<std::vector<DatasetType>> ParseTypeUnion(std::string_view text) {
  std::vector<DatasetType> out;
  for (const std::string& piece : StrSplit(text, '|')) {
    VDG_ASSIGN_OR_RETURN(DatasetType type, DatasetType::Parse(piece));
    out.push_back(std::move(type));
  }
  return out;
}

Result<TemplateExpr> ExprFromChildren(const XmlNode& node) {
  TemplateExpr expr;
  for (const auto& child : node.children) {
    if (child->name == "text") {
      expr.push_back(TemplatePiece::Literal(child->text));
    } else if (child->name == "use") {
      const std::string* name = child->FindAttribute("name");
      if (name == nullptr) {
        return Status::ParseError("<use> missing name attribute");
      }
      std::optional<ArgDirection> dir;
      if (const std::string* link = child->FindAttribute("link")) {
        VDG_ASSIGN_OR_RETURN(ArgDirection parsed,
                             ArgDirectionFromString(*link));
        dir = parsed;
      }
      expr.push_back(TemplatePiece::Ref(*name, dir));
    } else {
      return Status::ParseError("unexpected element <" + child->name +
                                "> in template expression");
    }
  }
  return expr;
}

Result<AttributeSet> AttributesFromChildren(const XmlNode& node) {
  AttributeSet attrs;
  for (const XmlNode* attr : node.Children("attribute")) {
    const std::string* name = attr->FindAttribute("name");
    const std::string* kind = attr->FindAttribute("kind");
    if (name == nullptr || kind == nullptr || kind->size() != 1) {
      return Status::ParseError("malformed <attribute> element");
    }
    VDG_ASSIGN_OR_RETURN(AttributeValue value,
                         AttributeValue::FromTagged((*kind)[0], attr->text));
    attrs.Set(*name, std::move(value));
  }
  return attrs;
}

}  // namespace

Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view input) {
  XmlCursor cursor(input);
  cursor.SkipWhitespace();
  if (cursor.Consume("<?xml")) {
    while (!cursor.AtEnd() && !cursor.Consume("?>")) cursor.Take();
  }
  cursor.SkipWhitespace();
  while (cursor.Consume("<!--")) {
    while (!cursor.AtEnd() && !cursor.Consume("-->")) cursor.Take();
    cursor.SkipWhitespace();
  }
  VDG_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseElement(&cursor));
  cursor.SkipWhitespace();
  if (!cursor.AtEnd()) {
    return Status::ParseError("trailing content after root element");
  }
  return root;
}

Result<Transformation> TransformationFromXml(const XmlNode& node) {
  if (node.name != "transformation") {
    return Status::ParseError("expected <transformation>, got <" +
                              node.name + ">");
  }
  const std::string* name = node.FindAttribute("name");
  const std::string* kind = node.FindAttribute("kind");
  if (name == nullptr || kind == nullptr) {
    return Status::ParseError("<transformation> missing name/kind");
  }
  Transformation tr(*name, *kind == "compound"
                               ? Transformation::Kind::kCompound
                               : Transformation::Kind::kSimple);
  if (const std::string* version = node.FindAttribute("version")) {
    tr.set_version(*version);
  }
  for (const XmlNode* declare : node.Children("declare")) {
    FormalArg arg;
    const std::string* arg_name = declare->FindAttribute("name");
    const std::string* link = declare->FindAttribute("link");
    if (arg_name == nullptr || link == nullptr) {
      return Status::ParseError("<declare> missing name/link");
    }
    arg.name = *arg_name;
    VDG_ASSIGN_OR_RETURN(arg.direction, ArgDirectionFromString(*link));
    if (const std::string* type = declare->FindAttribute("type")) {
      VDG_ASSIGN_OR_RETURN(arg.types, ParseTypeUnion(*type));
    }
    if (const std::string* def = declare->FindAttribute("default")) {
      arg.default_string = *def;
    }
    if (const std::string* def = declare->FindAttribute("defaultDataset")) {
      arg.default_dataset = *def;
    }
    VDG_RETURN_IF_ERROR(tr.AddArg(std::move(arg)));
  }
  if (const XmlNode* exe = node.FirstChild("executable")) {
    tr.set_executable(exe->text);
  }
  for (const XmlNode* arg : node.Children("argument")) {
    ArgumentTemplate t;
    if (const std::string* arg_name = arg->FindAttribute("name")) {
      t.name = *arg_name;
    }
    VDG_ASSIGN_OR_RETURN(t.expr, ExprFromChildren(*arg));
    tr.AddArgumentTemplate(std::move(t));
  }
  for (const XmlNode* env : node.Children("env")) {
    const std::string* env_name = env->FindAttribute("name");
    if (env_name == nullptr) {
      return Status::ParseError("<env> missing name");
    }
    VDG_ASSIGN_OR_RETURN(TemplateExpr expr, ExprFromChildren(*env));
    tr.SetEnv(*env_name, std::move(expr));
  }
  for (const XmlNode* profile : node.Children("profile")) {
    const std::string* key = profile->FindAttribute("key");
    if (key == nullptr) return Status::ParseError("<profile> missing key");
    VDG_ASSIGN_OR_RETURN(TemplateExpr expr, ExprFromChildren(*profile));
    tr.SetProfile(*key, std::move(expr));
  }
  for (const XmlNode* call_node : node.Children("call")) {
    CompoundCall call;
    const std::string* ref = call_node->FindAttribute("ref");
    if (ref == nullptr) return Status::ParseError("<call> missing ref");
    call.callee = *ref;
    for (const XmlNode* pass : call_node->Children("pass")) {
      const std::string* bind = pass->FindAttribute("bind");
      if (bind == nullptr) return Status::ParseError("<pass> missing bind");
      VDG_ASSIGN_OR_RETURN(TemplateExpr expr, ExprFromChildren(*pass));
      if (expr.size() != 1) {
        return Status::ParseError("<pass> must carry exactly one piece");
      }
      call.bindings.emplace_back(*bind, std::move(expr[0]));
    }
    tr.AddCall(std::move(call));
  }
  VDG_ASSIGN_OR_RETURN(tr.annotations(), AttributesFromChildren(node));
  return tr;
}

Result<Derivation> DerivationFromXml(const XmlNode& node) {
  if (node.name != "derivation") {
    return Status::ParseError("expected <derivation>, got <" + node.name +
                              ">");
  }
  const std::string* name = node.FindAttribute("name");
  const std::string* uses = node.FindAttribute("uses");
  if (name == nullptr || uses == nullptr) {
    return Status::ParseError("<derivation> missing name/uses");
  }
  Derivation dv;
  dv.set_name(*name);
  size_t pos = uses->rfind("::");
  if (pos != std::string::npos && !IsVdpUri(*uses)) {
    dv.set_transformation_namespace(uses->substr(0, pos));
    dv.set_transformation(uses->substr(pos + 2));
  } else {
    dv.set_transformation(*uses);
  }
  for (const XmlNode* pass : node.Children("pass")) {
    const std::string* bind = pass->FindAttribute("bind");
    if (bind == nullptr) return Status::ParseError("<pass> missing bind");
    if (const std::string* value = pass->FindAttribute("value")) {
      VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::String(*bind, *value)));
      continue;
    }
    const std::string* dataset = pass->FindAttribute("dataset");
    const std::string* link = pass->FindAttribute("link");
    if (dataset == nullptr || link == nullptr) {
      return Status::ParseError("<pass> needs value or dataset+link");
    }
    VDG_ASSIGN_OR_RETURN(ArgDirection dir, ArgDirectionFromString(*link));
    VDG_RETURN_IF_ERROR(
        dv.AddArg(ActualArg::DatasetRef(*bind, *dataset, dir)));
  }
  for (const XmlNode* env : node.Children("env")) {
    const std::string* env_name = env->FindAttribute("name");
    const std::string* value = env->FindAttribute("value");
    if (env_name == nullptr || value == nullptr) {
      return Status::ParseError("<env> missing name/value");
    }
    dv.SetEnvOverride(*env_name, *value);
  }
  VDG_ASSIGN_OR_RETURN(dv.annotations(), AttributesFromChildren(node));
  return dv;
}

Result<Dataset> DatasetFromXml(const XmlNode& node) {
  if (node.name != "dataset") {
    return Status::ParseError("expected <dataset>, got <" + node.name + ">");
  }
  Dataset ds;
  const std::string* name = node.FindAttribute("name");
  if (name == nullptr) return Status::ParseError("<dataset> missing name");
  ds.name = *name;
  if (const std::string* type = node.FindAttribute("type")) {
    VDG_ASSIGN_OR_RETURN(ds.type, DatasetType::Parse(*type));
  }
  if (const std::string* size = node.FindAttribute("size")) {
    ds.size_bytes = std::strtoll(size->c_str(), nullptr, 10);
  }
  if (const std::string* producer = node.FindAttribute("producer")) {
    ds.producer = *producer;
  }
  if (const XmlNode* descriptor = node.FirstChild("descriptor")) {
    if (const std::string* schema = descriptor->FindAttribute("schema")) {
      ds.descriptor.schema = *schema;
    }
    VDG_ASSIGN_OR_RETURN(ds.descriptor.fields,
                         AttributesFromChildren(*descriptor));
  }
  VDG_ASSIGN_OR_RETURN(ds.annotations, AttributesFromChildren(node));
  return ds;
}

Result<VdlProgram> ParseVdlXml(std::string_view xml) {
  VDG_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseXml(xml));
  if (root->name != "vdl") {
    return Status::ParseError("expected <vdl> root element, got <" +
                              root->name + ">");
  }
  VdlProgram program;
  for (const auto& child : root->children) {
    if (child->name == "dataset") {
      VDG_ASSIGN_OR_RETURN(Dataset ds, DatasetFromXml(*child));
      program.datasets.push_back(std::move(ds));
    } else if (child->name == "transformation") {
      VDG_ASSIGN_OR_RETURN(Transformation tr,
                           TransformationFromXml(*child));
      program.transformations.push_back(std::move(tr));
    } else if (child->name == "derivation") {
      VDG_ASSIGN_OR_RETURN(Derivation dv, DerivationFromXml(*child));
      program.derivations.push_back(std::move(dv));
    } else {
      return Status::ParseError("unexpected element <" + child->name +
                                "> under <vdl>");
    }
  }
  return program;
}

}  // namespace vdg
