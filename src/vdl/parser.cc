#include "vdl/parser.h"

#include "common/strings.h"
#include "vdl/lexer.h"

namespace vdg {

const Token& VdlParser::Peek(size_t ahead) const {
  size_t i = cursor_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // the kEof token
  return tokens_[i];
}

Token VdlParser::Take() {
  Token t = Peek();
  if (cursor_ + 1 < tokens_.size()) ++cursor_;
  return t;
}

bool VdlParser::Match(TokenKind kind) {
  if (!Check(kind)) return false;
  Take();
  return true;
}

Result<Token> VdlParser::Expect(TokenKind kind, std::string_view what) {
  if (!Check(kind)) {
    return Status::ParseError(
        "expected " + std::string(what) + " (" + TokenKindToString(kind) +
        ") but found " + TokenKindToString(Peek().kind) +
        (Peek().text.empty() ? "" : " '" + Peek().text + "'") + " at line " +
        std::to_string(Peek().line));
  }
  return Take();
}

Status VdlParser::ErrorHere(const std::string& message) const {
  return Status::ParseError(message + " at line " +
                            std::to_string(Peek().line));
}

Result<VdlProgram> VdlParser::Parse() {
  VdlLexer lexer(source_);
  VDG_ASSIGN_OR_RETURN(tokens_, lexer.Tokenize());
  cursor_ = 0;

  VdlProgram program;
  while (!Check(TokenKind::kEof)) {
    if (Peek().IsIdent("TR")) {
      VDG_ASSIGN_OR_RETURN(Transformation tr, ParseTransformation());
      program.transformations.push_back(std::move(tr));
    } else if (Peek().IsIdent("DV")) {
      VDG_ASSIGN_OR_RETURN(Derivation dv, ParseDerivation());
      program.derivations.push_back(std::move(dv));
    } else if (Peek().IsIdent("DS")) {
      VDG_ASSIGN_OR_RETURN(Dataset ds, ParseDatasetDecl());
      program.datasets.push_back(std::move(ds));
    } else {
      return ErrorHere("expected TR, DV, or DS, found '" + Peek().text + "'");
    }
  }
  return program;
}

Result<DatasetType> VdlParser::ParseTypeSpec() {
  // component ( "/" component ( "/" component )? )?
  DatasetType type;
  for (int dim = 0; dim < kNumTypeDimensions; ++dim) {
    if (Check(TokenKind::kStar)) {
      Take();  // "*" leaves the component unconstrained
    } else {
      VDG_ASSIGN_OR_RETURN(Token comp,
                           Expect(TokenKind::kIdent, "type component"));
      if (comp.text != "Dataset") {
        type.component(static_cast<TypeDimension>(dim)) = comp.text;
      }
    }
    if (dim < kNumTypeDimensions - 1 && !Match(TokenKind::kSlash)) break;
  }
  return type;
}

Result<FormalArg> VdlParser::ParseFormalArg() {
  VDG_ASSIGN_OR_RETURN(Token dir_tok,
                       Expect(TokenKind::kIdent, "argument direction"));
  VDG_ASSIGN_OR_RETURN(ArgDirection dir, ArgDirectionFromString(dir_tok.text));

  FormalArg arg;
  arg.direction = dir;

  // Either `direction name` or `direction type(|type)* name`. We parse
  // one type-spec; if an identifier follows, the spec was a type list.
  VDG_ASSIGN_OR_RETURN(DatasetType first, ParseTypeSpec());
  std::vector<DatasetType> types{first};
  while (Check(TokenKind::kPipe)) {
    Take();
    VDG_ASSIGN_OR_RETURN(DatasetType next, ParseTypeSpec());
    types.push_back(next);
  }
  if (Check(TokenKind::kIdent)) {
    // The leading spec(s) were the type union; this token is the name.
    arg.types = std::move(types);
    // Fully unconstrained unions collapse to "untyped".
    bool all_any = true;
    for (const DatasetType& t : arg.types) all_any = all_any && t.IsAny();
    if (all_any) arg.types.clear();
    arg.name = Take().text;
  } else {
    // A single bare identifier was the argument name, not a type. A
    // name must be a plain content-component capture with no slashes.
    if (types.size() != 1 || !types[0].format.empty() ||
        !types[0].encoding.empty() || types[0].content.empty()) {
      return ErrorHere("expected formal argument name");
    }
    arg.name = types[0].content;
  }
  if (arg.is_string()) arg.types.clear();

  if (Match(TokenKind::kEq)) {
    if (Check(TokenKind::kString)) {
      arg.default_string = Take().text;
    } else if (Check(TokenKind::kAtBrace)) {
      VDG_ASSIGN_OR_RETURN(AtBinding binding, ParseAtBinding());
      arg.default_dataset = binding.dataset;
    } else {
      return ErrorHere("expected default value for formal " + arg.name);
    }
  }
  return arg;
}

Result<TemplatePiece> VdlParser::ParseDollarRef() {
  VDG_ASSIGN_OR_RETURN(Token open, Expect(TokenKind::kDollarBrace, "'${'"));
  (void)open;
  VDG_ASSIGN_OR_RETURN(Token first, Expect(TokenKind::kIdent, "reference"));
  std::optional<ArgDirection> dir;
  std::string arg_name = first.text;
  if (Match(TokenKind::kColon)) {
    Result<ArgDirection> parsed = ArgDirectionFromString(first.text);
    if (!parsed.ok()) {
      return ErrorHere("'" + first.text + "' is not a direction qualifier");
    }
    dir = *parsed;
    VDG_ASSIGN_OR_RETURN(Token name_tok,
                         Expect(TokenKind::kIdent, "argument name"));
    arg_name = name_tok.text;
  }
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'").status());
  return TemplatePiece::Ref(arg_name, dir);
}

Result<VdlParser::AtBinding> VdlParser::ParseAtBinding() {
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kAtBrace, "'@{'").status());
  VDG_ASSIGN_OR_RETURN(Token dir_tok,
                       Expect(TokenKind::kIdent, "binding direction"));
  VDG_ASSIGN_OR_RETURN(ArgDirection dir, ArgDirectionFromString(dir_tok.text));
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
  VDG_ASSIGN_OR_RETURN(Token name_tok,
                       Expect(TokenKind::kString, "dataset name"));
  AtBinding out;
  out.direction = dir;
  out.dataset = name_tok.text;
  if (Match(TokenKind::kColon)) {
    VDG_ASSIGN_OR_RETURN(Token extra, Expect(TokenKind::kString, "extra"));
    out.extra = extra.text;
  }
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'").status());
  return out;
}

Result<TemplateExpr> VdlParser::ParseTemplateExpr() {
  TemplateExpr expr;
  while (true) {
    if (Check(TokenKind::kString)) {
      expr.push_back(TemplatePiece::Literal(Take().text));
    } else if (Check(TokenKind::kDollarBrace)) {
      VDG_ASSIGN_OR_RETURN(TemplatePiece ref, ParseDollarRef());
      expr.push_back(std::move(ref));
    } else {
      break;
    }
  }
  if (expr.empty()) {
    return ErrorHere("expected a string literal or ${...} reference");
  }
  return expr;
}

Status VdlParser::ParseSimpleBodyStatement(Transformation* tr) {
  // Dispatch on the leading identifier.
  Token head = Take();
  if (head.IsIdent("argument")) {
    ArgumentTemplate t;
    if (Check(TokenKind::kIdent)) t.name = Take().text;
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
    VDG_ASSIGN_OR_RETURN(t.expr, ParseTemplateExpr());
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'").status());
    tr->AddArgumentTemplate(std::move(t));
    return Status::OK();
  }
  if (head.IsIdent("exec")) {
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
    VDG_ASSIGN_OR_RETURN(Token exe, Expect(TokenKind::kString, "executable"));
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'").status());
    tr->set_executable(exe.text);
    return Status::OK();
  }
  if (head.IsIdent("profile")) {
    VDG_ASSIGN_OR_RETURN(Token key, Expect(TokenKind::kIdent, "profile key"));
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
    VDG_ASSIGN_OR_RETURN(TemplateExpr expr, ParseTemplateExpr());
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'").status());
    tr->SetProfile(key.text, std::move(expr));
    return Status::OK();
  }
  if (head.kind == TokenKind::kIdent && StartsWith(head.text, "env.")) {
    std::string var = head.text.substr(4);
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
    VDG_ASSIGN_OR_RETURN(TemplateExpr expr, ParseTemplateExpr());
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'").status());
    tr->SetEnv(var, std::move(expr));
    return Status::OK();
  }
  return Status::ParseError("unexpected statement '" + head.text +
                            "' in transformation body at line " +
                            std::to_string(head.line));
}

Result<CompoundCall> VdlParser::ParseCompoundCall(std::string callee) {
  CompoundCall call;
  call.callee = std::move(callee);
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
  if (!Check(TokenKind::kRParen)) {
    while (true) {
      VDG_ASSIGN_OR_RETURN(Token formal,
                           Expect(TokenKind::kIdent, "formal name"));
      VDG_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
      TemplatePiece value;
      if (Check(TokenKind::kDollarBrace)) {
        VDG_ASSIGN_OR_RETURN(value, ParseDollarRef());
      } else if (Check(TokenKind::kString)) {
        value = TemplatePiece::Literal(Take().text);
      } else {
        return ErrorHere("expected ${...} or string in call binding");
      }
      call.bindings.emplace_back(formal.text, std::move(value));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'").status());
  return call;
}

Result<Transformation> VdlParser::ParseTransformation() {
  Take();  // TR
  VDG_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenKind::kIdent, "transformation name"));
  Transformation tr(name.text, Transformation::Kind::kSimple);

  VDG_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
  if (!Check(TokenKind::kRParen)) {
    while (true) {
      VDG_ASSIGN_OR_RETURN(FormalArg arg, ParseFormalArg());
      VDG_RETURN_IF_ERROR(tr.AddArg(std::move(arg)));
      if (!Match(TokenKind::kComma)) break;
    }
  }
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kLBrace, "'{'").status());

  bool saw_call = false;
  bool saw_simple = false;
  while (!Check(TokenKind::kRBrace)) {
    if (Check(TokenKind::kEof)) {
      return ErrorHere("unterminated transformation body for " + name.text);
    }
    const Token& head = Peek();
    bool is_simple_stmt =
        head.IsIdent("argument") || head.IsIdent("exec") ||
        head.IsIdent("profile") ||
        (head.kind == TokenKind::kIdent && StartsWith(head.text, "env."));
    if (is_simple_stmt) {
      saw_simple = true;
      VDG_RETURN_IF_ERROR(ParseSimpleBodyStatement(&tr));
    } else if (head.kind == TokenKind::kString) {
      // Remote callee, e.g. "vdp://physics.illinois.edu/sim"(...)
      saw_call = true;
      std::string callee = Take().text;
      VDG_ASSIGN_OR_RETURN(CompoundCall call,
                           ParseCompoundCall(std::move(callee)));
      tr.AddCall(std::move(call));
    } else if (head.kind == TokenKind::kIdent) {
      saw_call = true;
      std::string callee = Take().text;
      if (Match(TokenKind::kColonColon)) {
        VDG_ASSIGN_OR_RETURN(Token local,
                             Expect(TokenKind::kIdent, "callee name"));
        callee += "::" + local.text;
      }
      VDG_ASSIGN_OR_RETURN(CompoundCall call,
                           ParseCompoundCall(std::move(callee)));
      tr.AddCall(std::move(call));
    } else {
      return ErrorHere("unexpected token in transformation body");
    }
  }
  Take();  // closing brace
  if (saw_call && saw_simple) {
    return Status::ParseError(
        "transformation " + name.text +
        " mixes compound calls with simple-body statements");
  }
  tr.set_kind(saw_call ? Transformation::Kind::kCompound
                       : Transformation::Kind::kSimple);
  return tr;
}

Result<Derivation> VdlParser::ParseDerivation() {
  Take();  // DV
  VDG_ASSIGN_OR_RETURN(Token name,
                       Expect(TokenKind::kIdent, "derivation name"));
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kArrow, "'->'").status());

  Derivation dv;
  dv.set_name(name.text);

  // Transformation reference: `t1`, `ns::t1`, or a "vdp://..." string.
  if (Check(TokenKind::kString)) {
    dv.set_transformation(Take().text);
  } else {
    VDG_ASSIGN_OR_RETURN(Token first,
                         Expect(TokenKind::kIdent, "transformation name"));
    if (Match(TokenKind::kColonColon)) {
      VDG_ASSIGN_OR_RETURN(Token second,
                           Expect(TokenKind::kIdent, "transformation name"));
      dv.set_transformation_namespace(first.text);
      dv.set_transformation(second.text);
    } else {
      dv.set_transformation(first.text);
    }
  }

  VDG_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
  if (!Check(TokenKind::kRParen)) {
    while (true) {
      VDG_ASSIGN_OR_RETURN(Token formal,
                           Expect(TokenKind::kIdent, "formal name"));
      VDG_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
      if (Check(TokenKind::kString)) {
        VDG_RETURN_IF_ERROR(
            dv.AddArg(ActualArg::String(formal.text, Take().text)));
      } else if (Check(TokenKind::kAtBrace)) {
        VDG_ASSIGN_OR_RETURN(AtBinding binding, ParseAtBinding());
        VDG_RETURN_IF_ERROR(dv.AddArg(ActualArg::DatasetRef(
            formal.text, binding.dataset, binding.direction)));
      } else {
        return ErrorHere("expected \"string\" or @{...} actual value");
      }
      if (!Match(TokenKind::kComma)) break;
    }
  }
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'").status());
  return dv;
}

Result<Dataset> VdlParser::ParseDatasetDecl() {
  Take();  // DS
  VDG_ASSIGN_OR_RETURN(Token name, Expect(TokenKind::kIdent, "dataset name"));
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
  Dataset ds;
  ds.name = name.text;
  VDG_ASSIGN_OR_RETURN(ds.type, ParseTypeSpec());
  while (Check(TokenKind::kIdent)) {
    Token key = Take();
    VDG_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
    VDG_ASSIGN_OR_RETURN(Token value, Expect(TokenKind::kString, "value"));
    if (key.text == "size") {
      char* end = nullptr;
      int64_t size = std::strtoll(value.text.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || size < 0) {
        return ErrorHere("bad dataset size '" + value.text + "'");
      }
      ds.size_bytes = size;
    } else if (key.text == "schema") {
      ds.descriptor.schema = value.text;
    } else if (key.text == "producer") {
      ds.producer = value.text;
    } else {
      ds.descriptor.fields.Set(key.text, value.text);
    }
  }
  VDG_RETURN_IF_ERROR(Expect(TokenKind::kSemi, "';'").status());
  if (ds.descriptor.schema.empty()) ds.descriptor.schema = "file";
  return ds;
}

Result<VdlProgram> ParseVdl(std::string_view source) {
  VdlParser parser(source);
  return parser.Parse();
}

}  // namespace vdg
