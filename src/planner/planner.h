#ifndef VDG_PLANNER_PLANNER_H_
#define VDG_PLANNER_PLANNER_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "estimator/estimator.h"
#include "grid/rls.h"
#include "grid/topology.h"
#include "planner/expansion.h"
#include "planner/plan.h"

namespace vdg {

/// How the planner picks an execution site for each derivation.
enum class SiteSelectionPolicy {
  kMinCost,    // minimize staging + runtime + queue penalty
  kDataLocal,  // run where the largest input volume already sits
  kRoundRobin, // spread nodes across sites blindly
  kFixed,      // everything at options.fixed_site
};

struct PlannerOptions {
  /// Site where the requester wants the data.
  std::string target_site;
  SiteSelectionPolicy site_policy = SiteSelectionPolicy::kMinCost;
  std::string fixed_site;  // for kFixed
  /// Permit satisfying the request by copying an existing replica
  /// instead of re-deriving (the virtual-data economics decision).
  bool allow_fetch = true;
  /// Skip derivations whose outputs are already materialized
  /// somewhere (the "has this been computed before?" reuse).
  bool reuse_materialized = true;
  /// Optional live queue-depth probe for cost-aware site selection.
  std::function<int(std::string_view site)> queue_depth;
  /// Optional site admission filter (return false to exclude a site —
  /// e.g. it is offline or embargoed). Applies to all policies except
  /// kFixed, which is an explicit user override.
  std::function<bool(std::string_view site)> site_filter;
  /// Estimated seconds of delay per queued job ahead of us.
  double queue_penalty_s = 1.0;
  /// Fallback size for datasets with no recorded size anywhere.
  int64_t default_dataset_bytes = 1 << 20;
};

/// Grid request planning (Section 5.2): maps "materialize dataset D at
/// site S" onto an execution plan over the simulated grid — deciding
/// rerun-vs-fetch, expanding compound transformations, resolving the
/// recursive derivation DAG, choosing sites, and costing the result
/// with the estimator.
class RequestPlanner {
 public:
  /// `rls` may be null; dataset locations then come from catalog
  /// replica records instead of the grid's replica location service.
  RequestPlanner(const VirtualDataCatalog& catalog,
                 const GridTopology& topology,
                 const ReplicaLocationService* rls,
                 const CostEstimator& estimator)
      : catalog_(catalog),
        topology_(topology),
        rls_(rls),
        estimator_(estimator) {}

  /// Plans materialization of `dataset` at options.target_site.
  Result<ExecutionPlan> Plan(std::string_view dataset,
                             const PlannerOptions& options) const;

  /// Just the rerun-vs-fetch decision with both cost estimates
  /// (exposed for the ABL-VIRT ablation).
  struct ModeDecision {
    MaterializationMode mode = MaterializationMode::kRerun;
    double fetch_cost_s = 0;   // infinity-like large when impossible
    double rerun_cost_s = 0;
  };
  Result<ModeDecision> DecideMode(std::string_view dataset,
                                  const PlannerOptions& options) const;

  /// The user-facing estimation query of Section 5.3: "interactive
  /// users may query the estimator directly to assess whether or not a
  /// particular desired virtual data product is feasible — whether it
  /// can be computed in the time that the user is willing to wait".
  struct FeasibilityReport {
    bool feasible = false;
    double deadline_s = 0;
    double est_seconds = 0;  // best achievable (plan makespan or fetch)
    MaterializationMode mode = MaterializationMode::kRerun;
    size_t derivations_needed = 0;
  };
  Result<FeasibilityReport> AssessFeasibility(
      std::string_view dataset, const PlannerOptions& options,
      double deadline_s) const;

  /// All known physical locations of a dataset (RLS when available,
  /// catalog replicas otherwise).
  std::vector<PhysicalLocation> LocationsOf(std::string_view dataset) const;
  bool IsMaterializedAnywhere(std::string_view dataset) const {
    return !LocationsOf(dataset).empty();
  }

  /// Best-effort size of a dataset: declared size, then replica size,
  /// then the estimator's per-transformation output estimate, then
  /// the configured default.
  int64_t DatasetBytes(std::string_view dataset,
                       const PlannerOptions& options) const;

 private:
  Result<ExecutionPlan> BuildRerunPlan(std::string_view dataset,
                                       const PlannerOptions& options) const;
  Status ResolveChain(std::string_view dataset,
                      const PlannerOptions& options,
                      std::map<std::string, size_t>* producer_of,
                      std::set<std::string>* visited_derivations,
                      std::set<std::string>* resolving,
                      std::vector<PlanNode>* nodes) const;
  Status AssignSitesAndCosts(const PlannerOptions& options,
                             ExecutionPlan* plan) const;
  /// Admissible execution sites for `node`, ranked best-first under the
  /// selection policy; never empty (falls back to the target site).
  std::vector<std::string> RankSites(const PlanNode& node, size_t node_index,
                                     const PlannerOptions& options,
                                     const ExecutionPlan& plan) const;
  double NodeCostAt(const PlanNode& node, std::string_view site,
                    const PlannerOptions& options,
                    const ExecutionPlan& plan) const;

  const VirtualDataCatalog& catalog_;
  const GridTopology& topology_;
  const ReplicaLocationService* rls_;
  const CostEstimator& estimator_;
};

}  // namespace vdg

#endif  // VDG_PLANNER_PLANNER_H_
