#include "planner/planner.h"

#include <algorithm>
#include <limits>
#include <set>

#include "common/strings.h"

namespace vdg {

namespace {
constexpr double kImpossible = std::numeric_limits<double>::infinity();
}  // namespace

std::vector<PhysicalLocation> RequestPlanner::LocationsOf(
    std::string_view dataset) const {
  // The catalog governs *validity*: when it has replica records for
  // this dataset, only the valid ones count, even if stale physical
  // copies still sit in the RLS (post-invalidation bytes are present
  // but must not be reused). The RLS is the fallback for files the
  // catalog never recorded (e.g. scratch temporaries).
  std::vector<Replica> recorded =
      catalog_.ReplicasOf(dataset, /*valid_only=*/false);
  if (!recorded.empty()) {
    std::vector<PhysicalLocation> out;
    for (const Replica& replica : recorded) {
      if (!replica.valid) continue;
      PhysicalLocation loc;
      loc.site = replica.site;
      loc.storage_element = replica.storage_element;
      loc.size_bytes = replica.size_bytes;
      out.push_back(std::move(loc));
    }
    return out;
  }
  if (rls_ != nullptr) return rls_->Lookup(dataset);
  return {};
}

int64_t RequestPlanner::DatasetBytes(std::string_view dataset,
                                     const PlannerOptions& options) const {
  Result<Dataset> ds = catalog_.GetDataset(dataset);
  if (ds.ok() && ds->size_bytes > 0) return ds->size_bytes;
  for (const PhysicalLocation& loc : LocationsOf(dataset)) {
    if (loc.size_bytes > 0) return loc.size_bytes;
  }
  if (ds.ok() && !ds->producer.empty()) {
    Result<Derivation> dv = catalog_.GetDerivation(ds->producer);
    if (dv.ok()) {
      int64_t est = estimator_.EstimateOutputSize(
          StripNamespace(dv->QualifiedTransformation()));
      if (est > 0) return est;
    }
  }
  return options.default_dataset_bytes;
}

Status RequestPlanner::ResolveChain(
    std::string_view dataset, const PlannerOptions& options,
    std::map<std::string, size_t>* producer_of,
    std::set<std::string>* visited_derivations,
    std::set<std::string>* resolving, std::vector<PlanNode>* nodes) const {
  VDG_ASSIGN_OR_RETURN(std::string producer, catalog_.ProducerOf(dataset));
  if (visited_derivations->count(producer) != 0) return Status::OK();
  if (resolving->count(producer) != 0) {
    return Status::FailedPrecondition("derivation cycle through " + producer);
  }
  resolving->insert(producer);
  visited_derivations->insert(producer);

  VDG_ASSIGN_OR_RETURN(Derivation dv, catalog_.GetDerivation(producer));
  VDG_ASSIGN_OR_RETURN(std::vector<Derivation> subs,
                       ExpandDerivation(catalog_, dv));

  for (Derivation& sub : subs) {
    std::vector<std::string> outputs = sub.OutputDatasets();

    // Reuse: a sub-derivation whose outputs all exist already does not
    // need to run — unless it produces the dataset we were asked to
    // re-derive (the caller decided rerun-vs-fetch above us).
    bool produces_request =
        std::find(outputs.begin(), outputs.end(), std::string(dataset)) !=
        outputs.end();
    if (options.reuse_materialized && !produces_request && !outputs.empty()) {
      bool all_done = true;
      for (const std::string& out : outputs) {
        if (producer_of->count(out) != 0 || !IsMaterializedAnywhere(out)) {
          all_done = false;
          break;
        }
      }
      if (all_done) continue;
    }

    // Resolve external virtual inputs first (producers precede
    // consumers in `nodes`).
    for (const std::string& input : sub.InputDatasets()) {
      if (producer_of->count(input) != 0) continue;  // planned already
      // A materialized input is a staging leaf — except under
      // reuse_materialized=false, where everything derivable is
      // re-derived and only underivable (raw) data is staged.
      bool materialized = IsMaterializedAnywhere(input);
      bool derivable = catalog_.ProducerOf(input).ok();
      if (materialized && (options.reuse_materialized || !derivable)) {
        continue;
      }
      VDG_RETURN_IF_ERROR(ResolveChain(input, options, producer_of,
                                       visited_derivations, resolving,
                                       nodes));
      if (producer_of->count(input) == 0) {
        // The chain was resolved but nothing claims to produce the
        // input (e.g. its producer was skipped as materialized) —
        // re-check materialization, else the plan is unsatisfiable.
        if (!IsMaterializedAnywhere(input)) {
          return Status::FailedPrecondition(
              "input " + input + " of " + sub.name() +
              " cannot be materialized");
        }
      }
    }

    PlanNode node;
    node.transformation = StripNamespace(sub.QualifiedTransformation());
    node.inputs = sub.InputDatasets();
    node.outputs = outputs;
    node.derivation = std::move(sub);
    size_t index = nodes->size();
    for (const std::string& out : node.outputs) {
      producer_of->emplace(out, index);
    }
    nodes->push_back(std::move(node));
  }
  resolving->erase(producer);
  return Status::OK();
}

double RequestPlanner::NodeCostAt(const PlanNode& node, std::string_view site,
                                  const PlannerOptions& options,
                                  const ExecutionPlan& plan) const {
  double cost = estimator_.EstimateRuntime(node.transformation, site);
  for (const std::string& input : node.inputs) {
    int64_t bytes = DatasetBytes(input, options);
    // Input comes from its producing node's site when planned here,
    // else from its best existing location.
    double best = kImpossible;
    for (size_t dep : node.deps) {
      const PlanNode& producer = plan.nodes[dep];
      if (std::find(producer.outputs.begin(), producer.outputs.end(),
                    input) != producer.outputs.end()) {
        best = topology_.TransferSeconds(producer.site, site, bytes);
        break;
      }
    }
    if (best == kImpossible) {
      for (const PhysicalLocation& loc : LocationsOf(input)) {
        best = std::min(best, topology_.TransferSeconds(loc.site, site,
                                                        bytes));
      }
    }
    if (best != kImpossible) cost += best;
  }
  if (options.queue_depth) {
    cost += options.queue_penalty_s *
            static_cast<double>(options.queue_depth(site));
  }
  return cost;
}

namespace {

// Condor-style matchmaking: a transformation may constrain where it
// can run through `req.*` annotations —
//   req.site            comma-separated allow-list of sites
//   req.min_cpu_factor  minimum host speed factor at the site
// (the paper: a transformation's required configuration "would then
// form part of the description of the transformation, and a scheduler
// could take [it] into account when selecting resources", §4.3).
void FilterSitesByRequirements(const Transformation& tr,
                               const GridTopology& topology,
                               std::vector<std::string>* sites) {
  if (auto allowed = tr.annotations().GetString("req.site")) {
    std::vector<std::string> allow_list = StrSplitTrimmed(*allowed, ',');
    std::vector<std::string> kept;
    for (const std::string& site : *sites) {
      if (std::find(allow_list.begin(), allow_list.end(), site) !=
          allow_list.end()) {
        kept.push_back(site);
      }
    }
    *sites = std::move(kept);
  }
  if (auto min_factor = tr.annotations().GetDouble("req.min_cpu_factor")) {
    std::vector<std::string> kept;
    for (const std::string& site : *sites) {
      Result<SiteConfig> config = topology.GetSite(site);
      if (!config.ok()) continue;
      double best = 0;
      for (const HostConfig& host : config->hosts) {
        best = std::max(best, host.cpu_factor);
      }
      if (best >= *min_factor) kept.push_back(site);
    }
    *sites = std::move(kept);
  }
}

}  // namespace

std::vector<std::string> RequestPlanner::RankSites(
    const PlanNode& node, size_t node_index, const PlannerOptions& options,
    const ExecutionPlan& plan) const {
  std::vector<std::string> sites = topology_.SiteNames();
  // Matchmaking: honour the transformation's resource requirements and
  // the caller's admission filter (except under kFixed, an explicit
  // user override).
  if (options.site_policy != SiteSelectionPolicy::kFixed) {
    if (options.site_filter) {
      std::vector<std::string> admitted;
      for (const std::string& site : sites) {
        if (options.site_filter(site)) admitted.push_back(site);
      }
      sites = std::move(admitted);
    }
    Result<Transformation> tr =
        catalog_.GetTransformation(node.transformation);
    if (tr.ok()) FilterSitesByRequirements(*tr, topology_, &sites);
    if (sites.empty()) sites = topology_.SiteNames();  // unsatisfiable
  }
  if (sites.empty()) return {options.target_site};

  switch (options.site_policy) {
    case SiteSelectionPolicy::kFixed:
      // Explicit override: no alternates, failover is not meaningful.
      return {options.fixed_site.empty() ? options.target_site
                                         : options.fixed_site};
    case SiteSelectionPolicy::kRoundRobin: {
      // Rotate so the blindly assigned site leads and the rest follow
      // in ring order.
      std::rotate(sites.begin(),
                  sites.begin() +
                      static_cast<ptrdiff_t>(node_index % sites.size()),
                  sites.end());
      return sites;
    }
    case SiteSelectionPolicy::kDataLocal: {
      // Rank by input bytes already resident, most first.
      std::map<std::string, int64_t> bytes_at;
      for (const std::string& input : node.inputs) {
        int64_t bytes = DatasetBytes(input, options);
        bool from_dep = false;
        for (size_t dep : node.deps) {
          const PlanNode& producer = plan.nodes[dep];
          if (std::find(producer.outputs.begin(), producer.outputs.end(),
                        input) != producer.outputs.end()) {
            bytes_at[producer.site] += bytes;
            from_dep = true;
            break;
          }
        }
        if (!from_dep) {
          for (const PhysicalLocation& loc : LocationsOf(input)) {
            bytes_at[loc.site] += bytes;
            break;  // count the first location only
          }
        }
      }
      std::string best = options.target_site;
      int64_t best_bytes = -1;
      for (const auto& [site, bytes] : bytes_at) {
        // Requirements-filtered sites only.
        if (std::find(sites.begin(), sites.end(), site) == sites.end()) {
          continue;
        }
        if (bytes > best_bytes) {
          best = site;
          best_bytes = bytes;
        }
      }
      std::vector<std::string> ranked{best};
      std::stable_sort(sites.begin(), sites.end(),
                       [&bytes_at](const std::string& a,
                                   const std::string& b) {
                         auto at = [&bytes_at](const std::string& s) {
                           auto it = bytes_at.find(s);
                           return it == bytes_at.end() ? int64_t{0}
                                                       : it->second;
                         };
                         return at(a) > at(b);
                       });
      for (const std::string& site : sites) {
        if (site != best) ranked.push_back(site);
      }
      return ranked;
    }
    case SiteSelectionPolicy::kMinCost:
      break;
  }

  // kMinCost: cheapest first; stable sort keeps the topology order as
  // the deterministic tie-break (front() matches the historical pick).
  std::vector<std::pair<double, std::string>> costed;
  costed.reserve(sites.size());
  for (const std::string& site : sites) {
    costed.emplace_back(NodeCostAt(node, site, options, plan), site);
  }
  std::stable_sort(costed.begin(), costed.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  std::vector<std::string> ranked;
  ranked.reserve(costed.size());
  for (auto& [cost, site] : costed) ranked.push_back(std::move(site));
  return ranked;
}

Status RequestPlanner::AssignSitesAndCosts(const PlannerOptions& options,
                                           ExecutionPlan* plan) const {
  // Dependency edges from the producer_of relation embodied in node
  // order: input produced by an earlier node -> dep edge.
  std::map<std::string, size_t> produced_by;
  for (size_t i = 0; i < plan->nodes.size(); ++i) {
    PlanNode& node = plan->nodes[i];
    std::set<size_t> deps;
    for (const std::string& input : node.inputs) {
      auto it = produced_by.find(input);
      if (it != produced_by.end()) deps.insert(it->second);
    }
    node.deps.assign(deps.begin(), deps.end());
    for (const std::string& output : node.outputs) {
      produced_by.emplace(output, i);
    }
  }

  std::vector<double> finish(plan->nodes.size(), 0);
  for (size_t i = 0; i < plan->nodes.size(); ++i) {
    PlanNode& node = plan->nodes[i];
    node.candidate_sites = RankSites(node, i, options, *plan);
    node.site = node.candidate_sites.front();
    node.est_runtime_s =
        estimator_.EstimateRuntime(node.transformation, node.site);

    // Staging entries + shipping-pattern classification.
    size_t local_inputs = 0;
    size_t remote_inputs = 0;
    double ready = 0;
    for (size_t dep : node.deps) {
      ready = std::max(ready, finish[dep]);
    }
    double staging_time = 0;
    for (const std::string& input : node.inputs) {
      int64_t bytes = DatasetBytes(input, options);
      std::string from_site;
      auto it = produced_by.find(input);
      if (it != produced_by.end() && it->second < i) {
        from_site = plan->nodes[it->second].site;
      } else {
        double best = kImpossible;
        for (const PhysicalLocation& loc : LocationsOf(input)) {
          double cost = topology_.TransferSeconds(loc.site, node.site, bytes);
          if (cost < best) {
            best = cost;
            from_site = loc.site;
          }
        }
        if (from_site.empty()) {
          return Status::FailedPrecondition("input " + input + " of " +
                                            node.derivation.name() +
                                            " has no source location");
        }
      }
      if (from_site == node.site) {
        ++local_inputs;
        continue;
      }
      ++remote_inputs;
      TransferPlan stage;
      stage.dataset = input;
      stage.from_site = from_site;
      stage.to_site = node.site;
      stage.bytes = bytes;
      stage.est_seconds =
          topology_.TransferSeconds(from_site, node.site, bytes);
      staging_time = std::max(staging_time, stage.est_seconds);  // parallel
      plan->est_transfer_s += stage.est_seconds;
      node.staging.push_back(std::move(stage));
    }
    if (node.inputs.empty() || remote_inputs == 0) {
      node.pattern = node.inputs.empty() ? ShippingPattern::kCollocated
                                         : ShippingPattern::kProcedureToData;
    } else if (local_inputs == 0 && node.site == options.target_site) {
      node.pattern = ShippingPattern::kDataToProcedure;
    } else if (local_inputs == 0) {
      node.pattern = ShippingPattern::kShipBoth;
    } else {
      node.pattern = ShippingPattern::kShipBoth;
    }

    plan->est_compute_s += node.est_runtime_s;
    finish[i] = ready + staging_time + node.est_runtime_s;
  }

  for (double f : finish) {
    plan->est_makespan_s = std::max(plan->est_makespan_s, f);
  }

  // Final hop: move the requested dataset to the target site when its
  // producing node runs elsewhere.
  auto it = produced_by.find(plan->target_dataset);
  if (it != produced_by.end()) {
    const PlanNode& producer = plan->nodes[it->second];
    if (producer.site != plan->target_site) {
      TransferPlan fetch;
      fetch.dataset = plan->target_dataset;
      fetch.from_site = producer.site;
      fetch.to_site = plan->target_site;
      fetch.bytes = DatasetBytes(plan->target_dataset, options);
      fetch.est_seconds = topology_.TransferSeconds(
          producer.site, plan->target_site, fetch.bytes);
      plan->est_transfer_s += fetch.est_seconds;
      plan->est_makespan_s += fetch.est_seconds;
      plan->fetches.push_back(std::move(fetch));
    }
  }
  return Status::OK();
}

Result<ExecutionPlan> RequestPlanner::BuildRerunPlan(
    std::string_view dataset, const PlannerOptions& options) const {
  ExecutionPlan plan;
  plan.target_dataset = std::string(dataset);
  plan.target_site = options.target_site;
  plan.mode = MaterializationMode::kRerun;

  std::map<std::string, size_t> producer_of;
  std::set<std::string> visited;
  std::set<std::string> resolving;
  VDG_RETURN_IF_ERROR(ResolveChain(dataset, options, &producer_of, &visited,
                                   &resolving, &plan.nodes));
  if (plan.nodes.empty()) {
    return Status::FailedPrecondition(
        "rerun plan for " + std::string(dataset) + " resolved no work");
  }
  VDG_RETURN_IF_ERROR(AssignSitesAndCosts(options, &plan));
  return plan;
}

Result<RequestPlanner::ModeDecision> RequestPlanner::DecideMode(
    std::string_view dataset, const PlannerOptions& options) const {
  if (!catalog_.HasDataset(dataset)) {
    return Status::NotFound("dataset not found: " + std::string(dataset));
  }
  if (!topology_.HasSite(options.target_site)) {
    return Status::NotFound("target site not found: " + options.target_site);
  }
  ModeDecision decision;

  std::vector<PhysicalLocation> locations = LocationsOf(dataset);
  for (const PhysicalLocation& loc : locations) {
    if (loc.site == options.target_site) {
      decision.mode = MaterializationMode::kAlreadyLocal;
      return decision;
    }
  }

  decision.fetch_cost_s = kImpossible;
  int64_t bytes = DatasetBytes(dataset, options);
  for (const PhysicalLocation& loc : locations) {
    decision.fetch_cost_s =
        std::min(decision.fetch_cost_s,
                 topology_.TransferSeconds(loc.site, options.target_site,
                                           bytes));
  }

  decision.rerun_cost_s = kImpossible;
  if (catalog_.ProducerOf(dataset).ok()) {
    Result<ExecutionPlan> rerun = BuildRerunPlan(dataset, options);
    if (rerun.ok()) decision.rerun_cost_s = rerun->est_makespan_s;
  }

  if (decision.fetch_cost_s == kImpossible &&
      decision.rerun_cost_s == kImpossible) {
    return Status::FailedPrecondition(
        "dataset " + std::string(dataset) +
        " has no replica and no executable derivation chain");
  }
  if (!options.allow_fetch && decision.rerun_cost_s != kImpossible) {
    decision.mode = MaterializationMode::kRerun;
  } else if (decision.fetch_cost_s <= decision.rerun_cost_s) {
    decision.mode = MaterializationMode::kFetch;
  } else {
    decision.mode = MaterializationMode::kRerun;
  }
  return decision;
}

Result<RequestPlanner::FeasibilityReport> RequestPlanner::AssessFeasibility(
    std::string_view dataset, const PlannerOptions& options,
    double deadline_s) const {
  VDG_ASSIGN_OR_RETURN(ExecutionPlan plan, Plan(dataset, options));
  FeasibilityReport report;
  report.deadline_s = deadline_s;
  report.mode = plan.mode;
  report.est_seconds = plan.est_makespan_s;
  report.derivations_needed = plan.nodes.size();
  report.feasible = plan.est_makespan_s <= deadline_s;
  return report;
}

Result<ExecutionPlan> RequestPlanner::Plan(
    std::string_view dataset, const PlannerOptions& options) const {
  VDG_ASSIGN_OR_RETURN(ModeDecision decision, DecideMode(dataset, options));

  ExecutionPlan plan;
  plan.target_dataset = std::string(dataset);
  plan.target_site = options.target_site;
  plan.mode = decision.mode;

  switch (decision.mode) {
    case MaterializationMode::kAlreadyLocal:
      return plan;
    case MaterializationMode::kFetch: {
      int64_t bytes = DatasetBytes(dataset, options);
      std::string from;
      double best = kImpossible;
      for (const PhysicalLocation& loc : LocationsOf(dataset)) {
        double cost =
            topology_.TransferSeconds(loc.site, options.target_site, bytes);
        if (cost < best) {
          best = cost;
          from = loc.site;
        }
      }
      TransferPlan fetch;
      fetch.dataset = plan.target_dataset;
      fetch.from_site = from;
      fetch.to_site = plan.target_site;
      fetch.bytes = bytes;
      fetch.est_seconds = best;
      plan.est_transfer_s = best;
      plan.est_makespan_s = best;
      plan.fetches.push_back(std::move(fetch));
      return plan;
    }
    case MaterializationMode::kRerun:
      return BuildRerunPlan(dataset, options);
  }
  return Status::Internal("unreachable materialization mode");
}

}  // namespace vdg
