#ifndef VDG_PLANNER_EXPANSION_H_
#define VDG_PLANNER_EXPANSION_H_

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "schema/derivation.h"

namespace vdg {

/// Strips a namespace qualifier ("ns::name" -> "name"); local catalogs
/// key transformations by bare name, namespaces route across catalogs.
std::string StripNamespace(std::string_view transformation);

/// Expands a derivation of a *compound* transformation into the
/// equivalent list of simple-transformation derivations (Section 3.2's
/// "directed acyclic execution graph"), recursively flattening nested
/// compounds. Synthesized derivations are named
/// `<derivation>.c<k>`; unbound inout temporaries become datasets
/// named `<derivation>.<formal>` so distinct derivations never collide
/// on scratch names. Derivations of simple transformations expand to
/// themselves.
///
/// The result is ordered so that within the list, producers precede
/// consumers (the nested-call order of the VDL body, which Chimera
/// requires to be a valid execution order).
Result<std::vector<Derivation>> ExpandDerivation(
    const VirtualDataCatalog& catalog, const Derivation& derivation);

}  // namespace vdg

#endif  // VDG_PLANNER_EXPANSION_H_
