#include "planner/dax.h"

#include <cstdio>
#include <cstdlib>

#include "vdl/xml.h"
#include "vdl/xml_parse.h"

namespace vdg {

namespace {

std::string JobId(size_t index) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ID%06zu", index + 1);
  return buf;
}

std::string TransferToXml(const char* tag, const TransferPlan& transfer,
                          int indent) {
  std::string pad(static_cast<size_t>(indent), ' ');
  return pad + "<" + tag + " file=\"" + XmlEscape(transfer.dataset) +
         "\" from=\"" + XmlEscape(transfer.from_site) + "\" to=\"" +
         XmlEscape(transfer.to_site) + "\" bytes=\"" +
         std::to_string(transfer.bytes) + "\" seconds=\"" +
         std::to_string(transfer.est_seconds) + "\"/>\n";
}

Result<TransferPlan> TransferFromXml(const XmlNode& node) {
  TransferPlan transfer;
  const std::string* file = node.FindAttribute("file");
  const std::string* from = node.FindAttribute("from");
  const std::string* to = node.FindAttribute("to");
  if (file == nullptr || from == nullptr || to == nullptr) {
    return Status::ParseError("<" + node.name + "> missing file/from/to");
  }
  transfer.dataset = *file;
  transfer.from_site = *from;
  transfer.to_site = *to;
  if (const std::string* bytes = node.FindAttribute("bytes")) {
    transfer.bytes = std::strtoll(bytes->c_str(), nullptr, 10);
  }
  if (const std::string* seconds = node.FindAttribute("seconds")) {
    transfer.est_seconds = std::strtod(seconds->c_str(), nullptr);
  }
  return transfer;
}

}  // namespace

std::string PlanToDax(const ExecutionPlan& plan) {
  std::string out = "<?xml version=\"1.0\"?>\n";
  out += "<adag name=\"materialize-" + XmlEscape(plan.target_dataset) +
         "\" target=\"" + XmlEscape(plan.target_dataset) + "\" site=\"" +
         XmlEscape(plan.target_site) + "\" mode=\"" +
         MaterializationModeToString(plan.mode) + "\" jobCount=\"" +
         std::to_string(plan.nodes.size()) + "\">\n";
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    const PlanNode& node = plan.nodes[i];
    out += "  <job id=\"" + JobId(i) + "\" transformation=\"" +
           XmlEscape(node.transformation) + "\" site=\"" +
           XmlEscape(node.site) + "\" runtime=\"" +
           std::to_string(node.est_runtime_s) + "\" pattern=\"" +
           ShippingPatternToString(node.pattern) + "\">\n";
    // The exact derivation travels inside the job, so a receiver can
    // reconstruct the full record, not just the graph skeleton.
    out += DerivationToXml(node.derivation, 4);
    for (const std::string& input : node.inputs) {
      out += "    <uses file=\"" + XmlEscape(input) + "\" link=\"input\"/>\n";
    }
    for (const std::string& output : node.outputs) {
      out +=
          "    <uses file=\"" + XmlEscape(output) + "\" link=\"output\"/>\n";
    }
    for (const TransferPlan& stage : node.staging) {
      out += TransferToXml("stage-in", stage, 4);
    }
    out += "  </job>\n";
  }
  for (size_t i = 0; i < plan.nodes.size(); ++i) {
    if (plan.nodes[i].deps.empty()) continue;
    out += "  <child ref=\"" + JobId(i) + "\">\n";
    for (size_t dep : plan.nodes[i].deps) {
      out += "    <parent ref=\"" + JobId(dep) + "\"/>\n";
    }
    out += "  </child>\n";
  }
  for (const TransferPlan& fetch : plan.fetches) {
    out += TransferToXml("stage-out", fetch, 2);
  }
  out += "</adag>\n";
  return out;
}

Result<ExecutionPlan> PlanFromDax(std::string_view dax) {
  VDG_ASSIGN_OR_RETURN(std::unique_ptr<XmlNode> root, ParseXml(dax));
  if (root->name != "adag") {
    return Status::ParseError("expected <adag> root, got <" + root->name +
                              ">");
  }
  ExecutionPlan plan;
  if (const std::string* target = root->FindAttribute("target")) {
    plan.target_dataset = *target;
  }
  if (const std::string* site = root->FindAttribute("site")) {
    plan.target_site = *site;
  }
  if (const std::string* mode = root->FindAttribute("mode")) {
    if (*mode == "fetch") {
      plan.mode = MaterializationMode::kFetch;
    } else if (*mode == "already-local") {
      plan.mode = MaterializationMode::kAlreadyLocal;
    } else {
      plan.mode = MaterializationMode::kRerun;
    }
  }

  std::map<std::string, size_t> index_by_id;
  for (const XmlNode* job : root->Children("job")) {
    PlanNode node;
    const std::string* id = job->FindAttribute("id");
    if (id == nullptr) return Status::ParseError("<job> missing id");
    if (const std::string* tr = job->FindAttribute("transformation")) {
      node.transformation = *tr;
    }
    if (const std::string* site = job->FindAttribute("site")) {
      node.site = *site;
    }
    if (const std::string* runtime = job->FindAttribute("runtime")) {
      node.est_runtime_s = std::strtod(runtime->c_str(), nullptr);
    }
    const XmlNode* derivation = job->FirstChild("derivation");
    if (derivation == nullptr) {
      return Status::ParseError("<job " + *id +
                                "> carries no <derivation> payload");
    }
    VDG_ASSIGN_OR_RETURN(node.derivation, DerivationFromXml(*derivation));
    for (const XmlNode* uses : job->Children("uses")) {
      const std::string* file = uses->FindAttribute("file");
      const std::string* link = uses->FindAttribute("link");
      if (file == nullptr || link == nullptr) {
        return Status::ParseError("<uses> missing file/link");
      }
      if (*link == "input") {
        node.inputs.push_back(*file);
      } else {
        node.outputs.push_back(*file);
      }
    }
    for (const XmlNode* stage : job->Children("stage-in")) {
      VDG_ASSIGN_OR_RETURN(TransferPlan transfer, TransferFromXml(*stage));
      plan.est_transfer_s += transfer.est_seconds;
      node.staging.push_back(std::move(transfer));
    }
    index_by_id.emplace(*id, plan.nodes.size());
    plan.est_compute_s += node.est_runtime_s;
    plan.nodes.push_back(std::move(node));
  }
  for (const XmlNode* child : root->Children("child")) {
    const std::string* ref = child->FindAttribute("ref");
    if (ref == nullptr) return Status::ParseError("<child> missing ref");
    auto it = index_by_id.find(*ref);
    if (it == index_by_id.end()) {
      return Status::ParseError("<child> references unknown job " + *ref);
    }
    PlanNode& node = plan.nodes[it->second];
    for (const XmlNode* parent : child->Children("parent")) {
      const std::string* parent_ref = parent->FindAttribute("ref");
      if (parent_ref == nullptr) {
        return Status::ParseError("<parent> missing ref");
      }
      auto parent_it = index_by_id.find(*parent_ref);
      if (parent_it == index_by_id.end()) {
        return Status::ParseError("<parent> references unknown job " +
                                  *parent_ref);
      }
      if (parent_it->second >= it->second) {
        return Status::ParseError("DAX dependency edge is not topological");
      }
      node.deps.push_back(parent_it->second);
    }
  }
  for (const XmlNode* fetch : root->Children("stage-out")) {
    VDG_ASSIGN_OR_RETURN(TransferPlan transfer, TransferFromXml(*fetch));
    plan.est_transfer_s += transfer.est_seconds;
    plan.fetches.push_back(std::move(transfer));
  }
  return plan;
}

}  // namespace vdg
