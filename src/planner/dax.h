#ifndef VDG_PLANNER_DAX_H_
#define VDG_PLANNER_DAX_H_

#include <string>

#include "common/status.h"
#include "planner/plan.h"

namespace vdg {

/// Renders an execution plan as an abstract-DAG XML document in the
/// style of Chimera's actual output (the "DAX" consumed by Pegasus /
/// Condor DAGMan — the paper's derivation machinery, Section 5.4):
/// one <job> per derivation node with <uses> file declarations
/// (link="input"/"output"), explicit <child><parent/></child>
/// dependency edges, and <stage-in>/<stage-out> transfer directives.
std::string PlanToDax(const ExecutionPlan& plan);

/// Parses a DAX document produced by PlanToDax back into a skeletal
/// plan (jobs, sites, dependency edges, transfers). Used to hand plans
/// to out-of-process executors and in round-trip tests. Cost estimates
/// are not carried on the wire and come back as zero.
Result<ExecutionPlan> PlanFromDax(std::string_view dax);

}  // namespace vdg

#endif  // VDG_PLANNER_DAX_H_
