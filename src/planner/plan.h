#ifndef VDG_PLANNER_PLAN_H_
#define VDG_PLANNER_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "schema/derivation.h"

namespace vdg {

/// The four data/procedure shipping patterns of Section 5.2.
enum class ShippingPattern {
  kCollocated,       // 1: procedure already lives with the data
  kProcedureToData,  // 2: computation moved to the data's site
  kDataToProcedure,  // 3: data staged to the procedure's site
  kShipBoth,         // 4: both shipped to a third-party compute site
};

const char* ShippingPatternToString(ShippingPattern pattern);

/// One planned wide-area data movement.
struct TransferPlan {
  std::string dataset;
  std::string from_site;
  std::string to_site;
  int64_t bytes = 0;
  double est_seconds = 0;
};

/// One derivation execution in a plan: a simple-transformation
/// derivation bound to a site, with its input staging and dependency
/// edges (indices into ExecutionPlan::nodes).
struct PlanNode {
  Derivation derivation;
  std::string transformation;  // bare transformation name
  std::string site;            // chosen execution site
  double est_runtime_s = 0;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  std::vector<TransferPlan> staging;  // materialized inputs to move in
  std::vector<size_t> deps;           // producer nodes within the plan
  ShippingPattern pattern = ShippingPattern::kCollocated;
  /// All admissible execution sites ranked best-first by the site
  /// policy (front() == site). A recovery engine fails over down this
  /// list when the chosen site keeps faulting.
  std::vector<std::string> candidate_sites;
};

/// How a requested dataset gets materialized at the target site.
enum class MaterializationMode {
  kAlreadyLocal,  // a valid replica already sits at the target site
  kFetch,         // copy an existing remote replica
  kRerun,         // execute the derivation chain
};

const char* MaterializationModeToString(MaterializationMode mode);

/// A complete, topologically ordered execution plan for materializing
/// one virtual data product (the output of "Planning", Figure 5).
struct ExecutionPlan {
  std::string target_dataset;
  std::string target_site;
  MaterializationMode mode = MaterializationMode::kRerun;

  /// Non-empty only in kFetch mode: the final copy to the target.
  std::vector<TransferPlan> fetches;

  /// Derivations to execute, producers before consumers.
  std::vector<PlanNode> nodes;

  /// Cost roll-up (simulated seconds).
  double est_compute_s = 0;   // sum of node runtimes
  double est_transfer_s = 0;  // sum of all staging + fetches
  double est_makespan_s = 0;  // critical-path estimate

  size_t size() const { return nodes.size(); }
  bool empty() const { return nodes.empty() && fetches.empty(); }

  /// Human-readable summary for logs and the quickstart example.
  std::string ToString() const;
};

}  // namespace vdg

#endif  // VDG_PLANNER_PLAN_H_
