#include "planner/plan.h"

#include "common/strings.h"

namespace vdg {

const char* ShippingPatternToString(ShippingPattern pattern) {
  switch (pattern) {
    case ShippingPattern::kCollocated:
      return "collocated";
    case ShippingPattern::kProcedureToData:
      return "procedure-to-data";
    case ShippingPattern::kDataToProcedure:
      return "data-to-procedure";
    case ShippingPattern::kShipBoth:
      return "ship-both";
  }
  return "?";
}

const char* MaterializationModeToString(MaterializationMode mode) {
  switch (mode) {
    case MaterializationMode::kAlreadyLocal:
      return "already-local";
    case MaterializationMode::kFetch:
      return "fetch";
    case MaterializationMode::kRerun:
      return "rerun";
  }
  return "?";
}

std::string ExecutionPlan::ToString() const {
  std::string out = "plan: materialize " + target_dataset + " at " +
                    target_site + " via " +
                    MaterializationModeToString(mode) + "\n";
  for (const TransferPlan& fetch : fetches) {
    out += "  fetch " + fetch.dataset + " " + fetch.from_site + " -> " +
           fetch.to_site + " (" + std::to_string(fetch.bytes) + " bytes, ~" +
           FormatDouble(fetch.est_seconds) + "s)\n";
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const PlanNode& node = nodes[i];
    out += "  [" + std::to_string(i) + "] " + node.derivation.name() + " (" +
           node.transformation + ") @ " + node.site + " ~" +
           FormatDouble(node.est_runtime_s) + "s " +
           ShippingPatternToString(node.pattern);
    if (!node.deps.empty()) {
      out += " deps:";
      for (size_t dep : node.deps) out += " " + std::to_string(dep);
    }
    for (const TransferPlan& stage : node.staging) {
      out += "\n      stage " + stage.dataset + " " + stage.from_site +
             " -> " + stage.to_site;
    }
    out += "\n";
  }
  out += "  est: compute=" + FormatDouble(est_compute_s) +
         "s transfer=" + FormatDouble(est_transfer_s) +
         "s makespan=" + FormatDouble(est_makespan_s) + "s\n";
  return out;
}

}  // namespace vdg
