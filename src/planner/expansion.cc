#include "planner/expansion.h"

#include <map>

namespace vdg {

std::string StripNamespace(std::string_view transformation) {
  size_t pos = transformation.rfind("::");
  if (pos == std::string_view::npos) return std::string(transformation);
  return std::string(transformation.substr(pos + 2));
}

namespace {

// The value a compound formal is bound to during expansion.
struct BoundValue {
  bool is_dataset = false;
  std::string text;  // string value, or logical dataset name
};

using Environment = std::map<std::string, BoundValue>;

// Builds the formal->value environment for one compound invocation.
Result<Environment> BuildEnvironment(const Transformation& compound,
                                     const Derivation& derivation) {
  Environment env;
  for (const FormalArg& formal : compound.args()) {
    const ActualArg* actual = derivation.FindArg(formal.name);
    BoundValue value;
    if (actual != nullptr) {
      if (actual->string_value) {
        value.text = *actual->string_value;
      } else {
        value.is_dataset = true;
        value.text = *actual->dataset;
      }
    } else if (formal.is_string() && formal.default_string) {
      value.text = *formal.default_string;
    } else if (!formal.is_string()) {
      // Unbound dataset formal: an inout temporary. Synthesize a
      // per-derivation scratch name so parallel expansions of the same
      // compound never share state.
      value.is_dataset = true;
      value.text = derivation.name() + "." + formal.name;
    } else {
      return Status::TypeError("compound expansion: formal " + formal.name +
                               " of " + compound.name() +
                               " is unbound and has no default");
    }
    env.emplace(formal.name, std::move(value));
  }
  return env;
}

Status ExpandInto(const VirtualDataCatalog& catalog,
                  const Derivation& derivation, int depth,
                  std::vector<Derivation>* out) {
  if (depth > 64) {
    return Status::FailedPrecondition(
        "compound nesting exceeds depth limit (cycle in compound "
        "definitions?) at " +
        derivation.name());
  }
  std::string tr_name = StripNamespace(derivation.transformation());
  VDG_ASSIGN_OR_RETURN(Transformation tr,
                       catalog.GetTransformation(tr_name));
  if (!tr.is_compound()) {
    out->push_back(derivation);
    return Status::OK();
  }

  VDG_ASSIGN_OR_RETURN(Environment env, BuildEnvironment(tr, derivation));

  int call_index = 0;
  for (const CompoundCall& call : tr.calls()) {
    std::string callee_name = StripNamespace(call.callee);
    VDG_ASSIGN_OR_RETURN(Transformation callee,
                         catalog.GetTransformation(callee_name));

    Derivation sub(derivation.name() + ".c" + std::to_string(call_index++),
                   callee_name);
    // Inherit environment-variable overrides from the parent.
    for (const auto& [k, v] : derivation.env_overrides()) {
      sub.SetEnvOverride(k, v);
    }

    for (const auto& [callee_formal, piece] : call.bindings) {
      const FormalArg* formal = callee.FindArg(callee_formal);
      if (formal == nullptr) {
        return Status::TypeError("compound " + tr.name() + " binds unknown "
                                 "formal " + callee_formal + " of " +
                                 callee.name());
      }
      if (!piece.is_ref()) {
        // Literal argument value.
        if (formal->is_string()) {
          VDG_RETURN_IF_ERROR(
              sub.AddArg(ActualArg::String(callee_formal, piece.text)));
        } else {
          // A literal bound to a dataset formal names a dataset.
          VDG_RETURN_IF_ERROR(sub.AddArg(ActualArg::DatasetRef(
              callee_formal, piece.text, formal->direction)));
        }
        continue;
      }
      auto bound = env.find(piece.text);
      if (bound == env.end()) {
        return Status::TypeError("compound " + tr.name() +
                                 " call references unknown formal " +
                                 piece.text);
      }
      if (formal->is_string()) {
        if (bound->second.is_dataset) {
          return Status::TypeError("compound " + tr.name() +
                                   " passes dataset " + bound->second.text +
                                   " to string formal " + callee_formal);
        }
        VDG_RETURN_IF_ERROR(
            sub.AddArg(ActualArg::String(callee_formal, bound->second.text)));
      } else {
        if (!bound->second.is_dataset) {
          return Status::TypeError("compound " + tr.name() +
                                   " passes string to dataset formal " +
                                   callee_formal + " of " + callee.name());
        }
        // The callee formal's declared direction governs; for inout
        // formals the call site's ${input:x}/${output:x} qualifier
        // names the leg this call uses.
        ArgDirection dir = formal->direction;
        if (dir == ArgDirection::kInOut && piece.ref_direction) {
          dir = *piece.ref_direction;
        }
        VDG_RETURN_IF_ERROR(sub.AddArg(
            ActualArg::DatasetRef(callee_formal, bound->second.text, dir)));
      }
    }

    if (callee.is_compound()) {
      VDG_RETURN_IF_ERROR(ExpandInto(catalog, sub, depth + 1, out));
    } else {
      out->push_back(std::move(sub));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Derivation>> ExpandDerivation(
    const VirtualDataCatalog& catalog, const Derivation& derivation) {
  std::vector<Derivation> out;
  VDG_RETURN_IF_ERROR(ExpandInto(catalog, derivation, 0, &out));
  return out;
}

}  // namespace vdg
