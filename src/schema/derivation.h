#ifndef VDG_SCHEMA_DERIVATION_H_
#define VDG_SCHEMA_DERIVATION_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "schema/dataset.h"
#include "schema/transformation.h"

namespace vdg {

/// An actual argument supplied by a derivation: either a by-value
/// string (for `none` formals) or a logical-dataset binding written
/// `@{direction:"name"}` in VDL.
struct ActualArg {
  std::string formal;  // name of the bound formal argument

  /// Exactly one of the two is set.
  std::optional<std::string> string_value;
  std::optional<std::string> dataset;

  /// Direction as written at the call site (dataset bindings only).
  std::optional<ArgDirection> direction;

  bool is_dataset() const { return dataset.has_value(); }

  static ActualArg String(std::string formal, std::string value) {
    ActualArg a;
    a.formal = std::move(formal);
    a.string_value = std::move(value);
    return a;
  }
  static ActualArg DatasetRef(std::string formal, std::string dataset_name,
                              ArgDirection dir) {
    ActualArg a;
    a.formal = std::move(formal);
    a.dataset = std::move(dataset_name);
    a.direction = dir;
    return a;
  }

  std::string ToString() const;
};

/// A derivation specializes a transformation with actual arguments —
/// simultaneously a historical record of what was done and a recipe
/// for what can be done (Section 3). Dataset outputs of a derivation
/// are *virtual* until some invocation materializes them.
class Derivation {
 public:
  Derivation() = default;
  Derivation(std::string name, std::string transformation)
      : name_(std::move(name)), transformation_(std::move(transformation)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Namespace qualifier from `DV d1->example1::t1(...)`; may be "".
  const std::string& transformation_namespace() const { return tr_ns_; }
  void set_transformation_namespace(std::string ns) { tr_ns_ = std::move(ns); }

  /// Target transformation name (or vdp:// URI for remote TRs).
  const std::string& transformation() const { return transformation_; }
  void set_transformation(std::string tr) { transformation_ = std::move(tr); }

  /// "ns::name" when a namespace is present, else the bare name.
  std::string QualifiedTransformation() const;

  const std::vector<ActualArg>& args() const { return args_; }
  Status AddArg(ActualArg arg);
  const ActualArg* FindArg(std::string_view formal) const;

  /// Environment-variable overrides recorded with the derivation.
  const std::map<std::string, std::string>& env_overrides() const {
    return env_overrides_;
  }
  void SetEnvOverride(std::string name, std::string value) {
    env_overrides_.insert_or_assign(std::move(name), std::move(value));
  }

  AttributeSet& annotations() { return annotations_; }
  const AttributeSet& annotations() const { return annotations_; }

  /// Logical names of datasets this derivation consumes / produces,
  /// judged by the direction recorded on each actual argument.
  std::vector<std::string> InputDatasets() const;
  std::vector<std::string> OutputDatasets() const;

  /// Canonical content signature over (transformation, sorted actual
  /// arguments, env overrides). Two derivations with equal signatures
  /// request the same computation — the key to the paper's
  /// "has this been computed before?" dedup query.
  uint64_t Signature() const;
  std::string SignatureText() const;

  /// Structural checks (names, one-value-per-arg).
  Status Validate() const;

 private:
  std::string name_;
  std::string tr_ns_;
  std::string transformation_;
  std::vector<ActualArg> args_;
  std::map<std::string, std::string> env_overrides_;
  AttributeSet annotations_;
};

/// Execution environment details captured by an invocation.
struct ExecutionContext {
  std::string site;
  std::string host;
  std::string os = "linux";
  std::string architecture = "x86_64";
};

/// An invocation specializes a derivation with a specific execution:
/// when and where it ran, how long it took, which physical replicas it
/// touched (Section 3). Invocations are the leaves of the provenance
/// audit trail and feed the cost estimator.
struct Invocation {
  std::string id;          // catalog-assigned unique id
  std::string derivation;  // derivation name
  ExecutionContext context;
  SimTime start_time = 0;
  double duration_s = 0;   // wall time, simulated seconds
  double cpu_seconds = 0;
  int64_t peak_memory_bytes = 0;
  int exit_code = 0;
  bool succeeded = true;
  /// Physical replicas consumed / produced, for replica-precise
  /// provenance in a replicated environment.
  std::vector<std::string> consumed_replicas;
  std::vector<std::string> produced_replicas;
  AttributeSet annotations;

  Status Validate() const;
};

}  // namespace vdg

#endif  // VDG_SCHEMA_DERIVATION_H_
