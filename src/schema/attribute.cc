#include "schema/attribute.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/strings.h"

namespace vdg {

std::optional<double> AttributeValue::AsNumber() const {
  if (is_int()) return static_cast<double>(AsInt());
  if (is_double()) return AsDouble();
  return std::nullopt;
}

std::string AttributeValue::ToString() const {
  if (is_string()) return AsString();
  if (is_int()) return std::to_string(AsInt());
  if (is_double()) return FormatDouble(AsDouble());
  return AsBool() ? "true" : "false";
}

std::string AttributeValue::ToWireString() const {
  if (is_double()) return FormatDoubleRoundTrip(AsDouble());
  return ToString();
}

char AttributeValue::TypeTag() const {
  if (is_string()) return 's';
  if (is_int()) return 'i';
  if (is_double()) return 'd';
  return 'b';
}

Result<AttributeValue> AttributeValue::FromTagged(char tag,
                                                  std::string_view text) {
  switch (tag) {
    case 's':
      return AttributeValue(std::string(text));
    case 'i': {
      char* end = nullptr;
      std::string buf(text);
      errno = 0;
      int64_t v = std::strtoll(buf.c_str(), &end, 10);
      if (end == nullptr || end == buf.c_str() || *end != '\0') {
        return Status::ParseError("bad int attribute: " + buf);
      }
      if (errno == ERANGE) {
        // strtoll saturates to INT64_MAX/MIN instead of failing;
        // surfacing the corruption beats silently keeping it.
        return Status::ParseError("int attribute out of range: " + buf);
      }
      return AttributeValue(v);
    }
    case 'd': {
      char* end = nullptr;
      std::string buf(text);
      double v = std::strtod(buf.c_str(), &end);
      if (end == nullptr || end == buf.c_str() || *end != '\0') {
        return Status::ParseError("bad double attribute: " + buf);
      }
      if (!std::isfinite(v)) {
        // NaN breaks attribute-equality normalization (NaN != NaN),
        // and inf also covers overflowing literals like 1e999.
        return Status::ParseError("non-finite double attribute: " + buf);
      }
      return AttributeValue(v);
    }
    case 'b':
      if (text == "true") return AttributeValue(true);
      if (text == "false") return AttributeValue(false);
      return Status::ParseError("bad bool attribute: " + std::string(text));
    default:
      return Status::ParseError(std::string("unknown attribute tag: ") + tag);
  }
}

void AttributeSet::Set(std::string_view key, AttributeValue value) {
  values_.insert_or_assign(std::string(key), std::move(value));
}

bool AttributeSet::Has(std::string_view key) const {
  return values_.find(key) != values_.end();
}

bool AttributeSet::Erase(std::string_view key) {
  auto it = values_.find(key);
  if (it == values_.end()) return false;
  values_.erase(it);
  return true;
}

const AttributeValue* AttributeSet::Find(std::string_view key) const {
  auto it = values_.find(key);
  return it == values_.end() ? nullptr : &it->second;
}

std::optional<std::string> AttributeSet::GetString(
    std::string_view key) const {
  const AttributeValue* v = Find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->AsString();
}

std::optional<int64_t> AttributeSet::GetInt(std::string_view key) const {
  const AttributeValue* v = Find(key);
  if (v == nullptr || !v->is_int()) return std::nullopt;
  return v->AsInt();
}

std::optional<double> AttributeSet::GetDouble(std::string_view key) const {
  const AttributeValue* v = Find(key);
  if (v == nullptr) return std::nullopt;
  return v->AsNumber();
}

std::optional<bool> AttributeSet::GetBool(std::string_view key) const {
  const AttributeValue* v = Find(key);
  if (v == nullptr || !v->is_bool()) return std::nullopt;
  return v->AsBool();
}

std::string AttributeSet::ToString() const {
  std::string out;
  bool first = true;
  for (const auto& [key, value] : values_) {
    if (!first) out += ";";
    first = false;
    out += key;
    out += "=";
    out += value.ToString();
  }
  return out;
}

namespace {

// Three-way comparison usable for both numeric and string operands.
// Returns nullopt when the kinds are incomparable.
std::optional<int> Compare(const AttributeValue& lhs,
                           const AttributeValue& rhs) {
  auto ln = lhs.AsNumber();
  auto rn = rhs.AsNumber();
  if (ln && rn) {
    if (*ln < *rn) return -1;
    if (*ln > *rn) return 1;
    return 0;
  }
  if (lhs.is_string() && rhs.is_string()) {
    return lhs.AsString().compare(rhs.AsString()) < 0
               ? -1
               : (lhs.AsString() == rhs.AsString() ? 0 : 1);
  }
  if (lhs.is_bool() && rhs.is_bool()) {
    return static_cast<int>(lhs.AsBool()) - static_cast<int>(rhs.AsBool());
  }
  return std::nullopt;
}

}  // namespace

bool AttributePredicate::Matches(const AttributeSet& attrs) const {
  const AttributeValue* actual = attrs.Find(key);
  if (op == PredicateOp::kExists) return actual != nullptr;
  if (actual == nullptr) return false;
  if (op == PredicateOp::kContains) {
    return actual->ToString().find(operand.ToString()) != std::string::npos;
  }
  std::optional<int> cmp = Compare(*actual, operand);
  if (!cmp) return false;
  switch (op) {
    case PredicateOp::kEq:
      return *cmp == 0;
    case PredicateOp::kNe:
      return *cmp != 0;
    case PredicateOp::kLt:
      return *cmp < 0;
    case PredicateOp::kLe:
      return *cmp <= 0;
    case PredicateOp::kGt:
      return *cmp > 0;
    case PredicateOp::kGe:
      return *cmp >= 0;
    default:
      return false;
  }
}

bool MatchesAll(const AttributeSet& attrs,
                const std::vector<AttributePredicate>& conjunction) {
  for (const AttributePredicate& p : conjunction) {
    if (!p.Matches(attrs)) return false;
  }
  return true;
}

}  // namespace vdg
