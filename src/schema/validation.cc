#include "schema/validation.h"

#include "common/uri.h"

namespace vdg {

namespace {

// A written direction is acceptable for a formal when it is the same
// direction, or when the formal is inout and the actual names one leg.
bool DirectionCompatible(ArgDirection formal, ArgDirection actual) {
  if (formal == actual) return true;
  if (formal == ArgDirection::kInOut) {
    return actual == ArgDirection::kIn || actual == ArgDirection::kOut;
  }
  return false;
}

}  // namespace

Status ValidateDerivationAgainst(const Derivation& derivation,
                                 const Transformation& transformation,
                                 const TypeRegistry& registry,
                                 const DatasetTypeLookup& lookup_type,
                                 const ValidationPolicy& policy) {
  VDG_RETURN_IF_ERROR(derivation.Validate());
  VDG_RETURN_IF_ERROR(transformation.Validate());

  // Every actual must name a formal and match its kind/direction.
  for (const ActualArg& actual : derivation.args()) {
    const FormalArg* formal = transformation.FindArg(actual.formal);
    if (formal == nullptr) {
      return Status::TypeError("derivation " + derivation.name() +
                               " binds unknown formal " + actual.formal +
                               " of " + transformation.name());
    }
    if (formal->is_string() != actual.string_value.has_value()) {
      return Status::TypeError(
          "derivation " + derivation.name() + " binds formal " +
          actual.formal + " with a " +
          (actual.is_dataset() ? "dataset" : "string") + " but " +
          transformation.name() + " declares it " +
          ArgDirectionToString(formal->direction));
    }
    if (actual.is_dataset()) {
      if (!DirectionCompatible(formal->direction, *actual.direction)) {
        return Status::TypeError(
            "derivation " + derivation.name() + " binds " + actual.formal +
            " as " + ArgDirectionToString(*actual.direction) + " but " +
            transformation.name() + " declares it " +
            ArgDirectionToString(formal->direction));
      }
      const DatasetType* ds_type =
          lookup_type ? lookup_type(*actual.dataset) : nullptr;
      if (ds_type == nullptr) {
        // Unknown dataset: fine for outputs (virtual data), an error
        // for inputs, which must at least be *defined* (they may still
        // be unmaterialized recipes). vdp:// hyperlinks resolve in a
        // different catalog, so they pass through here and are checked
        // by the federation layer.
        if (IsVdpUri(*actual.dataset)) continue;
        if (policy.allow_external_inputs) continue;
        if (DirectionReads(formal->direction) &&
            formal->direction != ArgDirection::kInOut) {
          return Status::TypeError("derivation " + derivation.name() +
                                   " reads undefined dataset " +
                                   *actual.dataset);
        }
        continue;
      }
      if (!registry.ConformsToAny(*ds_type, formal->types)) {
        std::string want;
        for (size_t i = 0; i < formal->types.size(); ++i) {
          if (i > 0) want += "|";
          want += formal->types[i].ToString();
        }
        return Status::TypeError(
            "dataset " + *actual.dataset + " of type " + ds_type->ToString() +
            " does not conform to formal " + actual.formal + " : " + want +
            " of " + transformation.name());
      }
    }
  }

  // Every formal must be bound or defaulted.
  for (const FormalArg& formal : transformation.args()) {
    if (derivation.FindArg(formal.name) != nullptr) continue;
    if (formal.is_string() && formal.default_string) continue;
    if (!formal.is_string() && formal.default_dataset) continue;
    return Status::TypeError("derivation " + derivation.name() +
                             " leaves formal " + formal.name + " of " +
                             transformation.name() + " unbound");
  }
  return Status::OK();
}

namespace {

// Resolves one template piece to its concrete text.
Result<std::string> ResolvePiece(const TemplatePiece& piece,
                                 const Transformation& tr,
                                 const Derivation& dv) {
  if (!piece.is_ref()) return piece.text;
  const FormalArg* formal = tr.FindArg(piece.text);
  if (formal == nullptr) {
    return Status::Internal("template references unknown formal " +
                            piece.text);
  }
  const ActualArg* actual = dv.FindArg(piece.text);
  if (actual == nullptr) {
    if (formal->default_string) return *formal->default_string;
    if (formal->default_dataset) return *formal->default_dataset;
    return Status::TypeError("formal " + piece.text +
                             " is unbound and has no default");
  }
  if (actual->string_value) return *actual->string_value;
  return *actual->dataset;
}

Result<std::string> ResolveExpr(const TemplateExpr& expr,
                                const Transformation& tr,
                                const Derivation& dv) {
  std::string out;
  for (const TemplatePiece& piece : expr) {
    VDG_ASSIGN_OR_RETURN(std::string text, ResolvePiece(piece, tr, dv));
    out += text;
  }
  return out;
}

bool IsStreamName(const std::string& name) {
  return name == "stdin" || name == "stdout" || name == "stderr";
}

}  // namespace

Result<ResolvedCommand> ResolveCommand(const Transformation& transformation,
                                       const Derivation& derivation) {
  if (transformation.is_compound()) {
    return Status::InvalidArgument(
        "ResolveCommand applies to simple transformations; " +
        transformation.name() + " is compound (expand it first)");
  }
  ResolvedCommand cmd;
  cmd.executable = transformation.executable();
  if (cmd.executable.empty()) {
    // Chimera VDL allows `profile hints.pfnHint = "/usr/bin/app1";`.
    auto it = transformation.profile().find("hints.pfnHint");
    if (it != transformation.profile().end()) {
      VDG_ASSIGN_OR_RETURN(cmd.executable,
                           ResolveExpr(it->second, transformation,
                                       derivation));
    }
  }
  for (const ArgumentTemplate& t : transformation.argument_templates()) {
    VDG_ASSIGN_OR_RETURN(std::string value,
                         ResolveExpr(t.expr, transformation, derivation));
    if (IsStreamName(t.name)) {
      cmd.streams[t.name] = value;
    } else {
      cmd.argv.push_back(value);
    }
  }
  for (const auto& [name, expr] : transformation.env()) {
    VDG_ASSIGN_OR_RETURN(std::string value,
                         ResolveExpr(expr, transformation, derivation));
    cmd.environment[name] = value;
  }
  for (const auto& [name, value] : derivation.env_overrides()) {
    cmd.environment[name] = value;
  }
  return cmd;
}

}  // namespace vdg
