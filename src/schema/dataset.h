#ifndef VDG_SCHEMA_DATASET_H_
#define VDG_SCHEMA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "schema/attribute.h"
#include "types/type_system.h"

namespace vdg {

/// A dataset descriptor provides "all information needed to access and
/// manipulate the dataset's contents" (Section 3.1). The paper leaves
/// descriptor schemas collaboration-defined, so we model a descriptor
/// as a schema tag plus schema-specific fields, and provide factory
/// helpers for the representative container kinds the paper lists.
struct DatasetDescriptor {
  std::string schema;   // e.g. "file", "file-slice", "sql-rows"
  AttributeSet fields;  // schema-specific, e.g. path=, table=, keys=

  /// A single file.
  static DatasetDescriptor File(std::string path);
  /// A set of files viewed as one logical entity.
  static DatasetDescriptor FileSet(const std::vector<std::string>& paths);
  /// Files with an offset/length slice applied to each.
  static DatasetDescriptor FileSlice(std::string path, int64_t offset,
                                     int64_t length);
  /// Rows extracted by primary key range from a SQL table.
  static DatasetDescriptor SqlRows(std::string database, std::string table,
                                   std::string key_lo, std::string key_hi);
  /// A closure of object references from a persistent object store.
  static DatasetDescriptor ObjectClosure(std::string store,
                                         std::string root_object);
  /// A cell-region segment of a spreadsheet.
  static DatasetDescriptor SpreadsheetRegion(std::string workbook,
                                             std::string region);

  std::string ToString() const;

  bool operator==(const DatasetDescriptor& other) const {
    return schema == other.schema && fields == other.fields;
  }
};

/// The unit of data managed within the virtual data model. A dataset
/// may be *virtual* — defined only by a derivation recipe, with no
/// physical replica yet — which is the state planners materialize.
struct Dataset {
  std::string name;            // logical name; catalog primary key
  DatasetType type;            // 3-dimensional dataset type
  DatasetDescriptor descriptor;
  int64_t size_bytes = 0;      // logical size once known (0 = unknown)
  std::string producer;        // derivation that produces it ("" = none)
  AttributeSet annotations;    // user-defined metadata

  /// Required-attribute check: a valid dataset has a non-empty name.
  Status Validate() const;
};

/// One physical copy of a dataset (Section 3: replicas exist "to allow
/// for datasets that may have multiple physical copies with different
/// properties such as location").
struct Replica {
  std::string id;              // catalog-assigned unique id
  std::string dataset;         // logical dataset name
  std::string site;            // grid site holding the copy
  std::string storage_element; // storage element within the site
  std::string physical_path;   // location within the storage element
  int64_t size_bytes = 0;
  SimTime created_at = 0;
  bool valid = true;           // invalidation flips this off
  AttributeSet annotations;

  Status Validate() const;
};

}  // namespace vdg

#endif  // VDG_SCHEMA_DATASET_H_
