#ifndef VDG_SCHEMA_ATTRIBUTE_H_
#define VDG_SCHEMA_ATTRIBUTE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace vdg {

/// A single metadata value. The paper requires every schema object to
/// carry "arbitrary additional attributes" beyond its required fields;
/// we support the four scalar kinds needed by the annotation and
/// discovery mechanisms.
class AttributeValue {
 public:
  AttributeValue() : value_(std::string()) {}
  AttributeValue(std::string v) : value_(std::move(v)) {}      // NOLINT
  AttributeValue(const char* v) : value_(std::string(v)) {}    // NOLINT
  AttributeValue(int64_t v) : value_(v) {}                     // NOLINT
  AttributeValue(int v) : value_(static_cast<int64_t>(v)) {}   // NOLINT
  AttributeValue(double v) : value_(v) {}                      // NOLINT
  AttributeValue(bool v) : value_(v) {}                        // NOLINT

  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_int() const { return std::holds_alternative<int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }

  const std::string& AsString() const { return std::get<std::string>(value_); }
  int64_t AsInt() const { return std::get<int64_t>(value_); }
  double AsDouble() const { return std::get<double>(value_); }
  bool AsBool() const { return std::get<bool>(value_); }

  /// Numeric view: ints and doubles coerce; others return nullopt.
  std::optional<double> AsNumber() const;

  /// Canonical text rendering (used for signatures and display).
  /// Doubles are truncated to 6 significant digits — human-facing
  /// only; persistence must use ToWireString().
  std::string ToString() const;
  /// Round-trip-exact rendering: identical to ToString() except that
  /// doubles use shortest-exact formatting, so
  /// FromTagged(TypeTag(), ToWireString()) reproduces the value
  /// bit-for-bit. This is what the journal codec and XML export write.
  std::string ToWireString() const;
  /// Type tag: "s", "i", "d", or "b" (used by the wire encoding).
  char TypeTag() const;

  /// Inverse of ToWireString()+TypeTag(). Rejects out-of-range
  /// integers and non-finite doubles (nan/inf break the attribute
  /// index's equality normalization) with ParseError.
  static Result<AttributeValue> FromTagged(char tag, std::string_view text);

  bool operator==(const AttributeValue& other) const {
    return value_ == other.value_;
  }

 private:
  std::variant<std::string, int64_t, double, bool> value_;
};

/// An ordered set of named attributes. Ordering is lexicographic so
/// serialized forms (and signature hashes) are canonical.
class AttributeSet {
 public:
  void Set(std::string_view key, AttributeValue value);
  bool Has(std::string_view key) const;
  /// Removes `key`; returns true if it was present.
  bool Erase(std::string_view key);

  const AttributeValue* Find(std::string_view key) const;

  /// Typed getters returning nullopt on absence or kind mismatch.
  std::optional<std::string> GetString(std::string_view key) const;
  std::optional<int64_t> GetInt(std::string_view key) const;
  std::optional<double> GetDouble(std::string_view key) const;
  std::optional<bool> GetBool(std::string_view key) const;

  size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

  /// Canonical one-line rendering "k1=v1;k2=v2" for hashing/logging.
  std::string ToString() const;

  bool operator==(const AttributeSet& other) const {
    return values_ == other.values_;
  }

 private:
  std::map<std::string, AttributeValue, std::less<>> values_;
};

/// Comparison operators usable in attribute queries (discovery).
enum class PredicateOp { kEq, kNe, kLt, kLe, kGt, kGe, kContains, kExists };

/// One condition on an attribute; a query is a conjunction of these.
struct AttributePredicate {
  std::string key;
  PredicateOp op = PredicateOp::kExists;
  AttributeValue operand;

  /// Evaluates this predicate against `attrs`. String comparisons are
  /// lexicographic; numeric comparisons coerce int/double. kContains
  /// does substring matching on the string rendering.
  bool Matches(const AttributeSet& attrs) const;
};

/// True when every predicate in `conjunction` matches.
bool MatchesAll(const AttributeSet& attrs,
                const std::vector<AttributePredicate>& conjunction);

}  // namespace vdg

#endif  // VDG_SCHEMA_ATTRIBUTE_H_
