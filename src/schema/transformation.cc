#include "schema/transformation.h"

#include <set>

#include "common/strings.h"

namespace vdg {

const char* ArgDirectionToString(ArgDirection dir) {
  switch (dir) {
    case ArgDirection::kIn:
      return "input";
    case ArgDirection::kOut:
      return "output";
    case ArgDirection::kInOut:
      return "inout";
    case ArgDirection::kNone:
      return "none";
  }
  return "?";
}

Result<ArgDirection> ArgDirectionFromString(std::string_view word) {
  if (word == "input" || word == "in") return ArgDirection::kIn;
  if (word == "output" || word == "out") return ArgDirection::kOut;
  if (word == "inout") return ArgDirection::kInOut;
  if (word == "none") return ArgDirection::kNone;
  return Status::ParseError("unknown argument direction: " +
                            std::string(word));
}

bool DirectionReads(ArgDirection dir) {
  return dir == ArgDirection::kIn || dir == ArgDirection::kInOut;
}

bool DirectionWrites(ArgDirection dir) {
  return dir == ArgDirection::kOut || dir == ArgDirection::kInOut;
}

std::string FormalArg::ToString() const {
  std::string out = ArgDirectionToString(direction);
  if (!is_string() && !types.empty()) {
    out += " ";
    for (size_t i = 0; i < types.size(); ++i) {
      if (i > 0) out += "|";
      out += types[i].ToString();
    }
  }
  out += " ";
  out += name;
  if (default_string) {
    out += "=\"" + *default_string + "\"";
  } else if (default_dataset) {
    out += "=@{" + std::string(ArgDirectionToString(direction)) + ":\"" +
           *default_dataset + "\":\"\"}";
  }
  return out;
}

std::string TemplatePiece::ToString() const {
  if (kind == Kind::kLiteral) return "\"" + text + "\"";
  std::string out = "${";
  if (ref_direction) {
    out += ArgDirectionToString(*ref_direction);
    out += ":";
  }
  out += text;
  out += "}";
  return out;
}

std::string TemplateExprToString(const TemplateExpr& expr) {
  std::string out;
  for (const TemplatePiece& piece : expr) {
    out += piece.ToString();
  }
  return out;
}

const TemplatePiece* CompoundCall::FindBinding(
    std::string_view formal) const {
  for (const auto& [name, piece] : bindings) {
    if (name == formal) return &piece;
  }
  return nullptr;
}

Status Transformation::AddArg(FormalArg arg) {
  if (!IsValidIdentifier(arg.name)) {
    return Status::InvalidArgument("invalid formal argument name: " +
                                   arg.name);
  }
  if (FindArg(arg.name) != nullptr) {
    return Status::AlreadyExists("duplicate formal argument: " + arg.name);
  }
  args_.push_back(std::move(arg));
  return Status::OK();
}

const FormalArg* Transformation::FindArg(std::string_view name) const {
  for (const FormalArg& arg : args_) {
    if (arg.name == name) return &arg;
  }
  return nullptr;
}

std::vector<std::string> Transformation::InputArgNames() const {
  std::vector<std::string> out;
  for (const FormalArg& arg : args_) {
    if (!arg.is_string() && DirectionReads(arg.direction)) {
      out.push_back(arg.name);
    }
  }
  return out;
}

std::vector<std::string> Transformation::OutputArgNames() const {
  std::vector<std::string> out;
  for (const FormalArg& arg : args_) {
    if (!arg.is_string() && DirectionWrites(arg.direction)) {
      out.push_back(arg.name);
    }
  }
  return out;
}

std::string Transformation::TypeSignature() const {
  std::string out = name_;
  out += "( ";
  for (size_t i = 0; i < args_.size(); ++i) {
    if (i > 0) out += ", ";
    const FormalArg& a = args_[i];
    out += ArgDirectionToString(a.direction);
    out += " ";
    if (!a.is_string()) {
      if (a.types.empty()) {
        out += "Dataset ";
      } else {
        for (size_t t = 0; t < a.types.size(); ++t) {
          if (t > 0) out += "|";
          out += a.types[t].ToString();
        }
        out += " ";
      }
    }
    out += a.name;
  }
  out += " )";
  return out;
}

namespace {

// Checks that every ${...} reference inside `expr` names a formal of
// `tr` and that the direction qualifier (if any) matches.
Status CheckTemplateExpr(const Transformation& tr, const TemplateExpr& expr,
                         const std::string& context) {
  for (const TemplatePiece& piece : expr) {
    if (!piece.is_ref()) continue;
    const FormalArg* formal = tr.FindArg(piece.text);
    if (formal == nullptr) {
      return Status::InvalidArgument("transformation " + tr.name() + " " +
                                     context + " references unknown formal " +
                                     piece.text);
    }
    if (piece.ref_direction && *piece.ref_direction != formal->direction &&
        // inout formals may be referenced as input or output legs.
        formal->direction != ArgDirection::kInOut) {
      return Status::InvalidArgument(
          "transformation " + tr.name() + " " + context + " references " +
          piece.text + " as " + ArgDirectionToString(*piece.ref_direction) +
          " but it is declared " +
          ArgDirectionToString(formal->direction));
    }
  }
  return Status::OK();
}

}  // namespace

Status Transformation::Validate() const {
  if (!IsValidIdentifier(name_)) {
    return Status::InvalidArgument("invalid transformation name: " + name_);
  }
  std::set<std::string> seen;
  for (const FormalArg& arg : args_) {
    if (!IsValidIdentifier(arg.name)) {
      return Status::InvalidArgument("transformation " + name_ +
                                     " has invalid formal name: " + arg.name);
    }
    if (!seen.insert(arg.name).second) {
      return Status::InvalidArgument("transformation " + name_ +
                                     " has duplicate formal: " + arg.name);
    }
    if (arg.is_string() && !arg.types.empty()) {
      return Status::TypeError("string (none) argument " + arg.name +
                               " of " + name_ + " cannot carry dataset types");
    }
  }
  if (kind_ == Kind::kSimple) {
    if (!calls_.empty()) {
      return Status::InvalidArgument("simple transformation " + name_ +
                                     " must not contain nested calls");
    }
    if (executable_.empty() && profile_.find("hints.pfnHint") == profile_.end()) {
      return Status::InvalidArgument("simple transformation " + name_ +
                                     " declares no executable");
    }
    for (const ArgumentTemplate& t : argument_templates_) {
      VDG_RETURN_IF_ERROR(
          CheckTemplateExpr(*this, t.expr, "argument template"));
    }
    for (const auto& [key, expr] : env_) {
      VDG_RETURN_IF_ERROR(CheckTemplateExpr(*this, expr, "env." + key));
    }
    for (const auto& [key, expr] : profile_) {
      VDG_RETURN_IF_ERROR(CheckTemplateExpr(*this, expr, "profile " + key));
    }
  } else {
    if (calls_.empty()) {
      return Status::InvalidArgument("compound transformation " + name_ +
                                     " has an empty body");
    }
    if (!executable_.empty()) {
      return Status::InvalidArgument("compound transformation " + name_ +
                                     " must not declare an executable");
    }
    for (const CompoundCall& call : calls_) {
      std::set<std::string> bound;
      for (const auto& [formal, piece] : call.bindings) {
        if (!bound.insert(formal).second) {
          return Status::InvalidArgument(
              "compound " + name_ + " binds formal " + formal + " of " +
              call.callee + " twice");
        }
        if (piece.is_ref()) {
          if (FindArg(piece.text) == nullptr) {
            return Status::InvalidArgument(
                "compound " + name_ + " call to " + call.callee +
                " references unknown formal " + piece.text);
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace vdg
