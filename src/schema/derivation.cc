#include "schema/derivation.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strings.h"

namespace vdg {

std::string ActualArg::ToString() const {
  std::string out = formal;
  out += "=";
  if (string_value) {
    out += "\"" + *string_value + "\"";
  } else if (dataset) {
    out += "@{";
    out += direction ? ArgDirectionToString(*direction) : "?";
    out += ":\"" + *dataset + "\"}";
  }
  return out;
}

std::string Derivation::QualifiedTransformation() const {
  if (tr_ns_.empty()) return transformation_;
  return tr_ns_ + "::" + transformation_;
}

Status Derivation::AddArg(ActualArg arg) {
  if (arg.formal.empty()) {
    return Status::InvalidArgument("derivation " + name_ +
                                   " has an unnamed actual argument");
  }
  if (arg.string_value.has_value() == arg.dataset.has_value()) {
    return Status::InvalidArgument(
        "actual argument " + arg.formal + " of " + name_ +
        " must carry exactly one of a string value or a dataset binding");
  }
  if (FindArg(arg.formal) != nullptr) {
    return Status::AlreadyExists("derivation " + name_ + " binds formal " +
                                 arg.formal + " twice");
  }
  args_.push_back(std::move(arg));
  return Status::OK();
}

const ActualArg* Derivation::FindArg(std::string_view formal) const {
  for (const ActualArg& arg : args_) {
    if (arg.formal == formal) return &arg;
  }
  return nullptr;
}

std::vector<std::string> Derivation::InputDatasets() const {
  std::vector<std::string> out;
  for (const ActualArg& arg : args_) {
    if (arg.is_dataset() && arg.direction && DirectionReads(*arg.direction)) {
      out.push_back(*arg.dataset);
    }
  }
  return out;
}

std::vector<std::string> Derivation::OutputDatasets() const {
  std::vector<std::string> out;
  for (const ActualArg& arg : args_) {
    if (arg.is_dataset() && arg.direction && DirectionWrites(*arg.direction)) {
      out.push_back(*arg.dataset);
    }
  }
  return out;
}

std::string Derivation::SignatureText() const {
  // Canonical text: transformation, then actual args sorted by formal
  // name, then env overrides (already sorted by map order). The
  // derivation's own name is deliberately excluded: two differently
  // named derivations that request the same computation must collide.
  std::vector<std::string> parts;
  parts.reserve(args_.size());
  for (const ActualArg& arg : args_) {
    parts.push_back(arg.ToString());
  }
  std::sort(parts.begin(), parts.end());
  std::string out = QualifiedTransformation();
  out += "(";
  out += StrJoin(parts, ",");
  out += ")";
  for (const auto& [key, value] : env_overrides_) {
    out += ";" + key + "=" + value;
  }
  return out;
}

uint64_t Derivation::Signature() const { return Fnv1a64(SignatureText()); }

Status Derivation::Validate() const {
  if (!IsValidIdentifier(name_)) {
    return Status::InvalidArgument("invalid derivation name: " + name_);
  }
  if (transformation_.empty()) {
    return Status::InvalidArgument("derivation " + name_ +
                                   " names no transformation");
  }
  for (const ActualArg& arg : args_) {
    if (arg.string_value.has_value() == arg.dataset.has_value()) {
      return Status::InvalidArgument(
          "actual argument " + arg.formal + " of " + name_ +
          " must carry exactly one of a string value or a dataset binding");
    }
    if (arg.is_dataset() && !arg.direction) {
      return Status::InvalidArgument("dataset binding " + arg.formal +
                                     " of " + name_ +
                                     " is missing a direction");
    }
  }
  return Status::OK();
}

Status Invocation::Validate() const {
  if (derivation.empty()) {
    return Status::InvalidArgument("invocation " + id +
                                   " names no derivation");
  }
  if (duration_s < 0) {
    return Status::InvalidArgument("invocation " + id +
                                   " has negative duration");
  }
  return Status::OK();
}

}  // namespace vdg
