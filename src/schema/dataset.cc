#include "schema/dataset.h"

#include "common/strings.h"

namespace vdg {

DatasetDescriptor DatasetDescriptor::File(std::string path) {
  DatasetDescriptor d;
  d.schema = "file";
  d.fields.Set("path", std::move(path));
  return d;
}

DatasetDescriptor DatasetDescriptor::FileSet(
    const std::vector<std::string>& paths) {
  DatasetDescriptor d;
  d.schema = "file-set";
  d.fields.Set("paths", StrJoin(paths, ","));
  d.fields.Set("count", static_cast<int64_t>(paths.size()));
  return d;
}

DatasetDescriptor DatasetDescriptor::FileSlice(std::string path,
                                               int64_t offset,
                                               int64_t length) {
  DatasetDescriptor d;
  d.schema = "file-slice";
  d.fields.Set("path", std::move(path));
  d.fields.Set("offset", offset);
  d.fields.Set("length", length);
  return d;
}

DatasetDescriptor DatasetDescriptor::SqlRows(std::string database,
                                             std::string table,
                                             std::string key_lo,
                                             std::string key_hi) {
  DatasetDescriptor d;
  d.schema = "sql-rows";
  d.fields.Set("database", std::move(database));
  d.fields.Set("table", std::move(table));
  d.fields.Set("key_lo", std::move(key_lo));
  d.fields.Set("key_hi", std::move(key_hi));
  return d;
}

DatasetDescriptor DatasetDescriptor::ObjectClosure(std::string store,
                                                   std::string root_object) {
  DatasetDescriptor d;
  d.schema = "object-closure";
  d.fields.Set("store", std::move(store));
  d.fields.Set("root", std::move(root_object));
  return d;
}

DatasetDescriptor DatasetDescriptor::SpreadsheetRegion(std::string workbook,
                                                       std::string region) {
  DatasetDescriptor d;
  d.schema = "spreadsheet-region";
  d.fields.Set("workbook", std::move(workbook));
  d.fields.Set("region", std::move(region));
  return d;
}

std::string DatasetDescriptor::ToString() const {
  std::string out = schema;
  if (!fields.empty()) {
    out += "{";
    out += fields.ToString();
    out += "}";
  }
  return out;
}

Status Dataset::Validate() const {
  if (!IsValidIdentifier(name)) {
    return Status::InvalidArgument("invalid dataset name: " + name);
  }
  if (size_bytes < 0) {
    return Status::InvalidArgument("dataset " + name + " has negative size");
  }
  return Status::OK();
}

Status Replica::Validate() const {
  if (dataset.empty()) {
    return Status::InvalidArgument("replica " + id + " names no dataset");
  }
  if (site.empty()) {
    return Status::InvalidArgument("replica " + id + " names no site");
  }
  if (size_bytes < 0) {
    return Status::InvalidArgument("replica " + id + " has negative size");
  }
  return Status::OK();
}

}  // namespace vdg
