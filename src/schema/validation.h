#ifndef VDG_SCHEMA_VALIDATION_H_
#define VDG_SCHEMA_VALIDATION_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "schema/derivation.h"
#include "schema/transformation.h"
#include "types/type_system.h"

namespace vdg {

/// Looks up the declared type of a logical dataset; returns nullptr
/// when the dataset is not (yet) defined. Supplied by the catalog so
/// the schema layer stays storage-agnostic.
using DatasetTypeLookup =
    std::function<const DatasetType*(std::string_view dataset_name)>;

/// Knobs for ValidateDerivationAgainst.
struct ValidationPolicy {
  /// When true, an input dataset unknown to `lookup_type` passes the
  /// existence check the same way a vdp:// hyperlink does. Set by a
  /// catalog operating in partition mode (one shard of a sharded
  /// logical catalog): the input may live on another shard, and the
  /// routing layer owns the existence check.
  bool allow_external_inputs = false;
};

/// Type-checks `derivation` against `transformation` (Section 3.2's
/// conformance rule):
///  - every formal is bound by an actual or has a default;
///  - every actual names a formal, with matching kind (string/dataset)
///    and a compatible direction;
///  - each bound input dataset's type is a proper subtype of the
///    formal's type list. Output datasets may not exist yet (they are
///    virtual until derived); when they do exist their type is checked
///    too.
Status ValidateDerivationAgainst(const Derivation& derivation,
                                 const Transformation& transformation,
                                 const TypeRegistry& registry,
                                 const DatasetTypeLookup& lookup_type,
                                 const ValidationPolicy& policy = {});

/// The fully expanded command for one execution of a simple
/// transformation under a derivation's actual arguments.
struct ResolvedCommand {
  std::string executable;
  /// Positional argv entries, in template order. Streams excluded.
  std::vector<std::string> argv;
  /// stdin/stdout/stderr redirections (dataset names), when templated.
  std::map<std::string, std::string> streams;
  /// Fully resolved environment variables (templates + overrides).
  std::map<std::string, std::string> environment;
};

/// Expands a simple transformation's argument/env templates with the
/// derivation's actual values: `${none:x}` becomes the bound string,
/// `${input:a}`/`${output:a}` become the bound logical dataset name.
/// Fails on unbound references or when `transformation` is compound.
Result<ResolvedCommand> ResolveCommand(const Transformation& transformation,
                                       const Derivation& derivation);

}  // namespace vdg

#endif  // VDG_SCHEMA_VALIDATION_H_
