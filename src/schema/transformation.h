#ifndef VDG_SCHEMA_TRANSFORMATION_H_
#define VDG_SCHEMA_TRANSFORMATION_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "schema/attribute.h"
#include "types/type_system.h"

namespace vdg {

/// Directionality of a formal transformation argument. `kNone` is the
/// VDL keyword for by-value string parameters; the other three pass
/// datasets by reference.
enum class ArgDirection { kIn = 0, kOut = 1, kInOut = 2, kNone = 3 };

/// VDL keyword ("input"/"output"/"inout"/"none").
const char* ArgDirectionToString(ArgDirection dir);
Result<ArgDirection> ArgDirectionFromString(std::string_view word);

/// True when the direction reads its dataset (kIn, kInOut).
bool DirectionReads(ArgDirection dir);
/// True when the direction writes its dataset (kOut, kInOut).
bool DirectionWrites(ArgDirection dir);

/// A formal argument in a transformation's type signature.
struct FormalArg {
  std::string name;
  ArgDirection direction = ArgDirection::kIn;
  /// Union of acceptable dataset types; empty = untyped ("Dataset").
  /// Ignored for kNone (string) arguments.
  std::vector<DatasetType> types;
  /// Default for kNone arguments, e.g. `none pa="500"`.
  std::optional<std::string> default_string;
  /// Default logical-dataset binding for inout temporaries in compound
  /// transformations, e.g. `inout a4=@{inout:"somewhere":""}`.
  std::optional<std::string> default_dataset;

  bool is_string() const { return direction == ArgDirection::kNone; }

  /// Signature fragment, e.g. `input SDSS/Fileset/* a1`.
  std::string ToString() const;
};

/// One piece of an argument template: either literal command-line text
/// or a `${direction:arg}` reference to a formal argument.
struct TemplatePiece {
  enum class Kind { kLiteral, kArgRef };
  Kind kind = Kind::kLiteral;
  std::string text;  // literal text, or the referenced formal's name
  /// Direction qualifier as written in the reference; `${a1}` (no
  /// qualifier) records the formal's own direction at bind time.
  std::optional<ArgDirection> ref_direction;

  static TemplatePiece Literal(std::string text) {
    return TemplatePiece{Kind::kLiteral, std::move(text), std::nullopt};
  }
  static TemplatePiece Ref(std::string arg,
                           std::optional<ArgDirection> dir = std::nullopt) {
    return TemplatePiece{Kind::kArgRef, std::move(arg), dir};
  }

  bool is_ref() const { return kind == Kind::kArgRef; }

  std::string ToString() const;

  bool operator==(const TemplatePiece& other) const {
    return kind == other.kind && text == other.text &&
           ref_direction == other.ref_direction;
  }
};

/// A concatenation of template pieces; the value of an `argument`,
/// `env.` or `profile` body statement.
using TemplateExpr = std::vector<TemplatePiece>;

std::string TemplateExprToString(const TemplateExpr& expr);

/// A named command-line argument template inside a simple
/// transformation body, e.g. `argument farg = "-f "${input:a1};`.
/// The reserved names "stdin"/"stdout"/"stderr" describe stream
/// redirection, per the POSIX execution model of Chimera-0/1.
struct ArgumentTemplate {
  std::string name;  // may be empty (anonymous positional argument)
  TemplateExpr expr;
};

/// One nested call inside a compound transformation body:
/// `trans1( a2=${output:a4}, a1=${a1} );`. Bindings map the callee's
/// formal names to expressions over the compound's own formals.
struct CompoundCall {
  std::string callee;  // local name, "ns::name", or vdp:// URI
  std::vector<std::pair<std::string, TemplatePiece>> bindings;

  /// Returns the binding for `formal`, or nullptr.
  const TemplatePiece* FindBinding(std::string_view formal) const;
};

/// A typed computational procedure (Section 3.2). Simple
/// transformations carry an executable plus argument/environment
/// templates; compound transformations compose other transformations
/// into a directed acyclic execution graph.
class Transformation {
 public:
  enum class Kind { kSimple, kCompound };

  Transformation() = default;
  Transformation(std::string name, Kind kind)
      : name_(std::move(name)), kind_(kind) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Kind kind() const { return kind_; }
  void set_kind(Kind kind) { kind_ = kind; }
  bool is_compound() const { return kind_ == Kind::kCompound; }

  const std::string& version() const { return version_; }
  void set_version(std::string v) { version_ = std::move(v); }

  const std::vector<FormalArg>& args() const { return args_; }
  std::vector<FormalArg>& mutable_args() { return args_; }
  Status AddArg(FormalArg arg);
  const FormalArg* FindArg(std::string_view name) const;

  /// Formal names read / written by this transformation's signature.
  std::vector<std::string> InputArgNames() const;
  std::vector<std::string> OutputArgNames() const;

  // --- Simple-transformation body ---
  const std::string& executable() const { return executable_; }
  void set_executable(std::string exe) { executable_ = std::move(exe); }

  const std::vector<ArgumentTemplate>& argument_templates() const {
    return argument_templates_;
  }
  void AddArgumentTemplate(ArgumentTemplate t) {
    argument_templates_.push_back(std::move(t));
  }

  const std::map<std::string, TemplateExpr>& env() const { return env_; }
  void SetEnv(std::string name, TemplateExpr value) {
    env_.insert_or_assign(std::move(name), std::move(value));
  }

  /// `profile ns.key = value;` hints (e.g. hints.pfnHint).
  const std::map<std::string, TemplateExpr>& profile() const {
    return profile_;
  }
  void SetProfile(std::string key, TemplateExpr value) {
    profile_.insert_or_assign(std::move(key), std::move(value));
  }

  // --- Compound-transformation body ---
  const std::vector<CompoundCall>& calls() const { return calls_; }
  void AddCall(CompoundCall call) { calls_.push_back(std::move(call)); }

  AttributeSet& annotations() { return annotations_; }
  const AttributeSet& annotations() const { return annotations_; }

  /// The paper's discoverable type signature, e.g.
  /// `t1( output type2 a2, input type1 a1, none env, none pa )`.
  std::string TypeSignature() const;

  /// Structural checks that need no registry: valid names, unique
  /// formals, simple TRs have an executable, template refs resolve to
  /// formals, compound calls bind only known local formals.
  Status Validate() const;

 private:
  std::string name_;
  Kind kind_ = Kind::kSimple;
  std::string version_;
  std::vector<FormalArg> args_;

  std::string executable_;
  std::vector<ArgumentTemplate> argument_templates_;
  std::map<std::string, TemplateExpr> env_;
  std::map<std::string, TemplateExpr> profile_;

  std::vector<CompoundCall> calls_;

  AttributeSet annotations_;
};

}  // namespace vdg

#endif  // VDG_SCHEMA_TRANSFORMATION_H_
