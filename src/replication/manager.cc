#include "replication/manager.h"

namespace vdg {

uint64_t& ReplicaManager::AccessCounter(std::string_view site,
                                        std::string_view file) {
  std::string key = std::string(site) + "#" + std::string(file);
  return access_counts_[key];
}

Status ReplicaManager::RequestFile(
    std::string_view site, std::string_view file,
    std::function<void(double latency_s)> on_done) {
  uint64_t& counter = AccessCounter(site, file);
  ++counter;

  // Local hit: answer at intra-site latency.
  if (grid_->rls().ExistsAt(file, site)) {
    for (StorageElement* se : grid_->StorageAt(site)) {
      if (se->Contains(file)) {
        VDG_RETURN_IF_ERROR(se->Touch(file, grid_->now()));
        break;
      }
    }
    ++stats_.local_hits;
    double latency = GridTopology::kLocalLatency;
    stats_.total_latency_s += latency;
    if (on_done) {
      grid_->events().ScheduleAfter(latency,
                                    [on_done, latency]() { on_done(latency); });
    }
    return Status::OK();
  }

  // Remote: fetch from the cheapest source.
  VDG_ASSIGN_OR_RETURN(PhysicalLocation source,
                       grid_->rls().BestSource(file, site, grid_->topology()));
  ++stats_.remote_fetches;
  stats_.bytes_transferred += source.size_bytes;

  ReplicationEvent event;
  event.file = std::string(file);
  event.size_bytes = source.size_bytes;
  event.requester_site = std::string(site);
  event.source_site = source.site;
  event.access_count = counter;

  SimTime start = grid_->now();
  std::string site_copy(site);
  VDG_ASSIGN_OR_RETURN(
      uint64_t id,
      grid_->SubmitTransfer(
          source.site, site, source.size_bytes,
          [this, event, on_done, start](const TransferResult& result) {
            double latency = result.end_time - start;
            stats_.total_latency_s += latency;
            // Apply the policy's placements after the data arrived.
            for (const std::string& target : policy_->OnAccess(event)) {
              Status s = Replicate(target, event.file, event.size_bytes,
                                   event.source_site);
              (void)s;  // a full site simply declines the replica
            }
            if (on_done) on_done(latency);
          }));
  (void)id;
  (void)site_copy;
  return Status::OK();
}

Status ReplicaManager::ProduceFile(std::string_view site,
                                   std::string_view file, int64_t bytes) {
  VDG_RETURN_IF_ERROR(EnsureSpace(site, bytes));
  VDG_RETURN_IF_ERROR(grid_->PlaceFile(site, file, bytes, /*pinned=*/true));

  ReplicationEvent event;
  event.file = std::string(file);
  event.size_bytes = bytes;
  event.requester_site = std::string(site);
  for (const std::string& target : policy_->OnProduce(event)) {
    Status s = Replicate(target, file, bytes, site);
    (void)s;  // best-effort push
  }
  return Status::OK();
}

Status ReplicaManager::Replicate(std::string_view site, std::string_view file,
                                 int64_t bytes,
                                 std::string_view source_site) {
  if (grid_->rls().ExistsAt(file, site)) return Status::OK();
  VDG_RETURN_IF_ERROR(EnsureSpace(site, bytes));
  VDG_RETURN_IF_ERROR(grid_->PlaceFile(site, file, bytes));
  ++stats_.replicas_created;
  stats_.bytes_transferred += bytes;
  // Account the propagation delay in simulated time (fire-and-forget).
  VDG_RETURN_IF_ERROR(
      grid_->SubmitTransfer(source_site, site, bytes, nullptr).status());
  return Status::OK();
}

std::vector<ReplicaManager::PrestagingAction>
ReplicaManager::SuggestPrestaging(uint64_t min_accesses) const {
  std::vector<PrestagingAction> actions;
  for (const auto& [key, count] : access_counts_) {
    if (count < min_accesses) continue;
    size_t hash_pos = key.find('#');
    if (hash_pos == std::string::npos) continue;
    std::string site = key.substr(0, hash_pos);
    std::string file = key.substr(hash_pos + 1);
    if (grid_->rls().ExistsAt(file, site)) continue;  // already local
    Result<PhysicalLocation> source =
        grid_->rls().BestSource(file, site, grid_->topology());
    if (!source.ok()) continue;  // file vanished entirely
    PrestagingAction action;
    action.file = std::move(file);
    action.to_site = std::move(site);
    action.from_site = source->site;
    action.bytes = source->size_bytes;
    action.observed_accesses = count;
    actions.push_back(std::move(action));
  }
  return actions;  // map order: sorted by (site, file) key
}

Status ReplicaManager::ApplyPrestaging(
    const std::vector<PrestagingAction>& actions) {
  for (const PrestagingAction& action : actions) {
    Status s = Replicate(action.to_site, action.file, action.bytes,
                         action.from_site);
    if (!s.ok() && s.code() != StatusCode::kResourceExhausted) {
      return s;
    }
  }
  return Status::OK();
}

Status ReplicaManager::EnsureSpace(std::string_view site, int64_t bytes) {
  std::vector<StorageElement*> elements = grid_->StorageAt(site);
  if (elements.empty()) {
    return Status::NotFound("site has no storage: " + std::string(site));
  }
  // If any element already has room, done.
  for (StorageElement* se : elements) {
    if (se->free_bytes() >= bytes) return Status::OK();
  }
  // LRU-evict unpinned files until one element fits the request.
  for (StorageElement* se : elements) {
    for (const StoredFile& victim : se->EvictionCandidates()) {
      if (se->free_bytes() >= bytes) break;
      VDG_RETURN_IF_ERROR(se->Remove(victim.logical_name));
      VDG_RETURN_IF_ERROR(grid_->rls().Unregister(victim.logical_name,
                                                  se->site(), se->name()));
      ++stats_.evictions;
    }
    if (se->free_bytes() >= bytes) return Status::OK();
  }
  return Status::ResourceExhausted("cannot free " + std::to_string(bytes) +
                                   " bytes at " + std::string(site) +
                                   " (pinned files block eviction)");
}

}  // namespace vdg
