#ifndef VDG_REPLICATION_MANAGER_H_
#define VDG_REPLICATION_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "grid/simulator.h"
#include "replication/policy.h"

namespace vdg {

/// Aggregate outcome counters for a replication experiment.
struct ReplicationStats {
  uint64_t local_hits = 0;      // requests served from site-local storage
  uint64_t remote_fetches = 0;  // requests that crossed the WAN
  int64_t bytes_transferred = 0;
  uint64_t replicas_created = 0;
  uint64_t evictions = 0;
  double total_latency_s = 0;   // sum of per-request response times

  double hit_rate() const {
    uint64_t total = local_hits + remote_fetches;
    return total == 0 ? 0 : static_cast<double>(local_hits) /
                                static_cast<double>(total);
  }
  double mean_latency_s() const {
    uint64_t total = local_hits + remote_fetches;
    return total == 0 ? 0 : total_latency_s / static_cast<double>(total);
  }
};

/// Wires a ReplicationPolicy to the grid simulator: resolves file
/// requests through the RLS, simulates the WAN transfer when remote,
/// and carries out the policy's replica placements with LRU eviction
/// when a destination is full.
class ReplicaManager {
 public:
  ReplicaManager(GridSimulator* grid, std::unique_ptr<ReplicationPolicy> policy)
      : grid_(grid), policy_(std::move(policy)) {}

  ReplicationPolicy& policy() { return *policy_; }
  const ReplicationStats& stats() const { return stats_; }

  /// Requests `file` at `site`. Local replicas answer at disk latency;
  /// otherwise the best remote source is fetched over the simulated
  /// WAN. `on_done(latency_seconds)` fires in simulated time. Policy
  /// placements happen after the fetch completes.
  Status RequestFile(std::string_view site, std::string_view file,
                     std::function<void(double latency_s)> on_done);

  /// Registers a newly produced `file` at `site` (pinned at the
  /// producer) and applies the policy's OnProduce placements.
  Status ProduceFile(std::string_view site, std::string_view file,
                     int64_t bytes);

  /// Copies `file` to `site` (simulated transfer), evicting LRU files
  /// if needed. No-op when already present.
  Status Replicate(std::string_view site, std::string_view file,
                   int64_t bytes, std::string_view source_site);

  /// One recommended pre-staging movement (Section 5.2: replicate
  /// popular datasets "on demand and/or via pre-staging").
  struct PrestagingAction {
    std::string file;
    std::string to_site;
    std::string from_site;
    int64_t bytes = 0;
    uint64_t observed_accesses = 0;
  };

  /// Mines the access history for sites that repeatedly fetched a file
  /// they still do not hold (>= min_accesses times) and proposes
  /// replicas, sourced from each site's cheapest current holder.
  /// Deterministically ordered (by site, then file).
  std::vector<PrestagingAction> SuggestPrestaging(
      uint64_t min_accesses) const;

  /// Executes the suggested movements (best effort: full sites with
  /// only pinned content simply decline). Returns the first hard error.
  Status ApplyPrestaging(const std::vector<PrestagingAction>& actions);

 private:
  /// Frees at least `bytes` at `site` by LRU eviction of unpinned
  /// files. Fails when pinned files block the space.
  Status EnsureSpace(std::string_view site, int64_t bytes);
  uint64_t& AccessCounter(std::string_view site, std::string_view file);

  GridSimulator* grid_;
  std::unique_ptr<ReplicationPolicy> policy_;
  ReplicationStats stats_;
  std::map<std::string, uint64_t, std::less<>> access_counts_;
};

}  // namespace vdg

#endif  // VDG_REPLICATION_MANAGER_H_
