#include "replication/policy.h"

namespace vdg {

std::vector<std::string> CascadingPolicy::OnAccess(
    const ReplicationEvent& event) {
  std::vector<std::string> targets;
  auto parent = parents_.find(event.requester_site);
  if (parent != parents_.end() && !parent->second.empty() &&
      parent->second != event.source_site) {
    targets.push_back(parent->second);
  }
  if (event.access_count >= popularity_threshold_) {
    targets.push_back(event.requester_site);
  }
  return targets;
}

std::vector<std::string> FastSpreadPolicy::OnProduce(
    const ReplicationEvent& event) {
  std::vector<std::string> targets;
  for (const std::string& site : all_sites_) {
    if (site != event.requester_site) targets.push_back(site);
  }
  return targets;
}

}  // namespace vdg
