#ifndef VDG_REPLICATION_POLICY_H_
#define VDG_REPLICATION_POLICY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace vdg {

/// Context handed to a replication policy on every file event.
struct ReplicationEvent {
  std::string file;
  int64_t size_bytes = 0;
  std::string requester_site;  // who needs / produced the file
  std::string source_site;     // where it was fetched from (access only)
  uint64_t access_count = 0;   // accesses by requester_site so far
};

/// Dynamic replication strategy (paper refs [18, 19]): decides, on
/// each access or production event, which sites should gain a replica.
/// Eviction is the ReplicaManager's job; policies only nominate sites.
class ReplicationPolicy {
 public:
  virtual ~ReplicationPolicy() = default;

  virtual const char* name() const = 0;

  /// Called after `requester_site` fetched `file` from `source_site`.
  /// Returns sites that should now store a replica.
  virtual std::vector<std::string> OnAccess(const ReplicationEvent& event) = 0;

  /// Called when `requester_site` produced `file`. Returns *additional*
  /// sites to push the new file to (the producer always keeps it).
  virtual std::vector<std::string> OnProduce(
      const ReplicationEvent& event) = 0;
};

/// Never replicates; every remote access pays the WAN. The baseline.
class NoReplicationPolicy final : public ReplicationPolicy {
 public:
  const char* name() const override { return "none"; }
  std::vector<std::string> OnAccess(const ReplicationEvent&) override {
    return {};
  }
  std::vector<std::string> OnProduce(const ReplicationEvent&) override {
    return {};
  }
};

/// Plain caching: the requester keeps a copy of everything it fetches.
class CachingPolicy final : public ReplicationPolicy {
 public:
  const char* name() const override { return "caching"; }
  std::vector<std::string> OnAccess(const ReplicationEvent& event) override {
    return {event.requester_site};
  }
  std::vector<std::string> OnProduce(const ReplicationEvent&) override {
    return {};
  }
};

/// Cascading: replicas trickle down a site hierarchy — a fetch places
/// a copy at the requester's tier-parent, and at the requester itself
/// once the file proves popular there.
class CascadingPolicy final : public ReplicationPolicy {
 public:
  /// `parents` maps each site to its tier parent ("" / absent = root).
  /// `popularity_threshold`: accesses at one site before it gets its
  /// own copy.
  CascadingPolicy(std::map<std::string, std::string> parents,
                  uint64_t popularity_threshold = 2)
      : parents_(std::move(parents)),
        popularity_threshold_(popularity_threshold) {}

  const char* name() const override { return "cascading"; }
  std::vector<std::string> OnAccess(const ReplicationEvent& event) override;
  std::vector<std::string> OnProduce(const ReplicationEvent&) override {
    return {};
  }

 private:
  std::map<std::string, std::string> parents_;
  uint64_t popularity_threshold_;
};

/// Fast spread: newly produced files are pushed to every site
/// immediately — maximum availability, maximum storage burn.
class FastSpreadPolicy final : public ReplicationPolicy {
 public:
  explicit FastSpreadPolicy(std::vector<std::string> all_sites)
      : all_sites_(std::move(all_sites)) {}

  const char* name() const override { return "fast-spread"; }
  std::vector<std::string> OnAccess(const ReplicationEvent& event) override {
    return {event.requester_site};
  }
  std::vector<std::string> OnProduce(const ReplicationEvent& event) override;

 private:
  std::vector<std::string> all_sites_;
};

}  // namespace vdg

#endif  // VDG_REPLICATION_POLICY_H_
