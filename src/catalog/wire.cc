#include "catalog/wire.h"

#include <bit>
#include <cstring>

#include "common/hash.h"

namespace vdg {
namespace wire {

namespace {

constexpr char kMagic[4] = {'V', 'D', 'G', 'W'};
constexpr uint8_t kFlagResponse = 0x01;

// -----------------------------------------------------------------------
// Primitive writer: appends fixed-width little-endian fields to a string.
// -----------------------------------------------------------------------

class Writer {
 public:
  explicit Writer(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) PutU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  /// Doubles travel as raw IEEE-754 bits: the round trip is bit-exact
  /// even for values text formatting would distort.
  void PutDouble(double v) { PutU64(std::bit_cast<uint64_t>(v)); }

  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

  void PutCount(size_t n) { PutU32(static_cast<uint32_t>(n)); }

 private:
  std::string* out_;
};

// -----------------------------------------------------------------------
// Primitive reader: bounds-checked cursor over the payload bytes. Every
// read fails with ParseError instead of walking past the end, so a
// truncated or bit-flipped payload can never crash the decoder.
// -----------------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  Result<uint8_t> ReadU8() {
    if (pos_ >= data_.size()) return Truncated("u8");
    return static_cast<uint8_t>(data_[pos_++]);
  }

  Result<bool> ReadBool() {
    VDG_ASSIGN_OR_RETURN(uint8_t v, ReadU8());
    if (v > 1) return Status::ParseError("wire: bool byte out of range");
    return v == 1;
  }

  Result<uint32_t> ReadU32() {
    if (data_.size() - pos_ < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  Result<uint64_t> ReadU64() {
    if (data_.size() - pos_ < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  Result<int64_t> ReadI64() {
    VDG_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
    return static_cast<int64_t>(v);
  }

  Result<double> ReadDouble() {
    VDG_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
    return std::bit_cast<double>(bits);
  }

  Result<std::string> ReadString() {
    VDG_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    if (data_.size() - pos_ < len) return Truncated("string body");
    std::string s(data_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  /// Zero-copy read: a view into the payload buffer itself, valid only
  /// while the frame bytes stay alive. Callers that outlive the frame
  /// must copy (the name-list decoder appends into its arena).
  Result<std::string_view> ReadStringView() {
    VDG_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
    if (data_.size() - pos_ < len) return Truncated("string body");
    std::string_view s = data_.substr(pos_, len);
    pos_ += len;
    return s;
  }

  size_t remaining() const { return data_.size() - pos_; }

  /// Element counts are sanity-bounded by the bytes actually present:
  /// every element costs at least one byte, so a count larger than the
  /// remaining payload is corruption, not a huge message.
  Result<size_t> ReadCount() {
    VDG_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
    if (n > data_.size() - pos_) {
      return Status::ParseError("wire: element count exceeds payload size");
    }
    return static_cast<size_t>(n);
  }

  bool AtEnd() const { return pos_ == data_.size(); }

  /// Payload decoders call this last: bytes beyond the decoded message
  /// mean the payload and the frame kind disagree.
  Status ExpectEnd() const {
    if (!AtEnd()) {
      return Status::ParseError("wire: trailing bytes after message");
    }
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::ParseError(std::string("wire: truncated payload reading ") +
                              what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// -----------------------------------------------------------------------
// Field codecs, in dependency order.
// -----------------------------------------------------------------------

void PutStatus(Writer& w, const Status& s) {
  w.PutU8(static_cast<uint8_t>(s.code()));
  w.PutString(s.message());
}

// Result<Status> is ill-formed (value and error constructors collide),
// so decoded statuses land in an out-parameter.
Status ReadStatus(Reader& r, Status* out) {
  VDG_ASSIGN_OR_RETURN(uint8_t code, r.ReadU8());
  if (code > static_cast<uint8_t>(StatusCode::kCancelled)) {
    return Status::ParseError("wire: unknown status code");
  }
  VDG_ASSIGN_OR_RETURN(std::string msg, r.ReadString());
  *out = Status(static_cast<StatusCode>(code), std::move(msg));
  return Status::OK();
}

void PutAttributeValue(Writer& w, const AttributeValue& v) {
  w.PutU8(static_cast<uint8_t>(v.TypeTag()));
  if (v.is_string()) {
    w.PutString(v.AsString());
  } else if (v.is_int()) {
    w.PutI64(v.AsInt());
  } else if (v.is_double()) {
    w.PutDouble(v.AsDouble());
  } else {
    w.PutBool(v.AsBool());
  }
}

Result<AttributeValue> ReadAttributeValue(Reader& r) {
  VDG_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
  switch (tag) {
    case 's': {
      VDG_ASSIGN_OR_RETURN(std::string s, r.ReadString());
      return AttributeValue(std::move(s));
    }
    case 'i': {
      VDG_ASSIGN_OR_RETURN(int64_t i, r.ReadI64());
      return AttributeValue(i);
    }
    case 'd': {
      VDG_ASSIGN_OR_RETURN(double d, r.ReadDouble());
      return AttributeValue(d);
    }
    case 'b': {
      VDG_ASSIGN_OR_RETURN(bool b, r.ReadBool());
      return AttributeValue(b);
    }
    default:
      return Status::ParseError("wire: unknown attribute value tag");
  }
}

void PutAttributeSet(Writer& w, const AttributeSet& attrs) {
  w.PutCount(attrs.size());
  for (const auto& [key, value] : attrs) {
    w.PutString(key);
    PutAttributeValue(w, value);
  }
}

Result<AttributeSet> ReadAttributeSet(Reader& r) {
  VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
  AttributeSet attrs;
  for (size_t i = 0; i < n; ++i) {
    VDG_ASSIGN_OR_RETURN(std::string key, r.ReadString());
    VDG_ASSIGN_OR_RETURN(AttributeValue value, ReadAttributeValue(r));
    attrs.Set(key, std::move(value));
  }
  return attrs;
}

void PutDatasetType(Writer& w, const DatasetType& t) {
  w.PutString(t.content);
  w.PutString(t.format);
  w.PutString(t.encoding);
}

Result<DatasetType> ReadDatasetType(Reader& r) {
  DatasetType t;
  VDG_ASSIGN_OR_RETURN(t.content, r.ReadString());
  VDG_ASSIGN_OR_RETURN(t.format, r.ReadString());
  VDG_ASSIGN_OR_RETURN(t.encoding, r.ReadString());
  return t;
}

template <typename T, typename PutFn>
void PutOptional(Writer& w, const std::optional<T>& opt, PutFn put) {
  w.PutBool(opt.has_value());
  if (opt.has_value()) put(w, *opt);
}

void PutOptionalString(Writer& w, const std::optional<std::string>& opt) {
  PutOptional(w, opt,
              [](Writer& w, const std::string& s) { w.PutString(s); });
}

Result<std::optional<std::string>> ReadOptionalString(Reader& r) {
  VDG_ASSIGN_OR_RETURN(bool present, r.ReadBool());
  if (!present) return std::optional<std::string>();
  VDG_ASSIGN_OR_RETURN(std::string s, r.ReadString());
  return std::optional<std::string>(std::move(s));
}

void PutDirection(Writer& w, ArgDirection dir) {
  w.PutU8(static_cast<uint8_t>(dir));
}

Result<ArgDirection> ReadDirection(Reader& r) {
  VDG_ASSIGN_OR_RETURN(uint8_t v, r.ReadU8());
  if (v > static_cast<uint8_t>(ArgDirection::kNone)) {
    return Status::ParseError("wire: argument direction out of range");
  }
  return static_cast<ArgDirection>(v);
}

void PutOptionalDirection(Writer& w, const std::optional<ArgDirection>& opt) {
  PutOptional(w, opt, PutDirection);
}

Result<std::optional<ArgDirection>> ReadOptionalDirection(Reader& r) {
  VDG_ASSIGN_OR_RETURN(bool present, r.ReadBool());
  if (!present) return std::optional<ArgDirection>();
  VDG_ASSIGN_OR_RETURN(ArgDirection dir, ReadDirection(r));
  return std::optional<ArgDirection>(dir);
}

void PutStringVec(Writer& w, const std::vector<std::string>& v) {
  w.PutCount(v.size());
  for (const auto& s : v) w.PutString(s);
}

Result<std::vector<std::string>> ReadStringVec(Reader& r) {
  VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
  std::vector<std::string> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    VDG_ASSIGN_OR_RETURN(std::string s, r.ReadString());
    v.push_back(std::move(s));
  }
  return v;
}

void PutDescriptor(Writer& w, const DatasetDescriptor& d) {
  w.PutString(d.schema);
  PutAttributeSet(w, d.fields);
}

Result<DatasetDescriptor> ReadDescriptor(Reader& r) {
  DatasetDescriptor d;
  VDG_ASSIGN_OR_RETURN(d.schema, r.ReadString());
  VDG_ASSIGN_OR_RETURN(d.fields, ReadAttributeSet(r));
  return d;
}

void PutDataset(Writer& w, const Dataset& d) {
  w.PutString(d.name);
  PutDatasetType(w, d.type);
  PutDescriptor(w, d.descriptor);
  w.PutI64(d.size_bytes);
  w.PutString(d.producer);
  PutAttributeSet(w, d.annotations);
}

Result<Dataset> ReadDataset(Reader& r) {
  Dataset d;
  VDG_ASSIGN_OR_RETURN(d.name, r.ReadString());
  VDG_ASSIGN_OR_RETURN(d.type, ReadDatasetType(r));
  VDG_ASSIGN_OR_RETURN(d.descriptor, ReadDescriptor(r));
  VDG_ASSIGN_OR_RETURN(d.size_bytes, r.ReadI64());
  VDG_ASSIGN_OR_RETURN(d.producer, r.ReadString());
  VDG_ASSIGN_OR_RETURN(d.annotations, ReadAttributeSet(r));
  return d;
}

void PutReplica(Writer& w, const Replica& rep) {
  w.PutString(rep.id);
  w.PutString(rep.dataset);
  w.PutString(rep.site);
  w.PutString(rep.storage_element);
  w.PutString(rep.physical_path);
  w.PutI64(rep.size_bytes);
  w.PutDouble(rep.created_at);
  w.PutBool(rep.valid);
  PutAttributeSet(w, rep.annotations);
}

Result<Replica> ReadReplica(Reader& r) {
  Replica rep;
  VDG_ASSIGN_OR_RETURN(rep.id, r.ReadString());
  VDG_ASSIGN_OR_RETURN(rep.dataset, r.ReadString());
  VDG_ASSIGN_OR_RETURN(rep.site, r.ReadString());
  VDG_ASSIGN_OR_RETURN(rep.storage_element, r.ReadString());
  VDG_ASSIGN_OR_RETURN(rep.physical_path, r.ReadString());
  VDG_ASSIGN_OR_RETURN(rep.size_bytes, r.ReadI64());
  VDG_ASSIGN_OR_RETURN(rep.created_at, r.ReadDouble());
  VDG_ASSIGN_OR_RETURN(rep.valid, r.ReadBool());
  VDG_ASSIGN_OR_RETURN(rep.annotations, ReadAttributeSet(r));
  return rep;
}

void PutFormalArg(Writer& w, const FormalArg& a) {
  w.PutString(a.name);
  PutDirection(w, a.direction);
  w.PutCount(a.types.size());
  for (const auto& t : a.types) PutDatasetType(w, t);
  PutOptionalString(w, a.default_string);
  PutOptionalString(w, a.default_dataset);
}

Result<FormalArg> ReadFormalArg(Reader& r) {
  FormalArg a;
  VDG_ASSIGN_OR_RETURN(a.name, r.ReadString());
  VDG_ASSIGN_OR_RETURN(a.direction, ReadDirection(r));
  VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
  a.types.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    VDG_ASSIGN_OR_RETURN(DatasetType t, ReadDatasetType(r));
    a.types.push_back(std::move(t));
  }
  VDG_ASSIGN_OR_RETURN(a.default_string, ReadOptionalString(r));
  VDG_ASSIGN_OR_RETURN(a.default_dataset, ReadOptionalString(r));
  return a;
}

void PutTemplatePiece(Writer& w, const TemplatePiece& p) {
  w.PutU8(static_cast<uint8_t>(p.kind));
  w.PutString(p.text);
  PutOptionalDirection(w, p.ref_direction);
}

Result<TemplatePiece> ReadTemplatePiece(Reader& r) {
  VDG_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind > static_cast<uint8_t>(TemplatePiece::Kind::kArgRef)) {
    return Status::ParseError("wire: template piece kind out of range");
  }
  TemplatePiece p;
  p.kind = static_cast<TemplatePiece::Kind>(kind);
  VDG_ASSIGN_OR_RETURN(p.text, r.ReadString());
  VDG_ASSIGN_OR_RETURN(p.ref_direction, ReadOptionalDirection(r));
  return p;
}

void PutTemplateExpr(Writer& w, const TemplateExpr& e) {
  w.PutCount(e.size());
  for (const auto& p : e) PutTemplatePiece(w, p);
}

Result<TemplateExpr> ReadTemplateExpr(Reader& r) {
  VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
  TemplateExpr e;
  e.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    VDG_ASSIGN_OR_RETURN(TemplatePiece p, ReadTemplatePiece(r));
    e.push_back(std::move(p));
  }
  return e;
}

void PutTemplateMap(Writer& w,
                    const std::map<std::string, TemplateExpr>& m) {
  w.PutCount(m.size());
  for (const auto& [key, expr] : m) {
    w.PutString(key);
    PutTemplateExpr(w, expr);
  }
}

void PutTransformation(Writer& w, const Transformation& t) {
  w.PutString(t.name());
  w.PutU8(static_cast<uint8_t>(t.kind()));
  w.PutString(t.version());
  w.PutCount(t.args().size());
  for (const auto& a : t.args()) PutFormalArg(w, a);
  w.PutString(t.executable());
  w.PutCount(t.argument_templates().size());
  for (const auto& at : t.argument_templates()) {
    w.PutString(at.name);
    PutTemplateExpr(w, at.expr);
  }
  PutTemplateMap(w, t.env());
  PutTemplateMap(w, t.profile());
  w.PutCount(t.calls().size());
  for (const auto& c : t.calls()) {
    w.PutString(c.callee);
    w.PutCount(c.bindings.size());
    for (const auto& [formal, piece] : c.bindings) {
      w.PutString(formal);
      PutTemplatePiece(w, piece);
    }
  }
  PutAttributeSet(w, t.annotations());
}

Result<Transformation> ReadTransformation(Reader& r) {
  Transformation t;
  VDG_ASSIGN_OR_RETURN(std::string name, r.ReadString());
  t.set_name(std::move(name));
  VDG_ASSIGN_OR_RETURN(uint8_t kind, r.ReadU8());
  if (kind > static_cast<uint8_t>(Transformation::Kind::kCompound)) {
    return Status::ParseError("wire: transformation kind out of range");
  }
  t.set_kind(static_cast<Transformation::Kind>(kind));
  VDG_ASSIGN_OR_RETURN(std::string version, r.ReadString());
  t.set_version(std::move(version));
  VDG_ASSIGN_OR_RETURN(size_t nargs, r.ReadCount());
  for (size_t i = 0; i < nargs; ++i) {
    VDG_ASSIGN_OR_RETURN(FormalArg a, ReadFormalArg(r));
    // Bypass AddArg validation: the wire layer reproduces what was
    // sent; semantic checks belong to the catalog, not the codec.
    t.mutable_args().push_back(std::move(a));
  }
  VDG_ASSIGN_OR_RETURN(std::string exe, r.ReadString());
  t.set_executable(std::move(exe));
  VDG_ASSIGN_OR_RETURN(size_t ntmpl, r.ReadCount());
  for (size_t i = 0; i < ntmpl; ++i) {
    ArgumentTemplate at;
    VDG_ASSIGN_OR_RETURN(at.name, r.ReadString());
    VDG_ASSIGN_OR_RETURN(at.expr, ReadTemplateExpr(r));
    t.AddArgumentTemplate(std::move(at));
  }
  VDG_ASSIGN_OR_RETURN(size_t nenv, r.ReadCount());
  for (size_t i = 0; i < nenv; ++i) {
    VDG_ASSIGN_OR_RETURN(std::string key, r.ReadString());
    VDG_ASSIGN_OR_RETURN(TemplateExpr expr, ReadTemplateExpr(r));
    t.SetEnv(std::move(key), std::move(expr));
  }
  VDG_ASSIGN_OR_RETURN(size_t nprof, r.ReadCount());
  for (size_t i = 0; i < nprof; ++i) {
    VDG_ASSIGN_OR_RETURN(std::string key, r.ReadString());
    VDG_ASSIGN_OR_RETURN(TemplateExpr expr, ReadTemplateExpr(r));
    t.SetProfile(std::move(key), std::move(expr));
  }
  VDG_ASSIGN_OR_RETURN(size_t ncalls, r.ReadCount());
  for (size_t i = 0; i < ncalls; ++i) {
    CompoundCall c;
    VDG_ASSIGN_OR_RETURN(c.callee, r.ReadString());
    VDG_ASSIGN_OR_RETURN(size_t nbind, r.ReadCount());
    c.bindings.reserve(nbind);
    for (size_t j = 0; j < nbind; ++j) {
      VDG_ASSIGN_OR_RETURN(std::string formal, r.ReadString());
      VDG_ASSIGN_OR_RETURN(TemplatePiece piece, ReadTemplatePiece(r));
      c.bindings.emplace_back(std::move(formal), std::move(piece));
    }
    t.AddCall(std::move(c));
  }
  VDG_ASSIGN_OR_RETURN(t.annotations(), ReadAttributeSet(r));
  return t;
}

void PutActualArg(Writer& w, const ActualArg& a) {
  w.PutString(a.formal);
  PutOptionalString(w, a.string_value);
  PutOptionalString(w, a.dataset);
  PutOptionalDirection(w, a.direction);
}

Result<ActualArg> ReadActualArg(Reader& r) {
  ActualArg a;
  VDG_ASSIGN_OR_RETURN(a.formal, r.ReadString());
  VDG_ASSIGN_OR_RETURN(a.string_value, ReadOptionalString(r));
  VDG_ASSIGN_OR_RETURN(a.dataset, ReadOptionalString(r));
  VDG_ASSIGN_OR_RETURN(a.direction, ReadOptionalDirection(r));
  return a;
}

void PutDerivation(Writer& w, const Derivation& d) {
  w.PutString(d.name());
  w.PutString(d.transformation_namespace());
  w.PutString(d.transformation());
  w.PutCount(d.args().size());
  for (const auto& a : d.args()) PutActualArg(w, a);
  w.PutCount(d.env_overrides().size());
  for (const auto& [key, value] : d.env_overrides()) {
    w.PutString(key);
    w.PutString(value);
  }
  PutAttributeSet(w, d.annotations());
}

Result<Derivation> ReadDerivation(Reader& r) {
  Derivation d;
  VDG_ASSIGN_OR_RETURN(std::string name, r.ReadString());
  d.set_name(std::move(name));
  VDG_ASSIGN_OR_RETURN(std::string ns, r.ReadString());
  d.set_transformation_namespace(std::move(ns));
  VDG_ASSIGN_OR_RETURN(std::string tr, r.ReadString());
  d.set_transformation(std::move(tr));
  VDG_ASSIGN_OR_RETURN(size_t nargs, r.ReadCount());
  for (size_t i = 0; i < nargs; ++i) {
    VDG_ASSIGN_OR_RETURN(ActualArg a, ReadActualArg(r));
    VDG_RETURN_IF_ERROR(d.AddArg(std::move(a)));
  }
  VDG_ASSIGN_OR_RETURN(size_t nenv, r.ReadCount());
  for (size_t i = 0; i < nenv; ++i) {
    VDG_ASSIGN_OR_RETURN(std::string key, r.ReadString());
    VDG_ASSIGN_OR_RETURN(std::string value, r.ReadString());
    d.SetEnvOverride(std::move(key), std::move(value));
  }
  VDG_ASSIGN_OR_RETURN(d.annotations(), ReadAttributeSet(r));
  return d;
}

void PutInvocation(Writer& w, const Invocation& inv) {
  w.PutString(inv.id);
  w.PutString(inv.derivation);
  w.PutString(inv.context.site);
  w.PutString(inv.context.host);
  w.PutString(inv.context.os);
  w.PutString(inv.context.architecture);
  w.PutDouble(inv.start_time);
  w.PutDouble(inv.duration_s);
  w.PutDouble(inv.cpu_seconds);
  w.PutI64(inv.peak_memory_bytes);
  w.PutU32(static_cast<uint32_t>(inv.exit_code));
  w.PutBool(inv.succeeded);
  PutStringVec(w, inv.consumed_replicas);
  PutStringVec(w, inv.produced_replicas);
  PutAttributeSet(w, inv.annotations);
}

Result<Invocation> ReadInvocation(Reader& r) {
  Invocation inv;
  VDG_ASSIGN_OR_RETURN(inv.id, r.ReadString());
  VDG_ASSIGN_OR_RETURN(inv.derivation, r.ReadString());
  VDG_ASSIGN_OR_RETURN(inv.context.site, r.ReadString());
  VDG_ASSIGN_OR_RETURN(inv.context.host, r.ReadString());
  VDG_ASSIGN_OR_RETURN(inv.context.os, r.ReadString());
  VDG_ASSIGN_OR_RETURN(inv.context.architecture, r.ReadString());
  VDG_ASSIGN_OR_RETURN(inv.start_time, r.ReadDouble());
  VDG_ASSIGN_OR_RETURN(inv.duration_s, r.ReadDouble());
  VDG_ASSIGN_OR_RETURN(inv.cpu_seconds, r.ReadDouble());
  VDG_ASSIGN_OR_RETURN(inv.peak_memory_bytes, r.ReadI64());
  VDG_ASSIGN_OR_RETURN(uint32_t exit_code, r.ReadU32());
  inv.exit_code = static_cast<int>(static_cast<int32_t>(exit_code));
  VDG_ASSIGN_OR_RETURN(inv.succeeded, r.ReadBool());
  VDG_ASSIGN_OR_RETURN(inv.consumed_replicas, ReadStringVec(r));
  VDG_ASSIGN_OR_RETURN(inv.produced_replicas, ReadStringVec(r));
  VDG_ASSIGN_OR_RETURN(inv.annotations, ReadAttributeSet(r));
  return inv;
}

void PutCatalogChange(Writer& w, const CatalogChange& c) {
  w.PutU64(c.version);
  w.PutU8(static_cast<uint8_t>(c.op));
  w.PutString(c.kind);
  w.PutString(c.name);
}

Result<CatalogChange> ReadCatalogChange(Reader& r) {
  CatalogChange c;
  VDG_ASSIGN_OR_RETURN(c.version, r.ReadU64());
  VDG_ASSIGN_OR_RETURN(uint8_t op, r.ReadU8());
  c.op = static_cast<char>(op);
  VDG_ASSIGN_OR_RETURN(c.kind, r.ReadString());
  VDG_ASSIGN_OR_RETURN(c.name, r.ReadString());
  return c;
}

void PutPredicate(Writer& w, const AttributePredicate& p) {
  w.PutString(p.key);
  w.PutU8(static_cast<uint8_t>(p.op));
  PutAttributeValue(w, p.operand);
}

Result<AttributePredicate> ReadPredicate(Reader& r) {
  AttributePredicate p;
  VDG_ASSIGN_OR_RETURN(p.key, r.ReadString());
  VDG_ASSIGN_OR_RETURN(uint8_t op, r.ReadU8());
  if (op > static_cast<uint8_t>(PredicateOp::kExists)) {
    return Status::ParseError("wire: predicate op out of range");
  }
  p.op = static_cast<PredicateOp>(op);
  VDG_ASSIGN_OR_RETURN(p.operand, ReadAttributeValue(r));
  return p;
}

void PutPredicates(Writer& w, const std::vector<AttributePredicate>& v) {
  w.PutCount(v.size());
  for (const auto& p : v) PutPredicate(w, p);
}

Result<std::vector<AttributePredicate>> ReadPredicates(Reader& r) {
  VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
  std::vector<AttributePredicate> v;
  v.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    VDG_ASSIGN_OR_RETURN(AttributePredicate p, ReadPredicate(r));
    v.push_back(std::move(p));
  }
  return v;
}

void PutOptionalType(Writer& w, const std::optional<DatasetType>& opt) {
  PutOptional(w, opt, PutDatasetType);
}

Result<std::optional<DatasetType>> ReadOptionalType(Reader& r) {
  VDG_ASSIGN_OR_RETURN(bool present, r.ReadBool());
  if (!present) return std::optional<DatasetType>();
  VDG_ASSIGN_OR_RETURN(DatasetType t, ReadDatasetType(r));
  return std::optional<DatasetType>(std::move(t));
}

void PutDatasetQuery(Writer& w, const DatasetQuery& q) {
  PutOptionalType(w, q.type);
  PutPredicates(w, q.predicates);
  w.PutString(q.name_prefix);
  w.PutBool(q.require_materialized);
  w.PutBool(q.only_virtual);
  w.PutU64(q.limit);
}

Result<DatasetQuery> ReadDatasetQuery(Reader& r) {
  DatasetQuery q;
  VDG_ASSIGN_OR_RETURN(q.type, ReadOptionalType(r));
  VDG_ASSIGN_OR_RETURN(q.predicates, ReadPredicates(r));
  VDG_ASSIGN_OR_RETURN(q.name_prefix, r.ReadString());
  VDG_ASSIGN_OR_RETURN(q.require_materialized, r.ReadBool());
  VDG_ASSIGN_OR_RETURN(q.only_virtual, r.ReadBool());
  VDG_ASSIGN_OR_RETURN(uint64_t limit, r.ReadU64());
  q.limit = static_cast<size_t>(limit);
  return q;
}

void PutTransformationQuery(Writer& w, const TransformationQuery& q) {
  PutOptionalType(w, q.consumes);
  PutOptionalType(w, q.produces);
  PutPredicates(w, q.predicates);
  w.PutString(q.name_prefix);
  w.PutU64(q.limit);
}

Result<TransformationQuery> ReadTransformationQuery(Reader& r) {
  TransformationQuery q;
  VDG_ASSIGN_OR_RETURN(q.consumes, ReadOptionalType(r));
  VDG_ASSIGN_OR_RETURN(q.produces, ReadOptionalType(r));
  VDG_ASSIGN_OR_RETURN(q.predicates, ReadPredicates(r));
  VDG_ASSIGN_OR_RETURN(q.name_prefix, r.ReadString());
  VDG_ASSIGN_OR_RETURN(uint64_t limit, r.ReadU64());
  q.limit = static_cast<size_t>(limit);
  return q;
}

void PutDerivationQuery(Writer& w, const DerivationQuery& q) {
  w.PutString(q.transformation);
  w.PutString(q.reads_dataset);
  w.PutString(q.writes_dataset);
  PutPredicates(w, q.predicates);
  w.PutString(q.name_prefix);
  w.PutU64(q.limit);
}

Result<DerivationQuery> ReadDerivationQuery(Reader& r) {
  DerivationQuery q;
  VDG_ASSIGN_OR_RETURN(q.transformation, r.ReadString());
  VDG_ASSIGN_OR_RETURN(q.reads_dataset, r.ReadString());
  VDG_ASSIGN_OR_RETURN(q.writes_dataset, r.ReadString());
  VDG_ASSIGN_OR_RETURN(q.predicates, ReadPredicates(r));
  VDG_ASSIGN_OR_RETURN(q.name_prefix, r.ReadString());
  VDG_ASSIGN_OR_RETURN(uint64_t limit, r.ReadU64());
  q.limit = static_cast<size_t>(limit);
  return q;
}

void PutObjectRecord(Writer& w, const ObjectRecord& rec) {
  w.PutString(rec.kind);
  w.PutString(rec.name);
  PutStatus(w, rec.status);
  PutOptional(w, rec.dataset, PutDataset);
  PutOptional(w, rec.transformation, PutTransformation);
  PutOptional(w, rec.derivation, PutDerivation);
  w.PutBool(rec.materialized);
}

Result<ObjectRecord> ReadObjectRecord(Reader& r) {
  ObjectRecord rec;
  VDG_ASSIGN_OR_RETURN(rec.kind, r.ReadString());
  VDG_ASSIGN_OR_RETURN(rec.name, r.ReadString());
  VDG_RETURN_IF_ERROR(ReadStatus(r, &rec.status));
  VDG_ASSIGN_OR_RETURN(bool has_ds, r.ReadBool());
  if (has_ds) {
    VDG_ASSIGN_OR_RETURN(Dataset d, ReadDataset(r));
    rec.dataset = std::move(d);
  }
  VDG_ASSIGN_OR_RETURN(bool has_tr, r.ReadBool());
  if (has_tr) {
    VDG_ASSIGN_OR_RETURN(Transformation t, ReadTransformation(r));
    rec.transformation = std::move(t);
  }
  VDG_ASSIGN_OR_RETURN(bool has_dv, r.ReadBool());
  if (has_dv) {
    VDG_ASSIGN_OR_RETURN(Derivation d, ReadDerivation(r));
    rec.derivation = std::move(d);
  }
  VDG_ASSIGN_OR_RETURN(rec.materialized, r.ReadBool());
  return rec;
}

void PutProvenanceStep(Writer& w, const ProvenanceStep& s) {
  w.PutString(s.dataset);
  w.PutBool(s.exists);
  w.PutString(s.producer);
  PutOptional(w, s.derivation, PutDerivation);
  w.PutCount(s.invocations.size());
  for (const auto& inv : s.invocations) PutInvocation(w, inv);
}

Result<ProvenanceStep> ReadProvenanceStep(Reader& r) {
  ProvenanceStep s;
  VDG_ASSIGN_OR_RETURN(s.dataset, r.ReadString());
  VDG_ASSIGN_OR_RETURN(s.exists, r.ReadBool());
  VDG_ASSIGN_OR_RETURN(s.producer, r.ReadString());
  VDG_ASSIGN_OR_RETURN(bool has_dv, r.ReadBool());
  if (has_dv) {
    VDG_ASSIGN_OR_RETURN(Derivation d, ReadDerivation(r));
    s.derivation = std::move(d);
  }
  VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
  s.invocations.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    VDG_ASSIGN_OR_RETURN(Invocation inv, ReadInvocation(r));
    s.invocations.push_back(std::move(inv));
  }
  return s;
}

void PutMutation(Writer& w, const CatalogMutation& m) {
  w.PutU8(static_cast<uint8_t>(m.op.index()));
  std::visit(
      [&w](const auto& op) {
        using T = std::decay_t<decltype(op)>;
        if constexpr (std::is_same_v<T, CatalogMutation::DefineDatasetOp>) {
          PutDataset(w, op.dataset);
        } else if constexpr (std::is_same_v<
                                 T, CatalogMutation::DefineTransformationOp>) {
          PutTransformation(w, op.transformation);
        } else if constexpr (std::is_same_v<
                                 T, CatalogMutation::DefineDerivationOp>) {
          PutDerivation(w, op.derivation);
        } else if constexpr (std::is_same_v<T, CatalogMutation::AnnotateOp>) {
          w.PutString(op.kind);
          w.PutString(op.name);
          w.PutString(op.key);
          PutAttributeValue(w, op.value);
          w.PutBool(op.name_from_op.has_value());
          if (op.name_from_op) w.PutU64(*op.name_from_op);
        } else if constexpr (std::is_same_v<T,
                                            CatalogMutation::AddReplicaOp>) {
          PutReplica(w, op.replica);
        } else if constexpr (std::is_same_v<
                                 T, CatalogMutation::RecordInvocationOp>) {
          PutInvocation(w, op.invocation);
          w.PutCount(op.produced_from_ops.size());
          for (size_t pos : op.produced_from_ops) w.PutU64(pos);
        } else if constexpr (std::is_same_v<
                                 T, CatalogMutation::SetDatasetSizeOp>) {
          w.PutString(op.name);
          w.PutI64(op.size_bytes);
        } else {
          static_assert(
              std::is_same_v<T, CatalogMutation::InvalidateReplicaOp>);
          w.PutString(op.id);
        }
      },
      m.op);
}

Result<CatalogMutation> ReadMutation(Reader& r) {
  VDG_ASSIGN_OR_RETURN(uint8_t index, r.ReadU8());
  switch (index) {
    case 0: {
      VDG_ASSIGN_OR_RETURN(Dataset d, ReadDataset(r));
      return CatalogMutation::DefineDataset(std::move(d));
    }
    case 1: {
      VDG_ASSIGN_OR_RETURN(Transformation t, ReadTransformation(r));
      return CatalogMutation::DefineTransformation(std::move(t));
    }
    case 2: {
      VDG_ASSIGN_OR_RETURN(Derivation d, ReadDerivation(r));
      return CatalogMutation::DefineDerivation(std::move(d));
    }
    case 3: {
      CatalogMutation::AnnotateOp op;
      VDG_ASSIGN_OR_RETURN(op.kind, r.ReadString());
      VDG_ASSIGN_OR_RETURN(op.name, r.ReadString());
      VDG_ASSIGN_OR_RETURN(op.key, r.ReadString());
      VDG_ASSIGN_OR_RETURN(op.value, ReadAttributeValue(r));
      VDG_ASSIGN_OR_RETURN(bool has_from, r.ReadBool());
      if (has_from) {
        VDG_ASSIGN_OR_RETURN(uint64_t pos, r.ReadU64());
        op.name_from_op = static_cast<size_t>(pos);
      }
      return CatalogMutation{std::move(op)};
    }
    case 4: {
      VDG_ASSIGN_OR_RETURN(Replica rep, ReadReplica(r));
      return CatalogMutation::AddReplica(std::move(rep));
    }
    case 5: {
      CatalogMutation::RecordInvocationOp op;
      VDG_ASSIGN_OR_RETURN(op.invocation, ReadInvocation(r));
      VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
      op.produced_from_ops.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        VDG_ASSIGN_OR_RETURN(uint64_t pos, r.ReadU64());
        op.produced_from_ops.push_back(static_cast<size_t>(pos));
      }
      return CatalogMutation{std::move(op)};
    }
    case 6: {
      CatalogMutation::SetDatasetSizeOp op;
      VDG_ASSIGN_OR_RETURN(op.name, r.ReadString());
      VDG_ASSIGN_OR_RETURN(op.size_bytes, r.ReadI64());
      return CatalogMutation{std::move(op)};
    }
    case 7: {
      VDG_ASSIGN_OR_RETURN(std::string id, r.ReadString());
      return CatalogMutation::InvalidateReplica(std::move(id));
    }
    default:
      return Status::ParseError("wire: unknown mutation op index");
  }
}

void PutBatchResult(Writer& w, const BatchResult& b) {
  w.PutCount(b.statuses.size());
  for (const auto& s : b.statuses) PutStatus(w, s);
  PutStringVec(w, b.assigned_ids);
  w.PutU64(b.applied);
  w.PutU64(b.version);
  PutStatus(w, b.first_error);
}

Result<BatchResult> ReadBatchResult(Reader& r) {
  BatchResult b;
  VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
  b.statuses.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Status s;
    VDG_RETURN_IF_ERROR(ReadStatus(r, &s));
    b.statuses.push_back(std::move(s));
  }
  VDG_ASSIGN_OR_RETURN(b.assigned_ids, ReadStringVec(r));
  VDG_ASSIGN_OR_RETURN(uint64_t applied, r.ReadU64());
  b.applied = static_cast<size_t>(applied);
  VDG_ASSIGN_OR_RETURN(b.version, r.ReadU64());
  VDG_RETURN_IF_ERROR(ReadStatus(r, &b.first_error));
  return b;
}

// -----------------------------------------------------------------------
// Request / response payload encoding
// -----------------------------------------------------------------------

void EncodeRequestPayload(const Request& request, std::string* out) {
  Writer w(out);
  std::visit(
      [&w](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, EmptyReq>) {
          // no payload
        } else if constexpr (std::is_same_v<T, NameReq>) {
          w.PutString(body.name);
        } else if constexpr (std::is_same_v<T, ChangesSinceReq>) {
          w.PutU64(body.since_version);
        } else if constexpr (std::is_same_v<T, FindDatasetsReq>) {
          PutDatasetQuery(w, body.query);
        } else if constexpr (std::is_same_v<T, FindTransformationsReq>) {
          PutTransformationQuery(w, body.query);
        } else if constexpr (std::is_same_v<T, FindDerivationsReq>) {
          PutDerivationQuery(w, body.query);
        } else if constexpr (std::is_same_v<T, TypeConformsReq>) {
          PutDatasetType(w, body.type);
          PutDatasetType(w, body.against);
        } else if constexpr (std::is_same_v<T, BatchGetReq>) {
          w.PutCount(body.keys.size());
          for (const auto& key : body.keys) {
            w.PutString(key.kind);
            w.PutString(key.name);
          }
        } else if constexpr (std::is_same_v<T, DefineDatasetReq>) {
          PutDataset(w, body.dataset);
        } else if constexpr (std::is_same_v<T, DefineTransformationReq>) {
          PutTransformation(w, body.transformation);
        } else if constexpr (std::is_same_v<T, DefineDerivationReq>) {
          PutDerivation(w, body.derivation);
        } else if constexpr (std::is_same_v<T, AnnotateReq>) {
          w.PutString(body.kind);
          w.PutString(body.name);
          w.PutString(body.key);
          PutAttributeValue(w, body.value);
        } else if constexpr (std::is_same_v<T, AddReplicaReq>) {
          PutReplica(w, body.replica);
        } else if constexpr (std::is_same_v<T, RecordInvocationReq>) {
          PutInvocation(w, body.invocation);
        } else if constexpr (std::is_same_v<T, SetDatasetSizeReq>) {
          w.PutString(body.name);
          w.PutI64(body.size_bytes);
        } else {
          static_assert(std::is_same_v<T, ApplyBatchReq>);
          w.PutCount(body.mutations.size());
          for (const auto& m : body.mutations) PutMutation(w, m);
          w.PutBool(body.options.stop_on_error);
          w.PutString(body.options.idempotency_token);
        }
      },
      request.body);
}

void EncodeResponsePayload(const Response& response, std::string* out) {
  Writer w(out);
  PutStatus(w, response.status);
  std::visit(
      [&w](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, std::monostate>) {
          // status-only response
        } else if constexpr (std::is_same_v<T, HandshakeResp>) {
          w.PutString(body.authority);
          w.PutBool(body.read_only);
        } else if constexpr (std::is_same_v<T, VersionResp>) {
          w.PutU64(body.version);
        } else if constexpr (std::is_same_v<T, ChangesResp>) {
          w.PutCount(body.changes.size());
          for (const auto& c : body.changes) PutCatalogChange(w, c);
        } else if constexpr (std::is_same_v<T, DatasetResp>) {
          PutDataset(w, body.dataset);
        } else if constexpr (std::is_same_v<T, TransformationResp>) {
          PutTransformation(w, body.transformation);
        } else if constexpr (std::is_same_v<T, DerivationResp>) {
          PutDerivation(w, body.derivation);
        } else if constexpr (std::is_same_v<T, BoolResp>) {
          w.PutBool(body.value);
        } else if constexpr (std::is_same_v<T, StringResp>) {
          w.PutString(body.value);
        } else if constexpr (std::is_same_v<T, InvocationsResp>) {
          w.PutCount(body.invocations.size());
          for (const auto& inv : body.invocations) PutInvocation(w, inv);
        } else if constexpr (std::is_same_v<T, NamesResp>) {
          // Straight from the views: no owned-string materialization
          // between the snapshot and the payload bytes.
          w.PutCount(body.names.size());
          for (std::string_view name : body.names) w.PutString(name);
        } else if constexpr (std::is_same_v<T, RecordsResp>) {
          w.PutCount(body.records.size());
          for (const auto& rec : body.records) PutObjectRecord(w, rec);
        } else if constexpr (std::is_same_v<T, StepResp>) {
          PutProvenanceStep(w, body.step);
        } else {
          static_assert(std::is_same_v<T, BatchResultResp>);
          PutBatchResult(w, body.result);
        }
      },
      response.body);
}

std::string EncodeFrame(uint64_t request_id, bool is_response, MsgKind kind,
                        std::string_view payload) {
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size() + kFrameTrailerBytes);
  Writer w(&frame);
  frame.append(kMagic, sizeof(kMagic));
  w.PutU8(kCodecVersion);
  w.PutU8(is_response ? kFlagResponse : 0);
  w.PutU8(static_cast<uint8_t>(kind));
  w.PutU8(0);  // reserved
  w.PutU64(request_id);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  w.PutU32(Crc32(frame));
  return frame;
}

}  // namespace

std::string_view MsgKindName(MsgKind kind) {
  switch (kind) {
    case MsgKind::kHandshake: return "Handshake";
    case MsgKind::kVersion: return "Version";
    case MsgKind::kChangesSince: return "ChangesSince";
    case MsgKind::kGetDataset: return "GetDataset";
    case MsgKind::kGetTransformation: return "GetTransformation";
    case MsgKind::kGetDerivation: return "GetDerivation";
    case MsgKind::kHasDataset: return "HasDataset";
    case MsgKind::kIsMaterialized: return "IsMaterialized";
    case MsgKind::kProducerOf: return "ProducerOf";
    case MsgKind::kInvocationsOf: return "InvocationsOf";
    case MsgKind::kFindDatasets: return "FindDatasets";
    case MsgKind::kFindTransformations: return "FindTransformations";
    case MsgKind::kFindDerivations: return "FindDerivations";
    case MsgKind::kAllNames: return "AllNames";
    case MsgKind::kTypeConforms: return "TypeConforms";
    case MsgKind::kBatchGet: return "BatchGet";
    case MsgKind::kGetProvenanceStep: return "GetProvenanceStep";
    case MsgKind::kDefineDataset: return "DefineDataset";
    case MsgKind::kDefineTransformation: return "DefineTransformation";
    case MsgKind::kDefineDerivation: return "DefineDerivation";
    case MsgKind::kAnnotate: return "Annotate";
    case MsgKind::kAddReplica: return "AddReplica";
    case MsgKind::kRecordInvocation: return "RecordInvocation";
    case MsgKind::kSetDatasetSize: return "SetDatasetSize";
    case MsgKind::kInvalidateReplica: return "InvalidateReplica";
    case MsgKind::kApplyBatch: return "ApplyBatch";
  }
  return "Unknown";
}

bool IsValidMsgKind(uint8_t raw) {
  return raw >= static_cast<uint8_t>(MsgKind::kHandshake) &&
         raw <= static_cast<uint8_t>(MsgKind::kApplyBatch);
}

std::string EncodeRequestFrame(uint64_t request_id, const Request& request) {
  std::string payload;
  EncodeRequestPayload(request, &payload);
  return EncodeFrame(request_id, /*is_response=*/false, request.kind, payload);
}

std::string EncodeResponseFrame(uint64_t request_id,
                                const Response& response) {
  std::string payload;
  EncodeResponsePayload(response, &payload);
  return EncodeFrame(request_id, /*is_response=*/true, response.kind, payload);
}

Result<size_t> FrameSize(std::string_view buffer) {
  if (buffer.empty()) return Status::NotFound("wire: incomplete frame header");
  // Validate whatever prefix of the header is present: a bad magic or
  // version is corruption no amount of further bytes can fix, and the
  // connection should drop immediately instead of waiting forever.
  size_t check = std::min(buffer.size(), sizeof(kMagic));
  if (std::memcmp(buffer.data(), kMagic, check) != 0) {
    return Status::ParseError("wire: bad frame magic");
  }
  if (buffer.size() > 4 && static_cast<uint8_t>(buffer[4]) != kCodecVersion) {
    return Status::ParseError("wire: unsupported codec version");
  }
  if (buffer.size() < kFrameHeaderBytes) {
    return Status::NotFound("wire: incomplete frame header");
  }
  uint32_t payload_size = 0;
  for (int i = 0; i < 4; ++i) {
    payload_size |=
        static_cast<uint32_t>(static_cast<uint8_t>(buffer[16 + i])) << (8 * i);
  }
  if (payload_size > kMaxPayloadBytes) {
    return Status::ResourceExhausted("wire: declared payload exceeds limit");
  }
  return kFrameHeaderBytes + static_cast<size_t>(payload_size) +
         kFrameTrailerBytes;
}

Result<Frame> DecodeFrame(std::string_view bytes) {
  if (bytes.size() < kFrameHeaderBytes + kFrameTrailerBytes) {
    return Status::ParseError("wire: frame shorter than header + checksum");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("wire: bad frame magic");
  }
  Frame frame;
  frame.version = static_cast<uint8_t>(bytes[4]);
  if (frame.version != kCodecVersion) {
    return Status::ParseError("wire: unsupported codec version");
  }
  uint8_t flags = static_cast<uint8_t>(bytes[5]);
  if ((flags & ~kFlagResponse) != 0) {
    return Status::ParseError("wire: unknown frame flags");
  }
  frame.is_response = (flags & kFlagResponse) != 0;
  uint8_t raw_kind = static_cast<uint8_t>(bytes[6]);
  if (!IsValidMsgKind(raw_kind)) {
    return Status::ParseError("wire: unknown message kind");
  }
  frame.kind = static_cast<MsgKind>(raw_kind);
  if (static_cast<uint8_t>(bytes[7]) != 0) {
    return Status::ParseError("wire: nonzero reserved header byte");
  }
  uint64_t request_id = 0;
  for (int i = 0; i < 8; ++i) {
    request_id |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[8 + i]))
                  << (8 * i);
  }
  frame.request_id = request_id;
  uint32_t payload_size = 0;
  for (int i = 0; i < 4; ++i) {
    payload_size |=
        static_cast<uint32_t>(static_cast<uint8_t>(bytes[16 + i])) << (8 * i);
  }
  if (payload_size > kMaxPayloadBytes) {
    return Status::ResourceExhausted("wire: declared payload exceeds limit");
  }
  if (bytes.size() !=
      kFrameHeaderBytes + payload_size + kFrameTrailerBytes) {
    return Status::ParseError("wire: frame length disagrees with header");
  }
  size_t crc_offset = bytes.size() - kFrameTrailerBytes;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |=
        static_cast<uint32_t>(static_cast<uint8_t>(bytes[crc_offset + i]))
        << (8 * i);
  }
  uint32_t computed = Crc32(bytes.substr(0, crc_offset));
  if (stored_crc != computed) {
    return Status::ParseError("wire: frame checksum mismatch");
  }
  frame.payload = bytes.substr(kFrameHeaderBytes, payload_size);
  return frame;
}

Result<Request> DecodeRequest(MsgKind kind, std::string_view payload) {
  Reader r(payload);
  Request req;
  req.kind = kind;
  switch (kind) {
    case MsgKind::kHandshake:
    case MsgKind::kVersion:
      req.body = EmptyReq{};
      break;
    case MsgKind::kChangesSince: {
      ChangesSinceReq body;
      VDG_ASSIGN_OR_RETURN(body.since_version, r.ReadU64());
      req.body = std::move(body);
      break;
    }
    case MsgKind::kGetDataset:
    case MsgKind::kGetTransformation:
    case MsgKind::kGetDerivation:
    case MsgKind::kHasDataset:
    case MsgKind::kIsMaterialized:
    case MsgKind::kProducerOf:
    case MsgKind::kInvocationsOf:
    case MsgKind::kAllNames:
    case MsgKind::kGetProvenanceStep:
    case MsgKind::kInvalidateReplica: {
      NameReq body;
      VDG_ASSIGN_OR_RETURN(body.name, r.ReadString());
      req.body = std::move(body);
      break;
    }
    case MsgKind::kFindDatasets: {
      FindDatasetsReq body;
      VDG_ASSIGN_OR_RETURN(body.query, ReadDatasetQuery(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kFindTransformations: {
      FindTransformationsReq body;
      VDG_ASSIGN_OR_RETURN(body.query, ReadTransformationQuery(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kFindDerivations: {
      FindDerivationsReq body;
      VDG_ASSIGN_OR_RETURN(body.query, ReadDerivationQuery(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kTypeConforms: {
      TypeConformsReq body;
      VDG_ASSIGN_OR_RETURN(body.type, ReadDatasetType(r));
      VDG_ASSIGN_OR_RETURN(body.against, ReadDatasetType(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kBatchGet: {
      BatchGetReq body;
      VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
      body.keys.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        ObjectKey key;
        VDG_ASSIGN_OR_RETURN(key.kind, r.ReadString());
        VDG_ASSIGN_OR_RETURN(key.name, r.ReadString());
        body.keys.push_back(std::move(key));
      }
      req.body = std::move(body);
      break;
    }
    case MsgKind::kDefineDataset: {
      DefineDatasetReq body;
      VDG_ASSIGN_OR_RETURN(body.dataset, ReadDataset(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kDefineTransformation: {
      DefineTransformationReq body;
      VDG_ASSIGN_OR_RETURN(body.transformation, ReadTransformation(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kDefineDerivation: {
      DefineDerivationReq body;
      VDG_ASSIGN_OR_RETURN(body.derivation, ReadDerivation(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kAnnotate: {
      AnnotateReq body;
      VDG_ASSIGN_OR_RETURN(body.kind, r.ReadString());
      VDG_ASSIGN_OR_RETURN(body.name, r.ReadString());
      VDG_ASSIGN_OR_RETURN(body.key, r.ReadString());
      VDG_ASSIGN_OR_RETURN(body.value, ReadAttributeValue(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kAddReplica: {
      AddReplicaReq body;
      VDG_ASSIGN_OR_RETURN(body.replica, ReadReplica(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kRecordInvocation: {
      RecordInvocationReq body;
      VDG_ASSIGN_OR_RETURN(body.invocation, ReadInvocation(r));
      req.body = std::move(body);
      break;
    }
    case MsgKind::kSetDatasetSize: {
      SetDatasetSizeReq body;
      VDG_ASSIGN_OR_RETURN(body.name, r.ReadString());
      VDG_ASSIGN_OR_RETURN(body.size_bytes, r.ReadI64());
      req.body = std::move(body);
      break;
    }
    case MsgKind::kApplyBatch: {
      ApplyBatchReq body;
      VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
      body.mutations.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        VDG_ASSIGN_OR_RETURN(CatalogMutation m, ReadMutation(r));
        body.mutations.push_back(std::move(m));
      }
      VDG_ASSIGN_OR_RETURN(body.options.stop_on_error, r.ReadBool());
      // The idempotency token is a trailing optional field: frames
      // produced by pre-token encoders end right after stop_on_error,
      // and must keep decoding (version-tolerant within codec v1).
      if (!r.AtEnd()) {
        VDG_ASSIGN_OR_RETURN(body.options.idempotency_token, r.ReadString());
      }
      req.body = std::move(body);
      break;
    }
  }
  VDG_RETURN_IF_ERROR(r.ExpectEnd());
  return req;
}

Result<Response> DecodeResponse(MsgKind kind, std::string_view payload) {
  Reader r(payload);
  Response resp;
  resp.kind = kind;
  VDG_RETURN_IF_ERROR(ReadStatus(r, &resp.status));
  if (!resp.status.ok()) {
    // Error responses carry no body regardless of kind.
    VDG_RETURN_IF_ERROR(r.ExpectEnd());
    return resp;
  }
  switch (kind) {
    case MsgKind::kHandshake: {
      HandshakeResp body;
      VDG_ASSIGN_OR_RETURN(body.authority, r.ReadString());
      VDG_ASSIGN_OR_RETURN(body.read_only, r.ReadBool());
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kVersion: {
      VersionResp body;
      VDG_ASSIGN_OR_RETURN(body.version, r.ReadU64());
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kChangesSince: {
      ChangesResp body;
      VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
      body.changes.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        VDG_ASSIGN_OR_RETURN(CatalogChange c, ReadCatalogChange(r));
        body.changes.push_back(std::move(c));
      }
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kGetDataset: {
      DatasetResp body;
      VDG_ASSIGN_OR_RETURN(body.dataset, ReadDataset(r));
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kGetTransformation: {
      TransformationResp body;
      VDG_ASSIGN_OR_RETURN(body.transformation, ReadTransformation(r));
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kGetDerivation: {
      DerivationResp body;
      VDG_ASSIGN_OR_RETURN(body.derivation, ReadDerivation(r));
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kHasDataset:
    case MsgKind::kIsMaterialized:
    case MsgKind::kTypeConforms: {
      BoolResp body;
      VDG_ASSIGN_OR_RETURN(body.value, r.ReadBool());
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kProducerOf:
    case MsgKind::kAddReplica:
    case MsgKind::kRecordInvocation: {
      StringResp body;
      VDG_ASSIGN_OR_RETURN(body.value, r.ReadString());
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kInvocationsOf: {
      InvocationsResp body;
      VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
      body.invocations.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        VDG_ASSIGN_OR_RETURN(Invocation inv, ReadInvocation(r));
        body.invocations.push_back(std::move(inv));
      }
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kFindDatasets:
    case MsgKind::kFindTransformations:
    case MsgKind::kFindDerivations:
    case MsgKind::kAllNames: {
      // Arena decode: one buffer per response holds every name;
      // the list's views point into it (no per-name allocation).
      NamesResp body;
      VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
      NameList::ArenaBuilder names;
      names.Reserve(n, r.remaining());
      for (size_t i = 0; i < n; ++i) {
        VDG_ASSIGN_OR_RETURN(std::string_view s, r.ReadStringView());
        names.Append(s);
      }
      body.names = std::move(names).Build();
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kBatchGet: {
      RecordsResp body;
      VDG_ASSIGN_OR_RETURN(size_t n, r.ReadCount());
      body.records.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        VDG_ASSIGN_OR_RETURN(ObjectRecord rec, ReadObjectRecord(r));
        body.records.push_back(std::move(rec));
      }
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kGetProvenanceStep: {
      StepResp body;
      VDG_ASSIGN_OR_RETURN(body.step, ReadProvenanceStep(r));
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kApplyBatch: {
      BatchResultResp body;
      VDG_ASSIGN_OR_RETURN(body.result, ReadBatchResult(r));
      resp.body = std::move(body);
      break;
    }
    case MsgKind::kDefineDataset:
    case MsgKind::kDefineTransformation:
    case MsgKind::kDefineDerivation:
    case MsgKind::kAnnotate:
    case MsgKind::kSetDatasetSize:
    case MsgKind::kInvalidateReplica:
      // Status-only responses.
      break;
  }
  VDG_RETURN_IF_ERROR(r.ExpectEnd());
  return resp;
}

}  // namespace wire
}  // namespace vdg
