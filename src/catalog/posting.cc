#include "catalog/posting.h"

#include <algorithm>
#include <cstring>

namespace vdg {

namespace {

/// Gallop ratio: array x array intersection switches from linear merge
/// to exponential search when one side is this many times longer.
constexpr uint32_t kGallopRatio = 16;

/// Exponential (galloping) search: smallest index in [lo, n) with
/// vals[index] >= target. Starts probing at `lo` with doubling steps,
/// then binary-searches the bracketed range — O(log distance) instead
/// of O(log n), which is what makes skewed intersections cheap.
uint32_t GallopLowerBound(const uint16_t* vals, uint32_t lo, uint32_t n,
                          uint16_t target) {
  if (lo >= n || vals[lo] >= target) return lo;
  uint32_t step = 1;
  uint32_t prev = lo;
  uint32_t probe = lo + 1;
  while (probe < n && vals[probe] < target) {
    prev = probe;
    step <<= 1;
    probe = (probe + step < n) ? probe + step : n;
  }
  const uint16_t* it =
      std::lower_bound(vals + prev + 1, vals + probe, target);
  return static_cast<uint32_t>(it - vals);
}

void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

void PutU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void PutU16(std::string* out, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  out->append(buf, 2);
}

/// Bounded little-endian reader over the blob being parsed.
struct Reader {
  const uint8_t* p;
  const uint8_t* end;
  bool ok = true;

  bool Need(size_t n) {
    if (static_cast<size_t>(end - p) < n) ok = false;
    return ok;
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v;
    std::memcpy(&v, p, 4);
    p += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v;
    std::memcpy(&v, p, 8);
    p += 8;
    return v;
  }
  uint16_t U16() {
    if (!Need(2)) return 0;
    uint16_t v;
    std::memcpy(&v, p, 2);
    p += 2;
    return v;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return *p++;
  }
};

}  // namespace

uint32_t PostingBlocks::CountTrailingZeros(uint64_t v) {
  return static_cast<uint32_t>(__builtin_ctzll(v));
}

size_t PostingBlocks::FindBlock(uint32_t key) const {
  auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), key,
      [](const Block& b, uint32_t k) { return b.key < k; });
  if (it == blocks_.end() || it->key != key) return blocks_.size();
  return static_cast<size_t>(it - blocks_.begin());
}

void PostingBlocks::Materialize(Block* b) {
  if (b->ext_array != nullptr) {
    b->own_array.assign(b->ext_array, b->ext_array + b->count);
    b->ext_array = nullptr;
  }
  if (b->ext_bits != nullptr) {
    b->own_bits.assign(b->ext_bits, b->ext_bits + kBitmapWords);
    b->ext_bits = nullptr;
  }
}

void PostingBlocks::ToBitmap(Block* b) {
  std::vector<uint64_t> bits(kBitmapWords, 0);
  const uint16_t* vals = b->array();
  for (uint32_t i = 0; i < b->count; ++i) {
    bits[vals[i] / 64] |= uint64_t{1} << (vals[i] % 64);
  }
  b->own_bits = std::move(bits);
  b->own_array.clear();
  b->own_array.shrink_to_fit();
  b->ext_array = nullptr;
  b->bitmap = true;
}

void PostingBlocks::ToArray(Block* b) {
  std::vector<uint16_t> vals;
  vals.reserve(b->count);
  const uint64_t* words = b->bits();
  for (uint32_t w = 0; w < kBitmapWords; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      vals.push_back(static_cast<uint16_t>(w * 64 + CountTrailingZeros(bits)));
      bits &= bits - 1;
    }
  }
  b->own_array = std::move(vals);
  b->own_bits.clear();
  b->own_bits.shrink_to_fit();
  b->ext_bits = nullptr;
  b->bitmap = false;
}

bool PostingBlocks::BlockContains(const Block& b, uint16_t low) {
  if (low < b.min16 || low > b.max16) return false;
  if (b.bitmap) {
    return (b.bits()[low / 64] >> (low % 64)) & 1;
  }
  const uint16_t* vals = b.array();
  return std::binary_search(vals, vals + b.count, low);
}

bool PostingBlocks::Contains(Id id) const {
  const size_t bi = FindBlock(id >> kSpanBits);
  if (bi == blocks_.size()) return false;
  return BlockContains(blocks_[bi], static_cast<uint16_t>(id & 0xffff));
}

uint32_t PostingBlocks::CountOf(Id id) const {
  if (!Contains(id)) return 0;
  auto it = std::lower_bound(
      extra_.begin(), extra_.end(), id,
      [](const std::pair<Id, uint32_t>& e, Id v) { return e.first < v; });
  uint32_t n = 1;
  if (it != extra_.end() && it->first == id) n += it->second;
  return n;
}

void PostingBlocks::Add(Id id) {
  const uint32_t key = id >> kSpanBits;
  const uint16_t low = static_cast<uint16_t>(id & 0xffff);
  auto it = std::lower_bound(
      blocks_.begin(), blocks_.end(), key,
      [](const Block& b, uint32_t k) { return b.key < k; });
  if (it == blocks_.end() || it->key != key) {
    Block fresh;
    fresh.key = key;
    fresh.count = 1;
    fresh.min16 = fresh.max16 = low;
    fresh.own_array.push_back(low);
    blocks_.insert(it, std::move(fresh));
    ++distinct_;
    ++total_;
    return;
  }
  Block& b = *it;
  if (BlockContains(b, low)) {
    // Duplicate occurrence: bump the side table, not the block.
    auto e = std::lower_bound(
        extra_.begin(), extra_.end(), id,
        [](const std::pair<Id, uint32_t>& x, Id v) { return x.first < v; });
    if (e != extra_.end() && e->first == id) {
      ++e->second;
    } else {
      extra_.insert(e, {id, 1});
    }
    ++total_;
    return;
  }
  Materialize(&b);
  if (b.bitmap) {
    b.own_bits[low / 64] |= uint64_t{1} << (low % 64);
  } else if (b.count + 1 > kBitmapThreshold) {
    ToBitmap(&b);
    b.own_bits[low / 64] |= uint64_t{1} << (low % 64);
  } else {
    b.own_array.insert(
        std::lower_bound(b.own_array.begin(), b.own_array.end(), low), low);
  }
  ++b.count;
  b.min16 = std::min(b.min16, low);
  b.max16 = std::max(b.max16, low);
  ++distinct_;
  ++total_;
}

void PostingBlocks::Remove(Id id) {
  const size_t bi = FindBlock(id >> kSpanBits);
  if (bi == blocks_.size()) return;
  Block& b = blocks_[bi];
  const uint16_t low = static_cast<uint16_t>(id & 0xffff);
  if (!BlockContains(b, low)) return;
  // Duplicates burn down the side table before block membership goes.
  auto e = std::lower_bound(
      extra_.begin(), extra_.end(), id,
      [](const std::pair<Id, uint32_t>& x, Id v) { return x.first < v; });
  if (e != extra_.end() && e->first == id) {
    if (--e->second == 0) extra_.erase(e);
    --total_;
    return;
  }
  if (b.count == 1) {
    blocks_.erase(blocks_.begin() + static_cast<ptrdiff_t>(bi));
    --distinct_;
    --total_;
    return;
  }
  Materialize(&b);
  if (b.bitmap) {
    b.own_bits[low / 64] &= ~(uint64_t{1} << (low % 64));
    --b.count;
    if (b.count < kBitmapThreshold / 2) ToArray(&b);
  } else {
    auto pos = std::lower_bound(b.own_array.begin(), b.own_array.end(), low);
    b.own_array.erase(pos);
    --b.count;
  }
  if (low == b.min16 || low == b.max16) {
    if (b.bitmap) {
      const uint64_t* words = b.bits();
      for (uint32_t w = 0; w < kBitmapWords; ++w) {
        if (words[w] != 0) {
          b.min16 = static_cast<uint16_t>(w * 64 + CountTrailingZeros(words[w]));
          break;
        }
      }
      for (uint32_t w = kBitmapWords; w-- > 0;) {
        if (words[w] != 0) {
          b.max16 = static_cast<uint16_t>(
              w * 64 + (63 - __builtin_clzll(words[w])));
          break;
        }
      }
    } else {
      b.min16 = b.own_array.front();
      b.max16 = b.own_array.back();
    }
  }
  --distinct_;
  --total_;
}

std::vector<PostingBlocks::Id> PostingBlocks::ToVector() const {
  std::vector<Id> out;
  out.reserve(total_);
  ForEachOccurrence([&out](Id id) { out.push_back(id); });
  return out;
}

// ---------------------------------------------------------------------
// Intersection kernels
// ---------------------------------------------------------------------

void PostingBlocks::IntersectBlocks(const Block& x, const Block& y, Id base,
                                    std::vector<Id>* out) {
  // Header check: disjoint low-16 ranges never touch the payloads.
  if (x.max16 < y.min16 || y.max16 < x.min16) return;

  if (x.bitmap && y.bitmap) {
    // Dense x dense: word-wise AND over the overlapping word range.
    const uint64_t* xw = x.bits();
    const uint64_t* yw = y.bits();
    const uint32_t w_lo = std::max(x.min16, y.min16) / 64;
    const uint32_t w_hi = std::min(x.max16, y.max16) / 64;
    for (uint32_t w = w_lo; w <= w_hi; ++w) {
      uint64_t bits = xw[w] & yw[w];
      while (bits != 0) {
        out->push_back(base | (w * 64 + CountTrailingZeros(bits)));
        bits &= bits - 1;
      }
    }
    return;
  }

  if (x.bitmap != y.bitmap) {
    // Sparse x dense: probe each array value against the bitmap.
    const Block& arr = x.bitmap ? y : x;
    const Block& bm = x.bitmap ? x : y;
    const uint16_t* vals = arr.array();
    const uint64_t* words = bm.bits();
    for (uint32_t i = 0; i < arr.count; ++i) {
      const uint16_t v = vals[i];
      if (v < bm.min16) continue;
      if (v > bm.max16) break;
      if ((words[v / 64] >> (v % 64)) & 1) out->push_back(base | v);
    }
    return;
  }

  const Block& small = x.count <= y.count ? x : y;
  const Block& large = x.count <= y.count ? y : x;
  const uint16_t* sv = small.array();
  const uint16_t* lv = large.array();

  if (large.count >= kGallopRatio * small.count) {
    // Skewed: gallop the short list through the long one.
    uint32_t pos = 0;
    for (uint32_t i = 0; i < small.count; ++i) {
      const uint16_t v = sv[i];
      if (v > large.max16) break;
      pos = GallopLowerBound(lv, pos, large.count, v);
      if (pos == large.count) break;
      if (lv[pos] == v) out->push_back(base | v);
    }
    return;
  }

  // Comparable sizes: linear two-pointer merge.
  uint32_t i = 0, j = 0;
  while (i < small.count && j < large.count) {
    if (sv[i] < lv[j]) {
      ++i;
    } else if (lv[j] < sv[i]) {
      ++j;
    } else {
      out->push_back(base | sv[i]);
      ++i;
      ++j;
    }
  }
}

std::vector<PostingBlocks::Id> PostingBlocks::Intersect(
    const PostingBlocks& a, const PostingBlocks& b) {
  std::vector<Id> out;
  if (a.empty() || b.empty()) return out;
  out.reserve(std::min(a.distinct_, b.distinct_));
  size_t i = 0, j = 0;
  while (i < a.blocks_.size() && j < b.blocks_.size()) {
    const uint32_t ka = a.blocks_[i].key;
    const uint32_t kb = b.blocks_[j].key;
    if (ka == kb) {
      IntersectBlocks(a.blocks_[i], b.blocks_[j],
                      static_cast<Id>(ka) << kSpanBits, &out);
      ++i;
      ++j;
    } else if (ka < kb) {
      // Jump the lagging side by key (block-level gallop).
      i = static_cast<size_t>(
          std::lower_bound(a.blocks_.begin() + static_cast<ptrdiff_t>(i),
                           a.blocks_.end(), kb,
                           [](const Block& blk, uint32_t k) {
                             return blk.key < k;
                           }) -
          a.blocks_.begin());
    } else {
      j = static_cast<size_t>(
          std::lower_bound(b.blocks_.begin() + static_cast<ptrdiff_t>(j),
                           b.blocks_.end(), ka,
                           [](const Block& blk, uint32_t k) {
                             return blk.key < k;
                           }) -
          b.blocks_.begin());
    }
  }
  return out;
}

void PostingBlocks::IntersectWith(std::vector<Id>* candidates,
                                  const PostingBlocks& b) {
  if (candidates->empty()) return;
  if (b.empty()) {
    candidates->clear();
    return;
  }
  size_t out_n = 0;
  size_t bi = 0;
  uint32_t pos = 0;  // array cursor within the current block
  for (const Id id : *candidates) {
    const uint32_t key = id >> kSpanBits;
    while (bi < b.blocks_.size() && b.blocks_[bi].key < key) {
      ++bi;
      pos = 0;
    }
    if (bi == b.blocks_.size()) break;
    const Block& blk = b.blocks_[bi];
    if (blk.key != key) continue;
    const uint16_t low = static_cast<uint16_t>(id & 0xffff);
    if (low < blk.min16 || low > blk.max16) continue;
    if (blk.bitmap) {
      if ((blk.bits()[low / 64] >> (low % 64)) & 1) {
        (*candidates)[out_n++] = id;
      }
    } else {
      // Candidates ascend, so the cursor only moves forward; gallop
      // covers skew between the candidate set and the block.
      pos = GallopLowerBound(blk.array(), pos, blk.count, low);
      if (pos < blk.count && blk.array()[pos] == low) {
        (*candidates)[out_n++] = id;
      }
    }
  }
  candidates->resize(out_n);
}

PostingBlocks PostingBlocks::Union(const PostingBlocks& a,
                                   const PostingBlocks& b) {
  // Start from the larger side's structure, fold the other in. Only
  // the copied side's blocks may stay borrowed (they keep `keepalive`);
  // every fold-in mutation materializes as it goes.
  const PostingBlocks& seed = a.distinct_ >= b.distinct_ ? a : b;
  const PostingBlocks& rest = a.distinct_ >= b.distinct_ ? b : a;
  PostingBlocks out = seed;
  rest.ForEachOccurrence([&out](Id id) { out.Add(id); });
  return out;
}

// ---------------------------------------------------------------------
// Serialization (the flat-snapshot wire form)
// ---------------------------------------------------------------------

void PostingBlocks::AppendSerialized(std::string* out) const {
  const size_t start = out->size();
  PutU32(out, static_cast<uint32_t>(blocks_.size()));
  PutU32(out, static_cast<uint32_t>(distinct_));
  PutU64(out, static_cast<uint64_t>(total_));
  PutU32(out, static_cast<uint32_t>(extra_.size()));
  PutU32(out, 0);  // reserved; keeps the 24-byte header 8-aligned
  for (const Block& b : blocks_) {
    PutU32(out, b.key);
    PutU32(out, b.count);
    PutU16(out, b.min16);
    PutU16(out, b.max16);
    out->push_back(b.bitmap ? '\1' : '\0');
    out->append(3, '\0');
  }
  for (const Block& b : blocks_) {
    while ((out->size() - start) % 8 != 0) out->push_back('\0');
    if (b.bitmap) {
      out->append(reinterpret_cast<const char*>(b.bits()),
                  kBitmapWords * sizeof(uint64_t));
    } else {
      out->append(reinterpret_cast<const char*>(b.array()),
                  b.count * sizeof(uint16_t));
    }
  }
  while ((out->size() - start) % 8 != 0) out->push_back('\0');
  for (const auto& [id, n] : extra_) {
    PutU32(out, id);
    PutU32(out, n);
  }
}

Result<PostingBlocks> PostingBlocks::Parse(
    const uint8_t* data, size_t size, size_t* consumed,
    std::shared_ptr<const void> keepalive) {
  Reader r{data, data + size};
  PostingBlocks out;
  const uint32_t block_count = r.U32();
  const uint32_t distinct = r.U32();
  const uint64_t total = r.U64();
  const uint32_t extra_count = r.U32();
  r.U32();  // reserved
  if (!r.ok || block_count > kSpan || extra_count > distinct) {
    return Status::ParseError("posting blob: bad header");
  }
  out.blocks_.resize(block_count);
  uint64_t counted = 0;
  uint32_t prev_key = 0;
  for (uint32_t i = 0; i < block_count; ++i) {
    Block& b = out.blocks_[i];
    b.key = r.U32();
    b.count = r.U32();
    b.min16 = r.U16();
    b.max16 = r.U16();
    b.bitmap = r.U8() != 0;
    r.U8();
    r.U16();
    if (!r.ok || b.count == 0 || b.count > kSpan || b.min16 > b.max16 ||
        (i > 0 && b.key <= prev_key)) {
      return Status::ParseError("posting blob: bad block header");
    }
    prev_key = b.key;
    counted += b.count;
  }
  if (counted != distinct) {
    return Status::ParseError("posting blob: distinct count mismatch");
  }
  for (uint32_t i = 0; i < block_count; ++i) {
    Block& b = out.blocks_[i];
    while ((r.p - data) % 8 != 0) {
      if (!r.Need(1)) return Status::ParseError("posting blob: truncated");
      ++r.p;
    }
    const size_t bytes = b.bitmap ? kBitmapWords * sizeof(uint64_t)
                                  : b.count * sizeof(uint16_t);
    if (!r.Need(bytes)) {
      return Status::ParseError("posting blob: truncated payload");
    }
    const bool aligned =
        reinterpret_cast<uintptr_t>(r.p) % (b.bitmap ? 8 : 2) == 0;
    if (keepalive != nullptr && aligned) {
      if (b.bitmap) {
        b.ext_bits = reinterpret_cast<const uint64_t*>(r.p);
      } else {
        b.ext_array = reinterpret_cast<const uint16_t*>(r.p);
      }
    } else if (b.bitmap) {
      b.own_bits.resize(kBitmapWords);
      std::memcpy(b.own_bits.data(), r.p, bytes);
    } else {
      b.own_array.resize(b.count);
      std::memcpy(b.own_array.data(), r.p, bytes);
    }
    r.p += bytes;
  }
  while ((r.p - data) % 8 != 0) {
    if (!r.Need(1)) return Status::ParseError("posting blob: truncated");
    ++r.p;
  }
  out.extra_.resize(extra_count);
  uint64_t extras = 0;
  for (uint32_t i = 0; i < extra_count; ++i) {
    out.extra_[i].first = r.U32();
    out.extra_[i].second = r.U32();
    if (!r.ok || out.extra_[i].second == 0 ||
        (i > 0 && out.extra_[i].first <= out.extra_[i - 1].first)) {
      return Status::ParseError("posting blob: bad duplicate table");
    }
    extras += out.extra_[i].second;
  }
  if (total != distinct + extras) {
    return Status::ParseError("posting blob: total count mismatch");
  }
  out.distinct_ = distinct;
  out.total_ = total;
  out.keepalive_ = std::move(keepalive);
  *consumed = static_cast<size_t>(r.p - data);
  return out;
}

}  // namespace vdg
