#include "catalog/sharding.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>
#include <variant>

#include "common/hash.h"
#include "common/strings.h"
#include "common/uri.h"

namespace vdg {

uint32_t ShardRouter::ShardOf(std::string_view name) const {
  return static_cast<uint32_t>(Fnv1a64(name) % shard_count_);
}

uint64_t ShardSetFingerprint(
    const std::vector<std::shared_ptr<CatalogClient>>& shards) {
  std::string key = std::to_string(shards.size());
  for (const auto& shard : shards) {
    key.push_back('\x1f');
    key += shard->authority();
  }
  return Fnv1a64(key);
}

NameList MergeSortedNameLists(const std::vector<NameList>& lists,
                              size_t limit) {
  size_t total = 0;
  size_t bytes = 0;
  for (const NameList& list : lists) {
    total += list.size();
    for (std::string_view name : list) bytes += name.size();
  }
  NameList::ArenaBuilder builder;
  builder.Reserve(limit != 0 ? std::min(limit, total) : total, bytes);
  std::vector<size_t> cursor(lists.size(), 0);
  while (limit == 0 || builder.size() < limit) {
    size_t best = lists.size();
    for (size_t i = 0; i < lists.size(); ++i) {
      if (cursor[i] >= lists[i].size()) continue;
      if (best == lists.size() ||
          lists[i][cursor[i]] < lists[best][cursor[best]]) {
        best = i;
      }
    }
    if (best == lists.size()) break;
    builder.Append(lists[best][cursor[best]]);
    ++cursor[best];
  }
  return std::move(builder).Build();
}

ShardedCatalogClient::ShardedCatalogClient(
    std::vector<std::shared_ptr<CatalogClient>> shards,
    ShardedClientOptions options)
    : authority_("vdp://sharded"), options_(std::move(options)) {
  auto topo = std::make_shared<Topology>();
  if (shards.empty()) {
    // A degenerate empty topology would make every route ill-formed;
    // keep the invariant "at least one shard" instead.
    shards.push_back(nullptr);
  }
  topo->router = ShardRouter(static_cast<uint32_t>(shards.size()));
  topo->fingerprint = ShardSetFingerprint(shards);
  topo->shards = std::move(shards);
  topology_ = std::move(topo);
}

std::shared_ptr<const ShardedCatalogClient::Topology>
ShardedCatalogClient::topology() const {
  std::lock_guard<std::mutex> lock(topology_mu_);
  return topology_;
}

Status ShardedCatalogClient::Reshard(
    std::vector<std::shared_ptr<CatalogClient>> shards) {
  if (shards.empty()) {
    return Status::InvalidArgument("reshard to an empty shard set");
  }
  for (const auto& shard : shards) {
    if (shard == nullptr) {
      return Status::InvalidArgument("reshard with a null shard client");
    }
  }
  auto topo = std::make_shared<Topology>();
  topo->router = ShardRouter(static_cast<uint32_t>(shards.size()));
  topo->fingerprint = ShardSetFingerprint(shards);
  topo->shards = std::move(shards);
  std::lock_guard<std::mutex> lock(topology_mu_);
  topology_ = std::move(topo);
  return Status::OK();
}

bool ShardedCatalogClient::read_only() const {
  auto topo = topology();
  for (const auto& shard : topo->shards) {
    if (shard != nullptr && !shard->read_only()) return false;
  }
  return true;
}

ShardTopology ShardedCatalogClient::shard_topology() const {
  auto topo = topology();
  ShardTopology out;
  out.shard_count = topo->router.shard_count();
  out.fingerprint = topo->fingerprint;
  return out;
}

uint32_t ShardedCatalogClient::ShardOf(std::string_view name) const {
  return topology()->router.ShardOf(name);
}

uint32_t ShardedCatalogClient::shard_count() const {
  return topology()->router.shard_count();
}

std::string ShardedCatalogClient::MakeReplicaId(uint32_t shard) {
  return "rp-" + options_.id_tag + "s" + std::to_string(shard) + "-" +
         std::to_string(++replica_seq_);
}

std::string ShardedCatalogClient::MakeInvocationId(uint32_t shard) {
  return "iv-" + options_.id_tag + "s" + std::to_string(shard) + "-" +
         std::to_string(++invocation_seq_);
}

bool ShardedCatalogClient::ShardFromAssignedId(const Topology& topo,
                                               std::string_view id,
                                               uint32_t* shard) const {
  // "rp-<tag>s<shard>-<seq>" / "iv-<tag>s<shard>-<seq>".
  std::string_view rest;
  if (StartsWith(id, "rp-")) {
    rest = id.substr(3);
  } else if (StartsWith(id, "iv-")) {
    rest = id.substr(3);
  } else {
    return false;
  }
  if (!StartsWith(rest, options_.id_tag)) return false;
  rest = rest.substr(options_.id_tag.size());
  if (rest.empty() || rest[0] != 's') return false;
  rest = rest.substr(1);
  size_t dash = rest.find('-');
  if (dash == 0 || dash == std::string_view::npos) return false;
  uint32_t value = 0;
  for (char c : rest.substr(0, dash)) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint32_t>(c - '0');
  }
  if (value >= topo.router.shard_count()) return false;
  *shard = value;
  return true;
}

// ---------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------

Result<uint64_t> ShardedCatalogClient::Version() {
  auto topo = topology();
  uint64_t sum = 0;
  for (const auto& shard : topo->shards) {
    VDG_ASSIGN_OR_RETURN(uint64_t v, shard->Version());
    sum += v;
  }
  return sum;
}

Result<std::vector<uint64_t>> ShardedCatalogClient::ShardVersions() {
  auto topo = topology();
  std::vector<uint64_t> versions;
  versions.reserve(topo->shards.size());
  for (const auto& shard : topo->shards) {
    VDG_ASSIGN_OR_RETURN(uint64_t v, shard->Version());
    versions.push_back(v);
  }
  return versions;
}

Result<std::vector<CatalogChange>> ShardedCatalogClient::ShardChangesSince(
    uint32_t shard, uint64_t since_version) {
  auto topo = topology();
  if (shard >= topo->shards.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard) +
                                   " in a " +
                                   std::to_string(topo->shards.size()) +
                                   "-shard topology");
  }
  return topo->shards[shard]->ChangesSince(since_version);
}

Result<std::vector<CatalogChange>> ShardedCatalogClient::ChangesSince(
    uint64_t since_version) {
  // The composite version is a sum of per-shard versions: it orders
  // observations but is not addressable in any one shard's changelog,
  // so only the trivial answers exist here. Delta consumers hold
  // per-shard anchors and call ShardChangesSince instead; everyone
  // else hits the same ResourceExhausted they already handle for an
  // out-of-window changelog (full resync).
  VDG_ASSIGN_OR_RETURN(uint64_t current, Version());
  if (since_version == current) return std::vector<CatalogChange>{};
  if (since_version > current) {
    return Status::InvalidArgument(
        "composite version " + std::to_string(since_version) +
        " is from the future (current " + std::to_string(current) + ")");
  }
  return Status::ResourceExhausted(
      "composite catalog version is not delta-addressable; use "
      "ShardChangesSince with per-shard anchors");
}

Result<Dataset> ShardedCatalogClient::GetDataset(std::string_view name) {
  auto topo = topology();
  return topo->shards[topo->router.ShardOf(name)]->GetDataset(name);
}

Result<Transformation> ShardedCatalogClient::GetTransformation(
    std::string_view name) {
  // Transformations are broadcast-replicated: any shard answers; hash
  // the name anyway to spread the load.
  auto topo = topology();
  return topo->shards[topo->router.ShardOf(name)]->GetTransformation(name);
}

Result<Derivation> ShardedCatalogClient::GetDerivation(
    std::string_view name) {
  auto topo = topology();
  return topo->shards[topo->router.ShardOf(name)]->GetDerivation(name);
}

Result<bool> ShardedCatalogClient::HasDataset(std::string_view name) {
  auto topo = topology();
  return topo->shards[topo->router.ShardOf(name)]->HasDataset(name);
}

Result<bool> ShardedCatalogClient::IsMaterialized(std::string_view dataset) {
  auto topo = topology();
  return topo->shards[topo->router.ShardOf(dataset)]->IsMaterialized(dataset);
}

Result<std::string> ShardedCatalogClient::ProducerOf(
    std::string_view dataset) {
  auto topo = topology();
  Result<std::string> home =
      topo->shards[topo->router.ShardOf(dataset)]->ProducerOf(dataset);
  if (home.ok() || !home.status().IsNotFound()) return home;
  // Cross-shard adoption gap: a pre-existing producerless dataset whose
  // producing derivation lives on another shard never got its producer
  // field backfilled. The derivation's home shard still indexed the
  // writes edge, so ask the writes index everywhere before conceding.
  DerivationQuery query;
  query.writes_dataset = std::string(dataset);
  query.limit = 1;
  for (const auto& shard : topo->shards) {
    VDG_ASSIGN_OR_RETURN(NameList writers, shard->FindDerivations(query));
    if (!writers.empty()) return std::string(writers.front());
  }
  return home;
}

Result<std::vector<Invocation>> ShardedCatalogClient::InvocationsOf(
    std::string_view derivation) {
  auto topo = topology();
  return topo->shards[topo->router.ShardOf(derivation)]->InvocationsOf(
      derivation);
}

Result<std::vector<NameList>> ShardedCatalogClient::ScatterLists(
    const Topology& topo,
    const std::function<Result<NameList>(CatalogClient&)>& fn) {
  const size_t n = topo.shards.size();
  std::vector<std::optional<Result<NameList>>> legs(n);
  if (options_.parallel_fanout && n > 1) {
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      threads.emplace_back(
          [&, i] { legs[i].emplace(fn(*topo.shards[i])); });
    }
    for (std::thread& t : threads) t.join();
  } else {
    for (size_t i = 0; i < n; ++i) legs[i].emplace(fn(*topo.shards[i]));
  }
  std::vector<NameList> lists;
  lists.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    // A failed leg fails the gather: a partial merge would be silent
    // truncation, the one thing a discovery result must never be.
    if (!legs[i]->ok()) return legs[i]->status();
    lists.push_back(*std::move(*legs[i]));
  }
  return lists;
}

Result<NameList> ShardedCatalogClient::FindDatasets(
    const DatasetQuery& query) {
  auto topo = topology();
  if (topo->shards.size() == 1) return topo->shards[0]->FindDatasets(query);
  VDG_ASSIGN_OR_RETURN(
      std::vector<NameList> lists,
      ScatterLists(*topo, [&](CatalogClient& shard) {
        return shard.FindDatasets(query);
      }));
  return MergeSortedNameLists(lists, query.limit);
}

Result<NameList> ShardedCatalogClient::FindTransformations(
    const TransformationQuery& query) {
  // Broadcast-replicated objects: shard 0 holds the full set.
  return topology()->shards[0]->FindTransformations(query);
}

Result<NameList> ShardedCatalogClient::FindDerivations(
    const DerivationQuery& query) {
  auto topo = topology();
  if (topo->shards.size() == 1) return topo->shards[0]->FindDerivations(query);
  VDG_ASSIGN_OR_RETURN(
      std::vector<NameList> lists,
      ScatterLists(*topo, [&](CatalogClient& shard) {
        return shard.FindDerivations(query);
      }));
  return MergeSortedNameLists(lists, query.limit);
}

Result<NameList> ShardedCatalogClient::AllNames(std::string_view kind) {
  auto topo = topology();
  if (kind == "transformation" || topo->shards.size() == 1) {
    return topo->shards[0]->AllNames(kind);
  }
  if (kind != "dataset" && kind != "derivation") {
    return topo->shards[0]->AllNames(kind);  // surfaces InvalidArgument
  }
  VDG_ASSIGN_OR_RETURN(
      std::vector<NameList> lists,
      ScatterLists(*topo, [&](CatalogClient& shard) {
        return shard.AllNames(kind);
      }));
  return MergeSortedNameLists(lists, 0);
}

Result<bool> ShardedCatalogClient::TypeConforms(const DatasetType& type,
                                                const DatasetType& against) {
  // Shards share one type universe by contract; shard 0 judges.
  return topology()->shards[0]->TypeConforms(type, against);
}

Result<std::vector<ObjectRecord>> ShardedCatalogClient::BatchGet(
    const std::vector<ObjectKey>& keys) {
  auto topo = topology();
  const size_t n = topo->shards.size();
  if (n == 1) return topo->shards[0]->BatchGet(keys);
  std::vector<std::vector<ObjectKey>> per_shard(n);
  std::vector<std::vector<size_t>> positions(n);
  for (size_t i = 0; i < keys.size(); ++i) {
    uint32_t shard = topo->router.ShardOf(keys[i].name);
    per_shard[shard].push_back(keys[i]);
    positions[shard].push_back(i);
  }
  std::vector<ObjectRecord> records(keys.size());
  for (size_t k = 0; k < n; ++k) {
    if (per_shard[k].empty()) continue;
    VDG_ASSIGN_OR_RETURN(std::vector<ObjectRecord> got,
                         topo->shards[k]->BatchGet(per_shard[k]));
    if (got.size() != per_shard[k].size()) {
      return Status::Internal("shard " + std::to_string(k) +
                              " returned a misaligned BatchGet");
    }
    for (size_t j = 0; j < got.size(); ++j) {
      records[positions[k][j]] = std::move(got[j]);
    }
  }
  return records;
}

Result<ProvenanceStep> ShardedCatalogClient::GetProvenanceStep(
    std::string_view dataset) {
  auto topo = topology();
  VDG_ASSIGN_OR_RETURN(
      ProvenanceStep step,
      topo->shards[topo->router.ShardOf(dataset)]->GetProvenanceStep(
          dataset));
  if (!step.exists) return step;
  if (step.producer.empty()) {
    // Same adoption gap as ProducerOf: consult the writes index.
    DerivationQuery query;
    query.writes_dataset = std::string(dataset);
    query.limit = 1;
    for (const auto& shard : topo->shards) {
      VDG_ASSIGN_OR_RETURN(NameList writers, shard->FindDerivations(query));
      if (!writers.empty()) {
        step.producer = std::string(writers.front());
        break;
      }
    }
  }
  if (!step.producer.empty() && !step.derivation.has_value()) {
    // The producing derivation (and its invocations) are homed on the
    // producer's shard, not the dataset's.
    CatalogClient& home = *topo->shards[topo->router.ShardOf(step.producer)];
    Result<Derivation> dv = home.GetDerivation(step.producer);
    if (dv.ok()) {
      step.derivation = *std::move(dv);
      VDG_ASSIGN_OR_RETURN(step.invocations,
                           home.InvocationsOf(step.producer));
    } else if (!dv.status().IsNotFound()) {
      return dv.status();
    }
  }
  return step;
}

// ---------------------------------------------------------------------
// Mutations
// ---------------------------------------------------------------------

Status ShardedCatalogClient::DefineDataset(Dataset dataset) {
  auto topo = topology();
  uint32_t shard = topo->router.ShardOf(dataset.name);
  return topo->shards[shard]->DefineDataset(std::move(dataset));
}

Status ShardedCatalogClient::DefineTransformation(
    Transformation transformation) {
  // Broadcast; a partially applied earlier attempt self-heals: any
  // fresh define plus only-AlreadyExists elsewhere still counts as
  // success, and all-AlreadyExists is the plain retry answer.
  auto topo = topology();
  size_t ok_count = 0;
  std::optional<Status> already;
  std::optional<Status> error;
  for (const auto& shard : topo->shards) {
    Status s = shard->DefineTransformation(transformation);
    if (s.ok()) {
      ++ok_count;
    } else if (s.IsAlreadyExists()) {
      if (!already) already = std::move(s);
    } else if (!error) {
      error = std::move(s);
    }
  }
  if (error) return *error;
  if (ok_count > 0) return Status::OK();
  return *already;  // every shard said AlreadyExists: the retry answer
}

Status ShardedCatalogClient::PlanDerivation(
    const Topology& topo, const Derivation& derivation, DerivationPlan* plan,
    const std::map<std::string, Dataset>* pending) {
  const uint32_t home = topo.router.ShardOf(derivation.name());
  Result<Derivation> existing =
      topo.shards[home]->GetDerivation(derivation.name());
  if (existing.ok()) {
    return Status::AlreadyExists("derivation already defined: " +
                                 derivation.name());
  }
  if (!existing.status().IsNotFound()) return existing.status();

  const std::string& tr_name = derivation.transformation();
  std::optional<Transformation> tr;
  if (!IsVdpUri(tr_name)) {
    Result<Transformation> got =
        topo.shards[topo.router.ShardOf(tr_name)]->GetTransformation(tr_name);
    if (got.ok()) {
      tr = *std::move(got);
    } else if (got.status().IsNotFound()) {
      // The home shard reports the canonical "unknown transformation"
      // error when the op lands; nothing to place here.
      return Status::OK();
    } else {
      return got.status();
    }
  }

  for (const ActualArg& arg : derivation.args()) {
    if (!arg.is_dataset() || IsVdpUri(*arg.dataset)) continue;
    const FormalArg* formal =
        tr.has_value() ? tr->FindArg(arg.formal) : nullptr;
    if (tr.has_value() && formal == nullptr) {
      // Unknown formal: home-shard validation owns the error text.
      return Status::OK();
    }
    Result<Dataset> ds =
        topo.shards[topo.router.ShardOf(*arg.dataset)]->GetDataset(
            *arg.dataset);
    const Dataset* known = nullptr;
    if (ds.ok()) {
      known = &*ds;
    } else if (!ds.status().IsNotFound()) {
      return ds.status();
    } else if (pending != nullptr) {
      // Defined by an earlier op of the same batch: no shard has
      // applied it yet, but the plan must see it — the unsharded
      // catalog's batch path would.
      auto it = pending->find(*arg.dataset);
      if (it != pending->end()) known = &it->second;
    }
    if (known != nullptr) {
      if (formal != nullptr && !formal->types.empty()) {
        bool conforms = false;
        for (const DatasetType& want : formal->types) {
          VDG_ASSIGN_OR_RETURN(
              bool one, topo.shards[0]->TypeConforms(known->type, want));
          if (one) {
            conforms = true;
            break;
          }
        }
        if (!conforms) {
          std::string want;
          for (size_t i = 0; i < formal->types.size(); ++i) {
            if (i > 0) want += "|";
            want += formal->types[i].ToString();
          }
          return Status::TypeError("dataset " + *arg.dataset + " of type " +
                                   known->type.ToString() +
                                   " does not conform to formal " +
                                   arg.formal + " : " + want + " of " +
                                   tr->name());
        }
      }
      if (arg.direction.has_value() && DirectionWrites(*arg.direction) &&
          !known->producer.empty() && known->producer != derivation.name() &&
          !StartsWith(derivation.name(), known->producer + ".")) {
        return Status::AlreadyExists(
            "dataset " + *arg.dataset + " is already produced by derivation " +
            known->producer + " (a dataset has exactly one producing recipe)");
      }
      continue;
    }
    // Missing dataset: an input must exist somewhere in the logical
    // catalog (the check the shard catalogs relaxed in partition
    // mode); a written output becomes virtual data pre-created on its
    // hash-owned home shard, because partition-mode catalogs do not
    // auto-define what they may not own.
    if (formal != nullptr && DirectionReads(formal->direction) &&
        formal->direction != ArgDirection::kInOut) {
      return Status::TypeError("derivation " + derivation.name() +
                               " reads undefined dataset " + *arg.dataset);
    }
    if (arg.direction.has_value() && DirectionWrites(*arg.direction)) {
      bool duplicate = false;
      for (const auto& pending : plan->ensure_outputs) {
        if (pending.second.name == *arg.dataset) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      Dataset out;
      out.name = *arg.dataset;
      out.producer = derivation.name();
      if (formal != nullptr && !formal->types.empty()) {
        out.type = formal->types.front();
      }
      out.descriptor = DatasetDescriptor::File(out.name);
      plan->ensure_outputs.emplace_back(topo.router.ShardOf(out.name),
                                        std::move(out));
    }
  }
  return Status::OK();
}

Status ShardedCatalogClient::DefineDerivation(Derivation derivation) {
  auto topo = topology();
  VDG_RETURN_IF_ERROR(derivation.Validate());
  DerivationPlan plan;
  VDG_RETURN_IF_ERROR(PlanDerivation(*topo, derivation, &plan));
  for (const auto& [shard, dataset] : plan.ensure_outputs) {
    Status s = topo->shards[shard]->DefineDataset(dataset);
    if (!s.ok() && !s.IsAlreadyExists()) return s;
  }
  const uint32_t home = topo->router.ShardOf(derivation.name());
  return topo->shards[home]->DefineDerivation(std::move(derivation));
}

Status ShardedCatalogClient::AnyShard(
    const Topology& topo, const std::function<Status(CatalogClient&)>& fn) {
  std::optional<Status> not_found;
  for (const auto& shard : topo.shards) {
    Status s = fn(*shard);
    if (s.ok()) return s;
    if (s.IsNotFound()) {
      if (!not_found) not_found = std::move(s);
    } else {
      // A shard that cannot answer might have held the object: failing
      // loud beats a false NotFound.
      return s;
    }
  }
  return *not_found;
}

Status ShardedCatalogClient::Annotate(std::string_view kind,
                                      std::string_view name,
                                      std::string_view key,
                                      AttributeValue value) {
  auto topo = topology();
  if (kind == "dataset" || kind == "derivation") {
    uint32_t shard = topo->router.ShardOf(name);
    return topo->shards[shard]->Annotate(kind, name, key, std::move(value));
  }
  if (kind == "transformation") {
    for (const auto& shard : topo->shards) {
      VDG_RETURN_IF_ERROR(shard->Annotate(kind, name, key, value));
    }
    return Status::OK();
  }
  if (kind == "replica" || kind == "invocation") {
    uint32_t shard = 0;
    if (ShardFromAssignedId(*topo, name, &shard)) {
      return topo->shards[shard]->Annotate(kind, name, key, std::move(value));
    }
    return AnyShard(*topo, [&](CatalogClient& client) {
      return client.Annotate(kind, name, key, value);
    });
  }
  return topo->shards[0]->Annotate(kind, name, key, std::move(value));
}

Result<std::string> ShardedCatalogClient::AddReplica(Replica replica) {
  auto topo = topology();
  uint32_t shard = topo->router.ShardOf(replica.dataset);
  if (replica.id.empty()) replica.id = MakeReplicaId(shard);
  return topo->shards[shard]->AddReplica(std::move(replica));
}

Result<std::string> ShardedCatalogClient::RecordInvocation(
    Invocation invocation) {
  auto topo = topology();
  uint32_t shard = topo->router.ShardOf(invocation.derivation);
  if (invocation.id.empty()) invocation.id = MakeInvocationId(shard);
  return topo->shards[shard]->RecordInvocation(std::move(invocation));
}

Status ShardedCatalogClient::SetDatasetSize(std::string_view name,
                                            int64_t size_bytes) {
  auto topo = topology();
  return topo->shards[topo->router.ShardOf(name)]->SetDatasetSize(name,
                                                                  size_bytes);
}

Status ShardedCatalogClient::InvalidateReplica(std::string_view id) {
  auto topo = topology();
  uint32_t shard = 0;
  if (ShardFromAssignedId(*topo, id, &shard)) {
    return topo->shards[shard]->InvalidateReplica(id);
  }
  return AnyShard(*topo, [&](CatalogClient& client) {
    return client.InvalidateReplica(id);
  });
}

Result<BatchResult> ShardedCatalogClient::ApplyBatch(
    const std::vector<CatalogMutation>& mutations,
    const BatchOptions& options) {
  auto topo = topology();
  const size_t shard_count = topo->shards.size();
  const size_t n = mutations.size();

  BatchResult merged;
  merged.statuses.assign(n, Status::OK());
  merged.assigned_ids.assign(n, std::string());

  // Routing plan. `origin == kSynthetic` marks helper ops (derivation
  // output pre-creation) that exist only in sub-batches and fold their
  // failures into the originating op.
  constexpr size_t kSynthetic = static_cast<size_t>(-1);
  struct SubOp {
    CatalogMutation mut;
    size_t origin;
    size_t fold_into;  // meaningful when origin == kSynthetic
  };
  std::vector<std::vector<SubOp>> subs(shard_count);
  std::vector<char> resolved_early(n, 0);
  enum class MergeRule : char { kPoint, kBroadcastAll, kBroadcastAny };
  std::vector<MergeRule> rule(n, MergeRule::kPoint);
  std::vector<std::string> op_id(n);     // effective replica/invocation id
  std::vector<uint32_t> op_shard(n, 0);  // shard of the id-assigning op
  // Datasets defined (or pre-created for derivation outputs) by
  // earlier ops of THIS batch: not yet on any shard, but later
  // derivation plans must see them — intra-batch define-then-derive
  // works against the unsharded catalog and must work here too.
  std::map<std::string, Dataset> pending_datasets;

  for (size_t i = 0; i < n; ++i) {
    Status route = std::visit(
        [&](const auto& op) -> Status {
          using Op = std::decay_t<decltype(op)>;
          if constexpr (std::is_same_v<Op, CatalogMutation::DefineDatasetOp>) {
            uint32_t shard = topo->router.ShardOf(op.dataset.name);
            subs[shard].push_back({mutations[i], i, 0});
            pending_datasets.insert({op.dataset.name, op.dataset});
          } else if constexpr (std::is_same_v<
                                   Op,
                                   CatalogMutation::DefineTransformationOp>) {
            rule[i] = MergeRule::kBroadcastAll;
            for (size_t k = 0; k < shard_count; ++k) {
              subs[k].push_back({mutations[i], i, 0});
            }
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::DefineDerivationOp>) {
            VDG_RETURN_IF_ERROR(op.derivation.Validate());
            DerivationPlan plan;
            VDG_RETURN_IF_ERROR(
                PlanDerivation(*topo, op.derivation, &plan,
                               &pending_datasets));
            for (auto& [shard, dataset] : plan.ensure_outputs) {
              // Later derivations writing the same output must see the
              // producer claim this one just staked.
              pending_datasets.insert({dataset.name, dataset});
              subs[shard].push_back(
                  {CatalogMutation::DefineDataset(std::move(dataset)),
                   kSynthetic, i});
            }
            uint32_t home = topo->router.ShardOf(op.derivation.name());
            subs[home].push_back({mutations[i], i, 0});
          } else if constexpr (std::is_same_v<Op,
                                              CatalogMutation::AnnotateOp>) {
            CatalogMutation::AnnotateOp annotate = op;
            if (annotate.name_from_op.has_value()) {
              size_t pos = *annotate.name_from_op;
              if (pos >= i || op_id[pos].empty()) {
                return Status::InvalidArgument(
                    "annotate references batch op " + std::to_string(pos) +
                    " which assigned no id");
              }
              annotate.name = op_id[pos];
              annotate.name_from_op.reset();
              subs[op_shard[pos]].push_back(
                  {CatalogMutation{std::move(annotate)}, i, 0});
            } else if (annotate.kind == "dataset" ||
                       annotate.kind == "derivation") {
              uint32_t shard = topo->router.ShardOf(annotate.name);
              subs[shard].push_back({mutations[i], i, 0});
            } else if (annotate.kind == "transformation") {
              rule[i] = MergeRule::kBroadcastAll;
              for (size_t k = 0; k < shard_count; ++k) {
                subs[k].push_back({mutations[i], i, 0});
              }
            } else if (annotate.kind == "replica" ||
                       annotate.kind == "invocation") {
              uint32_t shard = 0;
              if (ShardFromAssignedId(*topo, annotate.name, &shard)) {
                subs[shard].push_back({mutations[i], i, 0});
              } else {
                rule[i] = MergeRule::kBroadcastAny;
                for (size_t k = 0; k < shard_count; ++k) {
                  subs[k].push_back({mutations[i], i, 0});
                }
              }
            } else {
              subs[0].push_back({mutations[i], i, 0});
            }
          } else if constexpr (std::is_same_v<Op,
                                              CatalogMutation::AddReplicaOp>) {
            uint32_t shard = topo->router.ShardOf(op.replica.dataset);
            CatalogMutation::AddReplicaOp add = op;
            if (add.replica.id.empty()) add.replica.id = MakeReplicaId(shard);
            op_id[i] = add.replica.id;
            op_shard[i] = shard;
            subs[shard].push_back({CatalogMutation{std::move(add)}, i, 0});
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::RecordInvocationOp>) {
            uint32_t shard = topo->router.ShardOf(op.invocation.derivation);
            CatalogMutation::RecordInvocationOp record = op;
            for (size_t pos : record.produced_from_ops) {
              if (pos >= i || op_id[pos].empty()) {
                return Status::InvalidArgument(
                    "invocation references batch op " + std::to_string(pos) +
                    " which assigned no id");
              }
              record.invocation.produced_replicas.push_back(op_id[pos]);
            }
            record.produced_from_ops.clear();
            if (record.invocation.id.empty()) {
              record.invocation.id = MakeInvocationId(shard);
            }
            op_id[i] = record.invocation.id;
            op_shard[i] = shard;
            subs[shard].push_back({CatalogMutation{std::move(record)}, i, 0});
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::SetDatasetSizeOp>) {
            uint32_t shard = topo->router.ShardOf(op.name);
            subs[shard].push_back({mutations[i], i, 0});
          } else {
            static_assert(
                std::is_same_v<Op, CatalogMutation::InvalidateReplicaOp>);
            uint32_t shard = 0;
            if (ShardFromAssignedId(*topo, op.id, &shard)) {
              subs[shard].push_back({mutations[i], i, 0});
            } else {
              rule[i] = MergeRule::kBroadcastAny;
              for (size_t k = 0; k < shard_count; ++k) {
                subs[k].push_back({mutations[i], i, 0});
              }
            }
          }
          return Status::OK();
        },
        mutations[i].op);
    if (!route.ok()) {
      merged.statuses[i] = std::move(route);
      resolved_early[i] = 1;
    }
  }

  // Broadcast aggregation state, per origin op.
  std::vector<size_t> bcast_ok(n, 0);
  std::vector<std::optional<Status>> bcast_already(n);
  std::vector<std::optional<Status>> bcast_not_found(n);
  std::vector<std::optional<Status>> bcast_error(n);

  // Execute shard by shard; each sub-batch commits under its shard's
  // single lock/version/flush. stop_on_error scopes to the sub-batch.
  for (size_t k = 0; k < shard_count; ++k) {
    if (subs[k].empty()) continue;
    std::vector<CatalogMutation> ops;
    ops.reserve(subs[k].size());
    for (const SubOp& sub : subs[k]) ops.push_back(sub.mut);
    BatchOptions sub_options = options;
    if (!options.idempotency_token.empty()) {
      sub_options.idempotency_token =
          options.idempotency_token + "/s" + std::to_string(k);
    }
    Result<BatchResult> got = topo->shards[k]->ApplyBatch(ops, sub_options);
    // Transport failure: earlier shards may have committed; the error
    // propagates and the derived idempotency tokens make the retry
    // safe (already-committed sub-batches replay as no-ops).
    if (!got.ok()) return got.status();
    if (got->statuses.size() != subs[k].size()) {
      return Status::Internal("shard " + std::to_string(k) +
                              " returned a misaligned batch result");
    }
    for (size_t j = 0; j < subs[k].size(); ++j) {
      const SubOp& sub = subs[k][j];
      Status s = got->statuses[j];
      if (sub.origin == kSynthetic) {
        // Output pre-creation lost a benign race when it already
        // exists; anything else surfaces on the owning derivation op.
        if (!s.ok() && !s.IsAlreadyExists() &&
            merged.statuses[sub.fold_into].ok() &&
            !resolved_early[sub.fold_into]) {
          merged.statuses[sub.fold_into] = std::move(s);
          resolved_early[sub.fold_into] = 1;
        }
        continue;
      }
      if (rule[sub.origin] == MergeRule::kPoint) {
        // A synthetic helper that already folded an error into this
        // op keeps it; the op's own (likely OK) outcome is moot.
        if (!resolved_early[sub.origin]) {
          merged.statuses[sub.origin] = std::move(s);
          if (j < got->assigned_ids.size()) {
            merged.assigned_ids[sub.origin] = std::move(got->assigned_ids[j]);
          }
        }
        continue;
      }
      if (s.ok()) {
        ++bcast_ok[sub.origin];
      } else if (s.IsAlreadyExists()) {
        if (!bcast_already[sub.origin]) bcast_already[sub.origin] = s;
      } else if (s.IsNotFound()) {
        if (!bcast_not_found[sub.origin]) bcast_not_found[sub.origin] = s;
      } else if (!bcast_error[sub.origin]) {
        bcast_error[sub.origin] = s;
      }
    }
    if (post_subbatch_hook_) post_subbatch_hook_(static_cast<uint32_t>(k));
  }

  for (size_t i = 0; i < n; ++i) {
    if (resolved_early[i]) continue;
    if (rule[i] == MergeRule::kBroadcastAll) {
      // All shards must hold the object; partial applies self-heal via
      // AlreadyExists on the shards that already had it.
      if (bcast_error[i]) {
        merged.statuses[i] = *bcast_error[i];
      } else if (bcast_not_found[i] && bcast_ok[i] == 0) {
        merged.statuses[i] = *bcast_not_found[i];
      } else if (bcast_ok[i] > 0) {
        merged.statuses[i] = Status::OK();
      } else if (bcast_already[i]) {
        merged.statuses[i] = *bcast_already[i];
      } else if (bcast_not_found[i]) {
        merged.statuses[i] = *bcast_not_found[i];
      }
    } else if (rule[i] == MergeRule::kBroadcastAny) {
      // Exactly one shard holds the target; the rest answer NotFound.
      if (bcast_ok[i] > 0) {
        merged.statuses[i] = Status::OK();
      } else if (bcast_error[i]) {
        merged.statuses[i] = *bcast_error[i];
      } else if (bcast_already[i]) {
        merged.statuses[i] = *bcast_already[i];
      } else if (bcast_not_found[i]) {
        merged.statuses[i] = *bcast_not_found[i];
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    const Status& s = merged.statuses[i];
    if (s.ok()) {
      ++merged.applied;
    } else if (merged.first_error.ok()) {
      merged.first_error = s;
    }
  }
  VDG_ASSIGN_OR_RETURN(merged.version, Version());
  return merged;
}

}  // namespace vdg
