#ifndef VDG_CATALOG_WIRE_H_
#define VDG_CATALOG_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "catalog/batch.h"
#include "catalog/client.h"
#include "catalog/query.h"
#include "catalog/snapshot.h"
#include "common/status.h"

namespace vdg {

/// Binary wire protocol for the catalog service boundary: every
/// CatalogClient call — point reads, discovery queries, the compound
/// BatchGet / GetProvenanceStep reads, all mutations, and ApplyBatch —
/// serializes to one length-prefixed frame, and every reply to one
/// response frame. This replaces the simulated transport's in-process
/// object hand-off with bytes a real server can dispatch, so RPC cost
/// is measured serialization + dispatch, not a synthetic latency knob.
///
/// Frame layout (all integers little-endian, doubles as IEEE-754 bits):
///
///   offset  size  field
///   0       4     magic "VDGW"
///   4       1     codec version (kCodecVersion)
///   5       1     flags (bit 0: response frame)
///   6       1     message kind (MsgKind)
///   7       1     reserved, must be 0
///   8       8     request id (client-assigned correlation id)
///   16      4     payload size N (bounded by kMaxPayloadBytes)
///   20      N     payload (per-kind encoding)
///   20+N    4     CRC-32 of bytes [0, 20+N)
///
/// Integrity contract: a frame is accepted only when the magic,
/// version, reserved byte, size bound, and trailing CRC all check out;
/// anything else is rejected with a typed error (ParseError for
/// malformed bytes, ResourceExhausted for an oversized declared
/// payload) and never crashes the decoder. Payload decoding is
/// bounds-checked field by field, so truncated or bit-flipped frames
/// that somehow pass CRC still fail cleanly.
///
/// Round-trip contract: Decode(Encode(x)) reproduces x bit-for-bit —
/// doubles travel as raw IEEE bits, attribute values keep their typed
/// wire form — which is what lets a zero-fault wire transport return
/// results identical to InProcessCatalogClient.
namespace wire {

inline constexpr uint8_t kCodecVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 20;
inline constexpr size_t kFrameTrailerBytes = 4;
/// Upper bound on one frame's declared payload. Generous for catalog
/// objects (a frame carries one call, not a bulk export) while keeping
/// a corrupted length field from looking like a 4 GiB allocation.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// One wire message kind per CatalogClient method, plus the handshake
/// that tells a fresh connection the server's authority and mutability.
enum class MsgKind : uint8_t {
  kHandshake = 1,
  kVersion = 2,
  kChangesSince = 3,
  kGetDataset = 4,
  kGetTransformation = 5,
  kGetDerivation = 6,
  kHasDataset = 7,
  kIsMaterialized = 8,
  kProducerOf = 9,
  kInvocationsOf = 10,
  kFindDatasets = 11,
  kFindTransformations = 12,
  kFindDerivations = 13,
  kAllNames = 14,
  kTypeConforms = 15,
  kBatchGet = 16,
  kGetProvenanceStep = 17,
  kDefineDataset = 18,
  kDefineTransformation = 19,
  kDefineDerivation = 20,
  kAnnotate = 21,
  kAddReplica = 22,
  kRecordInvocation = 23,
  kSetDatasetSize = 24,
  kInvalidateReplica = 25,
  kApplyBatch = 26,
};

/// Human-readable kind name for diagnostics ("GetDataset", ...).
std::string_view MsgKindName(MsgKind kind);
/// True when `raw` maps to a defined MsgKind value.
bool IsValidMsgKind(uint8_t raw);

// ---------------------------------------------------------------------
// Request payloads. Kinds whose payload is just an object name share
// NameReq; empty-payload kinds (handshake, version poll) share
// EmptyReq.
// ---------------------------------------------------------------------

struct EmptyReq {};
struct NameReq {
  std::string name;
};
struct ChangesSinceReq {
  uint64_t since_version = 0;
};
struct FindDatasetsReq {
  DatasetQuery query;
};
struct FindTransformationsReq {
  TransformationQuery query;
};
struct FindDerivationsReq {
  DerivationQuery query;
};
struct TypeConformsReq {
  DatasetType type;
  DatasetType against;
};
struct BatchGetReq {
  std::vector<ObjectKey> keys;
};
struct DefineDatasetReq {
  Dataset dataset;
};
struct DefineTransformationReq {
  Transformation transformation;
};
struct DefineDerivationReq {
  Derivation derivation;
};
struct AnnotateReq {
  std::string kind;
  std::string name;
  std::string key;
  AttributeValue value;
};
struct AddReplicaReq {
  Replica replica;
};
struct RecordInvocationReq {
  Invocation invocation;
};
struct SetDatasetSizeReq {
  std::string name;
  int64_t size_bytes = 0;
};
struct ApplyBatchReq {
  std::vector<CatalogMutation> mutations;
  BatchOptions options;
};

/// A decoded request: the kind plus its typed payload.
struct Request {
  MsgKind kind = MsgKind::kVersion;
  std::variant<EmptyReq, NameReq, ChangesSinceReq, FindDatasetsReq,
               FindTransformationsReq, FindDerivationsReq, TypeConformsReq,
               BatchGetReq, DefineDatasetReq, DefineTransformationReq,
               DefineDerivationReq, AnnotateReq, AddReplicaReq,
               RecordInvocationReq, SetDatasetSizeReq, ApplyBatchReq>
      body;
};

// ---------------------------------------------------------------------
// Response payloads. A response always carries the call-level Status;
// the typed body is present only when that status is OK.
// ---------------------------------------------------------------------

struct HandshakeResp {
  std::string authority;
  bool read_only = false;
};
struct VersionResp {
  uint64_t version = 0;
};
struct ChangesResp {
  std::vector<CatalogChange> changes;
};
struct DatasetResp {
  Dataset dataset;
};
struct TransformationResp {
  Transformation transformation;
};
struct DerivationResp {
  Derivation derivation;
};
struct BoolResp {
  bool value = false;
};
struct StringResp {
  std::string value;
};
struct InvocationsResp {
  std::vector<Invocation> invocations;
};
/// Find*/AllNames responses carry a NameList end-to-end: the server
/// encodes straight from the snapshot-pinned views (no intermediate
/// vector<string>), and the decoder rebuilds the list over one
/// arena-backed buffer per response (DESIGN.md §15).
struct NamesResp {
  NameList names;
};
struct RecordsResp {
  std::vector<ObjectRecord> records;
};
struct StepResp {
  ProvenanceStep step;
};
struct BatchResultResp {
  BatchResult result;
};

/// A decoded response: the originating kind, the call-level status,
/// and (iff status is OK) the typed body.
struct Response {
  MsgKind kind = MsgKind::kVersion;
  Status status = Status::OK();
  std::variant<std::monostate, HandshakeResp, VersionResp, ChangesResp,
               DatasetResp, TransformationResp, DerivationResp, BoolResp,
               StringResp, InvocationsResp, NamesResp, RecordsResp, StepResp,
               BatchResultResp>
      body;
};

// ---------------------------------------------------------------------
// Frame encode / decode
// ---------------------------------------------------------------------

/// Serializes one request into a complete frame (header + payload +
/// CRC), ready to write to a byte stream.
std::string EncodeRequestFrame(uint64_t request_id, const Request& request);

/// Serializes one response into a complete frame.
std::string EncodeResponseFrame(uint64_t request_id,
                                const Response& response);

/// A validated frame envelope; `payload` borrows from the input bytes.
struct Frame {
  uint8_t version = kCodecVersion;
  bool is_response = false;
  MsgKind kind = MsgKind::kVersion;
  uint64_t request_id = 0;
  std::string_view payload;
};

/// Given the start of a byte stream, returns the total length of the
/// first frame (header + payload + CRC) once enough bytes are present
/// to know it. NotFound means "need more bytes"; ParseError /
/// ResourceExhausted mean the stream is corrupt or oversized and the
/// connection should be dropped (framing cannot be resynchronized).
Result<size_t> FrameSize(std::string_view buffer);

/// Validates and splits exactly one complete frame (magic, version,
/// kind, reserved byte, size bound, CRC). `bytes` must be exactly the
/// frame as sized by FrameSize().
Result<Frame> DecodeFrame(std::string_view bytes);

/// Decodes a request payload previously framed with kind `kind`.
Result<Request> DecodeRequest(MsgKind kind, std::string_view payload);

/// Decodes a response payload previously framed with kind `kind`.
Result<Response> DecodeResponse(MsgKind kind, std::string_view payload);

}  // namespace wire

}  // namespace vdg

#endif  // VDG_CATALOG_WIRE_H_
