#include "catalog/snapshot.h"

#include <algorithm>
#include <iterator>

#include "common/strings.h"

namespace vdg {

namespace {

using Id = CatalogSnapshot::Id;
using PostingList = CatalogSnapshot::PostingList;
using snapshot_internal::IdNameLess;

/// Shared empty posting list for missing index keys.
const PostingList& EmptyPosting() {
  static const PostingList empty =
      std::make_shared<const std::vector<Id>>();
  return empty;
}

template <typename Map, typename K>
const PostingList& LookupPosting(const Map& map, const K& key) {
  auto it = map.find(key);
  return it == map.end() ? EmptyPosting() : it->second;
}

/// Intersection of two name-ordered id lists (multiset semantics).
std::vector<Id> IntersectByName(const std::vector<Id>& a,
                                const std::vector<Id>& b,
                                const IdNameLess<SymbolTable::View>& less) {
  std::vector<Id> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out), less);
  return out;
}

/// Binary search for a row by name; rows are sorted by name.
template <typename T>
const CatalogSnapshot::Row<T>* FindRow(const CatalogSnapshot::Rows<T>& rows,
                                       std::string_view name) {
  auto it = std::lower_bound(
      rows.begin(), rows.end(), name,
      [](const CatalogSnapshot::Row<T>& row, std::string_view target) {
        return row.name < target;
      });
  if (it == rows.end() || it->name != name) return nullptr;
  return &*it;
}

template <typename T>
std::vector<std::string> RowNames(const CatalogSnapshot::Rows<T>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.emplace_back(row.name);
  return out;
}

/// True when `id` occurs in the name-ordered list (used for the
/// materialized set; the caller already knows the id's name).
bool ContainsByName(const std::vector<Id>& list, Id id, std::string_view name,
                    const SymbolTable::View& symbols) {
  auto it = std::lower_bound(list.begin(), list.end(), name,
                             [&symbols](Id entry, std::string_view target) {
                               return symbols.NameOf(entry) < target;
                             });
  for (; it != list.end() && symbols.NameOf(*it) == name; ++it) {
    if (*it == id) return true;
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------
// Point lookups
// ---------------------------------------------------------------------

const CatalogSnapshot::Row<Dataset>* CatalogView::FindDatasetRow(
    std::string_view name) const {
  return FindRow(*snap_->datasets, name);
}
const CatalogSnapshot::Row<Transformation>* CatalogView::FindTransformationRow(
    std::string_view name) const {
  return FindRow(*snap_->transformations, name);
}
const CatalogSnapshot::Row<Derivation>* CatalogView::FindDerivationRow(
    std::string_view name) const {
  return FindRow(*snap_->derivations, name);
}

Result<Dataset> CatalogView::GetDataset(std::string_view name) const {
  const auto* row = FindDatasetRow(name);
  if (row == nullptr) {
    return Status::NotFound("dataset not found: " + std::string(name));
  }
  return *row->object;
}

Result<Transformation> CatalogView::GetTransformation(
    std::string_view name) const {
  const auto* row = FindTransformationRow(name);
  if (row == nullptr) {
    return Status::NotFound("transformation not found: " + std::string(name));
  }
  return *row->object;
}

Result<Derivation> CatalogView::GetDerivation(std::string_view name) const {
  const auto* row = FindDerivationRow(name);
  if (row == nullptr) {
    return Status::NotFound("derivation not found: " + std::string(name));
  }
  return *row->object;
}

bool CatalogView::HasDataset(std::string_view name) const {
  return FindDatasetRow(name) != nullptr;
}
bool CatalogView::HasTransformation(std::string_view name) const {
  return FindTransformationRow(name) != nullptr;
}
bool CatalogView::HasDerivation(std::string_view name) const {
  return FindDerivationRow(name) != nullptr;
}

// ---------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------

bool CatalogView::IsMaterialized(std::string_view dataset) const {
  Id id = snap_->symbols.FindId(dataset);
  if (id == SymbolTable::kNoSymbol) return false;
  return ContainsByName(*snap_->materialized, id, dataset, snap_->symbols);
}

Result<std::string> CatalogView::ProducerOf(std::string_view dataset) const {
  const auto* row = FindDatasetRow(dataset);
  if (row == nullptr) {
    return Status::NotFound("dataset not found: " + std::string(dataset));
  }
  if (row->object->producer.empty()) {
    return Status::NotFound("dataset " + std::string(dataset) +
                            " has no producing derivation (raw input)");
  }
  return row->object->producer;
}

std::vector<std::string> CatalogView::ConsumersOf(
    std::string_view dataset) const {
  std::vector<std::string> out;
  Id id = snap_->symbols.FindId(dataset);
  if (id == SymbolTable::kNoSymbol) return out;
  // The posting list is already in canonical (name) order; duplicates
  // are kept, matching the historical multimap enumeration (one entry
  // per consuming argument).
  for (Id dv : *LookupPosting(*snap_->consumers, id)) {
    out.emplace_back(snap_->symbols.NameOf(dv));
  }
  return out;
}

std::vector<std::string> CatalogView::DerivationsUsing(
    std::string_view transformation) const {
  std::vector<std::string> out;
  Id id = snap_->symbols.FindId(transformation);
  if (id == SymbolTable::kNoSymbol) return out;
  for (Id dv : *LookupPosting(*snap_->by_transformation, id)) {
    out.emplace_back(snap_->symbols.NameOf(dv));
  }
  return out;
}

// ---------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------

std::vector<CatalogView::Posting> CatalogView::DatasetPostings(
    const DatasetQuery& query) const {
  std::vector<Posting> postings;
  for (const AttributePredicate& predicate : query.predicates) {
    if (predicate.op != PredicateOp::kEq) continue;
    Posting p;
    p.path = AccessPath::kAttributeIndex;
    p.driver = "attr " + predicate.key + "=" + predicate.operand.ToString();
    Id key_id = snap_->symbols.FindId(predicate.key);
    p.ids = key_id == SymbolTable::kNoSymbol
                ? EmptyPosting()
                : LookupPosting(
                      *snap_->attr_index,
                      CatalogSnapshot::AttrKey(
                          key_id,
                          snapshot_internal::TaggedAttrValue(
                              predicate.operand)));
    postings.push_back(std::move(p));
  }
  if (query.type && !query.type->IsAny()) {
    for (int d = 0; d < kNumTypeDimensions; ++d) {
      auto dim = static_cast<TypeDimension>(d);
      const std::string& component = query.type->component(dim);
      const TypeHierarchy& h = snap_->types->dimension(dim);
      // An empty or base-typed component accepts anything — no list.
      if (component.empty() || component == h.base_name()) continue;
      Posting p;
      p.path = AccessPath::kTypeIndex;
      p.driver =
          "type " + std::string(TypeDimensionName(dim)) + ":" + component;
      Id type_id = snap_->symbols.FindId(component);
      p.ids = type_id == SymbolTable::kNoSymbol
                  ? EmptyPosting()
                  : LookupPosting(*snap_->type_index,
                                  snapshot_internal::PackTypeKey(dim, type_id));
      postings.push_back(std::move(p));
    }
  }
  return postings;
}

std::vector<std::string> CatalogView::FindDatasets(
    const DatasetQuery& query) const {
  // Residual filter: re-checks every condition, so the driving index
  // only needs to be a superset of the answer.
  auto matches = [this, &query](std::string_view name, const Dataset& ds) {
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      return false;
    }
    if (query.type && !snap_->types->Conforms(ds.type, *query.type)) {
      return false;
    }
    if (!MatchesAll(ds.annotations, query.predicates)) return false;
    if (query.require_materialized && !IsMaterialized(name)) return false;
    if (query.only_virtual && IsMaterialized(name)) return false;
    return true;
  };

  std::vector<std::string> out;
  IdNameLess<SymbolTable::View> less{&snap_->symbols};

  // Indexed path: intersect the posting lists, smallest first, then
  // apply the residual filter to the survivors.
  std::vector<Posting> postings = DatasetPostings(query);
  if (!postings.empty()) {
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.ids->size() < b.ids->size();
              });
    std::vector<Id> candidates = *postings[0].ids;
    for (size_t i = 1; i < postings.size() && !candidates.empty(); ++i) {
      candidates = IntersectByName(candidates, *postings[i].ids, less);
    }
    Id previous = SymbolTable::kNoSymbol;
    for (Id id : candidates) {
      if (id == previous) continue;  // adjacent duplicate (same name)
      previous = id;
      std::string_view name = snap_->symbols.NameOf(id);
      const auto* row = FindDatasetRow(name);
      if (row == nullptr) continue;
      if (!matches(name, *row->object)) continue;
      out.emplace_back(name);
      if (query.limit != 0 && out.size() >= query.limit) break;
    }
    return out;
  }

  // Materialized-set path: enumerate only datasets with valid replicas
  // (already in name order).
  if (query.require_materialized) {
    for (Id id : *snap_->materialized) {
      std::string_view name = snap_->symbols.NameOf(id);
      const auto* row = FindDatasetRow(name);
      if (row == nullptr) continue;
      if (!matches(name, *row->object)) continue;
      out.emplace_back(name);
      if (query.limit != 0 && out.size() >= query.limit) break;
    }
    return out;
  }

  // Name-prefix path: bounded range scan over the name-sorted rows.
  const auto& rows = *snap_->datasets;
  auto it = query.name_prefix.empty()
                ? rows.begin()
                : std::lower_bound(
                      rows.begin(), rows.end(),
                      std::string_view(query.name_prefix),
                      [](const CatalogSnapshot::Row<Dataset>& row,
                         std::string_view target) { return row.name < target; });
  for (; it != rows.end(); ++it) {
    if (!query.name_prefix.empty() &&
        !StartsWith(it->name, query.name_prefix)) {
      break;
    }
    if (!matches(it->name, *it->object)) continue;
    out.emplace_back(it->name);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

QueryPlan CatalogView::ExplainFindDatasets(const DatasetQuery& query) const {
  QueryPlan plan;
  std::vector<Posting> postings = DatasetPostings(query);
  if (!postings.empty()) {
    const Posting* smallest = &postings[0];
    for (const Posting& p : postings) {
      if (p.ids->size() < smallest->ids->size()) smallest = &p;
    }
    plan.path = smallest->path;
    plan.driver = smallest->driver;
    plan.estimated_candidates = smallest->ids->size();
    plan.posting_lists = postings.size();
    return plan;
  }
  if (query.require_materialized) {
    plan.path = AccessPath::kMaterializedSet;
    plan.driver = "materialized-set";
    plan.estimated_candidates = snap_->materialized->size();
    return plan;
  }
  if (!query.name_prefix.empty()) {
    plan.path = AccessPath::kNamePrefixRange;
    plan.driver = "prefix " + query.name_prefix;
    plan.estimated_candidates = snap_->datasets->size();  // upper bound
    return plan;
  }
  plan.path = AccessPath::kFullScan;
  plan.driver = "datasets";
  plan.estimated_candidates = snap_->datasets->size();
  return plan;
}

std::vector<std::string> CatalogView::FindTransformations(
    const TransformationQuery& query) const {
  std::vector<std::string> out;
  const auto& rows = *snap_->transformations;
  const TypeRegistry& types = *snap_->types;
  // Prefix queries scan only the matching range of the sorted rows.
  auto it = query.name_prefix.empty()
                ? rows.begin()
                : std::lower_bound(
                      rows.begin(), rows.end(),
                      std::string_view(query.name_prefix),
                      [](const CatalogSnapshot::Row<Transformation>& row,
                         std::string_view target) { return row.name < target; });
  for (; it != rows.end(); ++it) {
    std::string_view name = it->name;
    const Transformation& tr = *it->object;
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      break;
    }
    if (!MatchesAll(tr.annotations(), query.predicates)) continue;
    if (query.consumes) {
      bool accepts = false;
      for (const FormalArg& arg : tr.args()) {
        if (arg.is_string() || !DirectionReads(arg.direction)) continue;
        if (types.ConformsToAny(*query.consumes, arg.types)) {
          accepts = true;
          break;
        }
      }
      if (!accepts) continue;
    }
    if (query.produces) {
      bool yields = false;
      for (const FormalArg& arg : tr.args()) {
        if (arg.is_string() || !DirectionWrites(arg.direction)) continue;
        if (arg.types.empty()) {
          yields = query.produces->IsAny();
        } else {
          for (const DatasetType& t : arg.types) {
            if (types.Conforms(t, *query.produces)) {
              yields = true;
              break;
            }
          }
        }
        if (yields) break;
      }
      if (!yields) continue;
    }
    out.emplace_back(name);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

std::vector<CatalogView::Posting> CatalogView::DerivationPostings(
    const DerivationQuery& query) const {
  std::vector<Posting> postings;
  IdNameLess<SymbolTable::View> less{&snap_->symbols};
  if (!query.transformation.empty()) {
    Posting p;
    p.path = AccessPath::kTransformationIndex;
    p.driver = "transformation " + query.transformation;
    // A query name matches either the qualified or the bare form; the
    // union of both maps' posting lists is exactly that predicate.
    Id tr_id = snap_->symbols.FindId(query.transformation);
    if (tr_id == SymbolTable::kNoSymbol) {
      p.ids = EmptyPosting();
    } else {
      const PostingList& qualified =
          LookupPosting(*snap_->by_transformation, tr_id);
      const PostingList& bare =
          LookupPosting(*snap_->by_bare_transformation, tr_id);
      if (bare->empty()) {
        p.ids = qualified;
      } else if (qualified->empty()) {
        p.ids = bare;
      } else {
        auto merged = std::make_shared<std::vector<Id>>();
        std::set_union(qualified->begin(), qualified->end(), bare->begin(),
                       bare->end(), std::back_inserter(*merged), less);
        p.ids = std::move(merged);
      }
    }
    postings.push_back(std::move(p));
  }
  if (!query.reads_dataset.empty()) {
    Posting p;
    p.path = AccessPath::kReadsIndex;
    p.driver = "reads " + query.reads_dataset;
    Id ds_id = snap_->symbols.FindId(query.reads_dataset);
    p.ids = ds_id == SymbolTable::kNoSymbol
                ? EmptyPosting()
                : LookupPosting(*snap_->consumers, ds_id);
    postings.push_back(std::move(p));
  }
  if (!query.writes_dataset.empty()) {
    Posting p;
    p.path = AccessPath::kWritesIndex;
    p.driver = "writes " + query.writes_dataset;
    Id ds_id = snap_->symbols.FindId(query.writes_dataset);
    p.ids = ds_id == SymbolTable::kNoSymbol
                ? EmptyPosting()
                : LookupPosting(*snap_->producers, ds_id);
    postings.push_back(std::move(p));
  }
  return postings;
}

std::vector<std::string> CatalogView::FindDerivations(
    const DerivationQuery& query) const {
  // The posting lists answer the transformation/reads/writes
  // conditions exactly, so the residual covers only prefix and
  // annotation predicates.
  auto residual = [&query](std::string_view name, const Derivation& dv) {
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      return false;
    }
    return MatchesAll(dv.annotations(), query.predicates);
  };

  std::vector<std::string> out;
  IdNameLess<SymbolTable::View> less{&snap_->symbols};
  std::vector<Posting> postings = DerivationPostings(query);
  if (!postings.empty()) {
    std::sort(postings.begin(), postings.end(),
              [](const Posting& a, const Posting& b) {
                return a.ids->size() < b.ids->size();
              });
    std::vector<Id> candidates = *postings[0].ids;
    for (size_t i = 1; i < postings.size() && !candidates.empty(); ++i) {
      candidates = IntersectByName(candidates, *postings[i].ids, less);
    }
    Id previous = SymbolTable::kNoSymbol;
    for (Id id : candidates) {
      if (id == previous) continue;  // adjacent duplicate (same name)
      previous = id;
      std::string_view name = snap_->symbols.NameOf(id);
      const auto* row = FindDerivationRow(name);
      if (row == nullptr) continue;
      if (!residual(name, *row->object)) continue;
      out.emplace_back(name);
      if (query.limit != 0 && out.size() >= query.limit) break;
    }
    return out;
  }

  const auto& rows = *snap_->derivations;
  auto it = query.name_prefix.empty()
                ? rows.begin()
                : std::lower_bound(
                      rows.begin(), rows.end(),
                      std::string_view(query.name_prefix),
                      [](const CatalogSnapshot::Row<Derivation>& row,
                         std::string_view target) { return row.name < target; });
  for (; it != rows.end(); ++it) {
    if (!query.name_prefix.empty() &&
        !StartsWith(it->name, query.name_prefix)) {
      break;
    }
    if (!residual(it->name, *it->object)) continue;
    out.emplace_back(it->name);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return out;
}

QueryPlan CatalogView::ExplainFindDerivations(
    const DerivationQuery& query) const {
  QueryPlan plan;
  std::vector<Posting> postings = DerivationPostings(query);
  if (!postings.empty()) {
    const Posting* smallest = &postings[0];
    for (const Posting& p : postings) {
      if (p.ids->size() < smallest->ids->size()) smallest = &p;
    }
    plan.path = smallest->path;
    plan.driver = smallest->driver;
    plan.estimated_candidates = smallest->ids->size();
    plan.posting_lists = postings.size();
    return plan;
  }
  if (!query.name_prefix.empty()) {
    plan.path = AccessPath::kNamePrefixRange;
    plan.driver = "prefix " + query.name_prefix;
    plan.estimated_candidates = snap_->derivations->size();  // upper bound
    return plan;
  }
  plan.path = AccessPath::kFullScan;
  plan.driver = "derivations";
  plan.estimated_candidates = snap_->derivations->size();
  return plan;
}

// ---------------------------------------------------------------------
// Enumeration & changelog
// ---------------------------------------------------------------------

std::vector<std::string> CatalogView::AllDatasetNames() const {
  return RowNames(*snap_->datasets);
}
std::vector<std::string> CatalogView::AllTransformationNames() const {
  return RowNames(*snap_->transformations);
}
std::vector<std::string> CatalogView::AllDerivationNames() const {
  return RowNames(*snap_->derivations);
}

uint64_t CatalogView::changelog_floor() const {
  const auto& log = *snap_->changelog;
  return log.empty() ? snap_->version : log.front()->version - 1;
}

Result<std::vector<CatalogChange>> CatalogView::ChangesSince(
    uint64_t since_version) const {
  const uint64_t version = snap_->version;
  if (since_version > version) {
    return Status::InvalidArgument(
        "since_version " + std::to_string(since_version) +
        " is ahead of catalog version " + std::to_string(version));
  }
  if (since_version == version) return std::vector<CatalogChange>{};
  const auto& log = *snap_->changelog;
  // Versions in the window are consecutive (batches share one version
  // and are trimmed as whole groups), so the delta is gap-free iff the
  // window reaches back to since_version + 1.
  if (log.empty() || log.front()->version > since_version + 1) {
    return Status::ResourceExhausted(
        "changelog window starts at version " +
        std::to_string(changelog_floor()) + ", cannot answer since " +
        std::to_string(since_version));
  }
  auto it = std::lower_bound(
      log.begin(), log.end(), since_version + 1,
      [](const std::shared_ptr<const CatalogChange>& c, uint64_t v) {
        return c->version < v;
      });
  std::vector<CatalogChange> out;
  out.reserve(static_cast<size_t>(log.end() - it));
  for (; it != log.end(); ++it) out.push_back(**it);
  return out;
}

}  // namespace vdg
