#include "catalog/snapshot.h"

#include <algorithm>

#include "common/strings.h"

namespace vdg {

namespace {

using Id = CatalogSnapshot::Id;
using PostingList = CatalogSnapshot::PostingList;

/// Shared empty posting list for missing index keys.
const PostingList& EmptyPosting() {
  static const PostingList empty = std::make_shared<const PostingBlocks>();
  return empty;
}

template <typename Map, typename K>
const PostingList& LookupPosting(const Map& map, const K& key) {
  auto it = map.find(key);
  return it == map.end() ? EmptyPosting() : it->second;
}

/// Binary search for a row by name; rows are sorted by name.
template <typename T>
const CatalogSnapshot::Row<T>* FindRow(const CatalogSnapshot::Rows<T>& rows,
                                       std::string_view name) {
  auto it = std::lower_bound(
      rows.begin(), rows.end(), name,
      [](const CatalogSnapshot::Row<T>& row, std::string_view target) {
        return row.name < target;
      });
  if (it == rows.end() || it->name != name) return nullptr;
  return &*it;
}

/// Accumulates (view, id) pairs during a row scan and freezes them into
/// a snapshot-pinned NameList — the zero-copy result-plane terminal:
/// the views point straight into the symbol spine the snapshot keeps
/// alive, so no name byte is copied between the scan and the consumer
/// (DESIGN.md §15).
class PinnedListBuilder {
 public:
  explicit PinnedListBuilder(size_t reserve_hint) {
    views_.reserve(reserve_hint);
    ids_.reserve(reserve_hint);
  }
  void Add(std::string_view name, Id id) {
    views_.push_back(name);
    ids_.push_back(id);
  }
  size_t size() const { return views_.size(); }
  NameList Build(std::shared_ptr<const CatalogSnapshot> pin) && {
    return NameList::FromViews(std::move(pin), std::move(views_),
                               std::move(ids_));
  }

 private:
  std::vector<std::string_view> views_;
  std::vector<NameList::Id> ids_;
};

template <typename T>
NameList RowNames(std::shared_ptr<const CatalogSnapshot> pin,
                  const CatalogSnapshot::Rows<T>& rows) {
  PinnedListBuilder out(rows.size());
  for (const auto& row : rows) out.Add(row.name, row.id);
  return std::move(out).Build(std::move(pin));
}

/// O(1) id -> row-index resolution (kNoRow when absent).
inline uint32_t RowOf(const std::vector<uint32_t>& row_of_id, Id id) {
  return id < row_of_id.size() ? row_of_id[id] : CatalogSnapshot::kNoRow;
}

/// Intersects selectivity-sorted posting lists: seed from the rarest,
/// then progressively AND in the rest, stopping the moment the running
/// set is empty. Returns distinct ids ascending by id value.
template <typename P>
std::vector<Id> IntersectSorted(const std::vector<P>& postings,
                                bool* short_circuited) {
  *short_circuited = false;
  std::vector<Id> candidates;
  if (postings.empty()) return candidates;
  if (postings[0].ids->empty()) {
    *short_circuited = postings.size() > 1;
    return candidates;
  }
  if (postings.size() == 1) {
    candidates.reserve(postings[0].ids->distinct());
    postings[0].ids->ForEach([&candidates](Id id) { candidates.push_back(id); });
    return candidates;
  }
  candidates = PostingBlocks::Intersect(*postings[0].ids, *postings[1].ids);
  for (size_t i = 2; i < postings.size(); ++i) {
    if (candidates.empty()) {
      *short_circuited = true;
      return candidates;
    }
    PostingBlocks::IntersectWith(&candidates, *postings[i].ids);
  }
  return candidates;
}

/// Maps surviving ids to row indexes in ascending row order: rows are
/// name-sorted, so ascending row order IS name order. `for_each_id`
/// invokes its callback once per candidate id; `count_hint` is the
/// candidate count (used only to reserve). When the row space is small
/// relative to the candidate set, ordering goes through a dense row
/// bitmap (scatter then in-order scan) instead of a comparison sort —
/// the common shape for selective queries over mid-sized catalogs;
/// huge-catalog/tiny-result queries fall back to the sort. Rows are
/// delivered through `emit_row` so collectors can feed a
/// PinnedListBuilder directly without an intermediate row vector.
template <typename ForEachId, typename EmitRow>
void EmitRowsInNameOrder(size_t count_hint,
                         const std::vector<uint32_t>& row_of_id,
                         size_t num_rows, ForEachId&& for_each_id,
                         EmitRow&& emit_row) {
  const size_t words = (num_rows + 63) / 64;
  if (count_hint != 0 && words <= 16 * count_hint + 64) {
    thread_local std::vector<uint64_t> bits;
    if (bits.size() < words) bits.resize(words);
    std::fill_n(bits.begin(), words, uint64_t{0});
    for_each_id([&](Id id) {
      const uint32_t row = RowOf(row_of_id, id);
      if (row != CatalogSnapshot::kNoRow) {
        bits[row >> 6] |= uint64_t{1} << (row & 63);
      }
    });
    for (size_t w = 0; w < words; ++w) {
      uint64_t word = bits[w];
      while (word != 0) {
        emit_row(static_cast<uint32_t>(
            (w << 6) + static_cast<uint32_t>(__builtin_ctzll(word))));
        word &= word - 1;
      }
    }
    return;
  }
  std::vector<uint32_t> rows;
  rows.reserve(count_hint);
  for_each_id([&](Id id) {
    const uint32_t row = RowOf(row_of_id, id);
    if (row != CatalogSnapshot::kNoRow) rows.push_back(row);
  });
  std::sort(rows.begin(), rows.end());
  for (uint32_t row : rows) emit_row(row);
}

template <typename ForEachId>
std::vector<uint32_t> CollectRowsInNameOrder(
    size_t count_hint, const std::vector<uint32_t>& row_of_id, size_t num_rows,
    ForEachId&& for_each_id) {
  std::vector<uint32_t> rows;
  rows.reserve(count_hint);
  EmitRowsInNameOrder(count_hint, row_of_id, num_rows,
                      std::forward<ForEachId>(for_each_id),
                      [&rows](uint32_t row) { rows.push_back(row); });
  return rows;
}

}  // namespace

// ---------------------------------------------------------------------
// Point lookups
// ---------------------------------------------------------------------

const CatalogSnapshot::Row<Dataset>* CatalogView::FindDatasetRow(
    std::string_view name) const {
  return FindRow(*snap_->datasets, name);
}
const CatalogSnapshot::Row<Transformation>* CatalogView::FindTransformationRow(
    std::string_view name) const {
  return FindRow(*snap_->transformations, name);
}
const CatalogSnapshot::Row<Derivation>* CatalogView::FindDerivationRow(
    std::string_view name) const {
  return FindRow(*snap_->derivations, name);
}

Result<Dataset> CatalogView::GetDataset(std::string_view name) const {
  const auto* row = FindDatasetRow(name);
  if (row == nullptr) {
    return Status::NotFound("dataset not found: " + std::string(name));
  }
  return *row->object;
}

Result<Transformation> CatalogView::GetTransformation(
    std::string_view name) const {
  const auto* row = FindTransformationRow(name);
  if (row == nullptr) {
    return Status::NotFound("transformation not found: " + std::string(name));
  }
  return *row->object;
}

Result<Derivation> CatalogView::GetDerivation(std::string_view name) const {
  const auto* row = FindDerivationRow(name);
  if (row == nullptr) {
    return Status::NotFound("derivation not found: " + std::string(name));
  }
  return *row->object;
}

bool CatalogView::HasDataset(std::string_view name) const {
  return FindDatasetRow(name) != nullptr;
}
bool CatalogView::HasTransformation(std::string_view name) const {
  return FindTransformationRow(name) != nullptr;
}
bool CatalogView::HasDerivation(std::string_view name) const {
  return FindDerivationRow(name) != nullptr;
}

// ---------------------------------------------------------------------
// Navigation
// ---------------------------------------------------------------------

bool CatalogView::IsMaterialized(std::string_view dataset) const {
  Id id = snap_->symbols.FindId(dataset);
  if (id == SymbolTable::kNoSymbol) return false;
  return snap_->materialized->Contains(id);
}

Result<std::string> CatalogView::ProducerOf(std::string_view dataset) const {
  const auto* row = FindDatasetRow(dataset);
  if (row == nullptr) {
    return Status::NotFound("dataset not found: " + std::string(dataset));
  }
  if (row->object->producer.empty()) {
    return Status::NotFound("dataset " + std::string(dataset) +
                            " has no producing derivation (raw input)");
  }
  return row->object->producer;
}

NameList CatalogView::ConsumersOf(std::string_view dataset) const {
  Id id = snap_->symbols.FindId(dataset);
  if (id == SymbolTable::kNoSymbol) return NameList();
  // Enumerate with duplicates (one entry per consuming argument, the
  // historical multimap behavior), restored to name order through the
  // row map.
  const auto& row_of_id = *snap_->derivation_row_of_id;
  const auto& rows = *snap_->derivations;
  std::vector<uint32_t> hits;
  LookupPosting(*snap_->consumers, id)->ForEachOccurrence([&](Id dv) {
    const uint32_t row = RowOf(row_of_id, dv);
    if (row != CatalogSnapshot::kNoRow) hits.push_back(row);
  });
  std::sort(hits.begin(), hits.end());
  PinnedListBuilder out(hits.size());
  for (uint32_t row : hits) out.Add(rows[row].name, rows[row].id);
  return std::move(out).Build(snap_);
}

NameList CatalogView::DerivationsUsing(std::string_view transformation) const {
  Id id = snap_->symbols.FindId(transformation);
  if (id == SymbolTable::kNoSymbol) return NameList();
  const auto& row_of_id = *snap_->derivation_row_of_id;
  const auto& rows = *snap_->derivations;
  std::vector<uint32_t> hits;
  LookupPosting(*snap_->by_transformation, id)->ForEachOccurrence([&](Id dv) {
    const uint32_t row = RowOf(row_of_id, dv);
    if (row != CatalogSnapshot::kNoRow) hits.push_back(row);
  });
  std::sort(hits.begin(), hits.end());
  PinnedListBuilder out(hits.size());
  for (uint32_t row : hits) out.Add(rows[row].name, rows[row].id);
  return std::move(out).Build(snap_);
}

// ---------------------------------------------------------------------
// Discovery
// ---------------------------------------------------------------------

std::vector<CatalogView::Posting> CatalogView::DatasetPostings(
    const DatasetQuery& query, bool with_drivers) const {
  std::vector<Posting> postings;
  for (const AttributePredicate& predicate : query.predicates) {
    if (predicate.op != PredicateOp::kEq) continue;
    Posting p;
    p.path = AccessPath::kAttributeIndex;
    if (with_drivers) {
      p.driver = "attr " + predicate.key + "=" + predicate.operand.ToString();
    }
    Id key_id = snap_->symbols.FindId(predicate.key);
    p.ids = key_id == SymbolTable::kNoSymbol
                ? EmptyPosting()
                : LookupPosting(
                      *snap_->attr_index,
                      CatalogSnapshot::AttrKey(
                          key_id,
                          snapshot_internal::TaggedAttrValue(
                              predicate.operand)));
    postings.push_back(std::move(p));
  }
  if (query.type && !query.type->IsAny()) {
    for (int d = 0; d < kNumTypeDimensions; ++d) {
      auto dim = static_cast<TypeDimension>(d);
      const std::string& component = query.type->component(dim);
      const TypeHierarchy& h = snap_->types->dimension(dim);
      // An empty or base-typed component accepts anything — no list.
      if (component.empty() || component == h.base_name()) continue;
      Posting p;
      p.path = AccessPath::kTypeIndex;
      if (with_drivers) {
        p.driver =
            "type " + std::string(TypeDimensionName(dim)) + ":" + component;
      }
      Id type_id = snap_->symbols.FindId(component);
      p.ids = type_id == SymbolTable::kNoSymbol
                  ? EmptyPosting()
                  : LookupPosting(*snap_->type_index,
                                  snapshot_internal::PackTypeKey(dim, type_id));
      postings.push_back(std::move(p));
    }
  }
  return postings;
}

NameList CatalogView::FindDatasets(const DatasetQuery& query) const {
  // Hot-path special case: one indexed kEq predicate and nothing else
  // (the broad shard-scan shape). The answer is exactly one posting
  // list, so skip the plan machinery — no postings vector, no
  // shared_ptr copies, no selectivity sort — and stream the posting
  // straight into the pinned builder.
  if (query.predicates.size() == 1 &&
      query.predicates[0].op == PredicateOp::kEq &&
      (!query.type || query.type->IsAny()) && query.name_prefix.empty() &&
      !query.require_materialized && !query.only_virtual) {
    const AttributePredicate& predicate = query.predicates[0];
    Id key_id = snap_->symbols.FindId(predicate.key);
    const PostingList& only =
        key_id == SymbolTable::kNoSymbol
            ? EmptyPosting()
            : LookupPosting(*snap_->attr_index,
                            CatalogSnapshot::AttrKey(
                                key_id, snapshot_internal::TaggedAttrValue(
                                            predicate.operand)));
    const auto& ds_rows = *snap_->datasets;
    const size_t hint = only->distinct();
    PinnedListBuilder out(query.limit != 0 ? std::min(query.limit, hint)
                                           : hint);
    if (query.limit == 0) {
      EmitRowsInNameOrder(hint, *snap_->dataset_row_of_id, ds_rows.size(),
                          [&only](auto&& emit) { only->ForEach(emit); },
                          [&](uint32_t row) {
                            out.Add(ds_rows[row].name, ds_rows[row].id);
                          });
    } else {
      EmitRowsInNameOrder(hint, *snap_->dataset_row_of_id, ds_rows.size(),
                          [&only](auto&& emit) { only->ForEach(emit); },
                          [&](uint32_t row) {
                            if (out.size() >= query.limit) return;
                            out.Add(ds_rows[row].name, ds_rows[row].id);
                          });
    }
    return std::move(out).Build(snap_);
  }

  // Indexed path: intersect the posting lists rarest-first, then remap
  // the survivors to name order through the row map.
  std::vector<Posting> postings = DatasetPostings(query, /*with_drivers=*/false);
  if (!postings.empty()) {
    // The attribute lists answer kEq predicates exactly and the type
    // lists are per-dimension conformance closures, so when every
    // predicate is an indexed kEq, the type is fully covered, and the
    // materialized set rides along as one more list, the intersection
    // IS the answer — no residual re-check per candidate.
    size_t eq_predicates = 0;
    for (const AttributePredicate& p : query.predicates) {
      if (p.op == PredicateOp::kEq) ++eq_predicates;
    }
    const bool exact = eq_predicates == query.predicates.size() &&
                       query.name_prefix.empty() && !query.only_virtual;
    if (query.require_materialized) {
      Posting p;
      p.path = AccessPath::kMaterializedSet;
      p.driver = "materialized-set";
      p.ids = snap_->materialized;
      postings.push_back(std::move(p));
    }
    std::stable_sort(postings.begin(), postings.end(),
                     [](const Posting& a, const Posting& b) {
                       return a.ids->size() < b.ids->size();
                     });
    const auto& ds_rows = *snap_->datasets;
    size_t reserve_hint;
    std::vector<Id> candidates;
    if (postings.size() == 1) {
      // Single-list plan: the posting already holds the candidate set,
      // so stream it straight into the pinned builder — no
      // intermediate id or row vector.
      reserve_hint = postings[0].ids->distinct();
    } else {
      bool short_circuited = false;
      candidates = IntersectSorted(postings, &short_circuited);
      reserve_hint = candidates.size();
    }
    if (query.limit != 0) reserve_hint = std::min(query.limit, reserve_hint);
    PinnedListBuilder out(reserve_hint);
    bool done = false;
    auto take_row = [&](uint32_t row) {
      if (done) return;
      if (!exact) {
        std::string_view name = ds_rows[row].name;
        const Dataset& ds = *ds_rows[row].object;
        if (!query.name_prefix.empty() &&
            !StartsWith(name, query.name_prefix)) {
          return;
        }
        if (query.type && !snap_->types->Conforms(ds.type, *query.type)) {
          return;
        }
        if (!MatchesAll(ds.annotations, query.predicates)) return;
        if (query.only_virtual &&
            snap_->materialized->Contains(ds_rows[row].id)) {
          return;
        }
      }
      out.Add(ds_rows[row].name, ds_rows[row].id);
      if (query.limit != 0 && out.size() >= query.limit) done = true;
    };
    if (postings.size() == 1) {
      const PostingBlocks& only = *postings[0].ids;
      EmitRowsInNameOrder(only.distinct(), *snap_->dataset_row_of_id,
                          ds_rows.size(),
                          [&only](auto&& emit) { only.ForEach(emit); },
                          take_row);
    } else {
      EmitRowsInNameOrder(candidates.size(), *snap_->dataset_row_of_id,
                          ds_rows.size(),
                          [&candidates](auto&& emit) {
                            for (Id id : candidates) emit(id);
                          },
                          take_row);
    }
    return std::move(out).Build(snap_);
  }

  // Residual filter for the non-indexed paths: checks every condition.
  auto matches = [this, &query](std::string_view name, const Dataset& ds) {
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      return false;
    }
    if (query.type && !snap_->types->Conforms(ds.type, *query.type)) {
      return false;
    }
    if (!MatchesAll(ds.annotations, query.predicates)) return false;
    if (query.require_materialized && !IsMaterialized(name)) return false;
    if (query.only_virtual && IsMaterialized(name)) return false;
    return true;
  };

  // Materialized-set path: enumerate only datasets with valid replicas.
  if (query.require_materialized) {
    const auto& ds_rows = *snap_->datasets;
    const PostingBlocks& mat = *snap_->materialized;
    const std::vector<uint32_t> rows = CollectRowsInNameOrder(
        mat.distinct(), *snap_->dataset_row_of_id, ds_rows.size(),
        [&mat](auto&& emit) { mat.ForEach(emit); });
    PinnedListBuilder out(rows.size());
    for (uint32_t row : rows) {
      if (!matches(ds_rows[row].name, *ds_rows[row].object)) continue;
      out.Add(ds_rows[row].name, ds_rows[row].id);
      if (query.limit != 0 && out.size() >= query.limit) break;
    }
    return std::move(out).Build(snap_);
  }

  // Name-prefix path: bounded range scan over the name-sorted rows.
  const auto& rows = *snap_->datasets;
  auto it = query.name_prefix.empty()
                ? rows.begin()
                : std::lower_bound(
                      rows.begin(), rows.end(),
                      std::string_view(query.name_prefix),
                      [](const CatalogSnapshot::Row<Dataset>& row,
                         std::string_view target) { return row.name < target; });
  PinnedListBuilder out(query.limit != 0 ? query.limit : rows.size());
  for (; it != rows.end(); ++it) {
    if (!query.name_prefix.empty() &&
        !StartsWith(it->name, query.name_prefix)) {
      break;
    }
    if (!matches(it->name, *it->object)) continue;
    out.Add(it->name, it->id);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return std::move(out).Build(snap_);
}

QueryPlan CatalogView::ExplainFindDatasets(const DatasetQuery& query) const {
  QueryPlan plan;
  std::vector<Posting> postings = DatasetPostings(query, /*with_drivers=*/true);
  if (!postings.empty()) {
    plan.posting_lists = postings.size();
    size_t eq_predicates = 0;
    for (const AttributePredicate& p : query.predicates) {
      if (p.op == PredicateOp::kEq) ++eq_predicates;
    }
    plan.exact = eq_predicates == query.predicates.size() &&
                 query.name_prefix.empty() && !query.only_virtual;
    if (query.require_materialized) {
      Posting p;
      p.path = AccessPath::kMaterializedSet;
      p.driver = "materialized-set";
      p.ids = snap_->materialized;
      postings.push_back(std::move(p));
    }
    std::stable_sort(postings.begin(), postings.end(),
                     [](const Posting& a, const Posting& b) {
                       return a.ids->size() < b.ids->size();
                     });
    plan.path = postings[0].path;
    plan.driver = postings[0].driver;
    plan.estimated_candidates = postings[0].ids->size();
    plan.order.reserve(postings.size());
    for (const Posting& p : postings) {
      plan.order.push_back({p.path, p.driver, p.ids->size()});
    }
    bool short_circuited = false;
    plan.actual_candidates = IntersectSorted(postings, &short_circuited).size();
    plan.short_circuited = short_circuited;
    return plan;
  }
  if (query.require_materialized) {
    plan.path = AccessPath::kMaterializedSet;
    plan.driver = "materialized-set";
    plan.estimated_candidates = snap_->materialized->size();
    plan.actual_candidates = plan.estimated_candidates;
    return plan;
  }
  if (!query.name_prefix.empty()) {
    plan.path = AccessPath::kNamePrefixRange;
    plan.driver = "prefix " + query.name_prefix;
    plan.estimated_candidates = snap_->datasets->size();  // upper bound
    plan.actual_candidates = plan.estimated_candidates;
    return plan;
  }
  plan.path = AccessPath::kFullScan;
  plan.driver = "datasets";
  plan.estimated_candidates = snap_->datasets->size();
  plan.actual_candidates = plan.estimated_candidates;
  return plan;
}

NameList CatalogView::FindTransformations(
    const TransformationQuery& query) const {
  const auto& rows = *snap_->transformations;
  const TypeRegistry& types = *snap_->types;
  // Prefix queries scan only the matching range of the sorted rows.
  auto it = query.name_prefix.empty()
                ? rows.begin()
                : std::lower_bound(
                      rows.begin(), rows.end(),
                      std::string_view(query.name_prefix),
                      [](const CatalogSnapshot::Row<Transformation>& row,
                         std::string_view target) { return row.name < target; });
  PinnedListBuilder out(query.limit != 0 ? query.limit : rows.size());
  for (; it != rows.end(); ++it) {
    std::string_view name = it->name;
    const Transformation& tr = *it->object;
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      break;
    }
    if (!MatchesAll(tr.annotations(), query.predicates)) continue;
    if (query.consumes) {
      bool accepts = false;
      for (const FormalArg& arg : tr.args()) {
        if (arg.is_string() || !DirectionReads(arg.direction)) continue;
        if (types.ConformsToAny(*query.consumes, arg.types)) {
          accepts = true;
          break;
        }
      }
      if (!accepts) continue;
    }
    if (query.produces) {
      bool yields = false;
      for (const FormalArg& arg : tr.args()) {
        if (arg.is_string() || !DirectionWrites(arg.direction)) continue;
        if (arg.types.empty()) {
          yields = query.produces->IsAny();
        } else {
          for (const DatasetType& t : arg.types) {
            if (types.Conforms(t, *query.produces)) {
              yields = true;
              break;
            }
          }
        }
        if (yields) break;
      }
      if (!yields) continue;
    }
    out.Add(name, it->id);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return std::move(out).Build(snap_);
}

std::vector<CatalogView::Posting> CatalogView::DerivationPostings(
    const DerivationQuery& query, bool with_drivers) const {
  std::vector<Posting> postings;
  if (!query.transformation.empty()) {
    Posting p;
    p.path = AccessPath::kTransformationIndex;
    if (with_drivers) p.driver = "transformation " + query.transformation;
    // A query name matches either the qualified or the bare form; the
    // union of both maps' posting lists is exactly that predicate.
    Id tr_id = snap_->symbols.FindId(query.transformation);
    if (tr_id == SymbolTable::kNoSymbol) {
      p.ids = EmptyPosting();
    } else {
      const PostingList& qualified =
          LookupPosting(*snap_->by_transformation, tr_id);
      const PostingList& bare =
          LookupPosting(*snap_->by_bare_transformation, tr_id);
      if (bare->empty()) {
        p.ids = qualified;
      } else if (qualified->empty()) {
        p.ids = bare;
      } else {
        p.ids = std::make_shared<const PostingBlocks>(
            PostingBlocks::Union(*qualified, *bare));
      }
    }
    postings.push_back(std::move(p));
  }
  if (!query.reads_dataset.empty()) {
    Posting p;
    p.path = AccessPath::kReadsIndex;
    if (with_drivers) p.driver = "reads " + query.reads_dataset;
    Id ds_id = snap_->symbols.FindId(query.reads_dataset);
    p.ids = ds_id == SymbolTable::kNoSymbol
                ? EmptyPosting()
                : LookupPosting(*snap_->consumers, ds_id);
    postings.push_back(std::move(p));
  }
  if (!query.writes_dataset.empty()) {
    Posting p;
    p.path = AccessPath::kWritesIndex;
    if (with_drivers) p.driver = "writes " + query.writes_dataset;
    Id ds_id = snap_->symbols.FindId(query.writes_dataset);
    p.ids = ds_id == SymbolTable::kNoSymbol
                ? EmptyPosting()
                : LookupPosting(*snap_->producers, ds_id);
    postings.push_back(std::move(p));
  }
  return postings;
}

NameList CatalogView::FindDerivations(const DerivationQuery& query) const {
  std::vector<Posting> postings = DerivationPostings(query, /*with_drivers=*/false);
  if (!postings.empty()) {
    // The posting lists answer the transformation/reads/writes
    // conditions exactly, so the residual covers only prefix and
    // annotation predicates — and vanishes when neither is present.
    const bool exact = query.name_prefix.empty() && query.predicates.empty();
    std::stable_sort(postings.begin(), postings.end(),
                     [](const Posting& a, const Posting& b) {
                       return a.ids->size() < b.ids->size();
                     });
    const auto& dv_rows = *snap_->derivations;
    size_t reserve_hint;
    std::vector<Id> candidates;
    if (postings.size() == 1) {
      reserve_hint = postings[0].ids->distinct();
    } else {
      bool short_circuited = false;
      candidates = IntersectSorted(postings, &short_circuited);
      reserve_hint = candidates.size();
    }
    if (query.limit != 0) reserve_hint = std::min(query.limit, reserve_hint);
    PinnedListBuilder out(reserve_hint);
    bool done = false;
    auto take_row = [&](uint32_t row) {
      if (done) return;
      std::string_view name = dv_rows[row].name;
      if (!exact) {
        if (!query.name_prefix.empty() &&
            !StartsWith(name, query.name_prefix)) {
          return;
        }
        if (!MatchesAll(dv_rows[row].object->annotations(),
                        query.predicates)) {
          return;
        }
      }
      out.Add(name, dv_rows[row].id);
      if (query.limit != 0 && out.size() >= query.limit) done = true;
    };
    if (postings.size() == 1) {
      const PostingBlocks& only = *postings[0].ids;
      EmitRowsInNameOrder(only.distinct(), *snap_->derivation_row_of_id,
                          dv_rows.size(),
                          [&only](auto&& emit) { only.ForEach(emit); },
                          take_row);
    } else {
      EmitRowsInNameOrder(candidates.size(), *snap_->derivation_row_of_id,
                          dv_rows.size(),
                          [&candidates](auto&& emit) {
                            for (Id id : candidates) emit(id);
                          },
                          take_row);
    }
    return std::move(out).Build(snap_);
  }

  auto residual = [&query](std::string_view name, const Derivation& dv) {
    if (!query.name_prefix.empty() && !StartsWith(name, query.name_prefix)) {
      return false;
    }
    return MatchesAll(dv.annotations(), query.predicates);
  };
  const auto& rows = *snap_->derivations;
  auto it = query.name_prefix.empty()
                ? rows.begin()
                : std::lower_bound(
                      rows.begin(), rows.end(),
                      std::string_view(query.name_prefix),
                      [](const CatalogSnapshot::Row<Derivation>& row,
                         std::string_view target) { return row.name < target; });
  PinnedListBuilder out(query.limit != 0 ? query.limit : rows.size());
  for (; it != rows.end(); ++it) {
    if (!query.name_prefix.empty() &&
        !StartsWith(it->name, query.name_prefix)) {
      break;
    }
    if (!residual(it->name, *it->object)) continue;
    out.Add(it->name, it->id);
    if (query.limit != 0 && out.size() >= query.limit) break;
  }
  return std::move(out).Build(snap_);
}

QueryPlan CatalogView::ExplainFindDerivations(
    const DerivationQuery& query) const {
  QueryPlan plan;
  std::vector<Posting> postings = DerivationPostings(query, /*with_drivers=*/true);
  if (!postings.empty()) {
    plan.posting_lists = postings.size();
    plan.exact = query.name_prefix.empty() && query.predicates.empty();
    std::stable_sort(postings.begin(), postings.end(),
                     [](const Posting& a, const Posting& b) {
                       return a.ids->size() < b.ids->size();
                     });
    plan.path = postings[0].path;
    plan.driver = postings[0].driver;
    plan.estimated_candidates = postings[0].ids->size();
    plan.order.reserve(postings.size());
    for (const Posting& p : postings) {
      plan.order.push_back({p.path, p.driver, p.ids->size()});
    }
    bool short_circuited = false;
    plan.actual_candidates = IntersectSorted(postings, &short_circuited).size();
    plan.short_circuited = short_circuited;
    return plan;
  }
  if (!query.name_prefix.empty()) {
    plan.path = AccessPath::kNamePrefixRange;
    plan.driver = "prefix " + query.name_prefix;
    plan.estimated_candidates = snap_->derivations->size();  // upper bound
    plan.actual_candidates = plan.estimated_candidates;
    return plan;
  }
  plan.path = AccessPath::kFullScan;
  plan.driver = "derivations";
  plan.estimated_candidates = snap_->derivations->size();
  plan.actual_candidates = plan.estimated_candidates;
  return plan;
}

// ---------------------------------------------------------------------
// Enumeration & changelog
// ---------------------------------------------------------------------

NameList CatalogView::AllDatasetNames() const {
  return RowNames(snap_, *snap_->datasets);
}
NameList CatalogView::AllTransformationNames() const {
  return RowNames(snap_, *snap_->transformations);
}
NameList CatalogView::AllDerivationNames() const {
  return RowNames(snap_, *snap_->derivations);
}

uint64_t CatalogView::changelog_floor() const {
  const auto& log = *snap_->changelog;
  return log.empty() ? snap_->version : log.front()->version - 1;
}

Result<std::vector<CatalogChange>> CatalogView::ChangesSince(
    uint64_t since_version) const {
  const uint64_t version = snap_->version;
  if (since_version > version) {
    return Status::InvalidArgument(
        "since_version " + std::to_string(since_version) +
        " is ahead of catalog version " + std::to_string(version));
  }
  if (since_version == version) return std::vector<CatalogChange>{};
  const auto& log = *snap_->changelog;
  // Versions in the window are consecutive (batches share one version
  // and are trimmed as whole groups), so the delta is gap-free iff the
  // window reaches back to since_version + 1.
  if (log.empty() || log.front()->version > since_version + 1) {
    return Status::ResourceExhausted(
        "changelog window starts at version " +
        std::to_string(changelog_floor()) + ", cannot answer since " +
        std::to_string(since_version));
  }
  auto it = std::lower_bound(
      log.begin(), log.end(), since_version + 1,
      [](const std::shared_ptr<const CatalogChange>& c, uint64_t v) {
        return c->version < v;
      });
  std::vector<CatalogChange> out;
  out.reserve(static_cast<size_t>(log.end() - it));
  for (; it != log.end(); ++it) out.push_back(**it);
  return out;
}

}  // namespace vdg
