#ifndef VDG_CATALOG_CODEC_H_
#define VDG_CATALOG_CODEC_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "schema/dataset.h"
#include "schema/derivation.h"
#include "schema/transformation.h"

namespace vdg {

/// Journal record wire format. Each record is one line:
///   <TAG>|field|field|...
/// Fields are escaped ('\\'→"\\\\", '|'→"\\p", '\n'→"\\n").
/// TR/DV/DS records carry the object's VDL text (the parser is the
/// decoder); RP/IV records use positional fields; A* records carry
/// annotation upserts; X* records are deletions.
namespace codec {

std::string EscapeField(std::string_view field);
Result<std::string> UnescapeField(std::string_view field);

/// Splits a record into its unescaped fields (including the tag).
Result<std::vector<std::string>> SplitRecord(std::string_view record);  // result-api-ok: record fields
/// Joins pre-escaped... rather: escapes and joins `fields` into a record.
std::string JoinRecord(const std::vector<std::string>& fields);

// --- Object records ---
std::string EncodeTransformation(const Transformation& tr);
std::string EncodeDerivation(const Derivation& dv);
std::string EncodeDataset(const Dataset& ds);
std::string EncodeReplica(const Replica& replica);
std::string EncodeInvocation(const Invocation& invocation);

Result<Replica> DecodeReplica(const std::vector<std::string>& fields);
Result<Invocation> DecodeInvocation(const std::vector<std::string>& fields);

// --- AttributeSet sub-encoding (triples appended to a field list) ---
void AppendAttributes(const AttributeSet& attrs,
                      std::vector<std::string>* fields);  // result-api-ok: out-param
Result<AttributeSet> ParseAttributes(const std::vector<std::string>& fields,
                                     size_t start);

// --- Deletion records ---
std::string EncodeRemoval(char kind_tag, std::string_view name);

}  // namespace codec

}  // namespace vdg

#endif  // VDG_CATALOG_CODEC_H_
