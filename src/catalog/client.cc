#include "catalog/client.h"

#include <utility>
#include <variant>

namespace vdg {

Result<std::vector<uint64_t>> CatalogClient::ShardVersions() {
  VDG_ASSIGN_OR_RETURN(uint64_t version, Version());
  return std::vector<uint64_t>{version};
}

Result<std::vector<CatalogChange>> CatalogClient::ShardChangesSince(
    uint32_t shard, uint64_t since_version) {
  if (shard != 0) {
    return Status::InvalidArgument("single-shard client has no shard " +
                                   std::to_string(shard));
  }
  return ChangesSince(since_version);
}

Result<BatchResult> CatalogClient::ApplyBatch(
    const std::vector<CatalogMutation>& mutations,
    const BatchOptions& options) {
  BatchResult result;
  result.statuses.reserve(mutations.size());
  result.assigned_ids.resize(mutations.size());
  bool aborted = false;
  for (size_t i = 0; i < mutations.size(); ++i) {
    if (aborted) {
      result.statuses.push_back(
          Status::FailedPrecondition("batch aborted by earlier failure"));
      continue;
    }
    Status s = std::visit(
        [&](const auto& op) -> Status {
          using Op = std::decay_t<decltype(op)>;
          if constexpr (std::is_same_v<Op, CatalogMutation::DefineDatasetOp>) {
            return DefineDataset(op.dataset);
          } else if constexpr (std::is_same_v<
                                   Op,
                                   CatalogMutation::DefineTransformationOp>) {
            return DefineTransformation(op.transformation);
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::DefineDerivationOp>) {
            return DefineDerivation(op.derivation);
          } else if constexpr (std::is_same_v<Op,
                                              CatalogMutation::AnnotateOp>) {
            std::string target = op.name;
            if (op.name_from_op.has_value()) {
              if (*op.name_from_op >= i ||
                  result.assigned_ids[*op.name_from_op].empty()) {
                return Status::InvalidArgument(
                    "annotate references batch op " +
                    std::to_string(*op.name_from_op) +
                    " which assigned no id");
              }
              target = result.assigned_ids[*op.name_from_op];
            }
            return Annotate(op.kind, target, op.key, op.value);
          } else if constexpr (std::is_same_v<Op,
                                              CatalogMutation::AddReplicaOp>) {
            VDG_ASSIGN_OR_RETURN(std::string id, AddReplica(op.replica));
            result.assigned_ids[i] = std::move(id);
            return Status::OK();
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::RecordInvocationOp>) {
            Invocation iv = op.invocation;
            for (size_t pos : op.produced_from_ops) {
              if (pos >= i || result.assigned_ids[pos].empty()) {
                return Status::InvalidArgument(
                    "invocation references batch op " + std::to_string(pos) +
                    " which assigned no id");
              }
              iv.produced_replicas.push_back(result.assigned_ids[pos]);
            }
            VDG_ASSIGN_OR_RETURN(std::string id,
                                 RecordInvocation(std::move(iv)));
            result.assigned_ids[i] = std::move(id);
            return Status::OK();
          } else if constexpr (std::is_same_v<
                                   Op, CatalogMutation::SetDatasetSizeOp>) {
            return SetDatasetSize(op.name, op.size_bytes);
          } else {
            static_assert(
                std::is_same_v<Op, CatalogMutation::InvalidateReplicaOp>);
            return InvalidateReplica(op.id);
          }
        },
        mutations[i].op);
    if (s.ok()) {
      ++result.applied;
    } else {
      if (result.first_error.ok()) result.first_error = s;
      if (options.stop_on_error) aborted = true;
    }
    result.statuses.push_back(std::move(s));
  }
  VDG_ASSIGN_OR_RETURN(result.version, Version());
  return result;
}

InProcessCatalogClient::InProcessCatalogClient(VirtualDataCatalog* catalog,
                                               bool read_only)
    : catalog_(catalog), authority_(catalog->name()), read_only_(read_only) {}

InProcessCatalogClient::InProcessCatalogClient(
    const VirtualDataCatalog* catalog)
    : catalog_(const_cast<VirtualDataCatalog*>(catalog)),
      authority_(catalog->name()),
      read_only_(true) {}

Status InProcessCatalogClient::CheckWritable() const {
  if (read_only_) {
    return Status(StatusCode::kPermissionDenied,
                  "catalog client for '" + authority_ + "' is read-only");
  }
  return Status::OK();
}

Result<uint64_t> InProcessCatalogClient::Version() {
  return catalog_->version();
}

Result<std::vector<CatalogChange>> InProcessCatalogClient::ChangesSince(
    uint64_t since_version) {
  return catalog_->ChangesSince(since_version);
}

Result<Dataset> InProcessCatalogClient::GetDataset(std::string_view name) {
  return catalog_->GetDataset(name);
}

Result<Transformation> InProcessCatalogClient::GetTransformation(
    std::string_view name) {
  return catalog_->GetTransformation(name);
}

Result<Derivation> InProcessCatalogClient::GetDerivation(
    std::string_view name) {
  return catalog_->GetDerivation(name);
}

Result<bool> InProcessCatalogClient::HasDataset(std::string_view name) {
  return catalog_->HasDataset(name);
}

Result<bool> InProcessCatalogClient::IsMaterialized(
    std::string_view dataset) {
  return catalog_->IsMaterialized(dataset);
}

Result<std::string> InProcessCatalogClient::ProducerOf(
    std::string_view dataset) {
  return catalog_->ProducerOf(dataset);
}

Result<std::vector<Invocation>> InProcessCatalogClient::InvocationsOf(
    std::string_view derivation) {
  return catalog_->InvocationsOf(derivation);
}

Result<NameList> InProcessCatalogClient::FindDatasets(
    const DatasetQuery& query) {
  return catalog_->FindDatasets(query);
}

Result<NameList> InProcessCatalogClient::FindTransformations(
    const TransformationQuery& query) {
  return catalog_->FindTransformations(query);
}

Result<NameList> InProcessCatalogClient::FindDerivations(
    const DerivationQuery& query) {
  return catalog_->FindDerivations(query);
}

Result<NameList> InProcessCatalogClient::AllNames(
    std::string_view kind) {
  if (kind == "dataset") return catalog_->AllDatasetNames();
  if (kind == "transformation") return catalog_->AllTransformationNames();
  if (kind == "derivation") return catalog_->AllDerivationNames();
  return Status(StatusCode::kInvalidArgument,
                "unknown object kind '" + std::string(kind) + "'");
}

Result<bool> InProcessCatalogClient::TypeConforms(const DatasetType& type,
                                                  const DatasetType& against) {
  return catalog_->TypeConforms(type, against);
}

ObjectRecord InProcessCatalogClient::SnapshotObject(
    const VirtualDataCatalog& catalog, std::string_view kind,
    std::string_view name) {
  ObjectRecord record;
  record.kind = std::string(kind);
  record.name = std::string(name);
  if (kind == "dataset") {
    auto ds = catalog.GetDataset(name);
    if (ds.ok()) {
      record.dataset = *std::move(ds);
      record.materialized = catalog.IsMaterialized(name);
    } else {
      record.status = ds.status();
    }
  } else if (kind == "transformation") {
    auto tr = catalog.GetTransformation(name);
    if (tr.ok()) {
      record.transformation = *std::move(tr);
    } else {
      record.status = tr.status();
    }
  } else if (kind == "derivation") {
    auto dv = catalog.GetDerivation(name);
    if (dv.ok()) {
      record.derivation = *std::move(dv);
    } else {
      record.status = dv.status();
    }
  } else {
    record.status = Status(StatusCode::kInvalidArgument,
                           "unknown object kind '" + std::string(kind) + "'");
  }
  return record;
}

Result<std::vector<ObjectRecord>> InProcessCatalogClient::BatchGet(
    const std::vector<ObjectKey>& keys) {
  std::vector<ObjectRecord> records;
  records.reserve(keys.size());
  for (const ObjectKey& key : keys) {
    records.push_back(SnapshotObject(*catalog_, key.kind, key.name));
  }
  return records;
}

Result<ProvenanceStep> InProcessCatalogClient::GetProvenanceStep(
    std::string_view dataset) {
  ProvenanceStep step;
  step.dataset = std::string(dataset);
  step.exists = catalog_->HasDataset(dataset);
  if (!step.exists) return step;
  auto producer = catalog_->ProducerOf(dataset);
  if (!producer.ok()) return step;  // raw input: no derivation behind it
  step.producer = *producer;
  auto derivation = catalog_->GetDerivation(step.producer);
  if (derivation.ok()) {
    step.derivation = *std::move(derivation);
    step.invocations = catalog_->InvocationsOf(step.producer);
  }
  return step;
}

Status InProcessCatalogClient::DefineDataset(Dataset dataset) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->DefineDataset(std::move(dataset));
}

Status InProcessCatalogClient::DefineTransformation(
    Transformation transformation) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->DefineTransformation(std::move(transformation));
}

Status InProcessCatalogClient::DefineDerivation(Derivation derivation) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->DefineDerivation(std::move(derivation));
}

Status InProcessCatalogClient::Annotate(std::string_view kind,
                                        std::string_view name,
                                        std::string_view key,
                                        AttributeValue value) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->Annotate(kind, name, key, std::move(value));
}

Result<std::string> InProcessCatalogClient::AddReplica(Replica replica) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->AddReplica(std::move(replica));
}

Result<std::string> InProcessCatalogClient::RecordInvocation(
    Invocation invocation) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->RecordInvocation(std::move(invocation));
}

Status InProcessCatalogClient::SetDatasetSize(std::string_view name,
                                              int64_t size_bytes) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->SetDatasetSize(name, size_bytes);
}

Status InProcessCatalogClient::InvalidateReplica(std::string_view id) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->InvalidateReplica(id);
}

Result<BatchResult> InProcessCatalogClient::ApplyBatch(
    const std::vector<CatalogMutation>& mutations,
    const BatchOptions& options) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->ApplyBatch(mutations, options);
}

}  // namespace vdg
