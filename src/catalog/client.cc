#include "catalog/client.h"

#include <utility>

namespace vdg {

InProcessCatalogClient::InProcessCatalogClient(VirtualDataCatalog* catalog,
                                               bool read_only)
    : catalog_(catalog), authority_(catalog->name()), read_only_(read_only) {}

InProcessCatalogClient::InProcessCatalogClient(
    const VirtualDataCatalog* catalog)
    : catalog_(const_cast<VirtualDataCatalog*>(catalog)),
      authority_(catalog->name()),
      read_only_(true) {}

Status InProcessCatalogClient::CheckWritable() const {
  if (read_only_) {
    return Status(StatusCode::kPermissionDenied,
                  "catalog client for '" + authority_ + "' is read-only");
  }
  return Status::OK();
}

Result<uint64_t> InProcessCatalogClient::Version() {
  return catalog_->version();
}

Result<std::vector<CatalogChange>> InProcessCatalogClient::ChangesSince(
    uint64_t since_version) {
  return catalog_->ChangesSince(since_version);
}

Result<Dataset> InProcessCatalogClient::GetDataset(std::string_view name) {
  return catalog_->GetDataset(name);
}

Result<Transformation> InProcessCatalogClient::GetTransformation(
    std::string_view name) {
  return catalog_->GetTransformation(name);
}

Result<Derivation> InProcessCatalogClient::GetDerivation(
    std::string_view name) {
  return catalog_->GetDerivation(name);
}

Result<bool> InProcessCatalogClient::HasDataset(std::string_view name) {
  return catalog_->HasDataset(name);
}

Result<bool> InProcessCatalogClient::IsMaterialized(
    std::string_view dataset) {
  return catalog_->IsMaterialized(dataset);
}

Result<std::string> InProcessCatalogClient::ProducerOf(
    std::string_view dataset) {
  return catalog_->ProducerOf(dataset);
}

Result<std::vector<Invocation>> InProcessCatalogClient::InvocationsOf(
    std::string_view derivation) {
  return catalog_->InvocationsOf(derivation);
}

Result<std::vector<std::string>> InProcessCatalogClient::FindDatasets(
    const DatasetQuery& query) {
  return catalog_->FindDatasets(query);
}

Result<std::vector<std::string>> InProcessCatalogClient::FindTransformations(
    const TransformationQuery& query) {
  return catalog_->FindTransformations(query);
}

Result<std::vector<std::string>> InProcessCatalogClient::FindDerivations(
    const DerivationQuery& query) {
  return catalog_->FindDerivations(query);
}

Result<std::vector<std::string>> InProcessCatalogClient::AllNames(
    std::string_view kind) {
  if (kind == "dataset") return catalog_->AllDatasetNames();
  if (kind == "transformation") return catalog_->AllTransformationNames();
  if (kind == "derivation") return catalog_->AllDerivationNames();
  return Status(StatusCode::kInvalidArgument,
                "unknown object kind '" + std::string(kind) + "'");
}

Result<bool> InProcessCatalogClient::TypeConforms(const DatasetType& type,
                                                  const DatasetType& against) {
  return catalog_->TypeConforms(type, against);
}

ObjectRecord InProcessCatalogClient::SnapshotObject(
    const VirtualDataCatalog& catalog, std::string_view kind,
    std::string_view name) {
  ObjectRecord record;
  record.kind = std::string(kind);
  record.name = std::string(name);
  if (kind == "dataset") {
    auto ds = catalog.GetDataset(name);
    if (ds.ok()) {
      record.dataset = *std::move(ds);
      record.materialized = catalog.IsMaterialized(name);
    } else {
      record.status = ds.status();
    }
  } else if (kind == "transformation") {
    auto tr = catalog.GetTransformation(name);
    if (tr.ok()) {
      record.transformation = *std::move(tr);
    } else {
      record.status = tr.status();
    }
  } else if (kind == "derivation") {
    auto dv = catalog.GetDerivation(name);
    if (dv.ok()) {
      record.derivation = *std::move(dv);
    } else {
      record.status = dv.status();
    }
  } else {
    record.status = Status(StatusCode::kInvalidArgument,
                           "unknown object kind '" + std::string(kind) + "'");
  }
  return record;
}

Result<std::vector<ObjectRecord>> InProcessCatalogClient::BatchGet(
    const std::vector<ObjectKey>& keys) {
  std::vector<ObjectRecord> records;
  records.reserve(keys.size());
  for (const ObjectKey& key : keys) {
    records.push_back(SnapshotObject(*catalog_, key.kind, key.name));
  }
  return records;
}

Result<ProvenanceStep> InProcessCatalogClient::GetProvenanceStep(
    std::string_view dataset) {
  ProvenanceStep step;
  step.dataset = std::string(dataset);
  step.exists = catalog_->HasDataset(dataset);
  if (!step.exists) return step;
  auto producer = catalog_->ProducerOf(dataset);
  if (!producer.ok()) return step;  // raw input: no derivation behind it
  step.producer = *producer;
  auto derivation = catalog_->GetDerivation(step.producer);
  if (derivation.ok()) {
    step.derivation = *std::move(derivation);
    step.invocations = catalog_->InvocationsOf(step.producer);
  }
  return step;
}

Status InProcessCatalogClient::DefineDataset(Dataset dataset) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->DefineDataset(std::move(dataset));
}

Status InProcessCatalogClient::DefineTransformation(
    Transformation transformation) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->DefineTransformation(std::move(transformation));
}

Status InProcessCatalogClient::DefineDerivation(Derivation derivation) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->DefineDerivation(std::move(derivation));
}

Status InProcessCatalogClient::Annotate(std::string_view kind,
                                        std::string_view name,
                                        std::string_view key,
                                        AttributeValue value) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->Annotate(kind, name, key, std::move(value));
}

Result<std::string> InProcessCatalogClient::AddReplica(Replica replica) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->AddReplica(std::move(replica));
}

Result<std::string> InProcessCatalogClient::RecordInvocation(
    Invocation invocation) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->RecordInvocation(std::move(invocation));
}

Status InProcessCatalogClient::SetDatasetSize(std::string_view name,
                                              int64_t size_bytes) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->SetDatasetSize(name, size_bytes);
}

Status InProcessCatalogClient::InvalidateReplica(std::string_view id) {
  VDG_RETURN_IF_ERROR(CheckWritable());
  return catalog_->InvalidateReplica(id);
}

}  // namespace vdg
