#include "catalog/codec.h"

#include <cstdlib>

#include "common/strings.h"
#include "vdl/printer.h"

namespace vdg {
namespace codec {

std::string EscapeField(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (char c : field) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '|':
        out += "\\p";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeField(std::string_view field) {
  std::string out;
  out.reserve(field.size());
  for (size_t i = 0; i < field.size(); ++i) {
    char c = field[i];
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (i + 1 >= field.size()) {
      return Status::ParseError("dangling escape in journal field");
    }
    char esc = field[++i];
    switch (esc) {
      case '\\':
        out.push_back('\\');
        break;
      case 'p':
        out.push_back('|');
        break;
      case 'n':
        out.push_back('\n');
        break;
      default:
        return Status::ParseError("unknown journal escape");
    }
  }
  return out;
}

Result<std::vector<std::string>> SplitRecord(std::string_view record) {
  std::vector<std::string> fields;
  std::string current;
  for (size_t i = 0; i < record.size(); ++i) {
    char c = record[i];
    if (c == '|') {
      VDG_ASSIGN_OR_RETURN(std::string unescaped, UnescapeField(current));
      fields.push_back(std::move(unescaped));
      current.clear();
    } else if (c == '\\' && i + 1 < record.size()) {
      current.push_back(c);
      current.push_back(record[++i]);
    } else {
      current.push_back(c);
    }
  }
  VDG_ASSIGN_OR_RETURN(std::string unescaped, UnescapeField(current));
  fields.push_back(std::move(unescaped));
  return fields;
}

std::string JoinRecord(const std::vector<std::string>& fields) {
  std::string out;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out += "|";
    out += EscapeField(fields[i]);
  }
  return out;
}

std::string EncodeTransformation(const Transformation& tr) {
  std::vector<std::string> fields{"TR", PrintTransformation(tr)};
  AppendAttributes(tr.annotations(), &fields);
  return JoinRecord(fields);
}

std::string EncodeDerivation(const Derivation& dv) {
  std::vector<std::string> fields{"DV", PrintDerivation(dv)};
  AppendAttributes(dv.annotations(), &fields);
  return JoinRecord(fields);
}

std::string EncodeDataset(const Dataset& ds) {
  std::vector<std::string> fields{"DS", PrintDatasetDecl(ds)};
  AppendAttributes(ds.annotations, &fields);
  return JoinRecord(fields);
}

std::string EncodeReplica(const Replica& replica) {
  std::vector<std::string> fields{
      "RP",
      replica.id,
      replica.dataset,
      replica.site,
      replica.storage_element,
      replica.physical_path,
      std::to_string(replica.size_bytes),
      FormatDoubleRoundTrip(replica.created_at),
      replica.valid ? "1" : "0"};
  AppendAttributes(replica.annotations, &fields);
  return JoinRecord(fields);
}

Result<Replica> DecodeReplica(const std::vector<std::string>& fields) {
  if (fields.size() < 9) {
    return Status::ParseError("replica record too short");
  }
  Replica r;
  r.id = fields[1];
  r.dataset = fields[2];
  r.site = fields[3];
  r.storage_element = fields[4];
  r.physical_path = fields[5];
  r.size_bytes = std::strtoll(fields[6].c_str(), nullptr, 10);
  r.created_at = std::strtod(fields[7].c_str(), nullptr);
  r.valid = fields[8] == "1";
  VDG_ASSIGN_OR_RETURN(r.annotations, ParseAttributes(fields, 9));
  return r;
}

std::string EncodeInvocation(const Invocation& iv) {
  std::vector<std::string> fields{
      "IV",
      iv.id,
      iv.derivation,
      iv.context.site,
      iv.context.host,
      iv.context.os,
      iv.context.architecture,
      FormatDoubleRoundTrip(iv.start_time),
      FormatDoubleRoundTrip(iv.duration_s),
      FormatDoubleRoundTrip(iv.cpu_seconds),
      std::to_string(iv.peak_memory_bytes),
      std::to_string(iv.exit_code),
      iv.succeeded ? "1" : "0",
      std::to_string(iv.consumed_replicas.size())};
  for (const std::string& id : iv.consumed_replicas) fields.push_back(id);
  fields.push_back(std::to_string(iv.produced_replicas.size()));
  for (const std::string& id : iv.produced_replicas) fields.push_back(id);
  AppendAttributes(iv.annotations, &fields);
  return JoinRecord(fields);
}

Result<Invocation> DecodeInvocation(const std::vector<std::string>& fields) {
  if (fields.size() < 15) {
    return Status::ParseError("invocation record too short");
  }
  Invocation iv;
  iv.id = fields[1];
  iv.derivation = fields[2];
  iv.context.site = fields[3];
  iv.context.host = fields[4];
  iv.context.os = fields[5];
  iv.context.architecture = fields[6];
  iv.start_time = std::strtod(fields[7].c_str(), nullptr);
  iv.duration_s = std::strtod(fields[8].c_str(), nullptr);
  iv.cpu_seconds = std::strtod(fields[9].c_str(), nullptr);
  iv.peak_memory_bytes = std::strtoll(fields[10].c_str(), nullptr, 10);
  iv.exit_code = static_cast<int>(std::strtol(fields[11].c_str(), nullptr, 10));
  iv.succeeded = fields[12] == "1";
  size_t pos = 13;
  size_t n_consumed = std::strtoull(fields[pos++].c_str(), nullptr, 10);
  if (pos + n_consumed > fields.size()) {
    return Status::ParseError("invocation record truncated (consumed)");
  }
  for (size_t i = 0; i < n_consumed; ++i) {
    iv.consumed_replicas.push_back(fields[pos++]);
  }
  if (pos >= fields.size()) {
    return Status::ParseError("invocation record truncated (produced count)");
  }
  size_t n_produced = std::strtoull(fields[pos++].c_str(), nullptr, 10);
  if (pos + n_produced > fields.size()) {
    return Status::ParseError("invocation record truncated (produced)");
  }
  for (size_t i = 0; i < n_produced; ++i) {
    iv.produced_replicas.push_back(fields[pos++]);
  }
  VDG_ASSIGN_OR_RETURN(iv.annotations, ParseAttributes(fields, pos));
  return iv;
}

void AppendAttributes(const AttributeSet& attrs,
                      std::vector<std::string>* fields) {
  for (const auto& [key, value] : attrs) {
    fields->push_back(key);
    fields->push_back(std::string(1, value.TypeTag()));
    // Round-trip-exact form: %.6g display formatting here silently
    // corrupted any double with >6 significant digits on replay.
    fields->push_back(value.ToWireString());
  }
}

Result<AttributeSet> ParseAttributes(const std::vector<std::string>& fields,
                                     size_t start) {
  AttributeSet attrs;
  if ((fields.size() - start) % 3 != 0) {
    return Status::ParseError("attribute triples are misaligned");
  }
  for (size_t i = start; i + 2 < fields.size() + 1 && i < fields.size();
       i += 3) {
    if (fields[i + 1].size() != 1) {
      return Status::ParseError("bad attribute type tag");
    }
    VDG_ASSIGN_OR_RETURN(
        AttributeValue value,
        AttributeValue::FromTagged(fields[i + 1][0], fields[i + 2]));
    attrs.Set(fields[i], std::move(value));
  }
  return attrs;
}

std::string EncodeRemoval(char kind_tag, std::string_view name) {
  return JoinRecord({std::string("X") + kind_tag, std::string(name)});
}

}  // namespace codec
}  // namespace vdg
