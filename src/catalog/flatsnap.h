#ifndef VDG_CATALOG_FLATSNAP_H_
#define VDG_CATALOG_FLATSNAP_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace vdg {
namespace flatsnap {

/// On-disk format of a catalog flat snapshot: one relocatable buffer,
/// mmap-ed on load. All integers are little-endian; posting-list
/// payloads are 8-byte aligned relative to the file start so the
/// mmap-ed bytes can be borrowed in place (see PostingBlocks::Parse).
///
/// File layout:
///   [72-byte header][payload]
/// The header carries two CRCs: `header_crc` over the header bytes
/// (with the field itself zeroed) and `payload_crc` over the payload.
/// `journal_records`/`journal_chain_crc` anchor the snapshot to a
/// prefix of the durable journal: a loader accepts the snapshot only
/// when the live journal still starts with that exact record chain,
/// and then replays just the records past the anchor.
inline constexpr char kMagic[8] = {'V', 'D', 'G', 'F', 'S', 'N', 'A', 'P'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kEndianCheck = 0x01020304u;
inline constexpr size_t kHeaderSize = 72;

// Header field offsets (bytes from file start), for tests that poke
// specific fields.
inline constexpr size_t kOffMagic = 0;
inline constexpr size_t kOffFormatVersion = 8;
inline constexpr size_t kOffEndianCheck = 12;
inline constexpr size_t kOffPayloadSize = 16;
inline constexpr size_t kOffPayloadCrc = 24;
inline constexpr size_t kOffHeaderCrc = 28;
inline constexpr size_t kOffVersionSeq = 32;
inline constexpr size_t kOffNextReplicaId = 40;
inline constexpr size_t kOffNextInvocationId = 48;
inline constexpr size_t kOffJournalRecords = 56;
inline constexpr size_t kOffJournalChainCrc = 64;
inline constexpr size_t kOffReserved = 68;

/// Read-only mapping of a snapshot file. Prefers mmap (the zero-copy
/// cold-start path); falls back to a heap read when mmap is
/// unavailable. Either way `data()` stays valid for the object's
/// lifetime, so a shared_ptr<MappedFile> serves as the keepalive for
/// borrowed posting payloads.
class MappedFile {
 public:
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  /// True when the bytes are a real mmap (not the heap fallback).
  bool mmapped() const { return mapped_; }

 private:
  MappedFile() = default;

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  void* map_base_ = nullptr;  // munmap handle when mapped_
  std::vector<uint8_t> heap_;
};

}  // namespace flatsnap
}  // namespace vdg

#endif  // VDG_CATALOG_FLATSNAP_H_
