#ifndef VDG_CATALOG_JOURNAL_H_
#define VDG_CATALOG_JOURNAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace vdg {

/// Durability backend for a Virtual Data Catalog. The paper allows a
/// VDC to be "variously a relational database, OO database, XML
/// repository, or even a ... file system"; we implement the catalog as
/// an in-memory object graph whose mutations stream through one of
/// these journals. Replaying the journal reconstructs the catalog.
class CatalogJournal {
 public:
  virtual ~CatalogJournal() = default;

  /// Appends one record (a single logical mutation; must not contain
  /// raw newlines — the codec escapes them). Backends may buffer the
  /// record in memory until the next Flush/Sync — the group-commit
  /// protocol: a batch of N mutations appends N records and pays one
  /// Flush at commit.
  virtual Status Append(const std::string& record) = 0;

  /// Hands every buffered record to the backing store. The commit
  /// point for group commit; a no-op for unbuffered backends.
  virtual Status Flush() { return Status::OK(); }

  /// Reads every record previously appended, in order (flushing any
  /// buffered ones first).
  virtual Result<std::vector<std::string>> ReadAll() = 0;  // result-api-ok: journal records

  /// Flushes buffered records to stable storage.
  virtual Status Sync() = 0;

  /// Atomically replaces the journal's contents with `records` (log
  /// compaction). Backends without rewrite support may return
  /// FailedPrecondition.
  virtual Status Rewrite(const std::vector<std::string>& records) {
    (void)records;
    return Status::FailedPrecondition("journal does not support rewrite");
  }

  /// True when appended records survive to a later ReadAll. The
  /// catalog only anchors flat-snapshot tail replay (record counting,
  /// chain CRC) on persistent journals.
  virtual bool persistent() const { return true; }
};

/// No durability: Append discards, ReadAll is empty. The memory-only
/// catalog configuration.
class NullJournal final : public CatalogJournal {
 public:
  Status Append(const std::string& record) override {
    (void)record;
    return Status::OK();
  }
  Result<std::vector<std::string>> ReadAll() override {  // result-api-ok: journal records
    return std::vector<std::string>{};  // result-api-ok: journal records
  }
  Status Sync() override { return Status::OK(); }
  bool persistent() const override { return false; }
};

/// What FileJournal::ReadAll did about a damaged log: how many records
/// survived, how many corrupt mid-file records were passed over, and
/// how many trailing bytes were cut away because the tail no longer
/// checksummed (a torn write or bit rot in the final record).
struct JournalTailRecovery {
  bool truncated = false;
  size_t records_recovered = 0;
  size_t records_skipped = 0;    // corrupt mid-file records passed over
  uint64_t valid_bytes = 0;      // file size kept after recovery
  uint64_t truncated_bytes = 0;  // corrupt tail bytes discarded
  std::string reason;            // human-readable cause, empty when clean
};

/// Append-only log file, one record per line. Reopening a catalog on
/// the same path replays the log (crash recovery = replay).
///
/// Crash safety: every appended line carries a CRC-32 of its payload
/// ("~xxxxxxxx|payload"). On replay, checksum damage at the tail — a
/// torn append, or rot in the final record — truncates the file back
/// to the last good record so future appends extend a clean log; a
/// corrupt record in the middle of the file is skipped so the
/// committed records after it survive. Either way the damage is
/// reported through last_recovery() instead of failing the whole
/// catalog open. Checksum-less lines from older journals are accepted
/// as-is (backward compatible with seed logs).
class FileJournal final : public CatalogJournal {
 public:
  explicit FileJournal(std::string path) : path_(std::move(path)) {}
  ~FileJournal() override;

  /// Buffers the checksummed line in memory; Flush/Sync writes it out.
  Status Append(const std::string& record) override;
  /// One fwrite + fflush for everything appended since the last Flush.
  Status Flush() override;
  Result<std::vector<std::string>> ReadAll() override;  // result-api-ok: journal records
  Status Sync() override;
  /// Writes `records` to `<path>.compact` then renames over the live
  /// file — crash-safe compaction.
  Status Rewrite(const std::vector<std::string>& records) override;

  const std::string& path() const { return path_; }

  /// Outcome of the most recent ReadAll (tail truncation report).
  const JournalTailRecovery& last_recovery() const { return last_recovery_; }

 private:
  Status EnsureOpen();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::string pending_;  // appended-but-unflushed lines (group commit)
  JournalTailRecovery last_recovery_;
};

/// In-memory journal retaining records; used by tests to verify replay
/// and by the federation layer to ship catalog diffs.
class VectorJournal final : public CatalogJournal {
 public:
  Status Append(const std::string& record) override {
    records_.push_back(record);
    return Status::OK();
  }
  Result<std::vector<std::string>> ReadAll() override { return records_; }  // result-api-ok: journal records
  Status Sync() override { return Status::OK(); }
  Status Rewrite(const std::vector<std::string>& records) override {
    records_ = records;
    return Status::OK();
  }

  const std::vector<std::string>& records() const { return records_; }  // result-api-ok: journal records

 private:
  std::vector<std::string> records_;  // result-api-ok: journal records
};

}  // namespace vdg

#endif  // VDG_CATALOG_JOURNAL_H_
