#ifndef VDG_CATALOG_QUERY_H_
#define VDG_CATALOG_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "schema/attribute.h"
#include "types/type_system.h"

namespace vdg {

/// Discovery query over datasets (Section 2 "Discovery"): conventional
/// metadata search, with the virtual-data wrinkle that results may be
/// materialized data or mere recipes.
struct DatasetQuery {
  /// Match datasets whose type conforms to this (subtype-aware).
  std::optional<DatasetType> type;
  /// Conjunction of annotation predicates.
  std::vector<AttributePredicate> predicates;
  /// Restrict to names starting with this prefix ("" = all).
  std::string name_prefix;
  /// Only datasets with at least one valid replica (i.e. real data).
  bool require_materialized = false;
  /// Only datasets with no valid replica (recipes awaiting derivation).
  bool only_virtual = false;
  /// 0 = unlimited.
  size_t limit = 0;
};

/// Discovery query over transformations: "I want to search ... if a
/// program that performs this analysis exists, I won't have to write
/// one from scratch."
struct TransformationQuery {
  /// Match TRs with an input formal that would accept a dataset of
  /// this type.
  std::optional<DatasetType> consumes;
  /// Match TRs with an output formal whose declared type conforms to
  /// this type.
  std::optional<DatasetType> produces;
  std::vector<AttributePredicate> predicates;
  std::string name_prefix;
  size_t limit = 0;
};

/// Discovery query over derivations.
struct DerivationQuery {
  /// Restrict to derivations of this transformation ("" = any).
  std::string transformation;
  /// Restrict to derivations reading this dataset ("" = any).
  std::string reads_dataset;
  /// Restrict to derivations writing this dataset ("" = any).
  std::string writes_dataset;
  std::vector<AttributePredicate> predicates;
  std::string name_prefix;
  size_t limit = 0;
};

/// The access path a discovery query was (or would be) answered with.
/// Produced by the catalog's predicate planner; exposed through the
/// Explain* calls so tests and operators can verify that the most
/// selective index drives a query instead of a full scan.
enum class AccessPath {
  kFullScan,         // iterate every object of the class
  kNamePrefixRange,  // bounded range scan on the ordered name map
  kAttributeIndex,   // posting list from the attribute-equality index
  kTypeIndex,        // posting list from the type-conformance index
  kMaterializedSet,  // iterate the incremental materialized-name set
  kTransformationIndex,  // derivations-by-transformation posting list
  kReadsIndex,           // derivations-by-input-dataset posting list
  kWritesIndex,          // derivations-by-output-dataset posting list
};

std::string_view AccessPathName(AccessPath path);

/// One posting list in the planner's chosen intersection order.
struct PlanStep {
  AccessPath path = AccessPath::kFullScan;
  /// Human-readable description of this step's index key.
  std::string driver;
  /// Exact posting-list length (the selectivity estimate that ordered
  /// this step).
  size_t estimated = 0;
};

/// Result of planning one discovery query: which access path drives
/// the candidate enumeration, how many candidates it yields, and how
/// many posting lists were intersected before residual filtering.
struct QueryPlan {
  AccessPath path = AccessPath::kFullScan;
  /// Human-readable description of the driving index key, e.g.
  /// "attr quality=approved" or "type content:SDSS".
  std::string driver;
  /// Candidates the driver enumerates (exact for posting lists and the
  /// materialized set; the full object count for scans; unknown — the
  /// object count upper bound — for prefix ranges).
  size_t estimated_candidates = 0;
  /// Number of posting lists intersected (0 for non-indexed paths).
  size_t posting_lists = 0;
  /// The selectivity order the planner chose: every posting list the
  /// query can use, rarest first (the intersection order). Empty for
  /// non-indexed paths. `order.front()` repeats `driver`.
  std::vector<PlanStep> order;
  /// Survivors after intersecting every list in `order` (before any
  /// residual filter and before `limit`). For non-indexed paths this
  /// equals estimated_candidates.
  size_t actual_candidates = 0;
  /// True when the indexes alone answer the query exactly — no
  /// residual predicate re-check is needed on the candidates.
  bool exact = false;
  /// True when an empty list (or empty running intersection) ended
  /// evaluation before touching the remaining lists.
  bool short_circuited = false;
};

/// Aggregate catalog counters (object counts per class).
struct CatalogStats {
  size_t datasets = 0;
  size_t transformations = 0;
  size_t derivations = 0;
  size_t replicas = 0;
  size_t invocations = 0;

  size_t total() const {
    return datasets + transformations + derivations + replicas + invocations;
  }
};

}  // namespace vdg

#endif  // VDG_CATALOG_QUERY_H_
