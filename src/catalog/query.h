#ifndef VDG_CATALOG_QUERY_H_
#define VDG_CATALOG_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "schema/attribute.h"
#include "types/type_system.h"

namespace vdg {

/// Discovery query over datasets (Section 2 "Discovery"): conventional
/// metadata search, with the virtual-data wrinkle that results may be
/// materialized data or mere recipes.
struct DatasetQuery {
  /// Match datasets whose type conforms to this (subtype-aware).
  std::optional<DatasetType> type;
  /// Conjunction of annotation predicates.
  std::vector<AttributePredicate> predicates;
  /// Restrict to names starting with this prefix ("" = all).
  std::string name_prefix;
  /// Only datasets with at least one valid replica (i.e. real data).
  bool require_materialized = false;
  /// Only datasets with no valid replica (recipes awaiting derivation).
  bool only_virtual = false;
  /// 0 = unlimited.
  size_t limit = 0;
};

/// Discovery query over transformations: "I want to search ... if a
/// program that performs this analysis exists, I won't have to write
/// one from scratch."
struct TransformationQuery {
  /// Match TRs with an input formal that would accept a dataset of
  /// this type.
  std::optional<DatasetType> consumes;
  /// Match TRs with an output formal whose declared type conforms to
  /// this type.
  std::optional<DatasetType> produces;
  std::vector<AttributePredicate> predicates;
  std::string name_prefix;
  size_t limit = 0;
};

/// Discovery query over derivations.
struct DerivationQuery {
  /// Restrict to derivations of this transformation ("" = any).
  std::string transformation;
  /// Restrict to derivations reading this dataset ("" = any).
  std::string reads_dataset;
  /// Restrict to derivations writing this dataset ("" = any).
  std::string writes_dataset;
  std::vector<AttributePredicate> predicates;
  std::string name_prefix;
  size_t limit = 0;
};

/// Aggregate catalog counters (object counts per class).
struct CatalogStats {
  size_t datasets = 0;
  size_t transformations = 0;
  size_t derivations = 0;
  size_t replicas = 0;
  size_t invocations = 0;

  size_t total() const {
    return datasets + transformations + derivations + replicas + invocations;
  }
};

}  // namespace vdg

#endif  // VDG_CATALOG_QUERY_H_
