#ifndef VDG_CATALOG_SHARDING_H_
#define VDG_CATALOG_SHARDING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/client.h"

namespace vdg {

/// Stable hash routing of object names onto shards: FNV-1a over the
/// name, mod the shard count. Deterministic across processes and
/// sessions, so every client of the same topology agrees on placement
/// without coordination.
class ShardRouter {
 public:
  explicit ShardRouter(uint32_t shard_count)
      : shard_count_(shard_count == 0 ? 1 : shard_count) {}

  uint32_t shard_count() const { return shard_count_; }
  uint32_t ShardOf(std::string_view name) const;

 private:
  uint32_t shard_count_;
};

/// Stable fingerprint of one shard set: a hash over the ordered shard
/// authorities and the count. Any resharding — count change, backend
/// swap, reorder — changes it.
uint64_t ShardSetFingerprint(
    const std::vector<std::shared_ptr<CatalogClient>>& shards);

struct ShardedClientOptions {
  /// Scatter predicate queries with one thread per shard instead of
  /// sequentially. Requires the shard clients to be thread-safe
  /// (in-process and wire clients are; SimulatedRpc is not).
  bool parallel_fanout = false;

  /// Disambiguating tag baked into client-assigned replica/invocation
  /// ids ("rp-<tag>s<shard>-<seq>"). Two writers sharing a shard set
  /// must use distinct tags (or supply their own ids) — the sequence
  /// counters live in this client instance.
  std::string id_tag;
};

/// A CatalogClient that partitions one logical catalog across N shard
/// backends by stable hash of object name (Section 4 scaled out: the
/// collaboration catalog stops being one server).
///
/// Placement:
///  - datasets and derivations live on ShardOf(name); replicas live
///    with their dataset, invocations with their derivation;
///  - transformations and the type universe are broadcast-replicated
///    to every shard (they are tiny, read-everywhere, and derivation
///    validation needs them locally);
///  - point calls route to the owning shard; predicate queries
///    (FindDatasets/FindDerivations/AllNames) scatter to every shard
///    and gather the per-shard sorted NameLists through one
///    ArenaBuilder k-way merge, so the global result is byte-identical
///    (order-normalized) to one unsharded catalog and the PR 9
///    zero-copy contract is preserved end to end (one arena per
///    gathered response, no per-name copies beyond it).
///
/// Versions: Version() is the *composite* version — the sum of the
/// per-shard versions — monotone but not addressable in any single
/// changelog. ChangesSince(composite) answers only the trivial cases
/// (empty delta / future version) and otherwise returns
/// ResourceExhausted, steering delta consumers to the per-shard
/// ShardVersions()/ShardChangesSince() API that CachingCatalogClient
/// and FederatedIndex use.
///
/// Partial failure policy: a scatter leg that fails fails the whole
/// call (one shard down => Unavailable, never a silently truncated
/// result). ApplyBatch splits into per-shard sub-batches with derived
/// idempotency tokens ("<token>/s<k>"); a transport failure mid-split
/// may leave earlier shards committed — the error propagates and the
/// token makes the retry safe. stop_on_error is scoped per shard
/// sub-batch (shards commit independently).
///
/// Shard catalogs must run in partition mode
/// (VirtualDataCatalog::set_partition_mode): this client owns
/// cross-shard referential checks (input existence, type conformance,
/// single-producer conflicts) and pre-creates missing derivation
/// outputs on their hash-owned home shards. One divergence from the
/// unsharded catalog is documented rather than papered over: a
/// pre-existing producerless dataset adopted by a derivation homed on
/// another shard keeps an empty producer field; ProducerOf and
/// GetProvenanceStep compensate with a writes-index scatter.
///
/// Thread-safety: as safe as the shard clients underneath; the
/// topology is an immutable snapshot behind a mutex (Reshard swaps
/// it), and id counters are atomic.
class ShardedCatalogClient : public CatalogClient {
 public:
  ShardedCatalogClient(std::vector<std::shared_ptr<CatalogClient>> shards,
                       ShardedClientOptions options = {});

  const std::string& authority() const override { return authority_; }
  bool read_only() const override;

  ShardTopology shard_topology() const override;
  Result<std::vector<uint64_t>> ShardVersions() override;
  Result<std::vector<CatalogChange>> ShardChangesSince(
      uint32_t shard, uint64_t since_version) override;

  Result<uint64_t> Version() override;
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) override;
  Result<Dataset> GetDataset(std::string_view name) override;
  Result<Transformation> GetTransformation(std::string_view name) override;
  Result<Derivation> GetDerivation(std::string_view name) override;
  Result<bool> HasDataset(std::string_view name) override;
  Result<bool> IsMaterialized(std::string_view dataset) override;
  Result<std::string> ProducerOf(std::string_view dataset) override;
  Result<std::vector<Invocation>> InvocationsOf(
      std::string_view derivation) override;
  Result<NameList> FindDatasets(const DatasetQuery& query) override;
  Result<NameList> FindTransformations(
      const TransformationQuery& query) override;
  Result<NameList> FindDerivations(const DerivationQuery& query) override;
  Result<NameList> AllNames(std::string_view kind) override;
  Result<bool> TypeConforms(const DatasetType& type,
                            const DatasetType& against) override;
  Result<std::vector<ObjectRecord>> BatchGet(
      const std::vector<ObjectKey>& keys) override;
  Result<ProvenanceStep> GetProvenanceStep(std::string_view dataset) override;

  Status DefineDataset(Dataset dataset) override;
  Status DefineTransformation(Transformation transformation) override;
  Status DefineDerivation(Derivation derivation) override;
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value) override;
  Result<std::string> AddReplica(Replica replica) override;
  Result<std::string> RecordInvocation(Invocation invocation) override;
  Status SetDatasetSize(std::string_view name, int64_t size_bytes) override;
  Status InvalidateReplica(std::string_view id) override;
  Result<BatchResult> ApplyBatch(const std::vector<CatalogMutation>& mutations,
                                 const BatchOptions& options = {}) override;

  /// Which shard owns `name` under the current topology.
  uint32_t ShardOf(std::string_view name) const;
  uint32_t shard_count() const;

  /// Swaps the shard set (no data migration — a testing/bring-up hook
  /// for topology-fingerprint coherence, not live resharding). The new
  /// topology gets a new fingerprint, so caches keyed on it can never
  /// serve results across the swap.
  Status Reshard(std::vector<std::shared_ptr<CatalogClient>> shards);

  /// Test hook: invoked with the shard index after each per-shard
  /// sub-batch of ApplyBatch commits, i.e. at the exact moments a
  /// concurrent reader can observe a cross-shard batch half-applied.
  void set_post_subbatch_hook(std::function<void(uint32_t)> hook) {
    post_subbatch_hook_ = std::move(hook);
  }

 private:
  struct Topology {
    std::vector<std::shared_ptr<CatalogClient>> shards;
    ShardRouter router{1};
    uint64_t fingerprint = 0;
  };

  /// What the derivation pre-pass decided: outputs to pre-create on
  /// their home shards, or an early terminal status.
  struct DerivationPlan {
    std::vector<std::pair<uint32_t, Dataset>> ensure_outputs;
  };

  std::shared_ptr<const Topology> topology() const;
  std::string MakeReplicaId(uint32_t shard);
  std::string MakeInvocationId(uint32_t shard);
  /// Parses the shard index out of a client-assigned replica or
  /// invocation id; false for foreign/caller-supplied ids.
  bool ShardFromAssignedId(const Topology& topo, std::string_view id,
                           uint32_t* shard) const;

  /// Cross-shard referential checks + output placement for one
  /// derivation (see class comment). Mirrors the unsharded catalog's
  /// error vocabulary (AlreadyExists / NotFound / TypeError).
  /// `pending` (optional) maps dataset names defined by EARLIER ops of
  /// an in-flight batch — not yet visible on any shard — to their
  /// definitions, so intra-batch define-then-derive plans like it
  /// would against the unsharded catalog.
  Status PlanDerivation(const Topology& topo, const Derivation& derivation,
                        DerivationPlan* plan,
                        const std::map<std::string, Dataset>* pending =
                            nullptr);

  /// Scatters `fn` over every shard, sequentially or one thread per
  /// shard; results are positional, first error (by shard index) wins.
  Result<std::vector<NameList>> ScatterLists(
      const Topology& topo,
      const std::function<Result<NameList>(CatalogClient&)>& fn);

  /// Try-all fallback for replica/invocation ops whose id does not
  /// name a shard: first OK wins; all-NotFound is NotFound; any other
  /// error (a shard down) propagates — never a silent miss.
  Status AnyShard(const Topology& topo,
                  const std::function<Status(CatalogClient&)>& fn);

  std::string authority_;
  ShardedClientOptions options_;
  mutable std::mutex topology_mu_;
  std::shared_ptr<const Topology> topology_;
  std::atomic<uint64_t> replica_seq_{0};
  std::atomic<uint64_t> invocation_seq_{0};
  std::function<void(uint32_t)> post_subbatch_hook_;
};

/// Merges per-shard lexicographically sorted NameLists into one global
/// lexicographic NameList through a single ArenaBuilder (k-way merge;
/// one arena allocation, no per-name intermediate copies). `limit`
/// caps the merged size (0 = unlimited). Exposed for tests.
NameList MergeSortedNameLists(const std::vector<NameList>& lists,
                              size_t limit);

}  // namespace vdg

#endif  // VDG_CATALOG_SHARDING_H_
