#include "catalog/flatsnap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/posting.h"
#include "catalog/snapshot.h"
#include "common/hash.h"
#include "schema/attribute.h"
#include "schema/dataset.h"
#include "schema/derivation.h"
#include "schema/transformation.h"
#include "types/type_system.h"

namespace vdg {
namespace flatsnap {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError("cannot open snapshot file '" + path + "'");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IoError("cannot stat snapshot file '" + path + "'");
  }
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
  file->size_ = static_cast<size_t>(st.st_size);
  if (file->size_ > 0) {
    void* base = ::mmap(nullptr, file->size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (base != MAP_FAILED) {
      file->map_base_ = base;
      file->data_ = static_cast<const uint8_t*>(base);
      file->mapped_ = true;
    } else {
      file->heap_.resize(file->size_);
      size_t off = 0;
      while (off < file->size_) {
        ssize_t n = ::read(fd, file->heap_.data() + off, file->size_ - off);
        if (n <= 0) {
          ::close(fd);
          return Status::IoError("short read of snapshot file '" + path + "'");
        }
        off += static_cast<size_t>(n);
      }
      file->data_ = file->heap_.data();
    }
  }
  ::close(fd);
  return file;
}

MappedFile::~MappedFile() {
  if (mapped_) ::munmap(map_base_, size_);
}

}  // namespace flatsnap

namespace {

using PostingListPtr = CatalogSnapshot::PostingList;

// ---------------------------------------------------------------------
// Little-endian primitive writers
// ---------------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void PutOptStr(std::string* out, const std::optional<std::string>& s) {
  PutU8(out, s.has_value() ? 1 : 0);
  if (s.has_value()) PutStr(out, *s);
}

void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

uint32_t LoadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t LoadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

// ---------------------------------------------------------------------
// Bounded payload reader: every accessor checks remaining bytes and
// latches `ok = false` on the first violation, so decode loops simply
// run `while (... && r.ok)` and the caller checks once at the end.
// ---------------------------------------------------------------------

struct Reader {
  const uint8_t* p = nullptr;
  size_t n = 0;
  size_t pos = 0;
  bool ok = true;

  bool Need(size_t k) {
    if (!ok || n - pos < k) {
      ok = false;
      return false;
    }
    return true;
  }
  uint8_t U8() {
    if (!Need(1)) return 0;
    return p[pos++];
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = LoadU32(p + pos);
    pos += 4;
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = LoadU64(p + pos);
    pos += 8;
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double Double() {
    uint64_t bits = U64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    uint32_t len = U32();
    if (!Need(len)) return {};
    std::string s(reinterpret_cast<const char*>(p + pos), len);
    pos += len;
    return s;
  }
  void Align8() {
    size_t target = (pos + 7) & ~static_cast<size_t>(7);
    if (target > n) {
      ok = false;
    } else {
      pos = target;
    }
  }
};

// ---------------------------------------------------------------------
// Schema-object codec. The encoders walk the public accessors; the
// decoders rebuild through the public mutators so every class invariant
// (tag validity, one-value-per-arg) is re-checked on the way in.
// ---------------------------------------------------------------------

void PutValue(std::string* out, const AttributeValue& v) {
  PutU8(out, static_cast<uint8_t>(v.TypeTag()));
  PutStr(out, v.ToWireString());
}

AttributeValue GetValue(Reader& r) {
  char tag = static_cast<char>(r.U8());
  std::string wire = r.Str();
  if (!r.ok) return AttributeValue();
  Result<AttributeValue> v = AttributeValue::FromTagged(tag, wire);
  if (!v.ok()) {
    r.ok = false;
    return AttributeValue();
  }
  return std::move(v).value();
}

void PutAttrs(std::string* out, const AttributeSet& attrs) {
  PutU32(out, static_cast<uint32_t>(attrs.size()));
  for (const auto& [key, value] : attrs) {
    PutStr(out, key);
    PutValue(out, value);
  }
}

AttributeSet GetAttrs(Reader& r) {
  AttributeSet attrs;
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok; ++i) {
    std::string key = r.Str();
    AttributeValue value = GetValue(r);
    if (r.ok) attrs.Set(key, std::move(value));
  }
  return attrs;
}

void PutDatasetType(std::string* out, const DatasetType& t) {
  PutStr(out, t.content);
  PutStr(out, t.format);
  PutStr(out, t.encoding);
}

DatasetType GetDatasetType(Reader& r) {
  DatasetType t;
  t.content = r.Str();
  t.format = r.Str();
  t.encoding = r.Str();
  return t;
}

void PutDataset(std::string* out, const Dataset& d) {
  PutStr(out, d.name);
  PutDatasetType(out, d.type);
  PutStr(out, d.descriptor.schema);
  PutAttrs(out, d.descriptor.fields);
  PutI64(out, d.size_bytes);
  PutStr(out, d.producer);
  PutAttrs(out, d.annotations);
}

Dataset GetDataset(Reader& r) {
  Dataset d;
  d.name = r.Str();
  d.type = GetDatasetType(r);
  d.descriptor.schema = r.Str();
  d.descriptor.fields = GetAttrs(r);
  d.size_bytes = r.I64();
  d.producer = r.Str();
  d.annotations = GetAttrs(r);
  return d;
}

void PutReplica(std::string* out, const Replica& rp) {
  PutStr(out, rp.id);
  PutStr(out, rp.dataset);
  PutStr(out, rp.site);
  PutStr(out, rp.storage_element);
  PutStr(out, rp.physical_path);
  PutI64(out, rp.size_bytes);
  PutDouble(out, rp.created_at);
  PutU8(out, rp.valid ? 1 : 0);
  PutAttrs(out, rp.annotations);
}

Replica GetReplica(Reader& r) {
  Replica rp;
  rp.id = r.Str();
  rp.dataset = r.Str();
  rp.site = r.Str();
  rp.storage_element = r.Str();
  rp.physical_path = r.Str();
  rp.size_bytes = r.I64();
  rp.created_at = r.Double();
  rp.valid = r.U8() != 0;
  rp.annotations = GetAttrs(r);
  return rp;
}

void PutTemplatePiece(std::string* out, const TemplatePiece& piece) {
  PutU8(out, static_cast<uint8_t>(piece.kind));
  PutStr(out, piece.text);
  PutU8(out, piece.ref_direction.has_value() ? 1 : 0);
  if (piece.ref_direction.has_value()) {
    PutU8(out, static_cast<uint8_t>(*piece.ref_direction));
  }
}

TemplatePiece GetTemplatePiece(Reader& r) {
  TemplatePiece piece;
  uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(TemplatePiece::Kind::kArgRef)) r.ok = false;
  piece.kind = static_cast<TemplatePiece::Kind>(kind);
  piece.text = r.Str();
  if (r.U8() != 0) {
    uint8_t dir = r.U8();
    if (dir > static_cast<uint8_t>(ArgDirection::kNone)) r.ok = false;
    piece.ref_direction = static_cast<ArgDirection>(dir);
  }
  return piece;
}

void PutTemplateExpr(std::string* out, const TemplateExpr& expr) {
  PutU32(out, static_cast<uint32_t>(expr.size()));
  for (const TemplatePiece& piece : expr) PutTemplatePiece(out, piece);
}

TemplateExpr GetTemplateExpr(Reader& r) {
  TemplateExpr expr;
  uint32_t n = r.U32();
  for (uint32_t i = 0; i < n && r.ok; ++i) {
    expr.push_back(GetTemplatePiece(r));
  }
  return expr;
}

void PutFormalArg(std::string* out, const FormalArg& arg) {
  PutStr(out, arg.name);
  PutU8(out, static_cast<uint8_t>(arg.direction));
  PutU32(out, static_cast<uint32_t>(arg.types.size()));
  for (const DatasetType& t : arg.types) PutDatasetType(out, t);
  PutOptStr(out, arg.default_string);
  PutOptStr(out, arg.default_dataset);
}

FormalArg GetFormalArg(Reader& r) {
  FormalArg arg;
  arg.name = r.Str();
  uint8_t dir = r.U8();
  if (dir > static_cast<uint8_t>(ArgDirection::kNone)) r.ok = false;
  arg.direction = static_cast<ArgDirection>(dir);
  uint32_t ntypes = r.U32();
  for (uint32_t i = 0; i < ntypes && r.ok; ++i) {
    arg.types.push_back(GetDatasetType(r));
  }
  if (r.U8() != 0) arg.default_string = r.Str();
  if (r.U8() != 0) arg.default_dataset = r.Str();
  return arg;
}

void PutTransformation(std::string* out, const Transformation& t) {
  PutStr(out, t.name());
  PutU8(out, static_cast<uint8_t>(t.kind()));
  PutStr(out, t.version());
  PutU32(out, static_cast<uint32_t>(t.args().size()));
  for (const FormalArg& arg : t.args()) PutFormalArg(out, arg);
  PutStr(out, t.executable());
  PutU32(out, static_cast<uint32_t>(t.argument_templates().size()));
  for (const ArgumentTemplate& at : t.argument_templates()) {
    PutStr(out, at.name);
    PutTemplateExpr(out, at.expr);
  }
  PutU32(out, static_cast<uint32_t>(t.env().size()));
  for (const auto& [name, expr] : t.env()) {
    PutStr(out, name);
    PutTemplateExpr(out, expr);
  }
  PutU32(out, static_cast<uint32_t>(t.profile().size()));
  for (const auto& [key, expr] : t.profile()) {
    PutStr(out, key);
    PutTemplateExpr(out, expr);
  }
  PutU32(out, static_cast<uint32_t>(t.calls().size()));
  for (const CompoundCall& call : t.calls()) {
    PutStr(out, call.callee);
    PutU32(out, static_cast<uint32_t>(call.bindings.size()));
    for (const auto& [formal, piece] : call.bindings) {
      PutStr(out, formal);
      PutTemplatePiece(out, piece);
    }
  }
  PutAttrs(out, t.annotations());
}

Transformation GetTransformation(Reader& r) {
  Transformation t;
  t.set_name(r.Str());
  uint8_t kind = r.U8();
  if (kind > static_cast<uint8_t>(Transformation::Kind::kCompound)) {
    r.ok = false;
  }
  t.set_kind(static_cast<Transformation::Kind>(kind));
  t.set_version(r.Str());
  uint32_t nargs = r.U32();
  for (uint32_t i = 0; i < nargs && r.ok; ++i) {
    t.mutable_args().push_back(GetFormalArg(r));
  }
  t.set_executable(r.Str());
  uint32_t ntemplates = r.U32();
  for (uint32_t i = 0; i < ntemplates && r.ok; ++i) {
    ArgumentTemplate at;
    at.name = r.Str();
    at.expr = GetTemplateExpr(r);
    if (r.ok) t.AddArgumentTemplate(std::move(at));
  }
  uint32_t nenv = r.U32();
  for (uint32_t i = 0; i < nenv && r.ok; ++i) {
    std::string name = r.Str();
    TemplateExpr expr = GetTemplateExpr(r);
    if (r.ok) t.SetEnv(std::move(name), std::move(expr));
  }
  uint32_t nprofile = r.U32();
  for (uint32_t i = 0; i < nprofile && r.ok; ++i) {
    std::string key = r.Str();
    TemplateExpr expr = GetTemplateExpr(r);
    if (r.ok) t.SetProfile(std::move(key), std::move(expr));
  }
  uint32_t ncalls = r.U32();
  for (uint32_t i = 0; i < ncalls && r.ok; ++i) {
    CompoundCall call;
    call.callee = r.Str();
    uint32_t nbindings = r.U32();
    for (uint32_t j = 0; j < nbindings && r.ok; ++j) {
      std::string formal = r.Str();
      TemplatePiece piece = GetTemplatePiece(r);
      if (r.ok) call.bindings.emplace_back(std::move(formal), std::move(piece));
    }
    if (r.ok) t.AddCall(std::move(call));
  }
  t.annotations() = GetAttrs(r);
  return t;
}

void PutActualArg(std::string* out, const ActualArg& arg) {
  PutStr(out, arg.formal);
  PutOptStr(out, arg.string_value);
  PutOptStr(out, arg.dataset);
  PutU8(out, arg.direction.has_value() ? 1 : 0);
  if (arg.direction.has_value()) {
    PutU8(out, static_cast<uint8_t>(*arg.direction));
  }
}

ActualArg GetActualArg(Reader& r) {
  ActualArg arg;
  arg.formal = r.Str();
  if (r.U8() != 0) arg.string_value = r.Str();
  if (r.U8() != 0) arg.dataset = r.Str();
  if (r.U8() != 0) {
    uint8_t dir = r.U8();
    if (dir > static_cast<uint8_t>(ArgDirection::kNone)) r.ok = false;
    arg.direction = static_cast<ArgDirection>(dir);
  }
  return arg;
}

void PutDerivation(std::string* out, const Derivation& d) {
  PutStr(out, d.name());
  PutStr(out, d.transformation_namespace());
  PutStr(out, d.transformation());
  PutU32(out, static_cast<uint32_t>(d.args().size()));
  for (const ActualArg& arg : d.args()) PutActualArg(out, arg);
  PutU32(out, static_cast<uint32_t>(d.env_overrides().size()));
  for (const auto& [name, value] : d.env_overrides()) {
    PutStr(out, name);
    PutStr(out, value);
  }
  PutAttrs(out, d.annotations());
}

Derivation GetDerivation(Reader& r) {
  Derivation d;
  d.set_name(r.Str());
  d.set_transformation_namespace(r.Str());
  d.set_transformation(r.Str());
  uint32_t nargs = r.U32();
  for (uint32_t i = 0; i < nargs && r.ok; ++i) {
    ActualArg arg = GetActualArg(r);
    if (r.ok && !d.AddArg(std::move(arg)).ok()) r.ok = false;
  }
  uint32_t nenv = r.U32();
  for (uint32_t i = 0; i < nenv && r.ok; ++i) {
    std::string name = r.Str();
    std::string value = r.Str();
    if (r.ok) d.SetEnvOverride(std::move(name), std::move(value));
  }
  d.annotations() = GetAttrs(r);
  return d;
}

void PutInvocation(std::string* out, const Invocation& iv) {
  PutStr(out, iv.id);
  PutStr(out, iv.derivation);
  PutStr(out, iv.context.site);
  PutStr(out, iv.context.host);
  PutStr(out, iv.context.os);
  PutStr(out, iv.context.architecture);
  PutDouble(out, iv.start_time);
  PutDouble(out, iv.duration_s);
  PutDouble(out, iv.cpu_seconds);
  PutI64(out, iv.peak_memory_bytes);
  PutI64(out, iv.exit_code);
  PutU8(out, iv.succeeded ? 1 : 0);
  PutU32(out, static_cast<uint32_t>(iv.consumed_replicas.size()));
  for (const std::string& id : iv.consumed_replicas) PutStr(out, id);
  PutU32(out, static_cast<uint32_t>(iv.produced_replicas.size()));
  for (const std::string& id : iv.produced_replicas) PutStr(out, id);
  PutAttrs(out, iv.annotations);
}

Invocation GetInvocation(Reader& r) {
  Invocation iv;
  iv.id = r.Str();
  iv.derivation = r.Str();
  iv.context.site = r.Str();
  iv.context.host = r.Str();
  iv.context.os = r.Str();
  iv.context.architecture = r.Str();
  iv.start_time = r.Double();
  iv.duration_s = r.Double();
  iv.cpu_seconds = r.Double();
  iv.peak_memory_bytes = r.I64();
  iv.exit_code = static_cast<int>(r.I64());
  iv.succeeded = r.U8() != 0;
  uint32_t nconsumed = r.U32();
  for (uint32_t i = 0; i < nconsumed && r.ok; ++i) {
    iv.consumed_replicas.push_back(r.Str());
  }
  uint32_t nproduced = r.U32();
  for (uint32_t i = 0; i < nproduced && r.ok; ++i) {
    iv.produced_replicas.push_back(r.Str());
  }
  iv.annotations = GetAttrs(r);
  return iv;
}

// ---------------------------------------------------------------------
// Posting blobs. The writer pads to an 8-byte payload offset before
// each blob; the header is 72 bytes (a multiple of 8), so payload
// alignment equals file alignment and — the mapping being page-aligned
// — absolute pointer alignment, which is what PostingBlocks::Parse
// checks before borrowing.
// ---------------------------------------------------------------------

void PutPosting(std::string* out, const PostingBlocks& list) {
  PadTo8(out);
  list.AppendSerialized(out);
}

PostingListPtr GetPosting(Reader& r,
                          const std::shared_ptr<const void>& keepalive) {
  r.Align8();
  if (!r.ok) return nullptr;
  size_t consumed = 0;
  Result<PostingBlocks> parsed =
      PostingBlocks::Parse(r.p + r.pos, r.n - r.pos, &consumed, keepalive);
  if (!parsed.ok()) {
    r.ok = false;
    return nullptr;
  }
  r.pos += consumed;
  return std::make_shared<const PostingBlocks>(std::move(parsed).value());
}

// ---------------------------------------------------------------------
// Whole-image parse target. Everything is decoded and validated into
// this staging struct before one byte of catalog state is touched, so
// a rejected snapshot leaves the catalog pristine for the replay
// fallback.
// ---------------------------------------------------------------------

struct FlatImage {
  std::vector<std::string> symbols;  // names in id order
  TypeRegistry types;
  std::vector<Dataset> datasets;
  std::vector<Transformation> transformations;
  std::vector<Derivation> derivations;
  std::vector<Replica> replicas;
  std::vector<Invocation> invocations;
  std::map<CatalogSnapshot::AttrKey, PostingListPtr> attr_index;
  std::map<uint64_t, PostingListPtr> type_index;
  std::map<SymbolTable::Id, PostingListPtr> consumers;
  std::map<SymbolTable::Id, PostingListPtr> producers;
  std::map<SymbolTable::Id, PostingListPtr> by_transformation;
  std::map<SymbolTable::Id, PostingListPtr> by_bare_transformation;
  PostingListPtr materialized;
  std::vector<CatalogChange> changelog;
};

Status ParseFlatImage(const uint8_t* payload, size_t size,
                      const std::shared_ptr<const void>& keepalive,
                      FlatImage* out) {
  Reader r{payload, size};

  uint32_t nsym = r.U32();
  for (uint32_t i = 0; i < nsym && r.ok; ++i) {
    out->symbols.push_back(r.Str());
  }
  if (!r.ok) return Status::ParseError("snapshot symbol table is malformed");
  std::set<std::string_view> known(out->symbols.begin(), out->symbols.end());

  for (int d = 0; d < kNumTypeDimensions && r.ok; ++d) {
    uint32_t ntypes = r.U32();
    for (uint32_t i = 0; i < ntypes && r.ok; ++i) {
      std::string name = r.Str();
      std::string parent = r.Str();
      if (!r.ok) break;
      // Entries were saved parents-first (sorted by depth), so Define
      // re-grows the hierarchy exactly; a failure means the section is
      // inconsistent, not just reordered.
      if (!out->types.Define(static_cast<TypeDimension>(d), name, parent)
               .ok()) {
        r.ok = false;
      }
    }
  }
  if (!r.ok) return Status::ParseError("snapshot type section is malformed");

  // Interned-object classes must resolve their names against the
  // symbol list — posting lists speak symbol ids, so an unresolvable
  // name would leave dangling ids after install.
  uint32_t nds = r.U32();
  for (uint32_t i = 0; i < nds && r.ok; ++i) {
    Dataset d = GetDataset(r);
    if (r.ok && known.count(d.name) == 0) r.ok = false;
    if (r.ok) out->datasets.push_back(std::move(d));
  }
  if (!r.ok) return Status::ParseError("snapshot dataset section is malformed");

  uint32_t ntr = r.U32();
  for (uint32_t i = 0; i < ntr && r.ok; ++i) {
    Transformation t = GetTransformation(r);
    if (r.ok && known.count(t.name()) == 0) r.ok = false;
    if (r.ok) out->transformations.push_back(std::move(t));
  }
  if (!r.ok) {
    return Status::ParseError("snapshot transformation section is malformed");
  }

  uint32_t ndv = r.U32();
  for (uint32_t i = 0; i < ndv && r.ok; ++i) {
    Derivation d = GetDerivation(r);
    if (r.ok && known.count(d.name()) == 0) r.ok = false;
    if (r.ok) out->derivations.push_back(std::move(d));
  }
  if (!r.ok) {
    return Status::ParseError("snapshot derivation section is malformed");
  }

  uint32_t nrp = r.U32();
  for (uint32_t i = 0; i < nrp && r.ok; ++i) {
    Replica rp = GetReplica(r);
    if (r.ok) out->replicas.push_back(std::move(rp));
  }
  if (!r.ok) return Status::ParseError("snapshot replica section is malformed");

  uint32_t niv = r.U32();
  for (uint32_t i = 0; i < niv && r.ok; ++i) {
    Invocation iv = GetInvocation(r);
    if (r.ok) out->invocations.push_back(std::move(iv));
  }
  if (!r.ok) {
    return Status::ParseError("snapshot invocation section is malformed");
  }

  uint32_t nattr = r.U32();
  for (uint32_t i = 0; i < nattr && r.ok; ++i) {
    uint32_t key_id = r.U32();
    std::string tagged = r.Str();
    if (r.ok && key_id >= nsym) r.ok = false;
    PostingListPtr list = GetPosting(r, keepalive);
    if (r.ok) {
      out->attr_index.emplace(
          CatalogSnapshot::AttrKey{key_id, std::move(tagged)},
          std::move(list));
    }
  }
  uint32_t ntypeidx = r.U32();
  for (uint32_t i = 0; i < ntypeidx && r.ok; ++i) {
    uint64_t key = r.U64();
    if (r.ok && static_cast<uint32_t>(key & 0xffffffffu) >= nsym) r.ok = false;
    PostingListPtr list = GetPosting(r, keepalive);
    if (r.ok) out->type_index.emplace(key, std::move(list));
  }
  std::map<SymbolTable::Id, PostingListPtr>* id_maps[] = {
      &out->consumers, &out->producers, &out->by_transformation,
      &out->by_bare_transformation};
  for (auto* map : id_maps) {
    uint32_t count = r.U32();
    for (uint32_t i = 0; i < count && r.ok; ++i) {
      uint32_t id = r.U32();
      if (r.ok && id >= nsym) r.ok = false;
      PostingListPtr list = GetPosting(r, keepalive);
      if (r.ok) map->emplace(id, std::move(list));
    }
  }
  out->materialized = GetPosting(r, keepalive);
  if (!r.ok) return Status::ParseError("snapshot index section is malformed");

  uint32_t nchanges = r.U32();
  for (uint32_t i = 0; i < nchanges && r.ok; ++i) {
    CatalogChange change;
    change.version = r.U64();
    change.op = static_cast<char>(r.U8());
    change.kind = r.Str();
    change.name = r.Str();
    if (r.ok) out->changelog.push_back(std::move(change));
  }
  if (!r.ok) {
    return Status::ParseError("snapshot changelog section is malformed");
  }
  if (r.pos != r.n) {
    return Status::ParseError("snapshot payload has trailing bytes");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------
// VirtualDataCatalog persistence entry points
// ---------------------------------------------------------------------

Status VirtualDataCatalog::SaveSnapshotFile(const std::string& path) const {
  std::shared_lock lock(mu_);

  std::string payload;
  payload.reserve(1 << 16);

  // Symbols, in id order: re-interning them in this order on load
  // reproduces the exact same ids, which is what keeps the serialized
  // posting lists valid without any id remapping.
  PutU32(&payload, static_cast<uint32_t>(symbols_.size()));
  for (SymbolTable::Id id = 0; id < symbols_.size(); ++id) {
    PutStr(&payload, symbols_.NameOf(id));
  }

  // Type universe, parents-first per dimension so Define replays.
  for (int d = 0; d < kNumTypeDimensions; ++d) {
    const TypeHierarchy& hierarchy =
        types_.dimension(static_cast<TypeDimension>(d));
    std::vector<std::pair<int, std::string>> ordered;
    for (std::string_view name : hierarchy.AllTypes()) {
      Result<int> depth = hierarchy.DepthOf(name);
      ordered.emplace_back(depth.ok() ? *depth : 0, std::string(name));
    }
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    PutU32(&payload, static_cast<uint32_t>(ordered.size()));
    for (const auto& [depth, name] : ordered) {
      (void)depth;
      Result<std::string> parent = hierarchy.ParentOf(name);
      PutStr(&payload, name);
      PutStr(&payload,
             parent.ok() ? *parent : std::string(hierarchy.base_name()));
    }
  }

  PutU32(&payload, static_cast<uint32_t>(datasets_.size()));
  for (const auto& [name, entry] : datasets_) {
    (void)name;
    PutDataset(&payload, *entry.object);
  }
  PutU32(&payload, static_cast<uint32_t>(transformations_.size()));
  for (const auto& [name, entry] : transformations_) {
    (void)name;
    PutTransformation(&payload, *entry.object);
  }
  PutU32(&payload, static_cast<uint32_t>(derivations_.size()));
  for (const auto& [name, entry] : derivations_) {
    (void)name;
    PutDerivation(&payload, *entry.object);
  }
  PutU32(&payload, static_cast<uint32_t>(replicas_.size()));
  for (const auto& [id, replica] : replicas_) {
    (void)id;
    PutReplica(&payload, replica);
  }
  PutU32(&payload, static_cast<uint32_t>(invocations_.size()));
  for (const auto& [id, invocation] : invocations_) {
    (void)id;
    PutInvocation(&payload, invocation);
  }

  PutU32(&payload, static_cast<uint32_t>(attr_index_.size()));
  for (const auto& [key, list] : attr_index_) {
    PutU32(&payload, key.first);
    PutStr(&payload, key.second);
    PutPosting(&payload, list ? *list : PostingBlocks());
  }
  PutU32(&payload, static_cast<uint32_t>(type_index_.size()));
  for (const auto& [key, list] : type_index_) {
    PutU64(&payload, key);
    PutPosting(&payload, list ? *list : PostingBlocks());
  }
  const std::map<Id, PostingList>* id_maps[] = {
      &consumers_, &producers_, &by_transformation_, &by_bare_transformation_};
  for (const auto* map : id_maps) {
    PutU32(&payload, static_cast<uint32_t>(map->size()));
    for (const auto& [id, list] : *map) {
      PutU32(&payload, id);
      PutPosting(&payload, list ? *list : PostingBlocks());
    }
  }
  PutPosting(&payload, materialized_ ? *materialized_ : PostingBlocks());

  PutU32(&payload, static_cast<uint32_t>(changelog_.size()));
  for (const auto& change : changelog_) {
    PutU64(&payload, change->version);
    PutU8(&payload, static_cast<uint8_t>(change->op));
    PutStr(&payload, change->kind);
    PutStr(&payload, change->name);
  }

  std::string header;
  header.reserve(flatsnap::kHeaderSize);
  header.append(flatsnap::kMagic, sizeof(flatsnap::kMagic));
  PutU32(&header, flatsnap::kFormatVersion);
  PutU32(&header, flatsnap::kEndianCheck);
  PutU64(&header, payload.size());
  PutU32(&header, Crc32(payload));
  PutU32(&header, 0);  // header_crc, patched below
  PutU64(&header, version_seq_);
  PutU64(&header, next_replica_id_);
  PutU64(&header, next_invocation_id_);
  PutU64(&header, journal_records_);
  PutU32(&header, journal_chain_crc_);
  PutU32(&header, 0);  // reserved
  uint32_t header_crc = Crc32(header);
  std::string crc_bytes;
  PutU32(&crc_bytes, header_crc);
  header.replace(flatsnap::kOffHeaderCrc, 4, crc_bytes);

  std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("cannot create snapshot temp file '" + tmp + "'");
  }
  bool wrote =
      std::fwrite(header.data(), 1, header.size(), file) == header.size() &&
      (payload.empty() ||
       std::fwrite(payload.data(), 1, payload.size(), file) ==
           payload.size()) &&
      std::fflush(file) == 0;
  std::fclose(file);
  if (!wrote) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to snapshot temp file '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename snapshot into place at '" + path +
                           "'");
  }
  return Status::OK();
}

Status VirtualDataCatalog::OpenFromSnapshot(const std::string& path) {
  std::unique_lock lock(mu_);
  if (opened_) return Status::OK();
  opened_ = true;

  SnapshotLoadReport report;
  report.attempted = true;

  VDG_ASSIGN_OR_RETURN(std::vector<std::string> records, journal_->ReadAll());
  const bool durable = journal_->persistent();

  // All validation — header, checksums, journal anchor, full payload
  // parse — happens before `installed` flips, so a rejected snapshot
  // falls back to plain replay from pristine state. After the flip the
  // only fallible step left is tail replay, which is a real error (the
  // same journal damage would fail Open() too).
  bool installed = false;
  Status flat = [&]() -> Status {
    Result<std::shared_ptr<flatsnap::MappedFile>> mapped =
        flatsnap::MappedFile::Open(path);
    if (!mapped.ok()) return mapped.status();
    std::shared_ptr<flatsnap::MappedFile> file = *mapped;
    const uint8_t* data = file->data();
    const size_t size = file->size();

    if (size < flatsnap::kHeaderSize) {
      return Status::ParseError("snapshot file is truncated (no header)");
    }
    if (std::memcmp(data, flatsnap::kMagic, sizeof(flatsnap::kMagic)) != 0) {
      return Status::ParseError("bad snapshot magic");
    }
    uint32_t format = LoadU32(data + flatsnap::kOffFormatVersion);
    if (format != flatsnap::kFormatVersion) {
      return Status::FailedPrecondition("unsupported snapshot format version " +
                                        std::to_string(format));
    }
    if (LoadU32(data + flatsnap::kOffEndianCheck) != flatsnap::kEndianCheck) {
      return Status::FailedPrecondition("snapshot endianness mismatch");
    }
    char header_copy[flatsnap::kHeaderSize];
    std::memcpy(header_copy, data, flatsnap::kHeaderSize);
    std::memset(header_copy + flatsnap::kOffHeaderCrc, 0, 4);
    if (Crc32(std::string_view(header_copy, flatsnap::kHeaderSize)) !=
        LoadU32(data + flatsnap::kOffHeaderCrc)) {
      return Status::ParseError("snapshot header checksum mismatch");
    }
    uint64_t payload_size = LoadU64(data + flatsnap::kOffPayloadSize);
    if (payload_size != size - flatsnap::kHeaderSize) {
      return Status::ParseError("snapshot payload size mismatch");
    }
    std::string_view payload_view(
        reinterpret_cast<const char*>(data) + flatsnap::kHeaderSize,
        payload_size);
    if (Crc32(payload_view) != LoadU32(data + flatsnap::kOffPayloadCrc)) {
      return Status::ParseError("snapshot payload checksum mismatch");
    }

    // Journal anchor: the snapshot is usable only when the live journal
    // still begins with the exact record chain the image reflects.
    const uint64_t anchor_records =
        LoadU64(data + flatsnap::kOffJournalRecords);
    const uint32_t anchor_crc = LoadU32(data + flatsnap::kOffJournalChainCrc);
    if (!durable && anchor_records > 0) {
      return Status::FailedPrecondition(
          "snapshot is anchored to a journal but none is attached");
    }
    if (durable) {
      if (records.size() < anchor_records) {
        return Status::FailedPrecondition(
            "journal is shorter than the snapshot anchor (compacted or "
            "replaced)");
      }
      uint32_t chain = 0;
      for (uint64_t i = 0; i < anchor_records; ++i) {
        chain = Crc32Extend(chain, records[i]);
      }
      if (chain != anchor_crc) {
        return Status::FailedPrecondition(
            "journal does not extend the snapshot's record chain");
      }
    }

    FlatImage image;
    VDG_RETURN_IF_ERROR(ParseFlatImage(
        data + flatsnap::kHeaderSize, payload_size, file, &image));

    // ---- install (infallible from here) ----
    installed = true;
    for (const std::string& symbol : image.symbols) {
      symbols_.Intern(symbol);
    }
    types_ = std::move(image.types);
    for (Dataset& d : image.datasets) {
      Id id = symbols_.Find(d.name);
      std::string key = d.name;
      datasets_.emplace(
          std::move(key),
          ObjEntry<Dataset>{id, std::make_shared<const Dataset>(std::move(d))});
    }
    for (Transformation& t : image.transformations) {
      Id id = symbols_.Find(t.name());
      std::string key = t.name();
      transformations_.emplace(
          std::move(key),
          ObjEntry<Transformation>{
              id, std::make_shared<const Transformation>(std::move(t))});
    }
    for (Derivation& d : image.derivations) {
      Id id = symbols_.Find(d.name());
      derivations_by_signature_.emplace(d.Signature(), d.name());
      std::string key = d.name();
      derivations_.emplace(
          std::move(key),
          ObjEntry<Derivation>{
              id, std::make_shared<const Derivation>(std::move(d))});
    }
    for (Replica& rp : image.replicas) {
      replicas_by_dataset_.emplace(rp.dataset, rp.id);
      if (rp.valid) ++valid_replicas_by_dataset_[rp.dataset];
      std::string key = rp.id;
      replicas_.emplace(std::move(key), std::move(rp));
    }
    for (Invocation& iv : image.invocations) {
      invocations_by_derivation_.emplace(iv.derivation, iv.id);
      std::string key = iv.id;
      invocations_.emplace(std::move(key), std::move(iv));
    }
    attr_index_ = std::move(image.attr_index);
    type_index_ = std::move(image.type_index);
    consumers_ = std::move(image.consumers);
    producers_ = std::move(image.producers);
    by_transformation_ = std::move(image.by_transformation);
    by_bare_transformation_ = std::move(image.by_bare_transformation);
    materialized_ = image.materialized != nullptr
                        ? image.materialized
                        : std::make_shared<const PostingBlocks>();
    for (CatalogChange& change : image.changelog) {
      changelog_.push_back(
          std::make_shared<const CatalogChange>(std::move(change)));
    }
    version_seq_ = LoadU64(data + flatsnap::kOffVersionSeq);
    next_replica_id_ = LoadU64(data + flatsnap::kOffNextReplicaId);
    next_invocation_id_ = LoadU64(data + flatsnap::kOffNextInvocationId);
    journal_records_ = durable ? anchor_records : 0;
    journal_chain_crc_ = durable ? anchor_crc : 0;
    report.snapshot_version = version_seq_;

    // ---- journal-tail replay: only what the image has not seen ----
    replaying_ = true;
    for (size_t i = anchor_records; i < records.size(); ++i) {
      Status applied = ApplyRecord(records[i]);
      if (!applied.ok()) {
        replaying_ = false;
        return Status::IoError("journal replay failed on record '" +
                               records[i] + "': " + applied.ToString());
      }
      ++journal_records_;
      journal_chain_crc_ = Crc32Extend(journal_chain_crc_, records[i]);
      ++report.tail_records_replayed;
    }
    replaying_ = false;
    report.total_records_replayed = report.tail_records_replayed;
    report.used = true;
    return Status::OK();
  }();

  if (flat.ok() || installed) {
    // Either a clean flat-snapshot load, or tail replay failed on
    // installed state (publish what applied, mirroring Open()).
    Dirty all;
    all.datasets = all.transformations = all.derivations = all.attr =
        all.type = all.consumers = all.producers = all.by_transformation =
            all.by_bare = all.materialized = all.types_registry =
                all.changelog = true;
    dirty_ = all;
    PublishSnapshotLocked();
    last_snapshot_load_ = report;
    return flat;
  }

  // Fallback: the snapshot was rejected before any state was installed;
  // recover exactly as Open() would, remembering why.
  report.used = false;
  report.snapshot_version = 0;
  report.fallback_reason = flat.ToString();
  replaying_ = true;
  for (const std::string& record : records) {
    Status applied = ApplyRecord(record);
    if (!applied.ok()) {
      replaying_ = false;
      PublishSnapshotLocked();
      last_snapshot_load_ = report;
      return Status::IoError("journal replay failed on record '" + record +
                             "': " + applied.ToString());
    }
    ++journal_records_;
    journal_chain_crc_ = Crc32Extend(journal_chain_crc_, record);
    ++report.total_records_replayed;
  }
  replaying_ = false;
  PublishSnapshotLocked();
  last_snapshot_load_ = report;
  return Status::OK();
}

VirtualDataCatalog::SnapshotLoadReport VirtualDataCatalog::last_snapshot_load()
    const {
  std::shared_lock lock(mu_);
  return last_snapshot_load_;
}

}  // namespace vdg
