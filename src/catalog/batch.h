#ifndef VDG_CATALOG_BATCH_H_
#define VDG_CATALOG_BATCH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "schema/dataset.h"
#include "schema/derivation.h"
#include "schema/transformation.h"

namespace vdg {

/// One mutation inside an ApplyBatch call. Mirrors the catalog's
/// single-mutation vocabulary; a batch of N of these commits under one
/// lock acquisition, one version bump, and one journal flush.
///
/// Ops later in a batch may reference ids assigned to earlier ops:
/// RecordInvocationOp::produced_from_ops names earlier AddReplicaOp
/// positions whose assigned replica ids are appended to
/// produced_replicas, and AnnotateOp::name_from_op redirects the
/// target name to an earlier op's assigned id. This is what lets an
/// executor ship its whole provenance write-back — replicas, the
/// invocation consuming them, and annotations on that invocation — as
/// one batch even though the ids do not exist until the batch runs.
struct CatalogMutation {
  struct DefineDatasetOp {
    Dataset dataset;
  };
  struct DefineTransformationOp {
    Transformation transformation;
  };
  struct DefineDerivationOp {
    Derivation derivation;
  };
  struct AnnotateOp {
    std::string kind;
    std::string name;
    std::string key;
    AttributeValue value;
    /// When set, `name` is replaced by the id assigned to the batch op
    /// at this position (which must precede this op and have assigned
    /// an id).
    std::optional<size_t> name_from_op;
  };
  struct AddReplicaOp {
    Replica replica;
  };
  struct RecordInvocationOp {
    Invocation invocation;
    /// Positions of earlier AddReplicaOp entries whose assigned ids
    /// are appended to invocation.produced_replicas.
    std::vector<size_t> produced_from_ops;
  };
  struct SetDatasetSizeOp {
    std::string name;
    int64_t size_bytes = 0;
  };
  struct InvalidateReplicaOp {
    std::string id;
  };

  std::variant<DefineDatasetOp, DefineTransformationOp, DefineDerivationOp,
               AnnotateOp, AddReplicaOp, RecordInvocationOp, SetDatasetSizeOp,
               InvalidateReplicaOp>
      op;

  // Convenience factories so call sites read like the single-op API.
  static CatalogMutation DefineDataset(Dataset dataset) {
    return {DefineDatasetOp{std::move(dataset)}};
  }
  static CatalogMutation DefineTransformation(Transformation transformation) {
    return {DefineTransformationOp{std::move(transformation)}};
  }
  static CatalogMutation DefineDerivation(Derivation derivation) {
    return {DefineDerivationOp{std::move(derivation)}};
  }
  static CatalogMutation Annotate(std::string kind, std::string name,
                                  std::string key, AttributeValue value) {
    return {AnnotateOp{std::move(kind), std::move(name), std::move(key),
                       std::move(value), std::nullopt}};
  }
  static CatalogMutation AnnotateAssigned(std::string kind, size_t from_op,
                                          std::string key,
                                          AttributeValue value) {
    return {AnnotateOp{std::move(kind), std::string(), std::move(key),
                       std::move(value), from_op}};
  }
  static CatalogMutation AddReplica(Replica replica) {
    return {AddReplicaOp{std::move(replica)}};
  }
  static CatalogMutation RecordInvocation(Invocation invocation,
                                          std::vector<size_t> produced_from_ops = {}) {
    return {RecordInvocationOp{std::move(invocation),
                               std::move(produced_from_ops)}};
  }
  static CatalogMutation SetDatasetSize(std::string name, int64_t size_bytes) {
    return {SetDatasetSizeOp{std::move(name), size_bytes}};
  }
  static CatalogMutation InvalidateReplica(std::string id) {
    return {InvalidateReplicaOp{std::move(id)}};
  }
};

struct BatchOptions {
  /// When true, the first failing op aborts the rest of the batch
  /// (skipped ops report FailedPrecondition). When false — the
  /// default, matching
  /// what N independent single-op calls would do — each op runs
  /// regardless of earlier failures.
  bool stop_on_error = false;

  /// Client-supplied idempotency key. Empty (the default) means the
  /// batch has at-most-once semantics only as far as the transport
  /// guarantees them. When non-empty, a `CatalogServer` records the
  /// batch's outcome in a bounded dedup window keyed by this token:
  /// a retried batch with the same token returns the recorded
  /// `BatchResult` (including assigned ids) instead of re-applying the
  /// mutations, making ApplyBatch safe to retry across lost replies
  /// and replica failover. Tokens must be unique per logical batch;
  /// `ResilientCatalogClient` generates one automatically when the
  /// caller left it empty. The in-process catalog ignores the field.
  std::string idempotency_token;
};

/// Per-op outcome of an ApplyBatch call. The batch commits whatever
/// subset of ops succeeded under ONE version bump: `version` is the
/// catalog version after the batch (unchanged when nothing applied),
/// and every changelog entry the batch produced carries that single
/// version, so ChangesSince delivers a batch all-or-nothing.
struct BatchResult {
  std::vector<Status> statuses;       // one per op, in order
  std::vector<std::string> assigned_ids;  // result-api-ok: per op; empty
                                          // unless the op assigned one
                                          // (replica / invocation ids)
  size_t applied = 0;                 // ops that succeeded
  uint64_t version = 0;               // catalog version after commit
  Status first_error = Status::OK();  // first failing op's status
};

}  // namespace vdg

#endif  // VDG_CATALOG_BATCH_H_
