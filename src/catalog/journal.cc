#include "catalog/journal.h"

#include <cstdio>
#include <filesystem>

#include "common/hash.h"

namespace vdg {

namespace {

// A checksummed line is "~" + 8 lowercase hex digits + "|" + payload.
// '~' never starts a codec record (records begin with an uppercase
// tag), so legacy checksum-less journals parse unambiguously.
constexpr char kCrcMarker = '~';
constexpr size_t kCrcPrefixLen = 10;  // '~' + 8 hex + '|'

std::string WithChecksum(const std::string& record) {
  uint32_t crc = Crc32(record);
  char prefix[kCrcPrefixLen + 1];
  std::snprintf(prefix, sizeof(prefix), "%c%08x|", kCrcMarker, crc);
  return std::string(prefix, kCrcPrefixLen) + record;
}

bool IsHex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// Validates one checksummed line and extracts its payload. Returns
/// false when the prefix is malformed or the CRC does not match.
bool CheckLine(std::string_view line, std::string_view* payload) {
  if (line.size() < kCrcPrefixLen || line[0] != kCrcMarker ||
      line[kCrcPrefixLen - 1] != '|') {
    return false;
  }
  uint32_t stored = 0;
  for (size_t i = 1; i < kCrcPrefixLen - 1; ++i) {
    if (!IsHex(line[i])) return false;
    char c = line[i];
    stored = stored * 16 +
             static_cast<uint32_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  }
  std::string_view body = line.substr(kCrcPrefixLen);
  if (Crc32(body) != stored) return false;
  *payload = body;
  return true;
}

}  // namespace

FileJournal::~FileJournal() {
  // Best effort: hand any buffered group-commit records to the OS so a
  // clean shutdown loses nothing even if the owner forgot to Flush.
  Status flushed = Flush();
  (void)flushed;
  if (file_ != nullptr) std::fclose(file_);
}

Status FileJournal::EnsureOpen() {
  if (file_ != nullptr) return Status::OK();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open journal for append: " + path_);
  }
  return Status::OK();
}

Status FileJournal::Append(const std::string& record) {
  // Surface open errors at append time, but buffer the line itself:
  // the write (and its durability point) happens at Flush, so a batch
  // of N appends costs one fwrite+fflush instead of N.
  VDG_RETURN_IF_ERROR(EnsureOpen());
  pending_ += WithChecksum(record);
  pending_ += '\n';
  return Status::OK();
}

Status FileJournal::Flush() {
  if (pending_.empty()) return Status::OK();
  VDG_RETURN_IF_ERROR(EnsureOpen());
  if (std::fwrite(pending_.data(), 1, pending_.size(), file_) !=
      pending_.size()) {
    return Status::IoError("short write to journal: " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("fflush failed: " + path_);
  }
  pending_.clear();
  return Status::OK();
}

Result<std::vector<std::string>> FileJournal::ReadAll() {
  last_recovery_ = JournalTailRecovery{};
  // Flush pending appends so we read our own writes.
  VDG_RETURN_IF_ERROR(Flush());
  if (file_ != nullptr) std::fflush(file_);
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) {
    // A missing file is an empty journal (fresh catalog).
    return std::vector<std::string>{};
  }
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
    content.append(buf, n);
  }
  std::fclose(in);

  std::vector<std::string> records;
  size_t pos = 0;            // start of the current line
  size_t valid_end = 0;      // byte offset just past the last good line
  std::string bad_reason;
  while (pos < content.size()) {
    size_t nl = content.find('\n', pos);
    bool complete = nl != std::string::npos;
    std::string_view line(content.data() + pos,
                          (complete ? nl : content.size()) - pos);
    if (!line.empty() && line[0] == kCrcMarker) {
      std::string_view payload;
      if (!CheckLine(line, &payload)) {
        if (!complete || nl + 1 >= content.size()) {
          // Damage at the very tail (torn append, or rot in the final
          // record): nothing committed lies beyond it, so truncating
          // back to the last good record is lossless.
          bad_reason = complete ? "checksum mismatch in final journal record"
                                : "torn checksummed record at journal tail";
          break;
        }
        // Mid-file corruption with committed records after it: losing
        // those to a tail truncation would destroy good data. Skip
        // just the bad record and keep replaying.
        ++last_recovery_.records_skipped;
        last_recovery_.reason =
            "checksum mismatch in journal record (skipped)";
        pos = nl + 1;
        valid_end = pos;
        continue;
      }
      records.emplace_back(payload);
    } else if (!line.empty()) {
      // Legacy checksum-less record (seed journals): accepted as-is,
      // including a newline-less tail (indistinguishable from torn).
      records.emplace_back(line);
    }
    pos = complete ? nl + 1 : content.size();
    valid_end = pos;
  }

  last_recovery_.records_recovered = records.size();
  last_recovery_.valid_bytes = valid_end;
  if (!bad_reason.empty() && valid_end < content.size()) {
    // Corrupt tail: keep the valid prefix, physically truncate the
    // rest so future appends extend a clean log.
    last_recovery_.truncated = true;
    last_recovery_.truncated_bytes = content.size() - valid_end;
    last_recovery_.reason = bad_reason;
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
    std::error_code ec;
    std::filesystem::resize_file(path_, valid_end, ec);
    if (ec) {
      return Status::IoError("cannot truncate corrupt journal tail of " +
                             path_ + ": " + ec.message());
    }
  }
  return records;
}

Status FileJournal::Sync() {
  VDG_RETURN_IF_ERROR(Flush());
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IoError("fflush failed: " + path_);
  }
  return Status::OK();
}

Status FileJournal::Rewrite(const std::vector<std::string>& records) {
  // Buffered appends are subsumed by the compacted state snapshot the
  // caller passes in; writing them first would only duplicate them.
  pending_.clear();
  std::string temp_path = path_ + ".compact";
  std::FILE* out = std::fopen(temp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IoError("cannot open " + temp_path + " for compaction");
  }
  for (const std::string& record : records) {
    std::string line = WithChecksum(record);
    if (std::fwrite(line.data(), 1, line.size(), out) != line.size() ||
        std::fputc('\n', out) == EOF) {
      std::fclose(out);
      std::remove(temp_path.c_str());
      return Status::IoError("short write during compaction: " + temp_path);
    }
  }
  if (std::fflush(out) != 0 || std::fclose(out) != 0) {
    std::remove(temp_path.c_str());
    return Status::IoError("cannot finalize compacted journal");
  }
  // Close the live handle before replacing the file underneath it.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    return Status::IoError("cannot replace journal with compacted copy");
  }
  return Status::OK();
}

}  // namespace vdg
