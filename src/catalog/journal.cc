#include "catalog/journal.h"

#include <cstdio>

namespace vdg {

FileJournal::~FileJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileJournal::EnsureOpen() {
  if (file_ != nullptr) return Status::OK();
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IoError("cannot open journal for append: " + path_);
  }
  return Status::OK();
}

Status FileJournal::Append(const std::string& record) {
  VDG_RETURN_IF_ERROR(EnsureOpen());
  if (std::fwrite(record.data(), 1, record.size(), file_) != record.size() ||
      std::fputc('\n', file_) == EOF) {
    return Status::IoError("short write to journal: " + path_);
  }
  return Status::OK();
}

Result<std::vector<std::string>> FileJournal::ReadAll() {
  // Flush pending appends so we read our own writes.
  if (file_ != nullptr) std::fflush(file_);
  std::FILE* in = std::fopen(path_.c_str(), "rb");
  if (in == nullptr) {
    // A missing file is an empty journal (fresh catalog).
    return std::vector<std::string>{};
  }
  std::vector<std::string> records;
  std::string line;
  int c;
  while ((c = std::fgetc(in)) != EOF) {
    if (c == '\n') {
      records.push_back(line);
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  std::fclose(in);
  if (!line.empty()) records.push_back(line);  // tolerate torn tail
  return records;
}

Status FileJournal::Sync() {
  if (file_ == nullptr) return Status::OK();
  if (std::fflush(file_) != 0) {
    return Status::IoError("fflush failed: " + path_);
  }
  return Status::OK();
}

Status FileJournal::Rewrite(const std::vector<std::string>& records) {
  std::string temp_path = path_ + ".compact";
  std::FILE* out = std::fopen(temp_path.c_str(), "wb");
  if (out == nullptr) {
    return Status::IoError("cannot open " + temp_path + " for compaction");
  }
  for (const std::string& record : records) {
    if (std::fwrite(record.data(), 1, record.size(), out) !=
            record.size() ||
        std::fputc('\n', out) == EOF) {
      std::fclose(out);
      std::remove(temp_path.c_str());
      return Status::IoError("short write during compaction: " + temp_path);
    }
  }
  if (std::fflush(out) != 0 || std::fclose(out) != 0) {
    std::remove(temp_path.c_str());
    return Status::IoError("cannot finalize compacted journal");
  }
  // Close the live handle before replacing the file underneath it.
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (std::rename(temp_path.c_str(), path_.c_str()) != 0) {
    return Status::IoError("cannot replace journal with compacted copy");
  }
  return Status::OK();
}

}  // namespace vdg
