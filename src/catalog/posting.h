#ifndef VDG_CATALOG_POSTING_H_
#define VDG_CATALOG_POSTING_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace vdg {

/// A compressed posting list of 32-bit symbol ids with multiset
/// semantics, replacing the flat sorted-vector lists the snapshot
/// indexes used to hold.
///
/// Layout: ids are partitioned into fixed-span blocks keyed by the
/// high 16 bits (the roaring-bitmap container scheme). Each block
/// carries a {key, count, min16, max16} header and stores its low-16
/// values either as a sorted uint16 array (sparse) or as a 65536-bit
/// bitmap (dense, past kBitmapThreshold entries) — so a list of L ids
/// costs at most 2 bytes per id and at most 8 KiB per dense block,
/// against 4 bytes per id before.
///
/// Ids are kept in *id-value* order (not name order): integer order is
/// what makes galloping intersection and word-wise bitmap AND possible.
/// Callers that must present results in name order re-sort the (small)
/// final candidate set — see CatalogView.
///
/// Duplicates (one derivation naming the same dataset twice) are kept
/// out of the blocks: the block structure is the distinct-id set, and
/// a small sorted (id, extra occurrences) side table preserves multiset
/// cardinality for enumeration. Intersections are set-semantics — every
/// consumer deduplicates anyway.
///
/// A block's payload may be *borrowed* from an mmap-ed flat snapshot
/// instead of owned: Parse() points blocks straight into the buffer
/// (zero copy) and `keepalive` pins the mapping. Mutating a borrowed
/// block first materializes it; everything else never writes through
/// the borrowed pointers.
///
/// Mutation is writer-side only, on a privately owned copy (the
/// catalog's copy-on-write discipline); published lists are immutable.
class PostingBlocks {
 public:
  using Id = uint32_t;

  static constexpr uint32_t kSpanBits = 16;
  /// Ids covered by one block (the fixed block span).
  static constexpr uint32_t kSpan = 1u << kSpanBits;
  static constexpr uint32_t kBitmapWords = kSpan / 64;  // 1024
  /// Array blocks convert to bitmaps at this many entries (density
  /// 1/16, the roaring threshold: beyond it the bitmap is smaller).
  static constexpr uint32_t kBitmapThreshold = 4096;

  PostingBlocks() = default;

  /// Adds one occurrence of `id` (multiset insert).
  void Add(Id id);
  /// Removes one occurrence of `id`; no-op when absent.
  void Remove(Id id);

  bool Contains(Id id) const;
  /// Occurrences of `id` (0 when absent).
  uint32_t CountOf(Id id) const;

  /// Total occurrences including duplicates — the historical
  /// vector-list size, used for planner selectivity estimates.
  size_t size() const { return total_; }
  /// Distinct ids.
  size_t distinct() const { return distinct_; }
  bool empty() const { return distinct_ == 0; }
  size_t block_count() const { return blocks_.size(); }

  /// Calls `fn(Id)` for every distinct id, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Block& b : blocks_) {
      const Id base = static_cast<Id>(b.key) << kSpanBits;
      if (b.bitmap) {
        const uint64_t* words = b.bits();
        for (uint32_t w = b.min16 / 64; w <= b.max16 / 64; ++w) {
          uint64_t bits = words[w];
          while (bits != 0) {
            const uint32_t bit = CountTrailingZeros(bits);
            fn(base | (w * 64 + bit));
            bits &= bits - 1;
          }
        }
      } else {
        const uint16_t* vals = b.array();
        for (uint32_t i = 0; i < b.count; ++i) fn(base | vals[i]);
      }
    }
  }

  /// Calls `fn(Id)` once per *occurrence* (duplicates expanded),
  /// ascending by id.
  template <typename Fn>
  void ForEachOccurrence(Fn&& fn) const {
    size_t dup = 0;
    ForEach([&](Id id) {
      uint32_t times = 1;
      while (dup < extra_.size() && extra_[dup].first < id) ++dup;
      if (dup < extra_.size() && extra_[dup].first == id) {
        times += extra_[dup].second;
      }
      for (uint32_t i = 0; i < times; ++i) fn(id);
    });
  }

  /// The full multiset as a sorted id vector (tests, small lists).
  std::vector<Id> ToVector() const;

  /// Distinct ids common to `a` and `b`, ascending. Kernel selection
  /// per aligned block pair: word-AND for bitmap x bitmap, probe for
  /// array x bitmap, galloping (exponential search) for skewed
  /// array x array, linear merge otherwise; block min/max headers skip
  /// non-overlapping pairs without touching payloads.
  static std::vector<Id> Intersect(const PostingBlocks& a,
                                   const PostingBlocks& b);

  /// In-place `*candidates &= b` for an ascending distinct id vector —
  /// the progressive-intersection step after the first pair.
  static void IntersectWith(std::vector<Id>* candidates,
                            const PostingBlocks& b);

  /// Multiset union (distinct sets merged, duplicate counts added).
  static PostingBlocks Union(const PostingBlocks& a, const PostingBlocks& b);

  // --- Flat-snapshot serialization ---------------------------------

  /// Appends the serialized form to `out`. The encoding is relocatable
  /// and self-delimiting; block payloads are padded so that when the
  /// blob starts at an 8-byte-aligned offset, every bitmap word sits
  /// 8-byte aligned and every array 2-byte aligned (the mmap-borrow
  /// contract).
  void AppendSerialized(std::string* out) const;

  /// Parses one serialized blob from `data`. `*consumed` receives the
  /// encoded length. When `keepalive` is non-null and the payload
  /// alignment holds, block payloads are *borrowed* from `data`
  /// (zero-copy; the caller guarantees `data` outlives the result via
  /// `keepalive`); otherwise payloads are copied into owned storage.
  static Result<PostingBlocks> Parse(const uint8_t* data, size_t size,
                                     size_t* consumed,
                                     std::shared_ptr<const void> keepalive);

 private:
  struct Block {
    uint32_t key = 0;    // id >> kSpanBits
    uint32_t count = 0;  // distinct ids in this block
    uint16_t min16 = 0;  // smallest low-16 value present
    uint16_t max16 = 0;  // largest low-16 value present
    bool bitmap = false;

    // Exactly one representation is active (per `bitmap`); storage is
    // either owned or borrowed (ext_* non-null) from an mmap buffer.
    std::vector<uint16_t> own_array;
    std::vector<uint64_t> own_bits;
    const uint16_t* ext_array = nullptr;
    const uint64_t* ext_bits = nullptr;

    const uint16_t* array() const {
      return ext_array != nullptr ? ext_array : own_array.data();
    }
    const uint64_t* bits() const {
      return ext_bits != nullptr ? ext_bits : own_bits.data();
    }
  };

  static uint32_t CountTrailingZeros(uint64_t v);

  /// Index of the block with `key`, or blocks_.size() when absent.
  size_t FindBlock(uint32_t key) const;
  /// Copies borrowed storage into owned vectors (pre-mutation).
  static void Materialize(Block* b);
  static void ToBitmap(Block* b);
  static void ToArray(Block* b);
  static bool BlockContains(const Block& b, uint16_t low);

  static void IntersectBlocks(const Block& x, const Block& y, Id base,
                              std::vector<Id>* out);

  std::vector<Block> blocks_;  // sorted by key
  /// (id, extra occurrences beyond the first), sorted by id.
  std::vector<std::pair<Id, uint32_t>> extra_;
  size_t total_ = 0;
  size_t distinct_ = 0;
  /// Pins the mmap buffer borrowed blocks point into.
  std::shared_ptr<const void> keepalive_;
};

}  // namespace vdg

#endif  // VDG_CATALOG_POSTING_H_
