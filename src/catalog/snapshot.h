#ifndef VDG_CATALOG_SNAPSHOT_H_
#define VDG_CATALOG_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "catalog/posting.h"
#include "catalog/query.h"
#include "common/name_list.h"
#include "common/status.h"
#include "common/strings.h"
#include "schema/dataset.h"
#include "schema/derivation.h"
#include "schema/transformation.h"
#include "types/type_system.h"

namespace vdg {

/// One entry of a catalog's bounded changelog: which object changed at
/// which edit version. Federated indexes consume these to refresh
/// incrementally instead of rescanning whole catalogs. Replica
/// mutations are recorded as an upsert of their *dataset* (the
/// index-visible effect is the dataset's materialized bit flipping);
/// invocation and type changes are recorded under their own kinds so
/// consumers can skip them. All mutations of one ApplyBatch share a
/// single version, so a delta either contains a whole batch or none of
/// it.
struct CatalogChange {
  uint64_t version = 0;  // catalog version after the mutation
  char op = 'U';         // 'U' upsert, 'D' delete
  std::string kind;  // "dataset"|"transformation"|"derivation"|"invocation"|"type"
  std::string name;  // object name (or id) within the catalog
};

namespace snapshot_internal {

/// Tagged wire form of an attribute value, the value half of the
/// attribute-index key. Numbers collapse to one text form so int 5 and
/// double 5.0 index identically, matching AttributePredicate's
/// coercing comparison; the wire form (not the %.6g display form) is
/// used so doubles differing past the sixth significant digit get
/// distinct posting lists.
inline std::string TaggedAttrValue(const AttributeValue& value) {
  std::string out;
  if (value.AsNumber().has_value()) {
    out = "n:";
  } else if (value.is_bool()) {
    out = "b:";
  } else {
    out = "s:";
  }
  out += value.ToWireString();
  return out;
}

/// Packs one (dimension, interned type-name) pair into the type-index
/// key.
inline uint64_t PackTypeKey(TypeDimension dim, SymbolTable::Id type_id) {
  return (static_cast<uint64_t>(dim) << 32) | static_cast<uint64_t>(type_id);
}

}  // namespace snapshot_internal

/// An immutable, internally consistent picture of one catalog version:
/// the object rows, every posting-list index, the materialized set,
/// the type universe, and the changelog window, all as shared
/// structures that are never mutated after publication. The writer
/// publishes a fresh CatalogSnapshot after every commit (copying only
/// the components that changed — the small-delta path; untouched
/// components are shared with the previous snapshot), and readers pin
/// one by copying the shared_ptr under the catalog's snapshot-slot
/// mutex (held only for the copy).
///
/// Interning: object names, attribute keys, and type names are interned
/// into 32-bit symbol ids (`symbols`); posting lists are compressed
/// id-ordered block structures (PostingBlocks), and index keys compare
/// ids instead of strings.
struct CatalogSnapshot {
  using Id = SymbolTable::Id;
  /// Compressed block-format posting list in id-value order (multiset:
  /// one derivation naming the same dataset twice counts twice). Shared
  /// so a per-key copy-on-write update leaves prior snapshots
  /// untouched. Name-ordered output is reconstructed by mapping
  /// surviving ids through `*_row_of_id` into the name-sorted rows.
  using PostingList = std::shared_ptr<const PostingBlocks>;
  /// (interned attribute key, tagged wire value).
  using AttrKey = std::pair<Id, std::string>;

  template <typename T>
  struct Row {
    std::string_view name;  // into symbol storage, kept alive by `symbols`
    Id id = 0;
    std::shared_ptr<const T> object;
  };
  template <typename T>
  using Rows = std::vector<Row<T>>;  // sorted by name

  uint64_t version = 0;
  SymbolTable::View symbols;
  std::shared_ptr<const TypeRegistry> types;

  std::shared_ptr<const Rows<Dataset>> datasets;
  std::shared_ptr<const Rows<Transformation>> transformations;
  std::shared_ptr<const Rows<Derivation>> derivations;

  /// Inverse row maps: symbol id -> index into the name-sorted Rows
  /// above (kNoRow when the id is not an object of that class). O(1)
  /// id->row resolution on the query hot path, and the bridge from
  /// id-ordered posting lists back to name-ordered results (rows are
  /// name-sorted, so sorting surviving row indexes IS a name sort).
  /// Rebuilt together with the rows they mirror.
  static constexpr uint32_t kNoRow = 0xffffffffu;
  std::shared_ptr<const std::vector<uint32_t>> dataset_row_of_id;
  std::shared_ptr<const std::vector<uint32_t>> derivation_row_of_id;

  std::shared_ptr<const std::map<AttrKey, PostingList>> attr_index;
  std::shared_ptr<const std::map<uint64_t, PostingList>> type_index;
  std::shared_ptr<const std::map<Id, PostingList>> consumers;   // ds -> DVs
  std::shared_ptr<const std::map<Id, PostingList>> producers;   // ds -> DVs
  std::shared_ptr<const std::map<Id, PostingList>> by_transformation;
  std::shared_ptr<const std::map<Id, PostingList>> by_bare_transformation;
  /// Dataset ids with >= 1 valid replica.
  PostingList materialized;

  std::shared_ptr<const std::vector<std::shared_ptr<const CatalogChange>>>
      changelog;
};

/// A pinned read view over one CatalogSnapshot: every query below runs
/// entirely against the snapshot — no catalog lock, no interaction with
/// concurrent writers or journal compaction — and observes exactly one
/// version. Obtained from VirtualDataCatalog::View(); cheap to copy.
class CatalogView {
 public:
  explicit CatalogView(std::shared_ptr<const CatalogSnapshot> snap)
      : snap_(std::move(snap)) {}

  uint64_t version() const { return snap_->version; }
  const TypeRegistry& types() const { return *snap_->types; }
  const CatalogSnapshot& snapshot() const { return *snap_; }

  Result<Dataset> GetDataset(std::string_view name) const;
  Result<Transformation> GetTransformation(std::string_view name) const;
  Result<Derivation> GetDerivation(std::string_view name) const;
  bool HasDataset(std::string_view name) const;
  bool HasTransformation(std::string_view name) const;
  bool HasDerivation(std::string_view name) const;

  bool IsMaterialized(std::string_view dataset) const;
  Result<std::string> ProducerOf(std::string_view dataset) const;

  /// Name-list queries return pinned views: every NameList below holds
  /// this view's snapshot alive and its elements point straight into
  /// the frozen symbol spine — zero per-name copies from the row scan
  /// to the consumer, and the producer's symbol ids ride along for
  /// interned-space consumers. A list stays byte-stable across any
  /// concurrent catalog mutation, snapshot republication, or journal
  /// compaction (those build NEW snapshots; published ones are
  /// immutable).
  NameList ConsumersOf(std::string_view dataset) const;
  NameList DerivationsUsing(std::string_view transformation) const;

  NameList FindDatasets(const DatasetQuery& query) const;
  NameList FindTransformations(const TransformationQuery& query) const;
  NameList FindDerivations(const DerivationQuery& query) const;
  QueryPlan ExplainFindDatasets(const DatasetQuery& query) const;
  QueryPlan ExplainFindDerivations(const DerivationQuery& query) const;

  NameList AllDatasetNames() const;
  NameList AllTransformationNames() const;
  NameList AllDerivationNames() const;

  /// Every change with version > `since_version`, oldest first,
  /// answered from the snapshot's changelog window (anchored to the
  /// snapshot's version, so a reader interleaving ChangesSince with
  /// Find* calls on the same view gets one coherent story).
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) const;
  uint64_t changelog_floor() const;

 private:
  /// One enumerable candidate source for the planner.
  struct Posting {
    AccessPath path;
    std::string driver;
    CatalogSnapshot::PostingList ids;
  };
  /// `with_drivers` controls whether the human-readable driver strings
  /// are materialized: Explain* wants them for the plan, but Find* skips
  /// them — they cost per-query heap allocations on the hot path.
  std::vector<Posting> DatasetPostings(const DatasetQuery& query,
                                       bool with_drivers) const;
  std::vector<Posting> DerivationPostings(const DerivationQuery& query,
                                          bool with_drivers) const;

  const CatalogSnapshot::Row<Dataset>* FindDatasetRow(
      std::string_view name) const;
  const CatalogSnapshot::Row<Transformation>* FindTransformationRow(
      std::string_view name) const;
  const CatalogSnapshot::Row<Derivation>* FindDerivationRow(
      std::string_view name) const;

  std::shared_ptr<const CatalogSnapshot> snap_;
};

}  // namespace vdg

#endif  // VDG_CATALOG_SNAPSHOT_H_
