#ifndef VDG_CATALOG_CATALOG_H_
#define VDG_CATALOG_CATALOG_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/journal.h"
#include "catalog/query.h"
#include "schema/dataset.h"
#include "schema/derivation.h"
#include "schema/transformation.h"
#include "types/type_system.h"
#include "vdl/parser.h"

namespace vdg {

/// One entry of a catalog's bounded changelog: which object changed at
/// which edit version. Federated indexes consume these to refresh
/// incrementally instead of rescanning whole catalogs. Replica
/// mutations are recorded as an upsert of their *dataset* (the
/// index-visible effect is the dataset's materialized bit flipping);
/// invocation and type changes are recorded under their own kinds so
/// consumers can skip them.
struct CatalogChange {
  uint64_t version = 0;  // catalog version after the mutation
  char op = 'U';         // 'U' upsert, 'D' delete
  std::string kind;  // "dataset"|"transformation"|"derivation"|"invocation"|"type"
  std::string name;  // object name (or id) within the catalog
};

/// A Virtual Data Catalog (VDC, Section 4): the service that maintains
/// the five-object virtual data schema for one scope (a person, group,
/// or collaboration). The catalog is the single source of truth for
/// the planner, executor, provenance, and federation layers.
///
/// Storage: an in-memory object graph with secondary indexes; every
/// mutation streams through a CatalogJournal, so the same class serves
/// as the memory-only backend (NullJournal) and the persistent
/// log-file backend (FileJournal, recovered by replay in Open()).
///
/// Threading: safe for concurrent readers with serialized writers.
/// One `std::shared_mutex` guards the whole object graph — every
/// Find*/Get*/Has*/Explain*/All*Names/ChangesSince/navigation call
/// takes it shared, every mutation (Define*/Annotate/Remove*/replica
/// and invocation paths, Open, CompactJournal) takes it exclusive.
/// The journal backend is only touched while holding the exclusive
/// lock, so backends need no synchronization of their own. version()
/// reads an atomic and never blocks, letting federated indexes poll
/// staleness without contending with writers.
///
/// Lock ordering: the catalog acquires no other lock while holding
/// its own (it never calls into FederatedIndex or another catalog),
/// so catalog locks are always leaves — see FederatedIndex for the
/// index→catalog ordering rule. There are no lock-bypassing
/// accessors: the type universe is written via DefineType and read
/// via TypeConforms/HasType/TypesSnapshot, all under the lock.
class VirtualDataCatalog {
 public:
  /// `name` identifies this catalog in vdp:// URIs (the authority).
  explicit VirtualDataCatalog(
      std::string name,
      std::unique_ptr<CatalogJournal> journal = nullptr);

  VirtualDataCatalog(const VirtualDataCatalog&) = delete;
  VirtualDataCatalog& operator=(const VirtualDataCatalog&) = delete;

  /// Replays the journal into memory. Must be called once before use
  /// when a persistent journal is attached; a no-op otherwise.
  Status Open();

  const std::string& name() const { return name_; }

  /// Lock-protected conformance check against the catalog's type
  /// universe, safe to call while another thread runs DefineType.
  bool TypeConforms(const DatasetType& type, const DatasetType& against) const;

  /// True when `type_name` is defined in dimension `dim`.
  bool HasType(TypeDimension dim, std::string_view type_name) const;

  /// A point-in-time copy of the whole type universe, for enumeration
  /// and inspection. Communities define their own type names (Section
  /// 3.1); LoadTypePreset() installs the paper's Appendix-C hierarchy.
  /// The snapshot is detached: later DefineType calls do not appear in
  /// it, and mutating the copy never touches the catalog.
  TypeRegistry TypesSnapshot() const;

  // ------------------------------------------------------------------
  // Definition (the "composition" facet of Figure 5)
  // ------------------------------------------------------------------

  /// Defines a dataset-type name in one dimension's hierarchy,
  /// journaled so persistent catalogs recover their type universe.
  /// Prefer this over mutating types() directly when durability
  /// matters.
  Status DefineType(TypeDimension dim, std::string_view type_name,
                    std::string_view parent);
  /// Installs the Appendix-C preset hierarchy, journaled.
  Status LoadTypePreset();

  /// Defines a dataset. Its type components must be registered.
  Status DefineDataset(Dataset dataset);
  /// Defines a transformation after structural validation.
  Status DefineTransformation(Transformation transformation);
  /// Defines a derivation, type-checking it against its transformation
  /// (local TRs only; vdp:// TRs are checked by the federation layer).
  /// Output datasets that are not yet defined are auto-defined as
  /// virtual datasets typed from the formal argument, with `producer`
  /// set to this derivation.
  Status DefineDerivation(Derivation derivation);
  /// Registers a physical replica; assigns and returns its id.
  Result<std::string> AddReplica(Replica replica);
  /// Records an invocation; assigns and returns its id.
  Result<std::string> RecordInvocation(Invocation invocation);

  /// Imports every definition in a parsed VDL program, in order.
  Status ImportProgram(const VdlProgram& program);
  /// Parses and imports VDL source text.
  Status ImportVdl(std::string_view source);

  // ------------------------------------------------------------------
  // Point lookups
  // ------------------------------------------------------------------

  Result<Dataset> GetDataset(std::string_view name) const;
  Result<Transformation> GetTransformation(std::string_view name) const;
  Result<Derivation> GetDerivation(std::string_view name) const;
  Result<Replica> GetReplica(std::string_view id) const;
  Result<Invocation> GetInvocation(std::string_view id) const;

  bool HasDataset(std::string_view name) const;
  bool HasTransformation(std::string_view name) const;
  bool HasDerivation(std::string_view name) const;

  // ------------------------------------------------------------------
  // Updates & removal
  // ------------------------------------------------------------------

  /// Annotates an object with user metadata (Section 2
  /// "Documentation"). `kind` is one of "dataset", "transformation",
  /// "derivation", "replica", "invocation".
  Status Annotate(std::string_view kind, std::string_view name,
                  std::string_view key, AttributeValue value);

  /// Updates a dataset's logical size (learned after materialization).
  Status SetDatasetSize(std::string_view name, int64_t size_bytes);

  /// Marks a replica invalid (e.g. after upstream invalidation).
  Status InvalidateReplica(std::string_view id);

  Status RemoveDataset(std::string_view name);
  Status RemoveTransformation(std::string_view name);
  Status RemoveDerivation(std::string_view name);
  Status RemoveReplica(std::string_view id);

  // ------------------------------------------------------------------
  // Navigation (provenance building blocks)
  // ------------------------------------------------------------------

  /// Replicas of a dataset; `valid_only` filters invalidated copies.
  std::vector<Replica> ReplicasOf(std::string_view dataset,
                                  bool valid_only = true) const;
  /// True when the dataset has at least one valid replica (i.e. is
  /// materialized rather than virtual).
  bool IsMaterialized(std::string_view dataset) const;

  /// The derivation that produces `dataset` (NotFound for raw inputs).
  Result<std::string> ProducerOf(std::string_view dataset) const;
  /// Derivations that read `dataset`.
  std::vector<std::string> ConsumersOf(std::string_view dataset) const;
  /// Invocations recorded for `derivation`, in record order.
  std::vector<Invocation> InvocationsOf(std::string_view derivation) const;
  /// Derivations that invoke `transformation`.
  std::vector<std::string> DerivationsUsing(
      std::string_view transformation) const;

  // ------------------------------------------------------------------
  // Discovery
  // ------------------------------------------------------------------

  /// Discovery runs through a small predicate planner: each query's
  /// indexable conditions (attribute equalities, type conformance,
  /// materialization state, derivation edges) become posting lists,
  /// the most selective one drives enumeration, the rest are
  /// intersected, and only residual predicates are evaluated per
  /// candidate. Queries with no indexable condition fall back to a
  /// name-prefix range scan or a full scan.
  std::vector<std::string> FindDatasets(const DatasetQuery& query) const;
  std::vector<std::string> FindTransformations(
      const TransformationQuery& query) const;
  std::vector<std::string> FindDerivations(const DerivationQuery& query) const;

  /// The access path FindDatasets/FindDerivations would choose for
  /// `query`, without running it. Lets tests pin selectivity ordering
  /// and operators inspect why a query is slow.
  QueryPlan ExplainFindDatasets(const DatasetQuery& query) const;
  QueryPlan ExplainFindDerivations(const DerivationQuery& query) const;

  /// The "has this computation been performed before?" query (Section
  /// 1). Returns the name of an existing derivation with the same
  /// content signature, if any.
  Result<std::string> FindEquivalentDerivation(
      const Derivation& derivation) const;
  /// True when an equivalent derivation exists AND all of its outputs
  /// are materialized — re-use beats re-computation.
  bool HasBeenComputed(const Derivation& derivation) const;

  /// All names, for enumeration by indexes and tests.
  std::vector<std::string> AllDatasetNames() const;
  std::vector<std::string> AllTransformationNames() const;
  std::vector<std::string> AllDerivationNames() const;
  std::vector<std::string> AllReplicaIds() const;
  std::vector<std::string> AllInvocationIds() const;

  CatalogStats Stats() const;

  /// Monotonic edit counter; bumped by every successful mutation.
  /// Federated indexes use it to detect staleness cheaply; the load is
  /// atomic so staleness polls never contend with the catalog lock.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  /// Every change with version > `since_version`, oldest first.
  /// Exactly one change is recorded per version bump, so the result is
  /// complete over its range. Fails with ResourceExhausted when the bounded
  /// changelog no longer reaches back to `since_version` (the caller
  /// must fall back to a full rescan) and InvalidArgument when
  /// `since_version` is from the future.
  Result<std::vector<CatalogChange>> ChangesSince(
      uint64_t since_version) const;

  /// Oldest version ChangesSince can answer from (the window floor).
  uint64_t changelog_floor() const;

  /// Caps the in-memory changelog length (default 4096 changes).
  /// Shrinking may immediately raise changelog_floor().
  void set_changelog_capacity(size_t capacity);
  size_t changelog_capacity() const;

  Status SyncJournal();

  /// The minimal journal records that reproduce the catalog's current
  /// state (types, then datasets, transformations, derivations,
  /// replicas, invocations — a replay-safe order).
  std::vector<std::string> CurrentStateRecords() const;

  /// Log compaction: atomically rewrites the journal to
  /// CurrentStateRecords(), discarding superseded history (annotate
  /// re-puts, removed objects, invalidation flips). The in-memory
  /// state is untouched; reopening from the compacted journal yields
  /// an observationally identical catalog.
  Status CompactJournal();

  /// Whole-catalog dump as VDL text (DS/TR/DV declarations; replicas,
  /// invocations, and annotations are not expressible in text VDL —
  /// use ExportProgram + ProgramToXml for a lossless document).
  std::string ExportVdl() const;

  /// Whole-catalog dump as schema objects (annotations included).
  VdlProgram ExportProgram() const;

 private:
  // The *Locked tier holds the real implementations; the public
  // methods are thin shims that take mu_ (shared for reads, exclusive
  // for mutations) and delegate. Internal reentrancy — replay applies
  // records through the same code, DefineDerivation auto-defines
  // datasets, RemoveDataset cascades to replicas — stays inside one
  // lock acquisition because Locked methods only call Locked methods.
  Status ApplyRecord(const std::string& record);
  Status Journal(const std::string& record);
  const DatasetType* LookupDatasetType(std::string_view name) const;

  Status DefineTypeLocked(TypeDimension dim, std::string_view type_name,
                          std::string_view parent);
  Status DefineDatasetLocked(Dataset dataset);
  Status DefineTransformationLocked(Transformation transformation);
  Status DefineDerivationLocked(Derivation derivation);
  Result<std::string> AddReplicaLocked(Replica replica);
  Result<std::string> RecordInvocationLocked(Invocation invocation);
  Status ImportProgramLocked(const VdlProgram& program);
  Status RemoveDatasetLocked(std::string_view name);
  Status RemoveTransformationLocked(std::string_view name);
  Status RemoveDerivationLocked(std::string_view name);
  Status RemoveReplicaLocked(std::string_view id);
  bool IsMaterializedLocked(std::string_view dataset) const;
  Result<std::string> FindEquivalentDerivationLocked(
      const Derivation& derivation) const;
  VdlProgram ExportProgramLocked() const;
  std::vector<std::string> CurrentStateRecordsLocked() const;
  uint64_t ChangelogFloorLocked() const;

  /// Bumps version_ and appends the matching changelog entry (the two
  /// must move together so ChangesSince stays gap-free).
  void BumpVersion(char op, std::string_view kind, std::string_view name);

  /// One enumerable candidate source for the planner: a materialized,
  /// sorted, deduplicated name list plus its provenance.
  struct Posting {
    AccessPath path;
    std::string driver;
    std::vector<std::string> names;
  };
  /// Indexable posting lists for `query`, unsorted by selectivity.
  std::vector<Posting> DatasetPostings(const DatasetQuery& query) const;
  std::vector<Posting> DerivationPostings(const DerivationQuery& query) const;

  std::string name_;
  /// Reader-writer lock over the whole object graph, the secondary
  /// indexes, the changelog, and the journal backend.
  mutable std::shared_mutex mu_;
  std::unique_ptr<CatalogJournal> journal_;
  bool replaying_ = false;
  bool opened_ = false;
  /// Written only under the exclusive lock; atomic so version() can
  /// poll without locking.
  std::atomic<uint64_t> version_{0};

  TypeRegistry types_;

  std::map<std::string, Dataset, std::less<>> datasets_;
  std::map<std::string, Transformation, std::less<>> transformations_;
  std::map<std::string, Derivation, std::less<>> derivations_;
  std::map<std::string, Replica, std::less<>> replicas_;
  std::map<std::string, Invocation, std::less<>> invocations_;

  // Secondary indexes.
  /// Attribute equality index over dataset annotations:
  /// "key\x1f<normalized value>" -> dataset name. Lets FindDatasets
  /// answer kEq predicates without a full scan.
  void IndexDatasetAttributes(const Dataset& dataset);
  void UnindexDatasetAttributes(const Dataset& dataset);
  std::multimap<std::string, std::string, std::less<>> datasets_by_attr_;

  /// Type-conformance closure index: "<dim>\x1f<ancestor>" -> dataset
  /// name, for every ancestor (excluding the dimension base) of every
  /// non-empty component of the dataset's type. A `query.type` filter
  /// then reads the posting list of each constrained component instead
  /// of calling Conforms per row. Ancestry is immutable once a type is
  /// defined (parents can never be reassigned), so entries only change
  /// with the dataset itself.
  void IndexDatasetType(const Dataset& dataset);
  void UnindexDatasetType(const Dataset& dataset);
  std::multimap<std::string, std::string, std::less<>> datasets_by_type_;

  /// Datasets with >=1 valid replica, with the live count: the
  /// incremental materialized set. Maintained by every replica
  /// mutation path so IsMaterialized and the require_materialized /
  /// only_virtual filters are O(log n) lookups, and
  /// require_materialized queries can enumerate the set directly.
  void NoteReplicaState(const Replica* before, const Replica* after);
  std::map<std::string, size_t, std::less<>> valid_replicas_by_dataset_;

  std::multimap<uint64_t, std::string> derivations_by_signature_;
  std::multimap<std::string, std::string, std::less<>> replicas_by_dataset_;
  std::multimap<std::string, std::string, std::less<>>
      invocations_by_derivation_;
  std::multimap<std::string, std::string, std::less<>> consumers_by_dataset_;
  /// dataset -> derivations writing it (the dual of consumers_by_*).
  std::multimap<std::string, std::string, std::less<>> producers_by_dataset_;
  std::multimap<std::string, std::string, std::less<>>
      derivations_by_transformation_;
  /// Bare transformation name -> derivation, only for derivations
  /// whose qualified name differs (DerivationQuery matches either).
  std::multimap<std::string, std::string, std::less<>>
      derivations_by_bare_transformation_;

  /// Bounded mutation changelog backing ChangesSince().
  std::deque<CatalogChange> changelog_;
  size_t changelog_capacity_ = 4096;

  uint64_t next_replica_id_ = 1;
  uint64_t next_invocation_id_ = 1;
};

}  // namespace vdg

#endif  // VDG_CATALOG_CATALOG_H_
